//! Criterion benchmarks for the attack primitives: norm probing, FGSM,
//! single-pixel attacks, and surrogate training epochs with and without
//! the power loss (the cost of using the side channel).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_core::fgsm::{fgsm_batch, BoxConstraint};
use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_core::pixel_attack::{single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources};
use xbar_core::probe::probe_column_norms;
use xbar_core::surrogate::{train_surrogate, QueryDataset, SurrogateConfig};
use xbar_linalg::Matrix;
use xbar_nn::activation::Activation;
use xbar_nn::loss::Loss;
use xbar_nn::network::SingleLayerNet;

fn victim_net(n: usize) -> SingleLayerNet {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    SingleLayerNet::new_random(n, 10, Activation::Identity, &mut rng)
}

fn bench_probe(c: &mut Criterion) {
    // The Case-1 probe: N power queries (here N = 784, MNIST-shaped).
    let net = victim_net(784);
    c.bench_function("probe_column_norms_784", |b| {
        b.iter_batched(
            || {
                Oracle::new(
                    net.clone(),
                    &OracleConfig::ideal().with_access(OutputAccess::None),
                    13,
                )
                .unwrap()
            },
            |mut oracle| black_box(probe_column_norms(&mut oracle, 1.0, 1).unwrap()),
            criterion::BatchSize::LargeInput,
        );
    });
}

fn bench_fgsm(c: &mut Criterion) {
    let net = victim_net(784);
    let mut rng = ChaCha8Rng::seed_from_u64(14);
    let inputs = Matrix::random_uniform(100, 784, 0.0, 1.0, &mut rng);
    let mut targets = Matrix::zeros(100, 10);
    for i in 0..100 {
        targets[(i, i % 10)] = 1.0;
    }
    c.bench_function("fgsm_batch100_784", |b| {
        b.iter(|| {
            black_box(
                fgsm_batch(&net, &inputs, &targets, Loss::Mse, 0.1, BoxConstraint::None).unwrap(),
            )
        });
    });
}

fn bench_single_pixel(c: &mut Criterion) {
    let net = victim_net(784);
    let norms = net.column_l1_norms();
    let mut rng = ChaCha8Rng::seed_from_u64(15);
    let inputs = Matrix::random_uniform(100, 784, 0.0, 1.0, &mut rng);
    let mut targets = Matrix::zeros(100, 10);
    for i in 0..100 {
        targets[(i, i % 10)] = 1.0;
    }
    c.bench_function("single_pixel_norm_plus_batch100", |b| {
        b.iter(|| {
            black_box(
                single_pixel_attack_batch(
                    PixelAttackMethod::NormPlus,
                    &inputs,
                    &targets,
                    PixelAttackResources::norms_only(&norms),
                    1.0,
                    &mut rng,
                )
                .unwrap(),
            )
        });
    });
}

/// Builds a synthetic query log of the given size.
fn query_log(q: usize, n: usize) -> QueryDataset {
    let mut rng = ChaCha8Rng::seed_from_u64(16);
    let net = victim_net(n);
    let inputs = Matrix::random_uniform(q, n, 0.0, 1.0, &mut rng);
    let targets = inputs.matmul(&net.weights().transpose());
    let norms = net.column_l1_norms();
    let powers: Vec<f64> = inputs
        .rows_iter()
        .map(|u| u.iter().zip(&norms).map(|(&a, &b)| a * b).sum())
        .collect();
    QueryDataset {
        inputs,
        targets,
        powers,
    }
}

fn bench_surrogate_training(c: &mut Criterion) {
    // The Fig. 5 kernel: one surrogate training with and without the
    // power loss — the side channel's computational overhead.
    let q = query_log(100, 784);
    let mut group = c.benchmark_group("surrogate_train_q100");
    for (name, lambda) in [("lambda0", 0.0), ("lambda1", 1.0)] {
        group.bench_function(name, |b| {
            let mut cfg = SurrogateConfig::default().with_power_weight(lambda);
            cfg.sgd.epochs = 10;
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(17);
                black_box(train_surrogate(&q, &cfg, &mut rng).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_probe,
    bench_fgsm,
    bench_single_pixel,
    bench_surrogate_training
);
criterion_main!(benches);
