//! Criterion benchmarks for the crossbar simulator: programming, MVM,
//! the Eq. 5 power computation, and tiling overhead.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_crossbar::array::CrossbarArray;
use xbar_crossbar::device::DeviceModel;
use xbar_crossbar::tile::TiledCrossbar;
use xbar_linalg::Matrix;

fn layer_weights(n: usize) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    Matrix::random_uniform(10, n, -1.0, 1.0, &mut rng)
}

fn bench_program(c: &mut Criterion) {
    let mut group = c.benchmark_group("program");
    for &n in &[784usize, 3072] {
        let w = layer_weights(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = ChaCha8Rng::seed_from_u64(6);
            b.iter(|| {
                black_box(CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_mvm(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvm");
    for &n in &[784usize, 3072] {
        let w = layer_weights(n);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let xbar = CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).unwrap();
        let v: Vec<f64> = (0..n).map(|j| (j as f64 * 0.01).fract()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(xbar.mvm(&v)));
        });
    }
    group.finish();
}

fn bench_total_current(c: &mut Criterion) {
    // The side-channel observation itself (Eq. 5).
    let w = layer_weights(784);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let xbar = CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).unwrap();
    let v: Vec<f64> = (0..784).map(|j| (j as f64 * 0.013).fract()).collect();
    c.bench_function("total_current_784", |b| {
        b.iter(|| black_box(xbar.total_current(&v).unwrap()));
    });
}

fn bench_tiled_mvm(c: &mut Criterion) {
    let w = layer_weights(784);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let tiled = TiledCrossbar::program(&w, 8, 128, &DeviceModel::ideal(), &mut rng).unwrap();
    let v: Vec<f64> = (0..784).map(|j| (j as f64 * 0.017).fract()).collect();
    c.bench_function("tiled_mvm_784_8x128", |b| {
        b.iter(|| black_box(tiled.mvm(&v).unwrap()));
    });
}

fn bench_noisy_mvm(c: &mut Criterion) {
    let w = layer_weights(784);
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    let device = DeviceModel::ideal().with_read_sigma(0.01);
    let xbar = CrossbarArray::program(&w, &device, &mut rng).unwrap();
    let v: Vec<f64> = (0..784).map(|j| (j as f64 * 0.019).fract()).collect();
    c.bench_function("noisy_mvm_784", |b| {
        b.iter(|| black_box(xbar.noisy_mvm(&v, &mut rng).unwrap()));
    });
}

criterion_group!(
    benches,
    bench_program,
    bench_mvm,
    bench_total_current,
    bench_tiled_mvm,
    bench_noisy_mvm
);
criterion_main!(benches);
