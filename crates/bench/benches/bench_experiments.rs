//! Criterion benchmarks of the end-to-end experiment kernels — one per
//! paper table/figure, at reduced sizes so `cargo bench` finishes in
//! minutes. The full-size regenerations live in the `table1`, `fig3`,
//! `fig4`, `fig5`, `multipixel`, `recovery` and `ablations` binaries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_bench::{train_victim, DatasetKind, HeadKind};
use xbar_core::blackbox::{run_blackbox_attack, BlackBoxConfig};
use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_core::pixel_attack::{
    multi_pixel_norm_attack_batch, single_pixel_attack_batch, PixelAttackMethod,
    PixelAttackResources,
};
use xbar_core::recovery::recover_weights_least_squares;
use xbar_linalg::Matrix;
use xbar_nn::sensitivity::{abs_input_gradients, mean_abs_sensitivity};
use xbar_stats::correlation::{pearson, pearson_lenient};

fn small_victim() -> xbar_bench::TrainedVictim {
    train_victim(DatasetKind::Digits, HeadKind::LinearMse, 300, 1)
}

fn bench_table1_kernel(c: &mut Criterion) {
    // Table I kernel: per-sample and mean sensitivity/1-norm correlations.
    let v = small_victim();
    let norms = v.net.column_l1_norms();
    let targets = v.test.one_hot_targets();
    c.bench_function("table1_correlations", |b| {
        b.iter(|| {
            let abs = abs_input_gradients(
                &v.net,
                v.test.inputs(),
                &targets,
                HeadKind::LinearMse.loss(),
            )
            .unwrap();
            let mut acc = 0.0;
            for i in 0..abs.rows() {
                if let Some(r) = pearson_lenient(abs.row(i), &norms) {
                    acc += r;
                }
            }
            black_box(acc)
        });
    });
}

fn bench_fig3_kernel(c: &mut Criterion) {
    // Fig. 3 kernel: the dataset-mean sensitivity map.
    let v = small_victim();
    let targets = v.test.one_hot_targets();
    c.bench_function("fig3_mean_sensitivity_map", |b| {
        b.iter(|| {
            black_box(
                mean_abs_sensitivity(
                    &v.net,
                    v.test.inputs(),
                    &targets,
                    HeadKind::LinearMse.loss(),
                )
                .unwrap(),
            )
        });
    });
}

fn bench_fig4_kernel(c: &mut Criterion) {
    // Fig. 4 kernel: one attack-and-evaluate point of a panel.
    let v = small_victim();
    let oracle = Oracle::new(v.net.clone(), &OracleConfig::ideal(), 3).unwrap();
    let norms = v.net.column_l1_norms();
    let targets = v.test.one_hot_targets();
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    c.bench_function("fig4_attack_point", |b| {
        b.iter(|| {
            let adv = single_pixel_attack_batch(
                PixelAttackMethod::NormPlus,
                v.test.inputs(),
                &targets,
                PixelAttackResources::norms_only(&norms),
                2.0,
                &mut rng,
            )
            .unwrap();
            black_box(oracle.eval_accuracy(&adv, v.test.labels()).unwrap())
        });
    });
}

fn bench_fig5_kernel(c: &mut Criterion) {
    // Fig. 5 kernel: one full black-box run at a small query count.
    let v = small_victim();
    c.bench_function("fig5_blackbox_run_q50", |b| {
        b.iter(|| {
            let mut oracle = Oracle::new(
                v.net.clone(),
                &OracleConfig::ideal().with_access(OutputAccess::Raw),
                5,
            )
            .unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(6);
            let mut cfg = BlackBoxConfig::default()
                .with_num_queries(50)
                .with_power_weight(1.0);
            cfg.surrogate.sgd.epochs = 20;
            black_box(run_blackbox_attack(&mut oracle, &v.train, &v.test, &cfg, &mut rng).unwrap())
        });
    });
}

fn bench_multipixel_kernel(c: &mut Criterion) {
    let v = small_victim();
    let norms = v.net.column_l1_norms();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    c.bench_function("multipixel_attack_n4", |b| {
        b.iter(|| {
            black_box(
                multi_pixel_norm_attack_batch(v.test.inputs(), &norms, 4, 2.0, &mut rng).unwrap(),
            )
        });
    });
}

fn bench_recovery_kernel(c: &mut Criterion) {
    // Sec. IV kernel: least-squares recovery at reduced dimension.
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let w = Matrix::random_uniform(10, 128, -1.0, 1.0, &mut rng);
    let u = Matrix::random_uniform(160, 128, 0.0, 1.0, &mut rng);
    let y = u.matmul(&w.transpose());
    c.bench_function("recovery_lstsq_160x128", |b| {
        b.iter(|| black_box(recover_weights_least_squares(&u, &y).unwrap()));
    });
}

fn bench_probe_correlation_kernel(c: &mut Criterion) {
    // Ablation kernel: probe + correlation against ground truth.
    let v = small_victim();
    c.bench_function("ablation_probe_correlation", |b| {
        b.iter_batched(
            || {
                Oracle::new(
                    v.net.clone(),
                    &OracleConfig::ideal().with_access(OutputAccess::None),
                    9,
                )
                .unwrap()
            },
            |mut oracle| {
                let probed = xbar_core::probe::probe_column_norms(&mut oracle, 1.0, 1).unwrap();
                let truth = oracle.true_column_norms();
                black_box(pearson(&probed, &truth).unwrap())
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

criterion_group!(
    benches,
    bench_table1_kernel,
    bench_fig3_kernel,
    bench_fig4_kernel,
    bench_fig5_kernel,
    bench_multipixel_kernel,
    bench_recovery_kernel,
    bench_probe_correlation_kernel
);
criterion_main!(benches);
