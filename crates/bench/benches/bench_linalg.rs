//! Criterion micro-benchmarks for the linear-algebra substrate: the
//! kernels underneath every experiment (matmul for training, QR/pinv for
//! the Sec. IV recovery attacks).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_linalg::{qr, svd, Matrix};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for &n in &[32usize, 128, 256] {
        let a = Matrix::random_uniform(n, n, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(n, n, -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_matvec_training_shape(c: &mut Criterion) {
    // The hot shape of surrogate training: batch x 784 times 784 x 10.
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let x = Matrix::random_uniform(32, 784, 0.0, 1.0, &mut rng);
    let wt = Matrix::random_uniform(784, 10, -0.1, 0.1, &mut rng);
    c.bench_function("matmul_batch32_784x10", |b| {
        b.iter(|| black_box(x.matmul(&wt)));
    });
}

fn bench_qr_lstsq(c: &mut Criterion) {
    // The Sec. IV least-squares recovery kernel (reduced size).
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let u = Matrix::random_uniform(160, 128, 0.0, 1.0, &mut rng);
    let w = Matrix::random_uniform(10, 128, -1.0, 1.0, &mut rng);
    let y = u.matmul(&w.transpose());
    c.bench_function("qr_lstsq_recovery_160x128", |b| {
        b.iter(|| black_box(qr::lstsq_matrix(&u, &y).unwrap()));
    });
}

fn bench_svd_pinv(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let a = Matrix::random_uniform(64, 48, -1.0, 1.0, &mut rng);
    c.bench_function("svd_pinv_64x48", |b| {
        b.iter(|| black_box(svd::pinv(&a).unwrap()));
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matvec_training_shape,
    bench_qr_lstsq,
    bench_svd_pinv
);
criterion_main!(benches);
