//! Ablations beyond the paper's ideal-crossbar analysis — the
//! non-idealities its conclusion defers to future work, plus the
//! power-obfuscation defenses:
//!
//! 1. probe fidelity vs power-measurement noise (and averaging);
//! 2. probe fidelity and attack efficacy under device non-idealities
//!    (conductance quantisation, stuck-at faults);
//! 3. power-obfuscation defenses (static dummies, randomised dummies,
//!    injected noise) and what they do to the Case-1 attack;
//! 4. the tiled-crossbar check: tiling does not change the leak;
//! 5. the power-matching formulation: absolute (weight-units) power
//!    matching vs scale-invariant profile matching in the Eq. 9 surrogate
//!    loss — the reproduction's key implementation finding (see
//!    EXPERIMENTS.md).
//!
//! Studies 1/1b/2/3 run as an `xbar-runtime` campaign grid; 4/4b/5 run
//! serially. See `xbar_bench::figures::run_ablations`. For
//! checkpointing and resume, use `xbar campaign --figure ablations`.
//!
//! Usage: `cargo run -p xbar-bench --release --bin ablations [--quick] [--json results/ablations.json]`

use xbar_bench::figures::{run_ablations, CampaignOptions};
use xbar_bench::parse_args;

fn main() {
    let (json_path, quick) = parse_args();
    let mut opts = CampaignOptions::new(quick);
    opts.json_out = json_path;
    if let Err(e) = run_ablations(&opts) {
        eprintln!("ablations failed: {e}");
        std::process::exit(1);
    }
}
