//! Ablations beyond the paper's ideal-crossbar analysis — the
//! non-idealities its conclusion defers to future work, plus the
//! power-obfuscation defenses:
//!
//! 1. probe fidelity vs power-measurement noise (and averaging);
//! 2. probe fidelity and attack efficacy under device non-idealities
//!    (conductance quantisation, stuck-at faults);
//! 3. power-obfuscation defenses (static dummies, randomised dummies,
//!    injected noise) and what they do to the Case-1 attack;
//! 4. the tiled-crossbar check: tiling does not change the leak;
//! 5. the power-matching formulation: absolute (weight-units) power
//!    matching vs scale-invariant profile matching in the Eq. 9 surrogate
//!    loss — the reproduction's key implementation finding (see
//!    EXPERIMENTS.md).
//!
//! Usage: `cargo run -p xbar-bench --release --bin ablations [--quick] [--json results/ablations.json]`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use xbar_bench::{parse_args, train_victim, write_json, DatasetKind, HeadKind};
use xbar_core::defense::{DefendedOracle, PowerDefense};
use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_core::pixel_attack::{
    single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources,
};
use xbar_core::probe::probe_column_norms;
use xbar_core::report::{fmt, format_table};
use xbar_crossbar::device::DeviceModel;
use xbar_crossbar::power::PowerModel;
use xbar_crossbar::tile::TiledCrossbar;
use xbar_stats::correlation::pearson;

#[derive(Debug, Serialize)]
struct AblationRecord {
    study: &'static str,
    condition: String,
    probe_correlation: Option<f64>,
    attacked_accuracy: Option<f64>,
}

/// Probe correlation and norm-guided attack accuracy for a given oracle
/// configuration.
fn probe_and_attack(
    victim: &xbar_bench::TrainedVictim,
    cfg: &OracleConfig,
    seed: u64,
    repeats: usize,
    strength: f64,
) -> (f64, f64) {
    let mut oracle = Oracle::new(victim.net.clone(), cfg, seed).expect("oracle programs");
    let probed = probe_column_norms(&mut oracle, 1.0, repeats).expect("probe succeeds");
    let truth = oracle.true_column_norms();
    let r = pearson(&probed, &truth).unwrap_or(0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA77AC);
    let adv = single_pixel_attack_batch(
        PixelAttackMethod::NormPlus,
        victim.test.inputs(),
        &victim.test.one_hot_targets(),
        PixelAttackResources::norms_only(&probed),
        strength,
        &mut rng,
    )
    .expect("attack parameters valid");
    let acc = oracle
        .eval_accuracy(&adv, victim.test.labels())
        .expect("shapes agree");
    (r, acc)
}

fn main() {
    let (json_path, quick) = parse_args();
    let num_samples = if quick { 800 } else { 3000 };
    let strength = 4.0;
    let victim = train_victim(DatasetKind::Digits, HeadKind::SoftmaxCe, num_samples, 21);
    let clean = {
        let oracle = Oracle::new(victim.net.clone(), &OracleConfig::ideal(), 1).unwrap();
        oracle
            .eval_accuracy(victim.test.inputs(), victim.test.labels())
            .unwrap()
    };
    println!("digits / softmax victim, clean accuracy {clean:.3}, attack strength {strength}\n");

    let mut records = Vec::new();

    // ---- Study 1: measurement noise vs probe averaging ----
    let mut rows = Vec::new();
    for &sigma in &[0.0, 0.05, 0.2, 1.0] {
        for &repeats in &[1usize, 16] {
            let cfg = OracleConfig::ideal()
                .with_access(OutputAccess::None)
                .with_power(PowerModel::default().with_noise(sigma));
            let (r, acc) = probe_and_attack(&victim, &cfg, 31, repeats, strength);
            rows.push(vec![
                format!("σ={sigma}"),
                repeats.to_string(),
                fmt(r, 4),
                fmt(acc, 3),
            ]);
            records.push(AblationRecord {
                study: "measurement noise",
                condition: format!("sigma={sigma} repeats={repeats}"),
                probe_correlation: Some(r),
                attacked_accuracy: Some(acc),
            });
        }
    }
    println!("--- study 1: power-measurement noise vs probe averaging ---");
    println!(
        "{}",
        format_table(
            &["noise σ", "probe repeats", "probe corr r", "attacked acc"],
            &rows
        )
    );

    // ---- Study 1b: compressed probing (fewer than N queries) ----
    {
        use xbar_core::probe::probe_norms_compressed;
        let n = victim.net.num_inputs();
        let truth = victim.net.column_l1_norms();
        let mut rows = Vec::new();
        for &k in &[n / 8, n / 4, n / 2, n, 2 * n] {
            let mut oracle = Oracle::new(
                victim.net.clone(),
                &OracleConfig::ideal().with_access(OutputAccess::None),
                33,
            )
            .unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(34);
            let est = probe_norms_compressed(&mut oracle, k, 1e-3, &mut rng).unwrap();
            let r = pearson(&est, &truth).unwrap_or(0.0);
            let hit = xbar_linalg::vec_ops::argmax(&est)
                == xbar_linalg::vec_ops::argmax(&truth);
            rows.push(vec![
                format!("K={k} ({}%)", 100 * k / n),
                fmt(r, 4),
                if hit { "yes" } else { "no" }.to_string(),
            ]);
            records.push(AblationRecord {
                study: "compressed probing",
                condition: format!("K={k}"),
                probe_correlation: Some(r),
                attacked_accuracy: None,
            });
        }
        println!("--- study 1b: compressed probing (random-input queries, ridge recovery) ---");
        println!(
            "{}",
            format_table(
                &["queries K (of N=784)", "norm corr r", "argmax found"],
                &rows
            )
        );
    }

    // ---- Study 2: device non-idealities ----
    let mut rows = Vec::new();
    let devices: Vec<(String, DeviceModel)> = vec![
        ("ideal".into(), DeviceModel::ideal()),
        ("16 levels".into(), DeviceModel::ideal().with_levels(16)),
        ("4 levels".into(), DeviceModel::ideal().with_levels(4)),
        (
            "program variation σ=0.1".into(),
            DeviceModel::ideal().with_program_sigma(0.1),
        ),
        (
            "stuck-at rate 5%".into(),
            DeviceModel::ideal().with_stuck_rate(0.05),
        ),
        (
            "read noise σ=0.01".into(),
            DeviceModel::ideal().with_read_sigma(0.01),
        ),
    ];
    for (label, device) in devices {
        let cfg = OracleConfig::ideal()
            .with_access(OutputAccess::None)
            .with_device(device);
        let (r, acc) = probe_and_attack(&victim, &cfg, 37, 1, strength);
        // Also report how the non-ideality hurts the *victim* itself.
        let oracle = Oracle::new(victim.net.clone(), &cfg, 37).unwrap();
        let deployed_acc = oracle
            .eval_accuracy(victim.test.inputs(), victim.test.labels())
            .unwrap();
        rows.push(vec![
            label.clone(),
            fmt(deployed_acc, 3),
            fmt(r, 4),
            fmt(acc, 3),
        ]);
        records.push(AblationRecord {
            study: "device non-idealities",
            condition: label,
            probe_correlation: Some(r),
            attacked_accuracy: Some(acc),
        });
    }
    println!("--- study 2: device non-idealities (probe still sees deployed weights) ---");
    println!(
        "{}",
        format_table(
            &["device", "deployed acc", "probe corr r", "attacked acc"],
            &rows
        )
    );

    // ---- Study 3: power-obfuscation defenses ----
    let mut rows = Vec::new();
    let n = victim.net.num_inputs();
    let mean_norm = victim.net.column_l1_norms().iter().sum::<f64>() / n as f64;
    let defenses: Vec<(String, PowerDefense)> = vec![
        ("none".into(), PowerDefense::None),
        (
            "static dummies (~mean norm)".into(),
            PowerDefense::DummyConductances {
                offsets: (0..n).map(|j| mean_norm * ((j % 7) as f64) / 3.0).collect(),
            },
        ),
        (
            "randomised dummies (2x mean)".into(),
            PowerDefense::RandomizedDummy {
                magnitude: 2.0 * mean_norm,
            },
        ),
        (
            "injected noise σ=mean norm".into(),
            PowerDefense::AdditiveNoise { sigma: mean_norm },
        ),
    ];
    for (label, defense) in defenses {
        let oracle = Oracle::new(
            victim.net.clone(),
            &OracleConfig::ideal().with_access(OutputAccess::None),
            41,
        )
        .unwrap();
        let mut defended = DefendedOracle::new(oracle, defense, 43).unwrap();
        let probed = defended.probe_column_norms(1.0, 1).unwrap();
        let truth = defended.inner().true_column_norms();
        let r = pearson(&probed, &truth).unwrap_or(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(45);
        let adv = single_pixel_attack_batch(
            PixelAttackMethod::NormPlus,
            victim.test.inputs(),
            &victim.test.one_hot_targets(),
            PixelAttackResources::norms_only(&probed),
            strength,
            &mut rng,
        )
        .unwrap();
        let acc = defended
            .inner()
            .eval_accuracy(&adv, victim.test.labels())
            .unwrap();
        rows.push(vec![label.clone(), fmt(r, 4), fmt(acc, 3)]);
        records.push(AblationRecord {
            study: "power defenses",
            condition: label,
            probe_correlation: Some(r),
            attacked_accuracy: Some(acc),
        });
    }
    println!("--- study 3: power-obfuscation defenses vs the Case-1 attack ---");
    println!(
        "{}",
        format_table(&["defense", "probe corr r", "attacked acc"], &rows)
    );

    // ---- Study 4: tiling preserves the leak ----
    {
        let w = victim.net.weights();
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let mono =
            xbar_crossbar::array::CrossbarArray::program(w, &DeviceModel::ideal(), &mut rng)
                .unwrap();
        let tiled =
            TiledCrossbar::program(w, 8, 128, &DeviceModel::ideal(), &mut rng).unwrap();
        let u: Vec<f64> = (0..w.cols()).map(|j| (j as f64 * 0.01).fract()).collect();
        let mono_i = mono.total_current(&u).unwrap();
        let tiled_i = tiled.total_current(&u).unwrap();
        println!("--- study 4: tiling the {}x{} layer onto 8x128 arrays ---", w.rows(), w.cols());
        println!(
            "monolithic total current {mono_i:.6}, tiled ({} tiles) {tiled_i:.6}, |Δ| = {:.2e}\n",
            tiled.num_tiles(),
            (mono_i - tiled_i).abs()
        );
        records.push(AblationRecord {
            study: "tiling",
            condition: format!(
                "8x128 tiles, current delta {:.3e}",
                (mono_i - tiled_i).abs()
            ),
            probe_correlation: None,
            attacked_accuracy: None,
        });
    }

    // ---- Study 4b: IR drop (finite wire resistance) vs the probe ----
    {
        use xbar_crossbar::irdrop::IrDropConfig;
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let xbar = xbar_crossbar::array::CrossbarArray::program(
            victim.net.weights(),
            &DeviceModel::ideal(),
            &mut rng,
        )
        .unwrap();
        let truth = victim.net.weights().col_l1_norms();
        let n = victim.net.num_inputs();
        let mut rows = Vec::new();
        for &r_wire in &[0.0, 0.001, 0.01, 0.05] {
            let cfg = IrDropConfig {
                r_wire,
                tolerance: 1e-8,
                max_iterations: 2000,
            };
            // Probe a deterministic subset of columns (full probing with
            // the iterative solver over 784 columns is slow; 60 columns
            // give a stable correlation estimate).
            let cols: Vec<usize> = (0..60).map(|k| (k * 13) % n).collect();
            let mut probed = Vec::new();
            let mut subset_truth = Vec::new();
            for &j in &cols {
                let mut e = vec![0.0; n];
                e[j] = 1.0;
                let (_, total) = xbar.ir_drop_mvm(&e, &cfg).unwrap();
                probed.push(total);
                subset_truth.push(truth[j]);
            }
            let r = pearson(&probed, &subset_truth).unwrap_or(0.0);
            rows.push(vec![format!("r_wire={r_wire}"), fmt(r, 4)]);
            records.push(AblationRecord {
                study: "ir drop",
                condition: format!("r_wire={r_wire}"),
                probe_correlation: Some(r),
                attacked_accuracy: None,
            });
        }
        println!("--- study 4b: IR drop (wire resistance) vs probe fidelity ---");
        println!("{}", format_table(&["wire resistance", "probe corr r"], &rows));
    }

    // ---- Study 5: power-matching formulation in the surrogate loss ----
    {
        use xbar_core::blackbox::{run_blackbox_attack, BlackBoxConfig};
        use xbar_core::surrogate::SurrogateConfig;
        let runs = if quick { 3 } else { 6 };
        let linear_victims: Vec<_> = (0..runs)
            .map(|r| {
                xbar_bench::train_victim(
                    DatasetKind::Digits,
                    HeadKind::LinearMse,
                    num_samples,
                    600 + r,
                )
            })
            .collect();
        let mut rows = Vec::new();
        for (label, lambda, scale_invariant) in [
            ("no power (λ=0)", 0.0, true),
            ("absolute matching, λ=1", 1.0, false),
            ("scale-invariant matching, λ=1", 1.0, true),
            ("scale-invariant matching, λ=10", 10.0, true),
        ] {
            let degs: Vec<f64> = linear_victims
                .iter()
                .enumerate()
                .map(|(r, v)| {
                    let test = v
                        .test
                        .subset(&(0..v.test.len().min(200)).collect::<Vec<usize>>());
                    let mut oracle = Oracle::new(
                        v.net.clone(),
                        &OracleConfig::ideal().with_access(OutputAccess::LabelOnly),
                        700 + r as u64,
                    )
                    .unwrap();
                    let mut rng = ChaCha8Rng::seed_from_u64(800 + r as u64);
                    let mut scfg = SurrogateConfig::default().with_power_weight(lambda);
                    scfg.scale_invariant_power = scale_invariant;
                    scfg.sgd.epochs = 120;
                    let cfg = BlackBoxConfig {
                        num_queries: 300,
                        power_weight: lambda,
                        fgsm_eps: 0.1,
                        surrogate: scfg,
                    };
                    let (out, _) =
                        run_blackbox_attack(&mut oracle, &v.train, &test, &cfg, &mut rng)
                            .unwrap();
                    out.degradation()
                })
                .collect();
            let mean = degs.iter().sum::<f64>() / degs.len() as f64;
            rows.push(vec![label.to_string(), fmt(mean, 3)]);
            records.push(AblationRecord {
                study: "power matching formulation",
                condition: label.to_string(),
                probe_correlation: None,
                attacked_accuracy: Some(mean),
            });
        }
        println!("--- study 5: power-matching formulation (digits, label-only, Q=300) ---");
        println!(
            "{}",
            format_table(&["surrogate power loss", "mean degradation"], &rows)
        );
    }

    println!("Expected shape: probe correlation ~1 for the ideal crossbar, degraded by");
    println!("noise (recovered by averaging) and device faults; randomised dummies and");
    println!("injected noise blunt the attack (accuracy recovers toward clean); tiling");
    println!("changes nothing about the leak.");

    write_json(
        &json_path.unwrap_or_else(|| "results/ablations.json".into()),
        &records,
    );
}
