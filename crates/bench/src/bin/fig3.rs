//! Reproduces **Figure 3** of the paper: spatial maps of (a,c,e,g) the
//! dataset-mean sensitivity magnitude `mean |∂L/∂u_j|` and (b,d,f,h) the
//! weight-column 1-norms, for the four (dataset, head) configurations.
//! For the objects (CIFAR-like) dataset only the first colour channel is
//! shown, matching the paper's `10 x 1024` note.
//!
//! Output: ASCII heatmaps (bright = large) plus a JSON dump of the grids.
//!
//! Usage: `cargo run -p xbar-bench --release --bin fig3 [--quick] [--json results/fig3.json]`

use serde::Serialize;
use xbar_bench::{paper_configs, parse_args, train_victim, write_json};
use xbar_core::report::ascii_heatmap;
use xbar_nn::sensitivity::mean_abs_sensitivity;
use xbar_stats::correlation::pearson;

#[derive(Debug, Serialize)]
struct Panel {
    dataset: &'static str,
    activation: &'static str,
    test_accuracy: f64,
    /// Channel-0 correlation between the two maps (visual-correlation
    /// quantified).
    map_correlation: f64,
    mean_sensitivity: Vec<f64>,
    column_l1_norms: Vec<f64>,
}

fn main() {
    let (json_path, quick) = parse_args();
    let num_samples = if quick { 800 } else { 4000 };
    let mut panels = Vec::new();

    for (dataset, head) in paper_configs() {
        let victim = train_victim(dataset, head, num_samples, 42);
        let shape = victim.test.image_shape().expect("image datasets");
        let targets = victim.test.one_hot_targets();
        let sens = mean_abs_sensitivity(&victim.net, victim.test.inputs(), &targets, head.loss())
            .expect("victim/data shapes agree");
        let norms = victim.net.column_l1_norms();
        let r = pearson(&sens, &norms).unwrap_or(0.0);

        println!(
            "=== {} / {} (test acc {:.3}, map correlation r = {:.3}) ===",
            dataset.label(),
            head.label(),
            victim.test_accuracy,
            r
        );
        println!("--- mean |dL/du| (sensitivity), channel 0 ---");
        println!("{}", ascii_heatmap(&sens, shape, 0));
        println!("--- column 1-norms of W, channel 0 ---");
        println!("{}", ascii_heatmap(&norms, shape, 0));

        panels.push(Panel {
            dataset: dataset.label(),
            activation: head.label(),
            test_accuracy: victim.test_accuracy,
            map_correlation: r,
            mean_sensitivity: sens,
            column_l1_norms: norms,
        });
    }

    println!("Expected shape (paper Fig. 3): each sensitivity map visually matches its");
    println!("1-norm map; digits maps are smooth with dark borders, objects maps are");
    println!("jagged with signal everywhere.");

    write_json(
        &json_path.unwrap_or_else(|| "results/fig3.json".into()),
        &panels,
    );
}
