//! Reproduces **Figure 4** of the paper: single-pixel attacks on the
//! 1-layer networks guided by power information. For each (dataset, head)
//! panel, test accuracy vs attack strength for the five methods:
//! RP (random pixel), + / − / RD (largest probed 1-norm, fixed or random
//! direction), and Worst (white-box most-sensitive pixel).
//!
//! The attacker probes the column 1-norms through the crossbar power side
//! channel (`N` queries), exactly as in the paper's Case 1.
//!
//! Runs as an `xbar-runtime` campaign (one trial per panel x method, all
//! seeds pinned so results match the historical serial loop bit for
//! bit); see `xbar_bench::figures::run_fig4`. For checkpointing and
//! resume, use `xbar campaign --figure fig4`.
//!
//! Usage: `cargo run -p xbar-bench --release --bin fig4 [--quick] [--json results/fig4.json]`

use xbar_bench::figures::{run_fig4, CampaignOptions};
use xbar_bench::parse_args;

fn main() {
    let (json_path, quick) = parse_args();
    let mut opts = CampaignOptions::new(quick);
    opts.json_out = json_path;
    if let Err(e) = run_fig4(&opts) {
        eprintln!("fig4 failed: {e}");
        std::process::exit(1);
    }
}
