//! Reproduces **Figure 4** of the paper: single-pixel attacks on the
//! 1-layer networks guided by power information. For each (dataset, head)
//! panel, test accuracy vs attack strength for the five methods:
//! RP (random pixel), + / − / RD (largest probed 1-norm, fixed or random
//! direction), and Worst (white-box most-sensitive pixel).
//!
//! The attacker probes the column 1-norms through the crossbar power side
//! channel (`N` queries), exactly as in the paper's Case 1.
//!
//! Usage: `cargo run -p xbar-bench --release --bin fig4 [--quick] [--json results/fig4.json]`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use xbar_bench::{paper_configs, parse_args, train_victim, write_json};
use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_core::pixel_attack::{
    single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources,
};
use xbar_core::probe::probe_column_norms;
use xbar_core::report::{fmt, format_table};

#[derive(Debug, Serialize)]
struct Fig4Panel {
    dataset: &'static str,
    activation: &'static str,
    clean_accuracy: f64,
    strengths: Vec<f64>,
    /// accuracy[method][strength_index]
    methods: Vec<(&'static str, Vec<f64>)>,
}

fn main() {
    let (json_path, quick) = parse_args();
    let num_samples = if quick { 800 } else { 4000 };
    let strengths: Vec<f64> = if quick {
        vec![0.0, 2.0, 4.0, 8.0]
    } else {
        (0..=8).map(|i| i as f64).collect()
    };
    // Stochastic methods (RP, RD) are averaged over this many repetitions.
    let stochastic_reps = 5;

    let mut panels = Vec::new();
    for (dataset, head) in paper_configs() {
        let victim = train_victim(dataset, head, num_samples, 7);
        let mut oracle = Oracle::new(
            victim.net.clone(),
            &OracleConfig::ideal().with_access(OutputAccess::None),
            99,
        )
        .expect("ideal oracle");

        // Case-1 probe: N power queries reveal the column 1-norms.
        let norms = probe_column_norms(&mut oracle, 1.0, 1).expect("probe succeeds");
        let queries_spent = oracle.query_count();

        let test_inputs = victim.test.inputs();
        let test_targets = victim.test.one_hot_targets();
        let clean_accuracy = oracle
            .eval_accuracy(test_inputs, victim.test.labels())
            .expect("shapes agree");

        let mut method_rows = Vec::new();
        for method in PixelAttackMethod::all() {
            let reps = if matches!(
                method,
                PixelAttackMethod::RandomPixel | PixelAttackMethod::NormRandom
            ) {
                stochastic_reps
            } else {
                1
            };
            let accs: Vec<f64> = strengths
                .iter()
                .map(|&eps| {
                    let mut acc_sum = 0.0;
                    for rep in 0..reps {
                        let mut rng = ChaCha8Rng::seed_from_u64(1000 + rep as u64);
                        let res =
                            PixelAttackResources::full(&norms, &victim.net, head.loss());
                        let adv = single_pixel_attack_batch(
                            method,
                            test_inputs,
                            &test_targets,
                            res,
                            eps,
                            &mut rng,
                        )
                        .expect("attack parameters valid");
                        acc_sum += oracle
                            .eval_accuracy(&adv, victim.test.labels())
                            .expect("shapes agree");
                    }
                    acc_sum / reps as f64
                })
                .collect();
            method_rows.push((method.paper_label(), accs));
        }

        println!(
            "=== Fig.4 panel: {} / {} (clean acc {:.3}, probe cost {} queries) ===",
            dataset.label(),
            head.label(),
            clean_accuracy,
            queries_spent
        );
        let mut rows = Vec::new();
        for (label, accs) in &method_rows {
            let mut row = vec![label.to_string()];
            row.extend(accs.iter().map(|&a| fmt(a, 3)));
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["method".into()];
        headers.extend(strengths.iter().map(|s| format!("eps={s}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        println!("{}", format_table(&header_refs, &rows));

        panels.push(Fig4Panel {
            dataset: dataset.label(),
            activation: head.label(),
            clean_accuracy,
            strengths: strengths.clone(),
            methods: method_rows,
        });
    }

    println!("Expected shape (paper Fig. 4): Worst lowest; norm-guided '+' below RD below");
    println!("'-'; all norm-guided methods at or below RP; effects strongest for digits.");

    write_json(
        &json_path.unwrap_or_else(|| "results/fig4.json".into()),
        &panels,
    );
}
