//! Reproduces **Figure 5** of the paper: incorporating power information
//! into surrogate-based black-box attacks.
//!
//! Four rows — {digits, objects} x {label-only, raw-output} oracle access
//! — and three columns per row:
//!
//! 1. surrogate test accuracy vs query count, per power-loss weight λ;
//! 2. oracle test accuracy under FGSM(ε = 0.1) adversarial inputs crafted
//!    on the surrogate, vs query count;
//! 3. the improvement in attack efficacy (degradation with power minus
//!    degradation without), with `*` marking `p < 0.05` under a
//!    Student's/Welch t-test over the independent runs.
//!
//! Oracles use the linear head + MSE training (the paper uses linear
//! surrogates/oracles throughout Sec. IV).
//!
//! Runs as an `xbar-runtime` campaign (one trial per independent run,
//! the granularity the binary previously parallelised with `rayon`);
//! see `xbar_bench::figures::run_fig5`. For checkpointing and resume,
//! use `xbar campaign --figure fig5`.
//!
//! Usage: `cargo run -p xbar-bench --release --bin fig5 [--quick] [--json results/fig5.json]`

use xbar_bench::figures::{run_fig5, CampaignOptions};
use xbar_bench::parse_args;

fn main() {
    let (json_path, quick) = parse_args();
    let mut opts = CampaignOptions::new(quick);
    opts.json_out = json_path;
    if let Err(e) = run_fig5(&opts) {
        eprintln!("fig5 failed: {e}");
        std::process::exit(1);
    }
}
