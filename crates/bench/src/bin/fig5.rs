//! Reproduces **Figure 5** of the paper: incorporating power information
//! into surrogate-based black-box attacks.
//!
//! Four rows — {digits, objects} x {label-only, raw-output} oracle access
//! — and three columns per row:
//!
//! 1. surrogate test accuracy vs query count, per power-loss weight λ;
//! 2. oracle test accuracy under FGSM(ε = 0.1) adversarial inputs crafted
//!    on the surrogate, vs query count;
//! 3. the improvement in attack efficacy (degradation with power minus
//!    degradation without), with `*` marking `p < 0.05` under a
//!    Student's/Welch t-test over the independent runs.
//!
//! Oracles use the linear head + MSE training (the paper uses linear
//! surrogates/oracles throughout Sec. IV).
//!
//! Usage: `cargo run -p xbar-bench --release --bin fig5 [--quick] [--json results/fig5.json]`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::Serialize;
use xbar_bench::{parse_args, train_victim, write_json, DatasetKind, HeadKind};
use xbar_core::blackbox::{run_blackbox_attack, BlackBoxConfig};
use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_core::report::{fmt, fmt_with_significance, format_table};
use xbar_stats::aggregate::RunSummary;
use xbar_stats::ttest::welch_t_test;

// Power-loss weights swept. NOTE: these are NOT numerically comparable to
// the paper's 0..0.01 range — the paper's λ is tied to its (unspecified)
// power normalisation, while ours applies to RMS-normalised, scale-
// invariant power profiles (see `SurrogateConfig::scale_invariant_power`).
// What transfers is the existence of a sweet spot at small-but-nonzero λ.
const LAMBDAS: [f64; 4] = [0.0, 0.1, 1.0, 10.0];

#[derive(Debug, Serialize)]
struct Fig5Cell {
    queries: usize,
    lambda: f64,
    surrogate_accuracy: RunSummary,
    oracle_adversarial_accuracy: RunSummary,
    degradation: RunSummary,
    /// vs λ = 0 at the same query count (None for λ = 0 itself).
    improvement_mean: Option<f64>,
    improvement_p_value: Option<f64>,
}

#[derive(Debug, Serialize)]
struct Fig5Row {
    dataset: &'static str,
    access: &'static str,
    clean_accuracy_mean: f64,
    cells: Vec<Fig5Cell>,
}

fn main() {
    let (json_path, quick) = parse_args();
    let (runs, num_samples, q_list, test_eval): (u64, usize, Vec<usize>, usize) = if quick {
        (3, 800, vec![25, 100, 400], 150)
    } else {
        (10, 4000, vec![25, 50, 100, 200, 400, 800, 1600], 400)
    };

    // FGSM ε per dataset: the paper uses 0.1 throughout; our objects
    // stand-in has 3072 dense features (vs MNIST's ~150 active ones), so
    // ε=0.1 saturates the attack (oracle accuracy hits the floor at every
    // λ, hiding all differences). We match the ℓ2 budget instead:
    // 0.1·√784 ≈ 0.05·√3072.
    let rows_cfg = [
        (DatasetKind::Digits, OutputAccess::LabelOnly, "label-only", 0.1),
        (DatasetKind::Digits, OutputAccess::Raw, "raw outputs", 0.1),
        (DatasetKind::Objects, OutputAccess::LabelOnly, "label-only", 0.05),
        (DatasetKind::Objects, OutputAccess::Raw, "raw outputs", 0.05),
    ];

    let mut json_rows = Vec::new();
    for (dataset, access, access_label, fgsm_eps) in rows_cfg {
        println!(
            "\n================ Fig.5 row: {} / {} ({} runs) ================",
            dataset.label(),
            access_label,
            runs
        );

        // per-run results: [run][q_idx][lambda_idx] -> (surr_acc, adv_acc, clean_acc)
        let per_run: Vec<Vec<Vec<(f64, f64, f64)>>> = (0..runs)
            .into_par_iter()
            .map(|run| {
                let victim = train_victim(dataset, HeadKind::LinearMse, num_samples, 300 + run);
                let test = victim.test.subset(
                    &(0..victim.test.len().min(test_eval)).collect::<Vec<usize>>(),
                );
                q_list
                    .iter()
                    .map(|&q| {
                        LAMBDAS
                            .iter()
                            .map(|&lambda| {
                                let mut oracle = Oracle::new(
                                    victim.net.clone(),
                                    &OracleConfig::ideal().with_access(access),
                                    4000 + run,
                                )
                                .expect("ideal oracle");
                                // Same rng seed across lambdas: identical
                                // query samples, so the comparison is
                                // paired.
                                let mut rng = ChaCha8Rng::seed_from_u64(
                                    run * 1_000_003 + q as u64,
                                );
                                let mut cfg = BlackBoxConfig::default()
                                    .with_num_queries(q)
                                    .with_power_weight(lambda)
                                    .with_fgsm_eps(fgsm_eps);
                                // Constant update count (~1200 SGD steps)
                                // across query sizes so every surrogate
                                // trains to comparable convergence.
                                cfg.surrogate.sgd.epochs =
                                    (38_400 / q).clamp(60, 2000);
                                let (out, _) = run_blackbox_attack(
                                    &mut oracle,
                                    &victim.train,
                                    &test,
                                    &cfg,
                                    &mut rng,
                                )
                                .expect("pipeline succeeds");
                                (
                                    out.surrogate_test_accuracy,
                                    out.oracle_adversarial_accuracy,
                                    out.oracle_clean_accuracy,
                                )
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();

        let clean_mean: f64 = per_run
            .iter()
            .map(|r| r[0][0].2)
            .sum::<f64>()
            / runs as f64;

        // Aggregate and print the three "columns".
        let mut cells = Vec::new();
        let mut surr_rows = Vec::new();
        let mut adv_rows = Vec::new();
        let mut imp_rows = Vec::new();
        for (li, &lambda) in LAMBDAS.iter().enumerate() {
            let mut surr_row = vec![format!("λ={lambda}")];
            let mut adv_row = vec![format!("λ={lambda}")];
            let mut imp_row = vec![format!("λ={lambda}")];
            for (qi, &q) in q_list.iter().enumerate() {
                let surr: Vec<f64> = per_run.iter().map(|r| r[qi][li].0).collect();
                let adv: Vec<f64> = per_run.iter().map(|r| r[qi][li].1).collect();
                let deg: Vec<f64> = per_run.iter().map(|r| r[qi][li].2 - r[qi][li].1).collect();
                let deg0: Vec<f64> =
                    per_run.iter().map(|r| r[qi][0].2 - r[qi][0].1).collect();
                let surr_s = RunSummary::from_values(&surr);
                let adv_s = RunSummary::from_values(&adv);
                let deg_s = RunSummary::from_values(&deg);
                let (imp_mean, imp_p) = if li == 0 {
                    (None, None)
                } else {
                    let delta = deg_s.mean - RunSummary::from_values(&deg0).mean;
                    let p = welch_t_test(&deg, &deg0).map(|t| t.p_value).unwrap_or(1.0);
                    (Some(delta), Some(p))
                };
                surr_row.push(fmt(surr_s.mean, 3));
                adv_row.push(fmt(adv_s.mean, 3));
                imp_row.push(match (imp_mean, imp_p) {
                    (Some(d), Some(p)) => fmt_with_significance(d, p, 0.05, 3),
                    _ => "(ref)".to_string(),
                });
                cells.push(Fig5Cell {
                    queries: q,
                    lambda,
                    surrogate_accuracy: surr_s,
                    oracle_adversarial_accuracy: adv_s,
                    degradation: deg_s,
                    improvement_mean: imp_mean,
                    improvement_p_value: imp_p,
                });
            }
            surr_rows.push(surr_row);
            adv_rows.push(adv_row);
            imp_rows.push(imp_row);
        }

        let mut headers: Vec<String> = vec!["".into()];
        headers.extend(q_list.iter().map(|q| format!("Q={q}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        println!("clean oracle accuracy (mean over runs): {clean_mean:.3}\n");
        println!("--- surrogate test accuracy vs queries (Fig.5 left column) ---");
        println!("{}", format_table(&header_refs, &surr_rows));
        println!("--- oracle adversarial accuracy vs queries (Fig.5 centre, lower=stronger) ---");
        println!("{}", format_table(&header_refs, &adv_rows));
        println!("--- improvement in degradation vs λ=0 (* = p<0.05) (Fig.5 right) ---");
        println!("{}", format_table(&header_refs, &imp_rows));

        json_rows.push(Fig5Row {
            dataset: dataset.label(),
            access: access_label,
            clean_accuracy_mean: clean_mean,
            cells,
        });
    }

    println!("\nExpected shape (paper Fig. 5): for digits, λ>0 improves surrogate accuracy");
    println!("and attack efficacy at moderate Q, with significance; the benefit vanishes");
    println!("once Q exceeds the input dimension. For objects, improvements are small and");
    println!("mostly not significant.");

    write_json(
        &json_path.unwrap_or_else(|| "results/fig5.json".into()),
        &json_rows,
    );
}
