//! Extension (paper Sec. V future work): what does the power side channel
//! reveal about a **multi-layer** network?
//!
//! On a crossbar accelerator each dense layer occupies its own array, and
//! the *input-dependent* part of the first array's supply current is
//! `Σ_j u_j ‖W₁[:,j]‖₁` — the same Eq. 5 leak, now about the first-layer
//! weights only. This experiment measures whether those first-layer
//! column norms still predict the *end-to-end* input sensitivity of a
//! trained MLP (the quantity FGSM needs), reproducing the Table I
//! methodology one layer up.
//!
//! Usage: `cargo run -p xbar-bench --release --bin multilayer [--quick] [--json results/multilayer.json]`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use xbar_bench::{parse_args, write_json, DatasetKind};
use xbar_core::report::{fmt, format_table};
use xbar_nn::activation::Activation;
use xbar_nn::loss::Loss;
use xbar_nn::metrics::accuracy;
use xbar_nn::mlp::{train_mlp, Mlp};
use xbar_nn::train::SgdConfig;
use xbar_stats::correlation::pearson;

#[derive(Debug, Serialize)]
struct MultilayerResult {
    dataset: &'static str,
    hidden_units: usize,
    test_accuracy: f64,
    corr_of_mean_first_layer: f64,
    single_layer_reference: f64,
}

fn main() {
    let (json_path, quick) = parse_args();
    let num_samples = if quick { 800 } else { 3000 };
    let mut results = Vec::new();
    let mut rows = Vec::new();

    for dataset in [DatasetKind::Digits, DatasetKind::Objects] {
        let ds = dataset.generate(num_samples, 77);
        let split = ds.split_frac(0.85).expect("fraction in range");
        let mut rng = ChaCha8Rng::seed_from_u64(88);
        let hidden = 64;
        let mut mlp = Mlp::new_random(
            &[ds.num_features(), hidden, ds.num_classes()],
            Activation::Relu,
            Activation::Softmax,
            &mut rng,
        )
        .expect("valid sizes");
        let cfg = SgdConfig {
            learning_rate: 0.05,
            momentum: 0.0,
            epochs: if quick { 10 } else { 25 },
            ..SgdConfig::default()
        };
        train_mlp(
            &mut mlp,
            split.train.inputs(),
            &split.train.one_hot_targets(),
            Loss::CrossEntropy,
            &cfg,
            &mut rng,
        )
        .expect("training succeeds");
        let preds = mlp.predict_batch(split.test.inputs()).expect("shapes");
        let acc = accuracy(&preds, split.test.labels());

        // End-to-end mean |dL/du| of the MLP.
        let targets = split.test.one_hot_targets();
        let grads = mlp
            .batch_input_gradients(split.test.inputs(), &targets, Loss::CrossEntropy)
            .expect("shapes");
        let mut mean_sens = vec![0.0; ds.num_features()];
        for row in 0..grads.rows() {
            for (s, &g) in mean_sens.iter_mut().zip(grads.row(row)) {
                *s += g.abs();
            }
        }
        for s in &mut mean_sens {
            *s /= grads.rows() as f64;
        }

        // What the first crossbar array's power leaks: layer-1 column norms.
        let layer1_norms = &mlp.per_layer_column_l1_norms()[0];
        let r = pearson(&mean_sens, layer1_norms).unwrap_or(0.0);

        // Reference: the single-layer Table I number for the same data.
        let single =
            xbar_bench::train_victim(dataset, xbar_bench::HeadKind::SoftmaxCe, num_samples, 77);
        let s_targets = single.test.one_hot_targets();
        let s_sens = xbar_nn::sensitivity::mean_abs_sensitivity(
            &single.net,
            single.test.inputs(),
            &s_targets,
            Loss::CrossEntropy,
        )
        .expect("shapes");
        let r_single = pearson(&s_sens, &single.net.column_l1_norms()).unwrap_or(0.0);

        rows.push(vec![
            dataset.label().to_string(),
            fmt(acc, 3),
            fmt(r, 3),
            fmt(r_single, 3),
        ]);
        results.push(MultilayerResult {
            dataset: dataset.label(),
            hidden_units: hidden,
            test_accuracy: acc,
            corr_of_mean_first_layer: r,
            single_layer_reference: r_single,
        });
    }

    println!("=== multi-layer extension: first-layer power leak vs end-to-end sensitivity ===");
    println!(
        "{}",
        format_table(
            &[
                "dataset",
                "mlp test acc",
                "corr(mean |dL/du|, layer-1 norms)",
                "single-layer reference",
            ],
            &rows
        )
    );
    println!("Expected shape: the first-layer leak remains a useful (if weaker) proxy for");
    println!("input sensitivity in a 2-layer network — supporting the paper's conjecture");
    println!("that the attack surface extends to deep models.");

    write_json(
        &json_path.unwrap_or_else(|| "results/multilayer.json".into()),
        &results,
    );
}
