//! Reproduces the paper's Sec. III multi-pixel observation: attacking the
//! pixels with the top-N column 1-norms (each with a guessed ± direction)
//! becomes *less* effective as N grows, because all N directions must be
//! guessed right (odds `(1/2)^N`), while the white-box multi-pixel bound
//! keeps getting stronger.
//!
//! Usage: `cargo run -p xbar-bench --release --bin multipixel [--quick] [--json results/multipixel.json]`

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use xbar_bench::{parse_args, train_victim, write_json, DatasetKind, HeadKind};
use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_core::pixel_attack::{multi_pixel_norm_attack_batch, multi_pixel_worst_attack_batch};
use xbar_core::probe::probe_column_norms;
use xbar_core::report::{fmt, format_table};
use xbar_linalg::vec_ops;
use xbar_nn::sensitivity::batch_input_gradients;

#[derive(Debug, Serialize)]
struct MultiPixelResult {
    dataset: &'static str,
    clean_accuracy: f64,
    num_pixels: Vec<usize>,
    norm_guided_accuracy: Vec<f64>,
    white_box_accuracy: Vec<f64>,
    /// Fraction of (sample, guess) pairs where *all* N guessed directions
    /// match the loss gradient — the paper's `(1/2)^N` argument measured
    /// directly.
    all_directions_correct: Vec<f64>,
}

fn main() {
    let (json_path, quick) = parse_args();
    let num_samples = if quick { 800 } else { 4000 };
    let pixel_counts: Vec<usize> = (1..=8).collect();
    let strength = 2.0;
    let reps = if quick { 3 } else { 10 };

    let mut results = Vec::new();
    for dataset in [DatasetKind::Digits, DatasetKind::Objects] {
        let victim = train_victim(dataset, HeadKind::SoftmaxCe, num_samples, 11);
        let mut oracle = Oracle::new(
            victim.net.clone(),
            &OracleConfig::ideal().with_access(OutputAccess::None),
            13,
        )
        .expect("ideal oracle");
        let norms = probe_column_norms(&mut oracle, 1.0, 1).expect("probe succeeds");
        let clean = oracle
            .eval_accuracy(victim.test.inputs(), victim.test.labels())
            .expect("shapes agree");
        let targets = victim.test.one_hot_targets();

        // The paper's (1/2)^N argument, measured directly: how often do N
        // independent direction guesses at the top-norm pixels all agree
        // with the white-box loss gradient?
        let grads = batch_input_gradients(
            &victim.net,
            victim.test.inputs(),
            &targets,
            HeadKind::SoftmaxCe.loss(),
        )
        .expect("victim/data shapes agree");
        let top_all = vec_ops::top_k_indices(&norms, 8);
        let mut guess_rng = ChaCha8Rng::seed_from_u64(900);
        let all_correct_for = |n: usize, rng: &mut ChaCha8Rng| -> f64 {
            let mut hits = 0usize;
            let trials = victim.test.len();
            for i in 0..trials {
                let g = grads.row(i);
                let ok = top_all[..n].iter().all(|&j| {
                    let guess = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                    guess == g[j].signum()
                });
                if ok {
                    hits += 1;
                }
            }
            hits as f64 / trials as f64
        };

        let mut norm_acc = Vec::new();
        let mut worst_acc = Vec::new();
        let mut all_correct = Vec::new();
        for &n in &pixel_counts {
            all_correct.push(all_correct_for(n, &mut guess_rng));
            // Direction-guessing is stochastic: average over repetitions.
            let mut acc_sum = 0.0;
            for rep in 0..reps {
                let mut rng = ChaCha8Rng::seed_from_u64(500 + rep);
                let adv = multi_pixel_norm_attack_batch(
                    victim.test.inputs(),
                    &norms,
                    n,
                    strength,
                    &mut rng,
                )
                .expect("attack parameters valid");
                acc_sum += oracle
                    .eval_accuracy(&adv, victim.test.labels())
                    .expect("shapes agree");
            }
            norm_acc.push(acc_sum / reps as f64);

            let adv = multi_pixel_worst_attack_batch(
                &victim.net,
                victim.test.inputs(),
                &targets,
                HeadKind::SoftmaxCe.loss(),
                n,
                strength,
            )
            .expect("attack parameters valid");
            worst_acc.push(
                oracle
                    .eval_accuracy(&adv, victim.test.labels())
                    .expect("shapes agree"),
            );
        }

        println!(
            "=== multi-pixel attacks: {} (clean acc {:.3}, strength {strength}) ===",
            dataset.label(),
            clean
        );
        let mut headers: Vec<String> = vec!["method".into()];
        headers.extend(pixel_counts.iter().map(|n| format!("N={n}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut rows = Vec::new();
        let mut r1 = vec!["norm-guided (guess ±)".to_string()];
        r1.extend(norm_acc.iter().map(|&a| fmt(a, 3)));
        rows.push(r1);
        let mut r2 = vec!["white-box worst".to_string()];
        r2.extend(worst_acc.iter().map(|&a| fmt(a, 3)));
        rows.push(r2);
        let mut r3 = vec!["P(all N guesses right)".to_string()];
        r3.extend(all_correct.iter().map(|&a| fmt(a, 3)));
        rows.push(r3);
        let mut r4 = vec!["(1/2)^N reference".to_string()];
        r4.extend(pixel_counts.iter().map(|&n| fmt(0.5_f64.powi(n as i32), 3)));
        rows.push(r4);
        println!("{}", format_table(&header_refs, &rows));

        results.push(MultiPixelResult {
            dataset: dataset.label(),
            clean_accuracy: clean,
            num_pixels: pixel_counts.clone(),
            norm_guided_accuracy: norm_acc,
            white_box_accuracy: worst_acc,
            all_directions_correct: all_correct,
        });
    }

    println!("Expected shape (paper Sec. III): the probability of guessing every");
    println!("direction right collapses as (1/2)^N, so the norm-guided attack's");
    println!("per-pixel efficiency falls further and further behind the white-box");
    println!("bound as N grows. (Measured deviation: with a fixed per-pixel strength");
    println!("the *absolute* norm-guided accuracy still drifts down with N — random");
    println!("±ε on N pixels is a growing-variance perturbation — but its gap to the");
    println!("white-box multi-pixel bound widens exactly as the paper argues.)");

    write_json(
        &json_path.unwrap_or_else(|| "results/multipixel.json".into()),
        &results,
    );
}
