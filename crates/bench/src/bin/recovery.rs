//! Reproduces the paper's Sec. IV analytical observations about when the
//! power side channel is redundant:
//!
//! 1. querying `β e_j` against a linear oracle reveals `W[:, j]` exactly
//!    (N queries → full model);
//! 2. with `Q ≥ N` independent queries, `W = (U† Ŷ)ᵀ` is exact, so power
//!    adds nothing;
//! 3. with measurement noise or `Q < N`, exactness breaks — the regime
//!    where the paper's surrogate+power attack earns its keep.
//!
//! Usage: `cargo run -p xbar-bench --release --bin recovery [--quick] [--json results/recovery.json]`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use xbar_bench::{parse_args, train_victim, write_json, DatasetKind, HeadKind};
use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_core::recovery::{
    recover_columns_by_basis_probes, recover_weights_least_squares, recover_weights_ridge,
    relative_error,
};
use xbar_core::report::{fmt, format_table};
use xbar_crossbar::power::PowerModel;
use xbar_linalg::Matrix;

#[derive(Debug, Serialize)]
struct RecoveryResult {
    scenario: String,
    queries: usize,
    relative_error: Option<f64>,
    note: &'static str,
}

fn main() {
    let (json_path, quick) = parse_args();
    let num_samples = if quick { 600 } else { 2000 };
    let victim = train_victim(DatasetKind::Digits, HeadKind::LinearMse, num_samples, 3);
    let w_true = victim.net.weights().clone();
    let n = w_true.cols();
    let mut results = Vec::new();
    let mut rows = Vec::new();

    // 1. Basis-probe recovery: N raw-output queries.
    {
        let mut oracle = Oracle::new(
            victim.net.clone(),
            &OracleConfig::ideal().with_access(OutputAccess::Raw),
            5,
        )
        .expect("ideal oracle");
        let rec = recover_columns_by_basis_probes(&mut oracle, 1.0).expect("raw access");
        let err = relative_error(&rec, &w_true).expect("same shape");
        rows.push(vec![
            "basis probes (β e_j)".to_string(),
            oracle.query_count().to_string(),
            fmt(err, 9),
        ]);
        results.push(RecoveryResult {
            scenario: "basis probes".into(),
            queries: oracle.query_count(),
            relative_error: Some(err),
            note: "exact for linear oracles",
        });
    }

    // 2. Least squares at several Q, clean outputs.
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    for q in [n / 2, n, n + n / 4, 2 * n] {
        let u = Matrix::random_uniform(q, n, 0.0, 1.0, &mut rng);
        let y = u.matmul(&w_true.transpose());
        match recover_weights_least_squares(&u, &y) {
            Ok(rec) => {
                let err = relative_error(&rec, &w_true).expect("same shape");
                rows.push(vec![
                    format!("least squares, Q={q} (N={n})"),
                    q.to_string(),
                    fmt(err, 9),
                ]);
                results.push(RecoveryResult {
                    scenario: format!("least squares Q={q}"),
                    queries: q,
                    relative_error: Some(err),
                    note: "exact once Q >= N",
                });
            }
            Err(e) => {
                rows.push(vec![
                    format!("least squares, Q={q} (N={n})"),
                    q.to_string(),
                    format!("fails: {e}"),
                ]);
                results.push(RecoveryResult {
                    scenario: format!("least squares Q={q}"),
                    queries: q,
                    relative_error: None,
                    note: "underdetermined when Q < N",
                });
            }
        }
    }

    // 3. Noisy outputs: plain LS vs ridge.
    {
        let q = 2 * n;
        let u = Matrix::random_uniform(q, n, 0.0, 1.0, &mut rng);
        let mut y = u.matmul(&w_true.transpose());
        let noise = Matrix::random_normal(q, y.cols(), 0.0, 0.05, &mut rng);
        y.axpy(1.0, &noise);
        let ls = recover_weights_least_squares(&u, &y).expect("Q >= N");
        let ls_err = relative_error(&ls, &w_true).expect("same shape");
        let ridge = recover_weights_ridge(&u, &y, 1e-2).expect("regularised");
        let ridge_err = relative_error(&ridge, &w_true).expect("same shape");
        rows.push(vec![
            format!("noisy outputs σ=0.05, LS, Q={q}"),
            q.to_string(),
            fmt(ls_err, 6),
        ]);
        rows.push(vec![
            format!("noisy outputs σ=0.05, ridge λ=1e-2, Q={q}"),
            q.to_string(),
            fmt(ridge_err, 6),
        ]);
        results.push(RecoveryResult {
            scenario: "noisy LS".into(),
            queries: q,
            relative_error: Some(ls_err),
            note: "noise breaks exactness",
        });
        results.push(RecoveryResult {
            scenario: "noisy ridge".into(),
            queries: q,
            relative_error: Some(ridge_err),
            note: "regularisation helps under noise",
        });
    }

    // 4. Noisy power makes even the probe imperfect (connects to Fig. 5's
    //    moderate-query regime).
    {
        let cfg = OracleConfig::ideal()
            .with_access(OutputAccess::Raw)
            .with_power(PowerModel::default().with_noise(0.1));
        let mut oracle = Oracle::new(victim.net.clone(), &cfg, 29).expect("ideal oracle");
        let rec = recover_columns_by_basis_probes(&mut oracle, 1.0).expect("raw access");
        let err = relative_error(&rec, &w_true).expect("same shape");
        rows.push(vec![
            "basis probes, noisy measurement channel".to_string(),
            oracle.query_count().to_string(),
            fmt(err, 9),
        ]);
        results.push(RecoveryResult {
            scenario: "basis probes under measurement noise".into(),
            queries: oracle.query_count(),
            relative_error: Some(err),
            note: "output channel itself stays clean here",
        });
    }

    println!("=== Sec. IV exact weight recovery (digits victim, N={n}) ===");
    println!(
        "{}",
        format_table(&["scenario", "queries", "relative error"], &rows)
    );
    println!("Expected shape: basis probes and Q>=N least squares are exact (error ~1e-12);");
    println!("Q<N fails; observation noise degrades recovery and ridge recovers part of it.");

    write_json(
        &json_path.unwrap_or_else(|| "results/recovery.json".into()),
        &results,
    );
}
