//! Reproduces **Table I** of the paper: correlation coefficients between
//! the magnitude of the loss sensitivity `|∂L/∂u_j|` and the 1-norms of
//! the weight-matrix columns, for a 1-layer network on both datasets and
//! both heads, averaged over 5 independent runs.
//!
//! Two statistics per (dataset, activation, split):
//!
//! * **Mean correlation** — Pearson r computed per test/train sample,
//!   then averaged (the paper's left data columns; expected *lower*).
//! * **Correlation of mean** — Pearson r between the dataset-mean
//!   sensitivity map and the 1-norms (right columns; expected ≈ 0.9+).
//!
//! Usage: `cargo run -p xbar-bench --release --bin table1 [--quick] [--json results/table1.json]`

use rayon::prelude::*;
use serde::Serialize;
use xbar_bench::{paper_configs, parse_args, train_victim, write_json, DatasetKind, HeadKind};
use xbar_core::report::{fmt, format_table};
use xbar_nn::sensitivity::{abs_input_gradients, mean_abs_sensitivity};
use xbar_stats::aggregate::RunSummary;
use xbar_stats::correlation::{pearson, pearson_lenient};

#[derive(Debug, Serialize)]
struct Table1Row {
    dataset: &'static str,
    activation: &'static str,
    mean_corr_train: RunSummary,
    mean_corr_test: RunSummary,
    corr_of_mean_train: RunSummary,
    corr_of_mean_test: RunSummary,
}

/// Per-run statistics for one configuration.
fn run_once(
    dataset: DatasetKind,
    head: HeadKind,
    num_samples: usize,
    seed: u64,
) -> (f64, f64, f64, f64) {
    let victim = train_victim(dataset, head, num_samples, seed);
    let norms = victim.net.column_l1_norms();
    let stat = |ds: &xbar_data::Dataset| -> (f64, f64) {
        let targets = ds.one_hot_targets();
        let abs = abs_input_gradients(&victim.net, ds.inputs(), &targets, head.loss())
            .expect("victim/data shapes agree");
        // Mean correlation: per-sample r, averaged (skip degenerate rows).
        let mut rs = Vec::with_capacity(abs.rows());
        for i in 0..abs.rows() {
            if let Some(r) = pearson_lenient(abs.row(i), &norms) {
                rs.push(r);
            }
        }
        let mean_corr = rs.iter().sum::<f64>() / rs.len().max(1) as f64;
        // Correlation of the mean map.
        let mean_map = mean_abs_sensitivity(&victim.net, ds.inputs(), &targets, head.loss())
            .expect("victim/data shapes agree");
        let corr_of_mean = pearson(&mean_map, &norms).unwrap_or(0.0);
        (mean_corr, corr_of_mean)
    };
    let (mc_train, cm_train) = stat(&victim.train);
    let (mc_test, cm_test) = stat(&victim.test);
    (mc_train, mc_test, cm_train, cm_test)
}

fn main() {
    let (json_path, quick) = parse_args();
    let runs: u64 = if quick { 2 } else { 5 };
    let num_samples = if quick { 800 } else { 4000 };

    println!("Table I: correlation between |loss sensitivity| and weight-column 1-norms");
    println!("({runs} runs per configuration, {num_samples} samples per dataset)\n");

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (dataset, head) in paper_configs() {
        let stats: Vec<(f64, f64, f64, f64)> = (0..runs)
            .into_par_iter()
            .map(|r| run_once(dataset, head, num_samples, 100 + r))
            .collect();
        let col = |f: fn(&(f64, f64, f64, f64)) -> f64| -> RunSummary {
            RunSummary::from_values(&stats.iter().map(f).collect::<Vec<f64>>())
        };
        let mc_train = col(|s| s.0);
        let mc_test = col(|s| s.1);
        let cm_train = col(|s| s.2);
        let cm_test = col(|s| s.3);
        rows.push(vec![
            dataset.label().to_string(),
            head.label().to_string(),
            fmt(mc_train.mean, 2),
            fmt(mc_test.mean, 2),
            fmt(cm_train.mean, 2),
            fmt(cm_test.mean, 2),
        ]);
        json_rows.push(Table1Row {
            dataset: dataset.label(),
            activation: head.label(),
            mean_corr_train: mc_train,
            mean_corr_test: mc_test,
            corr_of_mean_train: cm_train,
            corr_of_mean_test: cm_test,
        });
    }

    println!(
        "{}",
        format_table(
            &[
                "Dataset",
                "Activation",
                "MeanCorr(Train)",
                "MeanCorr(Test)",
                "CorrOfMean(Train)",
                "CorrOfMean(Test)",
            ],
            &rows,
        )
    );
    println!("Paper reference (MNIST/CIFAR-10):");
    println!("  MNIST  Linear  0.70 0.70 | 0.99 0.98");
    println!("  MNIST  Softmax 0.52 0.52 | 0.92 0.92");
    println!("  CIFAR  Linear  0.26 0.26 | 0.87 0.87");
    println!("  CIFAR  Softmax 0.33 0.33 | 0.91 0.91");
    println!(
        "Expected shape: CorrOfMean >> MeanCorr everywhere; digits MeanCorr > objects MeanCorr."
    );

    if let Some(path) = json_path {
        write_json(&path, &json_rows);
    } else {
        write_json("results/table1.json", &json_rows);
    }
}
