//! The paper's experiment grids expressed as [`xbar_runtime`] campaigns.
//!
//! Each figure's independent unit of work becomes a [`TrialRunner`]
//! trial:
//!
//! * **Fig. 4** — one trial per (dataset, head, method): the victim is
//!   retrained deterministically inside the trial (seed 7), so any
//!   subset of the grid can run, in any order, on any number of
//!   threads, and still reproduce the serial binary bit for bit.
//! * **Fig. 5** — one trial per independent run of a (dataset, access)
//!   row, matching the parallel granularity the binary previously got
//!   from `rayon`.
//! * **Ablations** — one trial per condition of studies 1 (measurement
//!   noise), 1b (compressed probing), 2 (device non-idealities) and
//!   3 (power defenses); studies 4/4b/5 stay serial in the driver.
//!
//! Every seed below is pinned to the value the serial binaries used, so
//! campaign outputs are directly comparable against historical results.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use xbar_core::blackbox::{run_blackbox_attack, BlackBoxConfig};
use xbar_core::defense::{DefendedOracle, PowerDefense};
use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_core::pixel_attack::{single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources};
use xbar_core::probe::{probe_column_norms, probe_norms_compressed};
use xbar_core::sweep::{attack_and_eval, method_reps};
use xbar_crossbar::backend::BackendSpec;
use xbar_crossbar::device::DeviceModel;
use xbar_crossbar::power::PowerModel;
use xbar_faults::{FaultInjection, FaultKey, FaultSpec, TransientInjection, TransientSpec};
use xbar_runtime::{Campaign, TrialContext, TrialRunner};
use xbar_stats::correlation::pearson;

use crate::{paper_configs, train_victim, DatasetKind, HeadKind, TrainedVictim};

/// Victim-training seed shared by every Fig. 4 panel (as in the serial
/// binary).
pub const FIG4_VICTIM_SEED: u64 = 7;

/// Oracle / crossbar-programming seed for Fig. 4 (as in the serial
/// binary).
pub const FIG4_ORACLE_SEED: u64 = 99;

/// Power-loss weights swept in Fig. 5. NOTE: these are NOT numerically
/// comparable to the paper's 0..0.01 range — the paper's λ is tied to
/// its (unspecified) power normalisation, while ours applies to
/// RMS-normalised, scale-invariant power profiles. What transfers is
/// the existence of a sweet spot at small-but-nonzero λ.
pub const FIG5_LAMBDAS: [f64; 4] = [0.0, 0.1, 1.0, 10.0];

/// Compiles an optional campaign-level fault spec into this trial's
/// injection, keyed by `(campaign_seed, trial_index)` — the xbar-faults
/// keying contract, so fault draws depend only on the trial's identity,
/// never on scheduling or thread count.
pub(crate) fn trial_injection(
    faults: Option<FaultSpec>,
    ctx: &TrialContext,
) -> Option<FaultInjection> {
    faults.map(|spec| {
        FaultInjection::new(
            spec,
            FaultKey::new(ctx.campaign_seed, ctx.trial_index as u64),
        )
    })
}

/// Compiles an optional campaign-level transient spec into this trial's
/// per-query injection, under the same `(campaign_seed, trial_index)`
/// key as [`trial_injection`] — the oracle then extends the key with the
/// global query index, so per-query disturbances are deterministic in
/// the trial's identity and query position alone.
pub(crate) fn trial_transients(
    transients: Option<TransientSpec>,
    ctx: &TrialContext,
) -> Option<TransientInjection> {
    transients.map(|spec| {
        TransientInjection::new(
            spec,
            FaultKey::new(ctx.campaign_seed, ctx.trial_index as u64),
        )
    })
}

// ---------------------------------------------------------------------
// Fig. 4
// ---------------------------------------------------------------------

/// One Fig. 4 trial: a single attack method on a single (dataset, head)
/// panel, swept over the attack strengths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Spec {
    /// Dataset of the panel.
    pub dataset: DatasetKind,
    /// Output head of the panel.
    pub head: HeadKind,
    /// The pixel-attack method this trial evaluates.
    pub method: PixelAttackMethod,
    /// Attack strengths swept (shared by all trials of a campaign).
    pub strengths: Vec<f64>,
    /// Dataset size used to train the victim.
    pub num_samples: usize,
    /// Repetitions averaged for the stochastic methods (RP, RD).
    pub stochastic_reps: usize,
}

/// The result of one Fig. 4 trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4TrialOutput {
    /// Clean test accuracy of the panel's victim.
    pub clean_accuracy: f64,
    /// Power queries spent probing the column norms.
    pub probe_queries: usize,
    /// Mean attacked accuracy per strength (aligned with
    /// [`Fig4Spec::strengths`]).
    pub accuracies: Vec<f64>,
}

/// Runs Fig. 4 trials. Stateless: each trial retrains its panel's
/// victim from the pinned seed, so trials are independent. The
/// evaluation backend only changes how oracle queries are executed —
/// results are bit-identical across backends.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig4Runner {
    backend: BackendSpec,
    faults: Option<FaultSpec>,
    transients: Option<TransientSpec>,
}

impl Fig4Runner {
    /// A runner evaluating oracles with the given backend.
    #[must_use]
    pub fn new(backend: impl Into<BackendSpec>) -> Self {
        Fig4Runner {
            backend: backend.into(),
            faults: None,
            transients: None,
        }
    }

    /// Injects `faults` into every trial's deployed crossbar, keyed by
    /// `(campaign_seed, trial_index)`.
    #[must_use]
    pub fn with_faults(mut self, faults: Option<FaultSpec>) -> Self {
        self.faults = faults;
        self
    }

    /// Applies per-query transient disturbances to every trial's oracle,
    /// keyed by `(campaign_seed, trial_index, query index)`.
    #[must_use]
    pub fn with_transients(mut self, transients: Option<TransientSpec>) -> Self {
        self.transients = transients;
        self
    }
}

impl TrialRunner for Fig4Runner {
    type Spec = Fig4Spec;
    type Output = Fig4TrialOutput;

    fn run(&self, spec: &Fig4Spec, ctx: &TrialContext) -> Result<Fig4TrialOutput, String> {
        let victim = train_victim(spec.dataset, spec.head, spec.num_samples, FIG4_VICTIM_SEED);
        let mut cfg = OracleConfig::ideal()
            .with_access(OutputAccess::None)
            .with_backend(self.backend);
        if let Some(injection) = trial_injection(self.faults, ctx) {
            cfg = cfg.with_faults(injection);
        }
        if let Some(injection) = trial_transients(self.transients, ctx) {
            cfg = cfg.with_transients(injection);
        }
        let mut oracle =
            Oracle::new(victim.net.clone(), &cfg, FIG4_ORACLE_SEED).map_err(|e| e.to_string())?;

        // Case-1 probe: N power queries reveal the column 1-norms.
        let norms = probe_column_norms(&mut oracle, 1.0, 1).map_err(|e| e.to_string())?;
        let probe_queries = oracle.query_count();
        let clean_accuracy = oracle
            .eval_accuracy(victim.test.inputs(), victim.test.labels())
            .map_err(|e| e.to_string())?;

        let targets = victim.test.one_hot_targets();
        let reps = method_reps(spec.method, spec.stochastic_reps);
        let mut accuracies = Vec::with_capacity(spec.strengths.len());
        for &eps in &spec.strengths {
            let mut acc_sum = 0.0;
            for rep in 0..reps {
                // A fresh RNG per repetition, seeded exactly as the
                // serial loop, keeps the campaign path bit-identical.
                let mut rng = ChaCha8Rng::seed_from_u64(1000 + rep as u64);
                let res = PixelAttackResources::full(&norms, &victim.net, spec.head.loss());
                acc_sum += attack_and_eval(
                    &oracle,
                    victim.test.inputs(),
                    &targets,
                    victim.test.labels(),
                    spec.method,
                    res,
                    eps,
                    &mut rng,
                )
                .map_err(|e| e.to_string())?;
            }
            accuracies.push(acc_sum / reps as f64);
        }
        Ok(Fig4TrialOutput {
            clean_accuracy,
            probe_queries,
            accuracies,
        })
    }
}

/// The full Fig. 4 grid: 4 panels x 5 methods, in the paper's panel
/// order with methods in [`PixelAttackMethod::all`] order.
pub fn fig4_campaign(quick: bool) -> Campaign<Fig4Spec> {
    let num_samples = if quick { 800 } else { 4000 };
    let strengths: Vec<f64> = if quick {
        vec![0.0, 2.0, 4.0, 8.0]
    } else {
        (0..=8).map(|i| i as f64).collect()
    };
    let mut campaign = Campaign::new("fig4", FIG4_VICTIM_SEED);
    for (dataset, head) in paper_configs() {
        for method in PixelAttackMethod::all() {
            campaign.push_trial(Fig4Spec {
                dataset,
                head,
                method,
                strengths: strengths.clone(),
                num_samples,
                stochastic_reps: 5,
            });
        }
    }
    campaign
}

// ---------------------------------------------------------------------
// Fig. 5
// ---------------------------------------------------------------------

/// One Fig. 5 trial: a full independent run (victim + all query counts
/// and power weights) of one (dataset, access) row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Spec {
    /// Dataset of the row.
    pub dataset: DatasetKind,
    /// Oracle output access of the row.
    pub access: OutputAccess,
    /// FGSM budget (ℓ2-matched per dataset; see the fig5 driver docs).
    pub fgsm_eps: f64,
    /// Independent-run index; seeds everything inside the trial.
    pub run: u64,
    /// Dataset size used to train the victim.
    pub num_samples: usize,
    /// Query counts swept.
    pub q_list: Vec<usize>,
    /// Power-loss weights swept.
    pub lambdas: Vec<f64>,
    /// Test samples evaluated per attack.
    pub test_eval: usize,
}

/// Accuracies measured for one (query count, λ) cell of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlackboxPoint {
    /// Surrogate test accuracy.
    pub surrogate_accuracy: f64,
    /// Oracle accuracy under the surrogate-crafted FGSM inputs.
    pub adversarial_accuracy: f64,
    /// Oracle clean accuracy.
    pub clean_accuracy: f64,
}

/// The result of one Fig. 5 trial: `points[q_index][lambda_index]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5RunOutput {
    /// One point per (query count, λ) pair, `q_list`-major.
    pub points: Vec<Vec<BlackboxPoint>>,
}

/// Runs Fig. 5 trials, reproducing the serial binary's per-run closure
/// (victim seed `300 + run`, oracle seed `4000 + run`, attack RNG seed
/// `run * 1_000_003 + q` — shared across λ so comparisons are paired).
/// The evaluation backend is a pure execution detail: outputs are
/// bit-identical across backends.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig5Runner {
    backend: BackendSpec,
    faults: Option<FaultSpec>,
    transients: Option<TransientSpec>,
}

impl Fig5Runner {
    /// A runner evaluating oracles with the given backend.
    #[must_use]
    pub fn new(backend: impl Into<BackendSpec>) -> Self {
        Fig5Runner {
            backend: backend.into(),
            faults: None,
            transients: None,
        }
    }

    /// Injects `faults` into every trial's deployed crossbar, keyed by
    /// `(campaign_seed, trial_index)`. All (query count, λ) cells of a
    /// trial share one fault realisation, so comparisons stay paired.
    #[must_use]
    pub fn with_faults(mut self, faults: Option<FaultSpec>) -> Self {
        self.faults = faults;
        self
    }

    /// Applies per-query transient disturbances to every trial's oracle,
    /// keyed by `(campaign_seed, trial_index, query index)`.
    #[must_use]
    pub fn with_transients(mut self, transients: Option<TransientSpec>) -> Self {
        self.transients = transients;
        self
    }
}

impl TrialRunner for Fig5Runner {
    type Spec = Fig5Spec;
    type Output = Fig5RunOutput;

    fn run(&self, spec: &Fig5Spec, ctx: &TrialContext) -> Result<Fig5RunOutput, String> {
        let victim = train_victim(
            spec.dataset,
            HeadKind::LinearMse,
            spec.num_samples,
            300 + spec.run,
        );
        let test = victim
            .test
            .subset(&(0..victim.test.len().min(spec.test_eval)).collect::<Vec<usize>>());
        let injection = trial_injection(self.faults, ctx);
        let transients = trial_transients(self.transients, ctx);
        let mut points = Vec::with_capacity(spec.q_list.len());
        for &q in &spec.q_list {
            let mut row = Vec::with_capacity(spec.lambdas.len());
            for &lambda in &spec.lambdas {
                let mut cfg = OracleConfig::ideal()
                    .with_access(spec.access)
                    .with_backend(self.backend);
                if let Some(injection) = injection {
                    cfg = cfg.with_faults(injection);
                }
                if let Some(transients) = transients {
                    cfg = cfg.with_transients(transients);
                }
                let mut oracle = Oracle::new(victim.net.clone(), &cfg, 4000 + spec.run)
                    .map_err(|e| e.to_string())?;
                // Same RNG seed across lambdas: identical query samples,
                // so the comparison is paired.
                let mut rng = ChaCha8Rng::seed_from_u64(spec.run * 1_000_003 + q as u64);
                let mut cfg = BlackBoxConfig::default()
                    .with_num_queries(q)
                    .with_power_weight(lambda)
                    .with_fgsm_eps(spec.fgsm_eps);
                // Constant update count (~1200 SGD steps) across query
                // sizes so every surrogate trains to comparable
                // convergence.
                cfg.surrogate.sgd.epochs = (38_400 / q).clamp(60, 2000);
                let (out, _) =
                    run_blackbox_attack(&mut oracle, &victim.train, &test, &cfg, &mut rng)
                        .map_err(|e| e.to_string())?;
                row.push(BlackboxPoint {
                    surrogate_accuracy: out.surrogate_test_accuracy,
                    adversarial_accuracy: out.oracle_adversarial_accuracy,
                    clean_accuracy: out.oracle_clean_accuracy,
                });
            }
            points.push(row);
        }
        Ok(Fig5RunOutput { points })
    }
}

/// The four (dataset, access) rows of Fig. 5, with their display label
/// and FGSM budget. The paper uses ε = 0.1 throughout; our objects
/// stand-in has 3072 dense features (vs MNIST's ~150 active ones), so
/// ε = 0.1 saturates the attack there — we match the ℓ2 budget instead:
/// 0.1·√784 ≈ 0.05·√3072.
pub fn fig5_rows() -> [(DatasetKind, OutputAccess, &'static str, f64); 4] {
    [
        (
            DatasetKind::Digits,
            OutputAccess::LabelOnly,
            "label-only",
            0.1,
        ),
        (DatasetKind::Digits, OutputAccess::Raw, "raw outputs", 0.1),
        (
            DatasetKind::Objects,
            OutputAccess::LabelOnly,
            "label-only",
            0.05,
        ),
        (DatasetKind::Objects, OutputAccess::Raw, "raw outputs", 0.05),
    ]
}

/// Experiment sizes for Fig. 5: `(runs, num_samples, q_list, test_eval)`.
pub fn fig5_params(quick: bool) -> (u64, usize, Vec<usize>, usize) {
    if quick {
        (3, 800, vec![25, 100, 400], 150)
    } else {
        (10, 4000, vec![25, 50, 100, 200, 400, 800, 1600], 400)
    }
}

/// The full Fig. 5 grid: rows x independent runs, row-major (so trial
/// index = `row * runs + run`).
pub fn fig5_campaign(quick: bool) -> Campaign<Fig5Spec> {
    let (runs, num_samples, q_list, test_eval) = fig5_params(quick);
    let mut campaign = Campaign::new("fig5", 300);
    for (dataset, access, _, fgsm_eps) in fig5_rows() {
        for run in 0..runs {
            campaign.push_trial(Fig5Spec {
                dataset,
                access,
                fgsm_eps,
                run,
                num_samples,
                q_list: q_list.clone(),
                lambdas: FIG5_LAMBDAS.to_vec(),
                test_eval,
            });
        }
    }
    campaign
}

// ---------------------------------------------------------------------
// Ablations (grid studies)
// ---------------------------------------------------------------------

/// Which ablation study a trial belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AblationStudy {
    /// Study 1: power-measurement noise vs probe averaging.
    Noise,
    /// Study 1b: compressed probing (fewer than N queries).
    Compressed,
    /// Study 2: device non-idealities.
    Device,
    /// Study 3: power-obfuscation defenses.
    Defense,
}

/// One ablation trial: a study plus an index into that study's
/// condition table (held by [`AblationsRunner`], which builds the same
/// table every run — the campaign fingerprint pins the grid shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationSpec {
    /// The study.
    pub study: AblationStudy,
    /// Index into the study's condition table.
    pub index: usize,
}

/// The result of one ablation trial; fields are `None` where a study
/// does not measure that quantity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationOutput {
    /// Pearson correlation of probed vs true column norms.
    pub probe_correlation: Option<f64>,
    /// Test accuracy under the norm-guided attack.
    pub attacked_accuracy: Option<f64>,
    /// Clean test accuracy of the victim as deployed on the (possibly
    /// non-ideal) crossbar (study 2 only).
    pub deployed_accuracy: Option<f64>,
    /// Whether the probe found the true largest-norm column (study 1b
    /// only).
    pub argmax_found: Option<bool>,
}

/// Runs the grid ablation studies against one shared victim (digits /
/// softmax, seed 21 — deterministic, so sharing it across trials is
/// equivalent to retraining it per trial, just cheaper).
pub struct AblationsRunner {
    victim: TrainedVictim,
    strength: f64,
    backend: BackendSpec,
    faults: Option<FaultSpec>,
    transients: Option<TransientSpec>,
}

impl AblationsRunner {
    /// Trains the shared victim (800 samples when `quick`, 3000
    /// otherwise) at attack strength 4, as in the serial binary, and
    /// evaluates oracles with `backend` (a pure execution detail —
    /// results are bit-identical across backends).
    pub fn new(quick: bool, backend: impl Into<BackendSpec>) -> Self {
        let num_samples = if quick { 800 } else { 3000 };
        AblationsRunner {
            victim: train_victim(DatasetKind::Digits, HeadKind::SoftmaxCe, num_samples, 21),
            strength: 4.0,
            backend: backend.into(),
            faults: None,
            transients: None,
        }
    }

    /// Injects `faults` into every trial's deployed crossbar, keyed by
    /// `(campaign_seed, trial_index)`.
    #[must_use]
    pub fn with_faults(mut self, faults: Option<FaultSpec>) -> Self {
        self.faults = faults;
        self
    }

    /// Applies per-query transient disturbances to every trial's oracle,
    /// keyed by `(campaign_seed, trial_index, query index)`.
    #[must_use]
    pub fn with_transients(mut self, transients: Option<TransientSpec>) -> Self {
        self.transients = transients;
        self
    }

    /// The shared victim.
    pub fn victim(&self) -> &TrainedVictim {
        &self.victim
    }

    /// The attack strength used throughout the grid studies.
    pub fn strength(&self) -> f64 {
        self.strength
    }

    /// Study-1 conditions: (noise σ, probe repeats).
    pub fn noise_conditions() -> Vec<(f64, usize)> {
        let mut conditions = Vec::new();
        for &sigma in &[0.0, 0.05, 0.2, 1.0] {
            for &repeats in &[1usize, 16] {
                conditions.push((sigma, repeats));
            }
        }
        conditions
    }

    /// Study-1b conditions: compressed query budgets K.
    pub fn compressed_ks(&self) -> Vec<usize> {
        let n = self.victim.net.num_inputs();
        vec![n / 8, n / 4, n / 2, n, 2 * n]
    }

    /// Study-2 conditions: labelled device models.
    pub fn device_conditions() -> Vec<(String, DeviceModel)> {
        vec![
            ("ideal".into(), DeviceModel::ideal()),
            ("16 levels".into(), DeviceModel::ideal().with_levels(16)),
            ("4 levels".into(), DeviceModel::ideal().with_levels(4)),
            (
                "program variation σ=0.1".into(),
                DeviceModel::ideal().with_program_sigma(0.1),
            ),
            (
                "stuck-at rate 5%".into(),
                DeviceModel::ideal().with_stuck_rate(0.05),
            ),
            (
                "read noise σ=0.01".into(),
                DeviceModel::ideal().with_read_sigma(0.01),
            ),
        ]
    }

    /// Study-3 conditions: labelled power defenses (sized from the
    /// victim's mean column norm).
    pub fn defense_conditions(&self) -> Vec<(String, PowerDefense)> {
        let n = self.victim.net.num_inputs();
        let mean_norm = self.victim.net.column_l1_norms().iter().sum::<f64>() / n as f64;
        vec![
            ("none".into(), PowerDefense::None),
            (
                "static dummies (~mean norm)".into(),
                PowerDefense::DummyConductances {
                    offsets: (0..n).map(|j| mean_norm * ((j % 7) as f64) / 3.0).collect(),
                },
            ),
            (
                "randomised dummies (2x mean)".into(),
                PowerDefense::RandomizedDummy {
                    magnitude: 2.0 * mean_norm,
                },
            ),
            (
                "injected noise σ=mean norm".into(),
                PowerDefense::AdditiveNoise { sigma: mean_norm },
            ),
        ]
    }

    /// The grid campaign: studies 1, 1b, 2 and 3, in the serial
    /// binary's order.
    pub fn campaign(&self) -> Campaign<AblationSpec> {
        let mut campaign = Campaign::new("ablations", 21);
        for index in 0..Self::noise_conditions().len() {
            campaign.push_trial(AblationSpec {
                study: AblationStudy::Noise,
                index,
            });
        }
        for index in 0..self.compressed_ks().len() {
            campaign.push_trial(AblationSpec {
                study: AblationStudy::Compressed,
                index,
            });
        }
        for index in 0..Self::device_conditions().len() {
            campaign.push_trial(AblationSpec {
                study: AblationStudy::Device,
                index,
            });
        }
        for index in 0..self.defense_conditions().len() {
            campaign.push_trial(AblationSpec {
                study: AblationStudy::Defense,
                index,
            });
        }
        campaign
    }

    /// Probe correlation and norm-guided attack accuracy for a given
    /// oracle configuration (studies 1 and 2).
    fn probe_and_attack(
        &self,
        cfg: &OracleConfig,
        seed: u64,
        repeats: usize,
    ) -> Result<(f64, f64), String> {
        let mut oracle =
            Oracle::new(self.victim.net.clone(), cfg, seed).map_err(|e| e.to_string())?;
        let probed = probe_column_norms(&mut oracle, 1.0, repeats).map_err(|e| e.to_string())?;
        let truth = oracle.true_column_norms();
        let r = pearson(&probed, &truth).unwrap_or(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA77AC);
        let adv = single_pixel_attack_batch(
            PixelAttackMethod::NormPlus,
            self.victim.test.inputs(),
            &self.victim.test.one_hot_targets(),
            PixelAttackResources::norms_only(&probed),
            self.strength,
            &mut rng,
        )
        .map_err(|e| e.to_string())?;
        let acc = oracle
            .eval_accuracy(&adv, self.victim.test.labels())
            .map_err(|e| e.to_string())?;
        Ok((r, acc))
    }

    /// Applies the trial's optional fault and transient injections to an
    /// oracle config.
    fn faulted(
        cfg: OracleConfig,
        injection: Option<FaultInjection>,
        transients: Option<TransientInjection>,
    ) -> OracleConfig {
        let cfg = match injection {
            Some(injection) => cfg.with_faults(injection),
            None => cfg,
        };
        match transients {
            Some(transients) => cfg.with_transients(transients),
            None => cfg,
        }
    }

    fn run_noise(
        &self,
        index: usize,
        injection: Option<FaultInjection>,
        transients: Option<TransientInjection>,
    ) -> Result<AblationOutput, String> {
        let (sigma, repeats) = *Self::noise_conditions()
            .get(index)
            .ok_or_else(|| format!("noise condition {index} out of range"))?;
        let cfg = Self::faulted(
            OracleConfig::ideal()
                .with_access(OutputAccess::None)
                .with_power(PowerModel::default().with_noise(sigma))
                .with_backend(self.backend),
            injection,
            transients,
        );
        let (r, acc) = self.probe_and_attack(&cfg, 31, repeats)?;
        Ok(AblationOutput {
            probe_correlation: Some(r),
            attacked_accuracy: Some(acc),
            deployed_accuracy: None,
            argmax_found: None,
        })
    }

    fn run_compressed(
        &self,
        index: usize,
        injection: Option<FaultInjection>,
        transients: Option<TransientInjection>,
    ) -> Result<AblationOutput, String> {
        let k = *self
            .compressed_ks()
            .get(index)
            .ok_or_else(|| format!("compressed condition {index} out of range"))?;
        let truth = self.victim.net.column_l1_norms();
        let mut oracle = Oracle::new(
            self.victim.net.clone(),
            &Self::faulted(
                OracleConfig::ideal()
                    .with_access(OutputAccess::None)
                    .with_backend(self.backend),
                injection,
                transients,
            ),
            33,
        )
        .map_err(|e| e.to_string())?;
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let est =
            probe_norms_compressed(&mut oracle, k, 1e-3, &mut rng).map_err(|e| e.to_string())?;
        let r = pearson(&est, &truth).unwrap_or(0.0);
        let hit = xbar_linalg::vec_ops::argmax(&est) == xbar_linalg::vec_ops::argmax(&truth);
        Ok(AblationOutput {
            probe_correlation: Some(r),
            attacked_accuracy: None,
            deployed_accuracy: None,
            argmax_found: Some(hit),
        })
    }

    fn run_device(
        &self,
        index: usize,
        injection: Option<FaultInjection>,
        transients: Option<TransientInjection>,
    ) -> Result<AblationOutput, String> {
        let (_, device) = Self::device_conditions()
            .into_iter()
            .nth(index)
            .ok_or_else(|| format!("device condition {index} out of range"))?;
        let cfg = Self::faulted(
            OracleConfig::ideal()
                .with_access(OutputAccess::None)
                .with_device(device)
                .with_backend(self.backend),
            injection,
            transients,
        );
        let (r, acc) = self.probe_and_attack(&cfg, 37, 1)?;
        // Also report how the non-ideality hurts the *victim* itself.
        let oracle = Oracle::new(self.victim.net.clone(), &cfg, 37).map_err(|e| e.to_string())?;
        let deployed = oracle
            .eval_accuracy(self.victim.test.inputs(), self.victim.test.labels())
            .map_err(|e| e.to_string())?;
        Ok(AblationOutput {
            probe_correlation: Some(r),
            attacked_accuracy: Some(acc),
            deployed_accuracy: Some(deployed),
            argmax_found: None,
        })
    }

    fn run_defense(
        &self,
        index: usize,
        injection: Option<FaultInjection>,
        transients: Option<TransientInjection>,
    ) -> Result<AblationOutput, String> {
        let (_, defense) = self
            .defense_conditions()
            .into_iter()
            .nth(index)
            .ok_or_else(|| format!("defense condition {index} out of range"))?;
        let oracle = Oracle::new(
            self.victim.net.clone(),
            &Self::faulted(
                OracleConfig::ideal()
                    .with_access(OutputAccess::None)
                    .with_backend(self.backend),
                injection,
                transients,
            ),
            41,
        )
        .map_err(|e| e.to_string())?;
        let mut defended = DefendedOracle::new(oracle, defense, 43).map_err(|e| e.to_string())?;
        let probed = defended
            .probe_column_norms(1.0, 1)
            .map_err(|e| e.to_string())?;
        let truth = defended.inner().true_column_norms();
        let r = pearson(&probed, &truth).unwrap_or(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(45);
        let adv = single_pixel_attack_batch(
            PixelAttackMethod::NormPlus,
            self.victim.test.inputs(),
            &self.victim.test.one_hot_targets(),
            PixelAttackResources::norms_only(&probed),
            self.strength,
            &mut rng,
        )
        .map_err(|e| e.to_string())?;
        let acc = defended
            .inner()
            .eval_accuracy(&adv, self.victim.test.labels())
            .map_err(|e| e.to_string())?;
        Ok(AblationOutput {
            probe_correlation: Some(r),
            attacked_accuracy: Some(acc),
            deployed_accuracy: None,
            argmax_found: None,
        })
    }
}

impl TrialRunner for AblationsRunner {
    type Spec = AblationSpec;
    type Output = AblationOutput;

    fn run(&self, spec: &AblationSpec, ctx: &TrialContext) -> Result<AblationOutput, String> {
        let injection = trial_injection(self.faults, ctx);
        let transients = trial_transients(self.transients, ctx);
        match spec.study {
            AblationStudy::Noise => self.run_noise(spec.index, injection, transients),
            AblationStudy::Compressed => self.run_compressed(spec.index, injection, transients),
            AblationStudy::Device => self.run_device(spec.index, injection, transients),
            AblationStudy::Defense => self.run_defense(spec.index, injection, transients),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::{from_str, to_string};

    #[test]
    fn fig4_grid_shape_and_fingerprint_stability() {
        let a = fig4_campaign(true);
        let b = fig4_campaign(true);
        assert_eq!(a.len(), 4 * PixelAttackMethod::all().len());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), fig4_campaign(false).fingerprint());
    }

    #[test]
    fn fig5_grid_is_row_major() {
        let c = fig5_campaign(true);
        let (runs, ..) = fig5_params(true);
        assert_eq!(c.len() as u64, 4 * runs);
        // Trial index = row * runs + run.
        let idx = |row: usize, run: u64| &c.trials[row * runs as usize + run as usize];
        assert_eq!(idx(0, 0).run, 0);
        assert_eq!(idx(0, runs - 1).run, runs - 1);
        assert_eq!(idx(2, 0).dataset, DatasetKind::Objects);
    }

    #[test]
    fn spec_json_roundtrips() {
        let spec = Fig4Spec {
            dataset: DatasetKind::Objects,
            head: HeadKind::LinearMse,
            method: PixelAttackMethod::NormRandom,
            strengths: vec![0.0, 1.5],
            num_samples: 100,
            stochastic_reps: 3,
        };
        let back: Fig4Spec = from_str(&to_string(&spec).unwrap()).unwrap();
        assert_eq!(back, spec);

        let spec = AblationSpec {
            study: AblationStudy::Compressed,
            index: 4,
        };
        let back: AblationSpec = from_str(&to_string(&spec).unwrap()).unwrap();
        assert_eq!(back, spec);
    }
}
