//! The `xbar faults sweep` robustness experiment: attack success vs
//! fault rate.
//!
//! One trial deploys a shared digits/softmax victim on a crossbar with
//! faults injected along one axis (stuck-at rate, programming
//! variation, conductance drift, or line resistance) at one level,
//! probes the power side channel, and runs the Case-1 norm-guided
//! pixel attack against the faulted hardware. Repeats vary only the
//! fault realisation (through the trial index in the [`xbar_faults`]
//! key) and the attack RNG, so curves aggregate over both sources of
//! randomness.
//!
//! Fault draws are keyed by `(campaign_seed, trial_index, device)` —
//! never by scheduling — so the persisted curves are bit-identical at
//! any thread count and across evaluation backends.

use serde::{Deserialize, Serialize};
use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_core::pixel_attack::{single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources};
use xbar_core::probe::probe_column_norms;
use xbar_core::report::{fmt, format_table};
use xbar_crossbar::backend::BackendSpec;
use xbar_faults::{FaultInjection, FaultKey, FaultSpec};
use xbar_runtime::{Campaign, TrialContext, TrialRunner};
use xbar_stats::aggregate::RunSummary;
use xbar_stats::correlation::pearson;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::figures::{execute, CampaignOptions};
use crate::{train_victim, write_json, DatasetKind, HeadKind, TrainedVictim};

/// Victim-training seed for the sweep (also the campaign seed every
/// per-trial fault key derives from).
pub const FAULT_SWEEP_SEED: u64 = 17;

/// Which fault parameter a sweep trial varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAxis {
    /// Total stuck-at rate, split evenly between stuck-on and stuck-off.
    Stuck,
    /// Lognormal programming-variation σ.
    Variation,
    /// Conductance-drift read time (ν = 0.3, σ_ν = 0.1 fixed).
    Drift,
    /// Per-input-line series-resistance coefficient.
    Line,
}

impl FaultAxis {
    /// All axes, in sweep order.
    pub fn all() -> [FaultAxis; 4] {
        [
            FaultAxis::Stuck,
            FaultAxis::Variation,
            FaultAxis::Drift,
            FaultAxis::Line,
        ]
    }

    /// Human-readable axis label.
    pub fn label(self) -> &'static str {
        match self {
            FaultAxis::Stuck => "stuck-at rate",
            FaultAxis::Variation => "programming variation sigma",
            FaultAxis::Drift => "drift time",
            FaultAxis::Line => "line resistance",
        }
    }

    /// The levels swept on this axis.
    pub fn levels(self, quick: bool) -> Vec<f64> {
        match self {
            FaultAxis::Stuck => {
                if quick {
                    vec![0.0, 0.05, 0.2]
                } else {
                    vec![0.0, 0.01, 0.02, 0.05, 0.1, 0.2]
                }
            }
            FaultAxis::Variation => {
                if quick {
                    vec![0.0, 0.2, 0.8]
                } else {
                    vec![0.0, 0.05, 0.1, 0.2, 0.4, 0.8]
                }
            }
            FaultAxis::Drift => {
                if quick {
                    vec![0.0, 10.0, 1000.0]
                } else {
                    vec![0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0]
                }
            }
            FaultAxis::Line => {
                if quick {
                    vec![0.0, 1e-3, 1e-2]
                } else {
                    vec![0.0, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2]
                }
            }
        }
    }

    /// The fault spec this axis produces at `level`. Level `0.0` is the
    /// pristine baseline on every axis.
    pub fn spec(self, level: f64) -> FaultSpec {
        match self {
            FaultAxis::Stuck => FaultSpec::none()
                .with_stuck_on_rate(level / 2.0)
                .with_stuck_off_rate(level / 2.0),
            FaultAxis::Variation => FaultSpec::none().with_variation_sigma(level),
            FaultAxis::Drift => FaultSpec::none().with_drift(0.3, 0.1, level),
            FaultAxis::Line => FaultSpec::none().with_line_resistance(level),
        }
    }
}

/// One sweep trial: one axis at one level, one repeat.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepSpec {
    /// The fault parameter being varied.
    pub axis: FaultAxis,
    /// The axis level (rate, σ, time, or resistance coefficient).
    pub level: f64,
    /// Repeat index; varies the fault realisation and the attack RNG.
    pub repeat: u64,
}

/// The measurements of one sweep trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepOutput {
    /// Pearson correlation of probed vs true (faulted) column norms.
    pub probe_correlation: f64,
    /// Victim test accuracy as deployed on the faulted crossbar.
    pub deployed_accuracy: f64,
    /// Test accuracy under the norm-guided pixel attack.
    pub attacked_accuracy: f64,
}

/// Experiment sizes: `(num_samples, test_eval, repeats)`.
pub fn fault_sweep_params(quick: bool) -> (usize, usize, usize) {
    if quick {
        (800, 300, 2)
    } else {
        (3000, 1000, 5)
    }
}

/// The sweep grid: axes in [`FaultAxis::all`] order, levels in
/// [`FaultAxis::levels`] order, repeats innermost.
pub fn fault_sweep_campaign(quick: bool) -> Campaign<FaultSweepSpec> {
    let (_, _, repeats) = fault_sweep_params(quick);
    let mut campaign = Campaign::new("faults-sweep", FAULT_SWEEP_SEED);
    for axis in FaultAxis::all() {
        for level in axis.levels(quick) {
            for repeat in 0..repeats as u64 {
                campaign.push_trial(FaultSweepSpec {
                    axis,
                    level,
                    repeat,
                });
            }
        }
    }
    campaign
}

/// Runs sweep trials against one shared victim (digits / softmax, seed
/// [`FAULT_SWEEP_SEED`] — deterministic, so sharing it across trials is
/// equivalent to retraining it per trial, just cheaper). The evaluation
/// backend is a pure execution detail: outputs are bit-identical across
/// backends.
pub struct FaultSweepRunner {
    victim: TrainedVictim,
    strength: f64,
    test_eval: usize,
    backend: BackendSpec,
}

impl FaultSweepRunner {
    /// Trains the shared victim with [`fault_sweep_params`] sizes at
    /// attack strength 4.
    pub fn new(quick: bool, backend: impl Into<BackendSpec>) -> Self {
        let (num_samples, test_eval, _) = fault_sweep_params(quick);
        FaultSweepRunner {
            victim: train_victim(
                DatasetKind::Digits,
                HeadKind::SoftmaxCe,
                num_samples,
                FAULT_SWEEP_SEED,
            ),
            strength: 4.0,
            test_eval,
            backend: backend.into(),
        }
    }

    /// The shared victim.
    pub fn victim(&self) -> &TrainedVictim {
        &self.victim
    }
}

impl TrialRunner for FaultSweepRunner {
    type Spec = FaultSweepSpec;
    type Output = FaultSweepOutput;

    fn run(&self, spec: &FaultSweepSpec, ctx: &TrialContext) -> Result<FaultSweepOutput, String> {
        let _span = xbar_obs::span(xbar_obs::names::SPAN_FAULT_TRIAL);
        // The keying contract: fault draws depend only on the campaign
        // seed and trial index, never on scheduling or thread count.
        let injection = FaultInjection::new(
            spec.axis.spec(spec.level),
            FaultKey::new(ctx.campaign_seed, ctx.trial_index as u64),
        );
        let mut oracle = Oracle::new(
            self.victim.net.clone(),
            &OracleConfig::ideal()
                .with_access(OutputAccess::None)
                .with_backend(self.backend)
                .with_faults(injection),
            55,
        )
        .map_err(|e| e.to_string())?;

        let test = self
            .victim
            .test
            .subset(&(0..self.victim.test.len().min(self.test_eval)).collect::<Vec<usize>>());

        let probed = probe_column_norms(&mut oracle, 1.0, 1).map_err(|e| e.to_string())?;
        let truth = oracle.true_column_norms();
        let probe_correlation = pearson(&probed, &truth).unwrap_or(0.0);
        let deployed_accuracy = oracle
            .eval_accuracy(test.inputs(), test.labels())
            .map_err(|e| e.to_string())?;

        // The attack RNG is paired across levels within a repeat: seed
        // depends on the repeat only, so level-to-level comparisons see
        // identical pixel choices where the probe agrees.
        let mut rng = ChaCha8Rng::seed_from_u64(9000 + spec.repeat);
        let adv = single_pixel_attack_batch(
            PixelAttackMethod::NormPlus,
            test.inputs(),
            &test.one_hot_targets(),
            PixelAttackResources::norms_only(&probed),
            self.strength,
            &mut rng,
        )
        .map_err(|e| e.to_string())?;
        let attacked_accuracy = oracle
            .eval_accuracy(&adv, test.labels())
            .map_err(|e| e.to_string())?;

        Ok(FaultSweepOutput {
            probe_correlation,
            deployed_accuracy,
            attacked_accuracy,
        })
    }
}

/// One aggregated (axis, level) point of a robustness curve.
#[derive(Debug, Serialize)]
pub struct FaultSweepPoint {
    /// The axis level.
    pub level: f64,
    /// Repeats aggregated.
    pub repeats: usize,
    /// Probed-vs-true norm correlation over the repeats.
    pub probe_correlation: RunSummary,
    /// Deployed (clean) accuracy on the faulted crossbar.
    pub deployed_accuracy: RunSummary,
    /// Accuracy under the norm-guided attack.
    pub attacked_accuracy: RunSummary,
    /// Deployed-minus-attacked accuracy: the attack's bite on this
    /// fault level.
    pub attack_degradation: RunSummary,
}

/// One axis of the sweep: a robustness curve.
#[derive(Debug, Serialize)]
pub struct FaultSweepCurve {
    /// Axis label.
    pub axis: &'static str,
    /// Points in level order.
    pub points: Vec<FaultSweepPoint>,
}

/// Groups per-trial outputs back into per-axis curves (trials are
/// contiguous by construction of [`fault_sweep_campaign`]).
pub fn fault_sweep_curves(
    quick: bool,
    outputs: &[Option<FaultSweepOutput>],
) -> Result<Vec<FaultSweepCurve>, String> {
    let (_, _, repeats) = fault_sweep_params(quick);
    let mut curves = Vec::new();
    let mut next = 0;
    for axis in FaultAxis::all() {
        let mut points = Vec::new();
        for level in axis.levels(quick) {
            let trials: Vec<&FaultSweepOutput> = (0..repeats)
                .map(|_| {
                    let out = outputs
                        .get(next)
                        .and_then(Option::as_ref)
                        .ok_or_else(|| format!("faults-sweep trial {next} has no output"));
                    next += 1;
                    out
                })
                .collect::<Result<_, _>>()?;
            let collect = |f: &dyn Fn(&FaultSweepOutput) -> f64| -> Vec<f64> {
                trials.iter().map(|t| f(t)).collect()
            };
            points.push(FaultSweepPoint {
                level,
                repeats,
                probe_correlation: RunSummary::from_values(&collect(&|t| t.probe_correlation)),
                deployed_accuracy: RunSummary::from_values(&collect(&|t| t.deployed_accuracy)),
                attacked_accuracy: RunSummary::from_values(&collect(&|t| t.attacked_accuracy)),
                attack_degradation: RunSummary::from_values(&collect(&|t| {
                    t.deployed_accuracy - t.attacked_accuracy
                })),
            });
        }
        curves.push(FaultSweepCurve {
            axis: axis.label(),
            points,
        });
    }
    Ok(curves)
}

fn print_curves(curves: &[FaultSweepCurve]) {
    for curve in curves {
        println!(
            "--- faults sweep: {} ({} repeats/level) ---",
            curve.axis,
            curve.points.first().map_or(0, |p| p.repeats)
        );
        let rows: Vec<Vec<String>> = curve
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.level),
                    fmt(p.probe_correlation.mean, 4),
                    fmt(p.deployed_accuracy.mean, 3),
                    fmt(p.attacked_accuracy.mean, 3),
                    fmt(p.attack_degradation.mean, 3),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                &[
                    "level",
                    "probe corr r",
                    "deployed acc",
                    "attacked acc",
                    "degradation"
                ],
                &rows
            )
        );
    }
    println!("Expected shape: at level 0 every axis matches the pristine baseline; rising");
    println!("fault rates degrade the probe correlation and deployed accuracy, and the");
    println!("attack's degradation shrinks as the side channel blurs.");
}

/// Runs the sweep campaign and prints/persists the robustness curves
/// (default `results/faults-sweep.json`). `opts.faults` is ignored —
/// the sweep defines its own per-trial fault specs.
pub fn run_fault_sweep(opts: &CampaignOptions) -> Result<(), String> {
    let runner = FaultSweepRunner::new(opts.quick, opts.backend);
    let campaign = fault_sweep_campaign(opts.quick);
    let report = execute(&runner, &campaign, opts)?;
    let curves = fault_sweep_curves(opts.quick, &report.outputs)?;
    print_curves(&curves);
    write_json(
        opts.json_out
            .as_deref()
            .unwrap_or("results/faults-sweep.json"),
        &curves,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_crossbar::backend::BackendKind;
    use xbar_runtime::{run_campaign, ExecutorConfig, NullSink};

    #[test]
    fn grid_shape_and_fingerprint_stability() {
        let a = fault_sweep_campaign(true);
        let b = fault_sweep_campaign(true);
        let (_, _, repeats) = fault_sweep_params(true);
        let levels: usize = FaultAxis::all().iter().map(|a| a.levels(true).len()).sum();
        assert_eq!(a.len(), levels * repeats);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), fault_sweep_campaign(false).fingerprint());
    }

    #[test]
    fn level_zero_is_the_empty_spec_on_every_axis() {
        for axis in FaultAxis::all() {
            let spec = axis.spec(0.0);
            assert!(
                spec.compile(3, 4, FaultKey::new(1, 2)).unwrap().is_noop()
                    || spec.validate().is_ok(),
                "level 0 of {axis:?} must be benign"
            );
            // Nonzero levels must validate too.
            for level in axis.levels(true) {
                axis.spec(level).validate().unwrap();
            }
        }
    }

    /// The acceptance contract: identical curves at 1 vs 3 threads and
    /// across evaluation backends. Runs a reduced grid (one axis, two
    /// levels) against a small victim to keep the test fast.
    #[test]
    fn sweep_outputs_are_thread_and_backend_invariant() {
        let mut campaign = Campaign::new("faults-sweep-test", FAULT_SWEEP_SEED);
        for level in [0.0, 0.2] {
            for repeat in 0..2u64 {
                campaign.push_trial(FaultSweepSpec {
                    axis: FaultAxis::Stuck,
                    level,
                    repeat,
                });
            }
        }
        let run = |runner: &FaultSweepRunner, threads: usize| {
            run_campaign(
                runner,
                &campaign,
                &ExecutorConfig::with_threads(threads),
                None,
                false,
                &mut NullSink,
            )
            .unwrap()
            .outputs
        };
        let naive = FaultSweepRunner::new(true, BackendKind::Naive);
        let blocked = FaultSweepRunner::new(true, BackendKind::Blocked);
        let serial = run(&naive, 1);
        assert_eq!(serial, run(&naive, 3), "thread count changed the sweep");
        assert_eq!(serial, run(&blocked, 1), "backend changed the sweep");
        // And faults actually bite: the faulted level differs from the
        // pristine baseline.
        assert_ne!(serial[0], serial[2], "stuck rate 0.2 had no effect");
    }
}
