//! Campaign-backed drivers for the `fig4`, `fig5` and `ablations`
//! experiments: build the grid ([`crate::campaign`]), run it on the
//! [`xbar_runtime`] executor, then aggregate, print and persist exactly
//! what the serial binaries produce.
//!
//! Both the experiment binaries and the `xbar campaign` CLI subcommand
//! call into these drivers, so there is a single code path for every
//! figure regardless of how it is launched.

use std::path::PathBuf;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use xbar_runtime::{
    run_campaign_traced, Campaign, CampaignReport, ExecutorConfig, JsonlReporter, NullSink,
    ProgressSink, StderrReporter, TrialRunner,
};

use crate::campaign::{
    fig4_campaign, fig5_campaign, fig5_params, fig5_rows, AblationOutput, AblationsRunner,
    Fig4Runner, Fig4Spec, Fig4TrialOutput, Fig5Runner, FIG5_LAMBDAS,
};
use crate::{train_victim, write_json, DatasetKind, HeadKind};
use xbar_core::report::{fmt, fmt_with_significance, format_table};
use xbar_crossbar::backend::BackendSpec;
use xbar_faults::{FaultSpec, TransientSpec};
use xbar_stats::aggregate::RunSummary;
use xbar_stats::ttest::welch_t_test;

/// Where campaign progress events go.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgressMode {
    /// Human-readable lines on stderr (the default).
    #[default]
    Stderr,
    /// JSON Lines on stderr (the `xbar-obs` event encoding).
    Json,
    /// No progress output.
    None,
}

impl std::str::FromStr for ProgressMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "stderr" => Ok(ProgressMode::Stderr),
            "json" => Ok(ProgressMode::Json),
            "none" => Ok(ProgressMode::None),
            other => Err(format!(
                "unknown progress mode {other:?} (expected stderr, json, or none)"
            )),
        }
    }
}

/// How to execute a figure campaign.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Shrink experiment sizes for smoke-testing.
    pub quick: bool,
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Retries per failed trial before it is journaled as failed.
    pub max_retries: u32,
    /// Skip trials already completed in the journal.
    pub resume: bool,
    /// Journal path; `None` disables checkpointing (and `resume`).
    pub journal: Option<PathBuf>,
    /// `xbar-obs` JSONL trace path; `None` disables tracing.
    pub trace: Option<PathBuf>,
    /// Progress reporting mode.
    pub progress: ProgressMode,
    /// Emit a progress event every this many finished trials.
    pub progress_every: usize,
    /// Results JSON path; `None` uses the figure's default under
    /// `results/`.
    pub json_out: Option<String>,
    /// Oracle evaluation backend (kind, tile sizes, thread count). A
    /// pure execution detail: results are bit-identical across
    /// backends.
    pub backend: BackendSpec,
    /// Optional fault spec injected into every trial's deployed
    /// crossbar, keyed by `(campaign_seed, trial_index)`; `None` runs
    /// on pristine hardware.
    pub faults: Option<FaultSpec>,
    /// Optional per-query transient disturbances (read-disturb flips,
    /// conductance jitter), keyed by `(campaign_seed, trial_index,
    /// query index)`; `None` disables them.
    pub transients: Option<TransientSpec>,
    /// Keep going when trials fail permanently: degraded results are
    /// journaled and reported instead of aborting the figure. Defaults
    /// to `false` — the figure drivers need every cell.
    pub tolerate_failures: bool,
}

impl CampaignOptions {
    /// Defaults: all cores, one retry, no resume, no journal, no trace,
    /// stderr progress on every trial, naive backend.
    pub fn new(quick: bool) -> Self {
        CampaignOptions {
            quick,
            threads: 0,
            max_retries: 1,
            resume: false,
            journal: None,
            trace: None,
            progress: ProgressMode::Stderr,
            progress_every: 1,
            json_out: None,
            backend: BackendSpec::default(),
            faults: None,
            transients: None,
            tolerate_failures: false,
        }
    }
}

fn executor_config(opts: &CampaignOptions) -> ExecutorConfig {
    let mut cfg = if opts.threads == 0 {
        ExecutorConfig::default()
    } else {
        ExecutorConfig::with_threads(opts.threads)
    };
    cfg.max_retries = opts.max_retries;
    cfg
}

/// Runs `campaign` with progress on stderr; errors if any trial failed
/// permanently (the journal still records the partial results).
pub(crate) fn execute<R: TrialRunner>(
    runner: &R,
    campaign: &Campaign<R::Spec>,
    opts: &CampaignOptions,
) -> Result<CampaignReport<R::Output>, String> {
    for path in [&opts.journal, &opts.trace].into_iter().flatten() {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create directory {}: {e}", parent.display()))?;
        }
    }
    let mut sink: Box<dyn ProgressSink> = match opts.progress {
        ProgressMode::Stderr => Box::new(StderrReporter::new(
            campaign.name.clone(),
            opts.progress_every,
        )),
        ProgressMode::Json => Box::new(JsonlReporter::stderr(
            campaign.name.clone(),
            opts.progress_every,
        )),
        ProgressMode::None => Box::new(NullSink),
    };
    let report = run_campaign_traced(
        runner,
        campaign,
        &executor_config(opts),
        opts.journal.as_deref(),
        opts.resume,
        sink.as_mut(),
        opts.trace.as_deref(),
    )
    .map_err(|e| e.to_string())?;
    if !report.all_ok() {
        for failure in &report.failures {
            eprintln!(
                "[{}] trial {} failed after {} attempt(s) [{:?}]: {}",
                campaign.name, failure.trial_index, failure.attempts, failure.class, failure.error
            );
        }
        if !opts.tolerate_failures {
            return Err(format!(
                "{} of {} trials failed permanently",
                report.failures.len(),
                campaign.len()
            ));
        }
        eprintln!(
            "[{}] continuing despite {} failed trial(s) (tolerate_failures)",
            campaign.name,
            report.failures.len()
        );
    }
    Ok(report)
}

// ---------------------------------------------------------------------
// Fig. 4
// ---------------------------------------------------------------------

/// One (dataset, head) panel of Fig. 4, aggregated for printing and JSON.
#[derive(Debug, Serialize)]
pub struct Fig4Panel {
    /// Dataset label.
    pub dataset: &'static str,
    /// Head / activation label.
    pub activation: &'static str,
    /// Clean test accuracy of the panel's victim.
    pub clean_accuracy: f64,
    /// Power queries spent probing the column norms.
    pub probe_queries: usize,
    /// Attack strengths swept.
    pub strengths: Vec<f64>,
    /// `(method label, accuracy per strength)` rows.
    pub methods: Vec<(&'static str, Vec<f64>)>,
}

/// Groups per-trial outputs back into panels (trials of a panel are
/// contiguous by construction of [`fig4_campaign`]).
pub fn fig4_panels(
    campaign: &Campaign<Fig4Spec>,
    outputs: &[Option<Fig4TrialOutput>],
) -> Result<Vec<Fig4Panel>, String> {
    let mut panels = Vec::new();
    let mut i = 0;
    while i < campaign.trials.len() {
        let first = &campaign.trials[i];
        let mut methods = Vec::new();
        let mut clean_accuracy = 0.0;
        let mut probe_queries = 0;
        while i < campaign.trials.len()
            && campaign.trials[i].dataset == first.dataset
            && campaign.trials[i].head == first.head
        {
            let output = outputs
                .get(i)
                .and_then(Option::as_ref)
                .ok_or_else(|| format!("fig4 trial {i} has no output"))?;
            clean_accuracy = output.clean_accuracy;
            probe_queries = output.probe_queries;
            methods.push((
                campaign.trials[i].method.paper_label(),
                output.accuracies.clone(),
            ));
            i += 1;
        }
        panels.push(Fig4Panel {
            dataset: first.dataset.label(),
            activation: first.head.label(),
            clean_accuracy,
            probe_queries,
            strengths: first.strengths.clone(),
            methods,
        });
    }
    Ok(panels)
}

fn print_fig4(panels: &[Fig4Panel]) {
    for panel in panels {
        println!(
            "=== Fig.4 panel: {} / {} (clean acc {:.3}, probe cost {} queries) ===",
            panel.dataset, panel.activation, panel.clean_accuracy, panel.probe_queries
        );
        let mut rows = Vec::new();
        for (label, accs) in &panel.methods {
            let mut row = vec![label.to_string()];
            row.extend(accs.iter().map(|&a| fmt(a, 3)));
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["method".into()];
        headers.extend(panel.strengths.iter().map(|s| format!("eps={s}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        println!("{}", format_table(&header_refs, &rows));
    }

    println!("Expected shape (paper Fig. 4): Worst lowest; norm-guided '+' below RD below");
    println!("'-'; all norm-guided methods at or below RP; effects strongest for digits.");
}

/// Runs the Fig. 4 grid and prints/persists the panels.
pub fn run_fig4(opts: &CampaignOptions) -> Result<(), String> {
    let campaign = fig4_campaign(opts.quick);
    let report = execute(
        &Fig4Runner::new(opts.backend)
            .with_faults(opts.faults)
            .with_transients(opts.transients),
        &campaign,
        opts,
    )?;
    let panels = fig4_panels(&campaign, &report.outputs)?;
    print_fig4(&panels);
    write_json(
        opts.json_out.as_deref().unwrap_or("results/fig4.json"),
        &panels,
    );
    Ok(())
}

// ---------------------------------------------------------------------
// Fig. 5
// ---------------------------------------------------------------------

/// One aggregated (query count, λ) cell of a Fig. 5 row.
#[derive(Debug, Serialize)]
pub struct Fig5Cell {
    /// Oracle queries spent building the surrogate.
    pub queries: usize,
    /// Power-loss weight.
    pub lambda: f64,
    /// Surrogate test accuracy over the runs.
    pub surrogate_accuracy: RunSummary,
    /// Oracle accuracy under surrogate-crafted FGSM inputs.
    pub oracle_adversarial_accuracy: RunSummary,
    /// Clean-minus-adversarial oracle accuracy.
    pub degradation: RunSummary,
    /// vs λ = 0 at the same query count (None for λ = 0 itself).
    pub improvement_mean: Option<f64>,
    /// Welch t-test p-value of the improvement.
    pub improvement_p_value: Option<f64>,
}

/// One (dataset, access) row of Fig. 5.
#[derive(Debug, Serialize)]
pub struct Fig5Row {
    /// Dataset label.
    pub dataset: &'static str,
    /// Oracle access label.
    pub access: &'static str,
    /// Mean clean oracle accuracy over the runs.
    pub clean_accuracy_mean: f64,
    /// All aggregated cells, λ-major.
    pub cells: Vec<Fig5Cell>,
}

/// Runs the Fig. 5 grid and prints/persists the rows.
pub fn run_fig5(opts: &CampaignOptions) -> Result<(), String> {
    let campaign = fig5_campaign(opts.quick);
    let report = execute(
        &Fig5Runner::new(opts.backend)
            .with_faults(opts.faults)
            .with_transients(opts.transients),
        &campaign,
        opts,
    )?;
    let (runs, _, q_list, _) = fig5_params(opts.quick);

    let mut json_rows = Vec::new();
    for (row_idx, (dataset, _, access_label, _)) in fig5_rows().into_iter().enumerate() {
        println!(
            "\n================ Fig.5 row: {} / {} ({} runs) ================",
            dataset.label(),
            access_label,
            runs
        );

        // per-run results for this row: [run][q_idx][lambda_idx].
        let per_run: Vec<_> = (0..runs as usize)
            .map(|run| {
                report.outputs[row_idx * runs as usize + run]
                    .as_ref()
                    .expect("execute() errors when any trial failed")
            })
            .collect();

        let clean_mean: f64 = per_run
            .iter()
            .map(|r| r.points[0][0].clean_accuracy)
            .sum::<f64>()
            / runs as f64;

        // Aggregate and print the three "columns".
        let mut cells = Vec::new();
        let mut surr_rows = Vec::new();
        let mut adv_rows = Vec::new();
        let mut imp_rows = Vec::new();
        for (li, &lambda) in FIG5_LAMBDAS.iter().enumerate() {
            let mut surr_row = vec![format!("λ={lambda}")];
            let mut adv_row = vec![format!("λ={lambda}")];
            let mut imp_row = vec![format!("λ={lambda}")];
            for (qi, &q) in q_list.iter().enumerate() {
                let surr: Vec<f64> = per_run
                    .iter()
                    .map(|r| r.points[qi][li].surrogate_accuracy)
                    .collect();
                let adv: Vec<f64> = per_run
                    .iter()
                    .map(|r| r.points[qi][li].adversarial_accuracy)
                    .collect();
                let deg: Vec<f64> = per_run
                    .iter()
                    .map(|r| {
                        r.points[qi][li].clean_accuracy - r.points[qi][li].adversarial_accuracy
                    })
                    .collect();
                let deg0: Vec<f64> = per_run
                    .iter()
                    .map(|r| r.points[qi][0].clean_accuracy - r.points[qi][0].adversarial_accuracy)
                    .collect();
                let surr_s = RunSummary::from_values(&surr);
                let adv_s = RunSummary::from_values(&adv);
                let deg_s = RunSummary::from_values(&deg);
                let (imp_mean, imp_p) = if li == 0 {
                    (None, None)
                } else {
                    let delta = deg_s.mean - RunSummary::from_values(&deg0).mean;
                    let p = welch_t_test(&deg, &deg0).map(|t| t.p_value).unwrap_or(1.0);
                    (Some(delta), Some(p))
                };
                surr_row.push(fmt(surr_s.mean, 3));
                adv_row.push(fmt(adv_s.mean, 3));
                imp_row.push(match (imp_mean, imp_p) {
                    (Some(d), Some(p)) => fmt_with_significance(d, p, 0.05, 3),
                    _ => "(ref)".to_string(),
                });
                cells.push(Fig5Cell {
                    queries: q,
                    lambda,
                    surrogate_accuracy: surr_s,
                    oracle_adversarial_accuracy: adv_s,
                    degradation: deg_s,
                    improvement_mean: imp_mean,
                    improvement_p_value: imp_p,
                });
            }
            surr_rows.push(surr_row);
            adv_rows.push(adv_row);
            imp_rows.push(imp_row);
        }

        let mut headers: Vec<String> = vec!["".into()];
        headers.extend(q_list.iter().map(|q| format!("Q={q}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        println!("clean oracle accuracy (mean over runs): {clean_mean:.3}\n");
        println!("--- surrogate test accuracy vs queries (Fig.5 left column) ---");
        println!("{}", format_table(&header_refs, &surr_rows));
        println!("--- oracle adversarial accuracy vs queries (Fig.5 centre, lower=stronger) ---");
        println!("{}", format_table(&header_refs, &adv_rows));
        println!("--- improvement in degradation vs λ=0 (* = p<0.05) (Fig.5 right) ---");
        println!("{}", format_table(&header_refs, &imp_rows));

        json_rows.push(Fig5Row {
            dataset: dataset.label(),
            access: access_label,
            clean_accuracy_mean: clean_mean,
            cells,
        });
    }

    println!("\nExpected shape (paper Fig. 5): for digits, λ>0 improves surrogate accuracy");
    println!("and attack efficacy at moderate Q, with significance; the benefit vanishes");
    println!("once Q exceeds the input dimension. For objects, improvements are small and");
    println!("mostly not significant.");

    write_json(
        opts.json_out.as_deref().unwrap_or("results/fig5.json"),
        &json_rows,
    );
    Ok(())
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// One JSON record of the ablations output (schema unchanged from the
/// serial binary).
#[derive(Debug, Serialize)]
pub struct AblationRecord {
    /// Which study the record belongs to.
    pub study: &'static str,
    /// Human-readable condition.
    pub condition: String,
    /// Pearson correlation of probed vs true column norms.
    pub probe_correlation: Option<f64>,
    /// Test accuracy under the norm-guided attack.
    pub attacked_accuracy: Option<f64>,
}

/// Runs the ablation studies: 1/1b/2/3 as a campaign grid, 4/4b/5
/// serially; prints the study tables and persists the records.
pub fn run_ablations(opts: &CampaignOptions) -> Result<(), String> {
    use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};

    let runner = AblationsRunner::new(opts.quick, opts.backend)
        .with_faults(opts.faults)
        .with_transients(opts.transients);
    let victim = runner.victim().clone();
    let strength = runner.strength();
    let num_samples = if opts.quick { 800 } else { 3000 };

    let clean = {
        let oracle = Oracle::new(victim.net.clone(), &OracleConfig::ideal(), 1)
            .map_err(|e| e.to_string())?;
        oracle
            .eval_accuracy(victim.test.inputs(), victim.test.labels())
            .map_err(|e| e.to_string())?
    };
    println!("digits / softmax victim, clean accuracy {clean:.3}, attack strength {strength}\n");

    let campaign = runner.campaign();
    let report = execute(&runner, &campaign, opts)?;
    let output_at = |i: usize| -> &AblationOutput {
        report.outputs[i]
            .as_ref()
            .expect("execute() errors when any trial failed")
    };

    let mut records = Vec::new();
    let mut next = 0;

    // ---- Study 1: measurement noise vs probe averaging ----
    let mut rows = Vec::new();
    for (sigma, repeats) in AblationsRunner::noise_conditions() {
        let out = output_at(next);
        next += 1;
        let (r, acc) = (
            out.probe_correlation.unwrap_or(0.0),
            out.attacked_accuracy.unwrap_or(0.0),
        );
        rows.push(vec![
            format!("σ={sigma}"),
            repeats.to_string(),
            fmt(r, 4),
            fmt(acc, 3),
        ]);
        records.push(AblationRecord {
            study: "measurement noise",
            condition: format!("sigma={sigma} repeats={repeats}"),
            probe_correlation: Some(r),
            attacked_accuracy: Some(acc),
        });
    }
    println!("--- study 1: power-measurement noise vs probe averaging ---");
    println!(
        "{}",
        format_table(
            &["noise σ", "probe repeats", "probe corr r", "attacked acc"],
            &rows
        )
    );

    // ---- Study 1b: compressed probing (fewer than N queries) ----
    {
        let n = victim.net.num_inputs();
        let mut rows = Vec::new();
        for k in runner.compressed_ks() {
            let out = output_at(next);
            next += 1;
            let r = out.probe_correlation.unwrap_or(0.0);
            let hit = out.argmax_found.unwrap_or(false);
            rows.push(vec![
                format!("K={k} ({}%)", 100 * k / n),
                fmt(r, 4),
                if hit { "yes" } else { "no" }.to_string(),
            ]);
            records.push(AblationRecord {
                study: "compressed probing",
                condition: format!("K={k}"),
                probe_correlation: Some(r),
                attacked_accuracy: None,
            });
        }
        println!("--- study 1b: compressed probing (random-input queries, ridge recovery) ---");
        println!(
            "{}",
            format_table(
                &["queries K (of N=784)", "norm corr r", "argmax found"],
                &rows
            )
        );
    }

    // ---- Study 2: device non-idealities ----
    let mut rows = Vec::new();
    for (label, _) in AblationsRunner::device_conditions() {
        let out = output_at(next);
        next += 1;
        let (r, acc) = (
            out.probe_correlation.unwrap_or(0.0),
            out.attacked_accuracy.unwrap_or(0.0),
        );
        rows.push(vec![
            label.clone(),
            fmt(out.deployed_accuracy.unwrap_or(0.0), 3),
            fmt(r, 4),
            fmt(acc, 3),
        ]);
        records.push(AblationRecord {
            study: "device non-idealities",
            condition: label,
            probe_correlation: Some(r),
            attacked_accuracy: Some(acc),
        });
    }
    println!("--- study 2: device non-idealities (probe still sees deployed weights) ---");
    println!(
        "{}",
        format_table(
            &["device", "deployed acc", "probe corr r", "attacked acc"],
            &rows
        )
    );

    // ---- Study 3: power-obfuscation defenses ----
    let mut rows = Vec::new();
    for (label, _) in runner.defense_conditions() {
        let out = output_at(next);
        next += 1;
        let (r, acc) = (
            out.probe_correlation.unwrap_or(0.0),
            out.attacked_accuracy.unwrap_or(0.0),
        );
        rows.push(vec![label.clone(), fmt(r, 4), fmt(acc, 3)]);
        records.push(AblationRecord {
            study: "power defenses",
            condition: label,
            probe_correlation: Some(r),
            attacked_accuracy: Some(acc),
        });
    }
    println!("--- study 3: power-obfuscation defenses vs the Case-1 attack ---");
    println!(
        "{}",
        format_table(&["defense", "probe corr r", "attacked acc"], &rows)
    );

    // ---- Study 4: tiling preserves the leak ----
    {
        use xbar_crossbar::device::DeviceModel;
        use xbar_crossbar::tile::TiledCrossbar;
        let w = victim.net.weights();
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let mono = xbar_crossbar::array::CrossbarArray::program(w, &DeviceModel::ideal(), &mut rng)
            .map_err(|e| e.to_string())?;
        let tiled = TiledCrossbar::program(w, 8, 128, &DeviceModel::ideal(), &mut rng)
            .map_err(|e| e.to_string())?;
        let u: Vec<f64> = (0..w.cols()).map(|j| (j as f64 * 0.01).fract()).collect();
        let mono_i = mono.total_current(&u).map_err(|e| e.to_string())?;
        let tiled_i = tiled.total_current(&u).map_err(|e| e.to_string())?;
        println!(
            "--- study 4: tiling the {}x{} layer onto 8x128 arrays ---",
            w.rows(),
            w.cols()
        );
        println!(
            "monolithic total current {mono_i:.6}, tiled ({} tiles) {tiled_i:.6}, |Δ| = {:.2e}\n",
            tiled.num_tiles(),
            (mono_i - tiled_i).abs()
        );
        records.push(AblationRecord {
            study: "tiling",
            condition: format!(
                "8x128 tiles, current delta {:.3e}",
                (mono_i - tiled_i).abs()
            ),
            probe_correlation: None,
            attacked_accuracy: None,
        });
    }

    // ---- Study 4b: IR drop (finite wire resistance) vs the probe ----
    {
        use xbar_crossbar::device::DeviceModel;
        use xbar_crossbar::irdrop::IrDropConfig;
        use xbar_stats::correlation::pearson;
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let xbar = xbar_crossbar::array::CrossbarArray::program(
            victim.net.weights(),
            &DeviceModel::ideal(),
            &mut rng,
        )
        .map_err(|e| e.to_string())?;
        let truth = victim.net.weights().col_l1_norms();
        let n = victim.net.num_inputs();
        let mut rows = Vec::new();
        for &r_wire in &[0.0, 0.001, 0.01, 0.05] {
            let cfg = IrDropConfig {
                r_wire,
                tolerance: 1e-8,
                max_iterations: 2000,
                ..IrDropConfig::default()
            };
            // The fault layer's first-order line_resistance scaling and
            // the iterative IR-drop solver model the same wire physics;
            // refuse to stack them on one study without the explicit
            // opt-in (see DESIGN.md).
            if let Some(spec) = opts.faults {
                xbar_faults::check_ir_drop_compose(&spec, &cfg).map_err(|e| e.to_string())?;
            }
            // Probe a deterministic subset of columns (full probing with
            // the iterative solver over 784 columns is slow; 60 columns
            // give a stable correlation estimate).
            let cols: Vec<usize> = (0..60).map(|k| (k * 13) % n).collect();
            let mut probed = Vec::new();
            let mut subset_truth = Vec::new();
            for &j in &cols {
                let mut e = vec![0.0; n];
                e[j] = 1.0;
                let (_, total) = xbar.ir_drop_mvm(&e, &cfg).map_err(|e| e.to_string())?;
                probed.push(total);
                subset_truth.push(truth[j]);
            }
            let r = pearson(&probed, &subset_truth).unwrap_or(0.0);
            rows.push(vec![format!("r_wire={r_wire}"), fmt(r, 4)]);
            records.push(AblationRecord {
                study: "ir drop",
                condition: format!("r_wire={r_wire}"),
                probe_correlation: Some(r),
                attacked_accuracy: None,
            });
        }
        println!("--- study 4b: IR drop (wire resistance) vs probe fidelity ---");
        println!(
            "{}",
            format_table(&["wire resistance", "probe corr r"], &rows)
        );
    }

    // ---- Study 5: power-matching formulation in the surrogate loss ----
    {
        use xbar_core::blackbox::{run_blackbox_attack, BlackBoxConfig};
        use xbar_core::surrogate::SurrogateConfig;
        let runs = if opts.quick { 3 } else { 6 };
        let linear_victims: Vec<_> = (0..runs)
            .map(|r| {
                train_victim(
                    DatasetKind::Digits,
                    HeadKind::LinearMse,
                    num_samples,
                    600 + r,
                )
            })
            .collect();
        let mut rows = Vec::new();
        for (label, lambda, scale_invariant) in [
            ("no power (λ=0)", 0.0, true),
            ("absolute matching, λ=1", 1.0, false),
            ("scale-invariant matching, λ=1", 1.0, true),
            ("scale-invariant matching, λ=10", 10.0, true),
        ] {
            let mut degs = Vec::with_capacity(linear_victims.len());
            for (r, v) in linear_victims.iter().enumerate() {
                let test = v
                    .test
                    .subset(&(0..v.test.len().min(200)).collect::<Vec<usize>>());
                let mut oracle = Oracle::new(
                    v.net.clone(),
                    &OracleConfig::ideal().with_access(OutputAccess::LabelOnly),
                    700 + r as u64,
                )
                .map_err(|e| e.to_string())?;
                let mut rng = ChaCha8Rng::seed_from_u64(800 + r as u64);
                let mut scfg = SurrogateConfig::default().with_power_weight(lambda);
                scfg.scale_invariant_power = scale_invariant;
                scfg.sgd.epochs = 120;
                let cfg = BlackBoxConfig {
                    num_queries: 300,
                    power_weight: lambda,
                    fgsm_eps: 0.1,
                    surrogate: scfg,
                };
                let (out, _) = run_blackbox_attack(&mut oracle, &v.train, &test, &cfg, &mut rng)
                    .map_err(|e| e.to_string())?;
                degs.push(out.degradation());
            }
            let mean = degs.iter().sum::<f64>() / degs.len() as f64;
            rows.push(vec![label.to_string(), fmt(mean, 3)]);
            records.push(AblationRecord {
                study: "power matching formulation",
                condition: label.to_string(),
                probe_correlation: None,
                attacked_accuracy: Some(mean),
            });
        }
        println!("--- study 5: power-matching formulation (digits, label-only, Q=300) ---");
        println!(
            "{}",
            format_table(&["surrogate power loss", "mean degradation"], &rows)
        );
    }

    println!("Expected shape: probe correlation ~1 for the ideal crossbar, degraded by");
    println!("noise (recovered by averaging) and device faults; randomised dummies and");
    println!("injected noise blunt the attack (accuracy recovers toward clean); tiling");
    println!("changes nothing about the leak.");

    write_json(
        opts.json_out.as_deref().unwrap_or("results/ablations.json"),
        &records,
    );
    Ok(())
}
