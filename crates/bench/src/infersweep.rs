//! The `xbar infer sweep` experiment: Bayesian weight recovery from the
//! power side channel, across query budget, measurement noise, and
//! chain count.
//!
//! One trial deploys the shared digits/softmax victim on a noisy-power
//! crossbar, estimates the measurement noise empirically, collects a
//! subset-supported random design of power readings, samples the
//! posterior over the subset's column 1-norms with [`xbar_infer`]'s
//! elliptical slice sampler, and drives a NormPlus pixel attack from
//! the posterior mean plus a band of posterior draws — turning
//! "posterior width" into "attack-success uncertainty".
//!
//! Inference runs over a fixed 16-pixel central subset (the design puts
//! energy only there, so the subset model is exact — the same trick as
//! `probe_columns_subset`): 16 dimensions mix well within CI budgets
//! where 784 would not. All randomness is keyed by the campaign seed
//! and trial index, so the persisted curves are bit-identical at any
//! thread count; MCMC draws are additionally keyed per
//! `(campaign_seed, chain_index, step)` inside [`xbar_infer`].

use serde::{Deserialize, Serialize};
use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_core::pixel_attack::{single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources};
use xbar_core::report::{fmt, format_table};
use xbar_crossbar::backend::BackendSpec;
use xbar_crossbar::power::PowerModel;
use xbar_infer::{
    estimate_noise_sigma, evenly_spaced_draws, random_design, run_chains, summarize, ChainConfig,
    Kernel, NormPosterior, PowerObservations, Prior,
};
use xbar_runtime::{Campaign, TrialContext, TrialRunner};
use xbar_stats::aggregate::RunSummary;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::figures::{execute, CampaignOptions};
use crate::{train_victim, DatasetKind, HeadKind, TrainedVictim};

/// Victim-training seed for the sweep (also the campaign seed every
/// per-trial RNG stream derives from).
pub const INFER_SWEEP_SEED: u64 = 23;

/// Credible-interval mass reported by the sweep.
pub const INFER_CI_LEVEL: f64 = 0.95;

/// The deterministic 16-pixel central subset inference runs over: a
/// 4x4 grid across rows/columns {6, 10, 14, 18} of the 28x28 digit
/// raster — central pixels, where digit strokes (and hence non-trivial
/// column norms) live.
pub fn infer_subset() -> Vec<usize> {
    let mut subset = Vec::with_capacity(16);
    for r in (6..22).step_by(4) {
        for c in (6..22).step_by(4) {
            subset.push(r * 28 + c);
        }
    }
    subset
}

/// One sweep trial: one (budget, noise, chains) cell, one repeat.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferSweepSpec {
    /// Power queries spent on the inference design.
    pub budget: usize,
    /// Power-measurement noise σ configured on the oracle.
    pub noise: f64,
    /// Number of MCMC chains sampled.
    pub chains: usize,
    /// Repeat index; varies the oracle noise realisation, the design,
    /// and the MCMC streams.
    pub repeat: u64,
}

/// The measurements of one sweep trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferSweepOutput {
    /// Empirically estimated measurement-noise σ (weight units).
    pub noise_sigma_est: f64,
    /// Fraction of subset columns whose credible interval covers the
    /// true norm.
    pub coverage: f64,
    /// Mean credible-interval width across subset columns.
    pub ci_width: f64,
    /// Worst split-R̂ across subset columns.
    pub max_rhat: f64,
    /// Smallest effective sample size across subset columns.
    pub min_ess: f64,
    /// Mean absolute error of the posterior mean vs the true norms.
    pub norm_mae: f64,
    /// Victim test accuracy as deployed (clean inputs).
    pub deployed_accuracy: f64,
    /// Test accuracy attacked with the posterior-mean norms.
    pub attacked_accuracy: f64,
    /// Lowest attacked accuracy across the posterior-draw band — the
    /// attacker's optimistic edge of the uncertainty band.
    pub attacked_accuracy_lo: f64,
    /// Highest attacked accuracy across the posterior-draw band.
    pub attacked_accuracy_hi: f64,
}

/// Experiment sizes:
/// `(num_samples, test_eval, repeats, noise_probe_repeats, draw_band)`.
pub fn infer_sweep_params(quick: bool) -> (usize, usize, usize, usize, usize) {
    if quick {
        (800, 200, 2, 24, 4)
    } else {
        (3000, 600, 4, 48, 8)
    }
}

/// Query budgets swept (design observations per trial).
pub fn infer_sweep_budgets(quick: bool) -> Vec<usize> {
    if quick {
        vec![32, 128, 512]
    } else {
        vec![32, 64, 128, 256, 512]
    }
}

/// Power-noise σ levels swept. Zero is excluded: a noiseless power
/// channel makes the Gaussian likelihood degenerate (and the paper's
/// Sec. IV shows exact algebra beats inference there anyway).
pub fn infer_sweep_noises(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.05, 0.2]
    } else {
        vec![0.02, 0.1, 0.3]
    }
}

/// Chain counts swept.
pub fn infer_sweep_chain_counts(_quick: bool) -> Vec<usize> {
    vec![2, 4]
}

/// Per-chain MCMC schedule.
pub fn infer_chain_config(quick: bool) -> ChainConfig {
    // Elliptical slice mixing slows as the likelihood narrows relative
    // to the prior, so the schedule is generous: MCMC is a rounding
    // error next to the trial's oracle evaluations.
    if quick {
        ChainConfig::new(4000, 4000, 2).expect("static config")
    } else {
        ChainConfig::new(8000, 8000, 2).expect("static config")
    }
}

/// The sweep grid: noise outermost, then chain count, then budget,
/// repeats innermost.
pub fn infer_sweep_campaign(quick: bool) -> Campaign<InferSweepSpec> {
    let (_, _, repeats, _, _) = infer_sweep_params(quick);
    let mut campaign = Campaign::new("infer-sweep", INFER_SWEEP_SEED);
    for &noise in &infer_sweep_noises(quick) {
        for &chains in &infer_sweep_chain_counts(quick) {
            for &budget in &infer_sweep_budgets(quick) {
                for repeat in 0..repeats as u64 {
                    campaign.push_trial(InferSweepSpec {
                        budget,
                        noise,
                        chains,
                        repeat,
                    });
                }
            }
        }
    }
    campaign
}

/// Runs sweep trials against one shared victim (digits / softmax, seed
/// [`INFER_SWEEP_SEED`]). The evaluation backend is a pure execution
/// detail: outputs are bit-identical across backends and thread counts.
pub struct InferSweepRunner {
    victim: TrainedVictim,
    strength: f64,
    test_eval: usize,
    noise_probe_repeats: usize,
    draw_band: usize,
    chain_config: ChainConfig,
    subset: Vec<usize>,
    backend: BackendSpec,
}

impl InferSweepRunner {
    /// Trains the shared victim with [`infer_sweep_params`] sizes at
    /// attack strength 4 (matching the fault sweep).
    pub fn new(quick: bool, backend: impl Into<BackendSpec>) -> Self {
        let (num_samples, test_eval, _, noise_probe_repeats, draw_band) = infer_sweep_params(quick);
        InferSweepRunner {
            victim: train_victim(
                DatasetKind::Digits,
                HeadKind::SoftmaxCe,
                num_samples,
                INFER_SWEEP_SEED,
            ),
            strength: 4.0,
            test_eval,
            noise_probe_repeats,
            draw_band,
            chain_config: infer_chain_config(quick),
            subset: infer_subset(),
            backend: backend.into(),
        }
    }

    /// The shared victim.
    pub fn victim(&self) -> &TrainedVictim {
        &self.victim
    }

    fn attacked_accuracy(
        &self,
        oracle: &mut Oracle,
        test_inputs: &xbar_linalg::Matrix,
        targets: &xbar_linalg::Matrix,
        labels: &[usize],
        norms: &[f64],
        rng_seed: u64,
    ) -> Result<f64, String> {
        let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
        let adv = single_pixel_attack_batch(
            PixelAttackMethod::NormPlus,
            test_inputs,
            targets,
            PixelAttackResources::norms_only(norms),
            self.strength,
            &mut rng,
        )
        .map_err(|e| e.to_string())?;
        oracle
            .eval_accuracy(&adv, labels)
            .map_err(|e| e.to_string())
    }
}

impl TrialRunner for InferSweepRunner {
    type Spec = InferSweepSpec;
    type Output = InferSweepOutput;

    fn run(&self, spec: &InferSweepSpec, ctx: &TrialContext) -> Result<InferSweepOutput, String> {
        let _span = xbar_obs::span(xbar_obs::names::SPAN_INFER_TRIAL);
        // All per-trial streams are keyed by (campaign seed, trial
        // index) — never by scheduling.
        let trial_salt = (ctx.trial_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let oracle_seed = ctx.campaign_seed ^ trial_salt ^ 0xA1;
        let design_seed = ctx.campaign_seed ^ trial_salt ^ 0xB2;
        let mcmc_seed = ctx.campaign_seed ^ trial_salt ^ 0xC3;
        let attack_seed = 9000 + spec.repeat;

        let mut oracle = Oracle::new(
            self.victim.net.clone(),
            &OracleConfig::ideal()
                .with_access(OutputAccess::None)
                .with_backend(self.backend)
                .with_power(PowerModel::default().with_noise(spec.noise)),
            oracle_seed,
        )
        .map_err(|e| e.to_string())?;
        let input_dim = self.victim.net.num_inputs();
        let truth_full = oracle.true_column_norms();
        let truth: Vec<f64> = self.subset.iter().map(|&j| truth_full[j]).collect();

        // The attacker does not know the configured noise — estimate it
        // from repeated readings of one probe, inflated slightly so the
        // likelihood never claims more precision than was measured.
        let probe = vec![0.5; input_dim];
        let noise_sigma_est = estimate_noise_sigma(&mut oracle, &probe, self.noise_probe_repeats)
            .map_err(|e| e.to_string())?;
        let likelihood_sigma = (noise_sigma_est * 1.2).max(1e-6);

        let design = random_design(spec.budget, input_dim, Some(&self.subset), design_seed)
            .map_err(|e| e.to_string())?;
        let obs = PowerObservations::collect(&mut oracle, &design).map_err(|e| e.to_string())?;

        // Weakly informative: column 1-norms of a trained digit head
        // are positive and O(1). Keeping the prior near the posterior's
        // scale also keeps the elliptical slice sampler mixing fast —
        // its autocorrelation grows with the prior-to-posterior width
        // ratio, which is what the low-budget high-precision cells
        // stress.
        let priors = vec![Prior::normal(1.0, 0.5).map_err(|e| e.to_string())?; self.subset.len()];
        let model = NormPosterior::new(&obs, &self.subset, priors, likelihood_sigma)
            .map_err(|e| e.to_string())?;
        // Low budgets leave the posterior strongly correlated (an
        // all-positive random design with few rows pins only the norm
        // sum tightly), which is where elliptical slice autocorrelation
        // peaks — so thin harder exactly there. Those cells are also
        // the cheapest per MCMC step, so the wall-clock cost is flat
        // across the grid.
        let mixing = (256 / spec.budget.max(1)).clamp(1, 8);
        let config = ChainConfig::new(
            self.chain_config.burn_in * mixing,
            self.chain_config.samples,
            self.chain_config.thin * mixing,
        )
        .map_err(|e| e.to_string())?;
        // Chains run sequentially inside the trial: the campaign
        // executor already parallelises across trials.
        let chains = run_chains(
            &model,
            &Kernel::EllipticalSlice,
            &config,
            mcmc_seed,
            spec.chains,
            1,
        )
        .map_err(|e| e.to_string())?;
        let report = summarize(&chains, &self.subset, INFER_CI_LEVEL).map_err(|e| e.to_string())?;

        let coverage = report.coverage(&truth).map_err(|e| e.to_string())?;
        let norm_mae = report
            .mean_vector()
            .iter()
            .zip(&truth)
            .map(|(m, t)| (m - t).abs())
            .sum::<f64>()
            / truth.len() as f64;

        let test = self
            .victim
            .test
            .subset(&(0..self.victim.test.len().min(self.test_eval)).collect::<Vec<usize>>());
        let targets = test.one_hot_targets();
        let deployed_accuracy = oracle
            .eval_accuracy(test.inputs(), test.labels())
            .map_err(|e| e.to_string())?;

        // Posterior-mean attack plus an uncertainty band from evenly
        // spaced posterior draws: the same attack RNG per trial, so the
        // band reflects norm uncertainty only.
        let mean_norms = model
            .scatter(&report.mean_vector())
            .map_err(|e| e.to_string())?;
        let attacked_accuracy = self.attacked_accuracy(
            &mut oracle,
            test.inputs(),
            &targets,
            test.labels(),
            &mean_norms,
            attack_seed,
        )?;
        let mut attacked_accuracy_lo = attacked_accuracy;
        let mut attacked_accuracy_hi = attacked_accuracy;
        for draw in evenly_spaced_draws(&chains, self.draw_band).map_err(|e| e.to_string())? {
            let draw_norms = model.scatter(&draw).map_err(|e| e.to_string())?;
            let acc = self.attacked_accuracy(
                &mut oracle,
                test.inputs(),
                &targets,
                test.labels(),
                &draw_norms,
                attack_seed,
            )?;
            attacked_accuracy_lo = attacked_accuracy_lo.min(acc);
            attacked_accuracy_hi = attacked_accuracy_hi.max(acc);
        }

        Ok(InferSweepOutput {
            noise_sigma_est,
            coverage,
            ci_width: report.mean_ci_width(),
            max_rhat: report.max_rhat,
            min_ess: report.min_ess,
            norm_mae,
            deployed_accuracy,
            attacked_accuracy,
            attacked_accuracy_lo,
            attacked_accuracy_hi,
        })
    }
}

/// One aggregated (noise, chains, budget) point of a posterior curve.
#[derive(Debug, Serialize)]
pub struct InferSweepPoint {
    /// Query budget of this point.
    pub budget: usize,
    /// Repeats aggregated.
    pub repeats: usize,
    /// Truth-coverage fraction of the credible intervals.
    pub coverage: RunSummary,
    /// Mean credible-interval width (posterior uncertainty).
    pub ci_width: RunSummary,
    /// Worst split-R̂ across dimensions.
    pub max_rhat: RunSummary,
    /// Smallest effective sample size across dimensions.
    pub min_ess: RunSummary,
    /// Posterior-mean absolute error vs the true norms.
    pub norm_mae: RunSummary,
    /// Clean deployed accuracy.
    pub deployed_accuracy: RunSummary,
    /// Accuracy under the posterior-mean-guided attack.
    pub attacked_accuracy: RunSummary,
    /// Optimistic edge of the posterior-draw attack band.
    pub attacked_accuracy_lo: RunSummary,
    /// Pessimistic edge of the posterior-draw attack band.
    pub attacked_accuracy_hi: RunSummary,
}

/// One (noise, chains) cell of the sweep: posterior quality and attack
/// success as functions of query budget.
#[derive(Debug, Serialize)]
pub struct InferSweepCurve {
    /// Power-noise σ of this curve.
    pub noise: f64,
    /// Chain count of this curve.
    pub chains: usize,
    /// Points in ascending budget order.
    pub points: Vec<InferSweepPoint>,
}

/// The persisted sweep report (`results/infer-sweep.json`).
#[derive(Debug, Serialize)]
pub struct InferSweepReport {
    /// Credible-interval mass.
    pub ci_level: f64,
    /// Worst split-R̂ over every trial of the sweep — CI gates on this.
    pub max_rhat: f64,
    /// Smallest credible-interval width over every trial — CI asserts
    /// the intervals are non-empty.
    pub min_ci_width: f64,
    /// Per-(noise, chains) budget curves.
    pub curves: Vec<InferSweepCurve>,
}

/// Groups per-trial outputs back into per-(noise, chains) curves
/// (trials are contiguous by construction of [`infer_sweep_campaign`]).
pub fn infer_sweep_curves(
    quick: bool,
    outputs: &[Option<InferSweepOutput>],
) -> Result<InferSweepReport, String> {
    let (_, _, repeats, _, _) = infer_sweep_params(quick);
    let mut curves = Vec::new();
    let mut next = 0;
    for &noise in &infer_sweep_noises(quick) {
        for &chains in &infer_sweep_chain_counts(quick) {
            let mut points = Vec::new();
            for &budget in &infer_sweep_budgets(quick) {
                let trials: Vec<&InferSweepOutput> = (0..repeats)
                    .map(|_| {
                        let out = outputs
                            .get(next)
                            .and_then(Option::as_ref)
                            .ok_or_else(|| format!("infer-sweep trial {next} has no output"));
                        next += 1;
                        out
                    })
                    .collect::<Result<_, _>>()?;
                let collect = |f: &dyn Fn(&InferSweepOutput) -> f64| -> Vec<f64> {
                    trials.iter().map(|t| f(t)).collect()
                };
                points.push(InferSweepPoint {
                    budget,
                    repeats,
                    coverage: RunSummary::from_values(&collect(&|t| t.coverage)),
                    ci_width: RunSummary::from_values(&collect(&|t| t.ci_width)),
                    max_rhat: RunSummary::from_values(&collect(&|t| t.max_rhat)),
                    min_ess: RunSummary::from_values(&collect(&|t| t.min_ess)),
                    norm_mae: RunSummary::from_values(&collect(&|t| t.norm_mae)),
                    deployed_accuracy: RunSummary::from_values(&collect(&|t| t.deployed_accuracy)),
                    attacked_accuracy: RunSummary::from_values(&collect(&|t| t.attacked_accuracy)),
                    attacked_accuracy_lo: RunSummary::from_values(&collect(&|t| {
                        t.attacked_accuracy_lo
                    })),
                    attacked_accuracy_hi: RunSummary::from_values(&collect(&|t| {
                        t.attacked_accuracy_hi
                    })),
                });
            }
            curves.push(InferSweepCurve {
                noise,
                chains,
                points,
            });
        }
    }
    let max_rhat = curves
        .iter()
        .flat_map(|c| &c.points)
        .map(|p| p.max_rhat.max)
        .fold(f64::NEG_INFINITY, f64::max);
    let min_ci_width = curves
        .iter()
        .flat_map(|c| &c.points)
        .map(|p| p.ci_width.min)
        .fold(f64::INFINITY, f64::min);
    Ok(InferSweepReport {
        ci_level: INFER_CI_LEVEL,
        max_rhat,
        min_ci_width,
        curves,
    })
}

fn print_report(report: &InferSweepReport) {
    for curve in &report.curves {
        println!(
            "--- infer sweep: noise sigma {} / {} chains ({} repeats/point) ---",
            curve.noise,
            curve.chains,
            curve.points.first().map_or(0, |p| p.repeats)
        );
        let rows: Vec<Vec<String>> = curve
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.budget),
                    fmt(p.coverage.mean, 3),
                    fmt(p.ci_width.mean, 4),
                    fmt(p.max_rhat.mean, 3),
                    fmt(p.norm_mae.mean, 4),
                    format!(
                        "{} [{}, {}]",
                        fmt(p.attacked_accuracy.mean, 3),
                        fmt(p.attacked_accuracy_lo.mean, 3),
                        fmt(p.attacked_accuracy_hi.mean, 3)
                    ),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                &[
                    "budget",
                    "coverage",
                    "CI width",
                    "max rhat",
                    "norm MAE",
                    "attacked acc [band]"
                ],
                &rows
            )
        );
    }
    println!("Expected shape: credible intervals cover the true norms at every budget and");
    println!("tighten monotonically as the budget grows; the attack band narrows with the");
    println!("posterior, and all chains converge (max split-R^2 < 1.1).");
}

/// Runs the sweep campaign and prints/persists the posterior curves
/// (default `results/infer-sweep.json`). `opts.faults` and
/// `opts.transients` are ignored — the sweep defines its own noisy but
/// fault-free deployments.
pub fn run_infer_sweep(opts: &CampaignOptions) -> Result<(), String> {
    let runner = InferSweepRunner::new(opts.quick, opts.backend);
    let campaign = infer_sweep_campaign(opts.quick);
    let report = execute(&runner, &campaign, opts)?;
    let curves = infer_sweep_curves(opts.quick, &report.outputs)?;
    print_report(&curves);
    crate::write_json(
        opts.json_out
            .as_deref()
            .unwrap_or("results/infer-sweep.json"),
        &curves,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_crossbar::backend::BackendKind;
    use xbar_runtime::{run_campaign, ExecutorConfig, NullSink};

    #[test]
    fn grid_shape_and_fingerprint_stability() {
        let a = infer_sweep_campaign(true);
        let b = infer_sweep_campaign(true);
        let (_, _, repeats, _, _) = infer_sweep_params(true);
        let cells = infer_sweep_noises(true).len()
            * infer_sweep_chain_counts(true).len()
            * infer_sweep_budgets(true).len();
        assert_eq!(a.len(), cells * repeats);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), infer_sweep_campaign(false).fingerprint());
    }

    #[test]
    fn subset_is_central_unique_and_in_range() {
        let subset = infer_subset();
        assert_eq!(subset.len(), 16);
        let mut sorted = subset.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
        for &j in &subset {
            assert!(j < 784);
            let (r, c) = (j / 28, j % 28);
            assert!((6..=18).contains(&r) && (6..=18).contains(&c));
        }
    }

    /// The acceptance contract: identical trial outputs at 1 vs 3
    /// threads and across evaluation backends. Runs a reduced grid (one
    /// noise, one chain count, two budgets) to keep the test fast.
    #[test]
    fn sweep_outputs_are_thread_and_backend_invariant() {
        let mut campaign = Campaign::new("infer-sweep-test", INFER_SWEEP_SEED);
        for budget in [24usize, 48] {
            campaign.push_trial(InferSweepSpec {
                budget,
                noise: 0.2,
                chains: 2,
                repeat: 0,
            });
        }
        let run = |runner: &InferSweepRunner, threads: usize| {
            run_campaign(
                runner,
                &campaign,
                &ExecutorConfig::with_threads(threads),
                None,
                false,
                &mut NullSink,
            )
            .unwrap()
            .outputs
        };
        let mut naive = InferSweepRunner::new(true, BackendKind::Naive);
        naive.chain_config = ChainConfig::new(40, 80, 1).unwrap();
        naive.test_eval = 60;
        naive.draw_band = 2;
        let mut blocked = InferSweepRunner::new(true, BackendKind::Blocked);
        blocked.chain_config = naive.chain_config;
        blocked.test_eval = 60;
        blocked.draw_band = 2;
        let serial = run(&naive, 1);
        assert_eq!(serial, run(&naive, 3), "thread count changed the sweep");
        assert_eq!(serial, run(&blocked, 1), "backend changed the sweep");
        // More budget means a tighter posterior even at this tiny size.
        let (small, large) = (serial[0].unwrap(), serial[1].unwrap());
        assert!(large.ci_width < small.ci_width);
        assert!(small.ci_width > 0.0);
    }
}
