//! # xbar-bench
//!
//! The experiment and benchmark harness: shared setup code used by the
//! binaries that regenerate every table and figure of the paper, plus the
//! Criterion micro-benchmarks.
//!
//! Experiment binaries (run with `cargo run -p xbar-bench --release --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — sensitivity / 1-norm correlations |
//! | `fig3` | Fig. 3 — sensitivity and 1-norm heatmaps |
//! | `fig4` | Fig. 4 — single-pixel attack curves |
//! | `fig5` | Fig. 5 — surrogate black-box attacks |
//! | `multipixel` | Sec. III multi-pixel discussion |
//! | `recovery` | Sec. IV exact-recovery observations |
//! | `ablations` | non-ideal-crossbar / defense extensions |
//!
//! Each binary prints the paper's rows/series as aligned tables and, when
//! `--json <path>` is given, writes machine-readable results.
//!
//! The `fig4`, `fig5` and `ablations` experiments run on the
//! [`xbar_runtime`] campaign executor (parallel, checkpointed,
//! resumable): their grids live in [`campaign`] and their drivers in
//! [`figures`]. The same drivers back the `xbar campaign` CLI
//! subcommand.
//!
//! [`mvmbench`] backs `xbar bench mvm`: the naive-vs-blocked batched
//! MVM microbenchmark behind CI's `BENCH_mvm.json` artifact.
//!
//! [`faultsweep`] backs `xbar faults sweep`: attack-success-vs-fault-rate
//! robustness curves over the [`xbar_faults`] injection subsystem.
//!
//! [`lifetimesweep`] backs `xbar lifetime sweep`: attack efficacy over a
//! decaying hardware lifetime — a (drift time × transient rate ×
//! defense) cross-sweep with probe recalibration.
//!
//! [`servebench`] backs `xbar bench serve`: campaign-service
//! throughput at 1/8/64 concurrent sessions, cross-session batch
//! coalescing on vs off, behind CI's `BENCH_serve.json` artifact.
//!
//! [`infersweep`] backs `xbar infer sweep`: Bayesian column-norm
//! recovery from noisy power readings ([`xbar_infer`]) across query
//! budget, measurement noise, and chain count, with posterior-guided
//! attacks and credible-interval attack bands.

pub mod campaign;
pub mod faultsweep;
pub mod figures;
pub mod infersweep;
pub mod lifetimesweep;
pub mod mvmbench;
pub mod servebench;
pub mod setup;

pub use setup::*;
