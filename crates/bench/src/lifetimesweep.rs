//! The `xbar lifetime sweep` device-lifetime experiment: attack efficacy
//! over a decaying hardware lifetime.
//!
//! One trial deploys a shared digits/softmax victim on a crossbar aged
//! to one drift level, turns on per-query transient disturbances
//! (read-disturb flips plus conductance jitter) at one rate, and mounts
//! one power defense. The session then plays out a lifetime: probe the
//! power side channel while fresh, attack, let the hardware age under
//! the oracle's drift schedule, attack again with the stale probe, and
//! finally recalibrate under a [`RecalibrationPolicy`] and attack once
//! more. The three attacked accuracies — fresh, stale, recalibrated —
//! measure how much of the side channel survives decay and how much a
//! re-probe buys back.
//!
//! All randomness is keyed by `(campaign_seed, trial_index)` (faults,
//! transients, defenses) plus the global query index (transients), so
//! the persisted cells are bit-identical at any thread count and across
//! evaluation backends. A spec whose level indices fall outside the
//! grid tables fails with a [`xbar_runtime::permanent_error`] — the
//! executor journals it after a single attempt and the remaining cells
//! complete.

use serde::{Deserialize, Serialize};
use xbar_core::defense::{DefendedOracle, PowerDefense};
use xbar_core::oracle::{DriftSchedule, Oracle, OracleConfig, OutputAccess};
use xbar_core::pixel_attack::{single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources};
use xbar_core::probe::RecalibrationPolicy;
use xbar_core::report::{fmt, format_table};
use xbar_crossbar::backend::BackendSpec;
use xbar_faults::{FaultInjection, FaultKey, FaultSpec, TransientInjection, TransientSpec};
use xbar_runtime::{permanent_error, Campaign, TrialContext, TrialRunner};
use xbar_stats::aggregate::RunSummary;
use xbar_stats::correlation::pearson;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::figures::{execute, CampaignOptions};
use crate::{train_victim, write_json, DatasetKind, HeadKind, TrainedVictim};

/// Victim-training seed for the sweep (also the campaign seed every
/// per-trial fault/transient key derives from).
pub const LIFETIME_SWEEP_SEED: u64 = 23;

/// Drift-time levels swept (the crossbar's age at deployment, and the
/// per-epoch aging step during the session).
pub fn lifetime_drift_times(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 100.0]
    } else {
        vec![0.0, 10.0, 100.0, 1000.0]
    }
}

/// Transient-disturbance levels swept: the per-device read-disturb flip
/// probability, also used as the lognormal jitter σ.
pub fn lifetime_transient_rates(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 0.02]
    } else {
        vec![0.0, 0.005, 0.02, 0.05]
    }
}

/// The power defenses crossed against hardware decay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LifetimeDefense {
    /// No defense: the bare power side channel.
    None,
    /// Randomised dummy columns, 2x the victim's mean column norm.
    RandomizedDummy,
    /// Additive measurement noise, σ = the victim's mean column norm.
    AdditiveNoise,
}

impl LifetimeDefense {
    /// All defenses, in sweep order.
    pub fn all() -> [LifetimeDefense; 3] {
        [
            LifetimeDefense::None,
            LifetimeDefense::RandomizedDummy,
            LifetimeDefense::AdditiveNoise,
        ]
    }

    /// Human-readable defense label.
    pub fn label(self) -> &'static str {
        match self {
            LifetimeDefense::None => "none",
            LifetimeDefense::RandomizedDummy => "randomized dummies",
            LifetimeDefense::AdditiveNoise => "additive noise",
        }
    }

    /// The concrete [`PowerDefense`], sized from the victim's mean
    /// column norm.
    pub fn power_defense(self, mean_norm: f64) -> PowerDefense {
        match self {
            LifetimeDefense::None => PowerDefense::None,
            LifetimeDefense::RandomizedDummy => PowerDefense::RandomizedDummy {
                magnitude: 2.0 * mean_norm,
            },
            LifetimeDefense::AdditiveNoise => PowerDefense::AdditiveNoise { sigma: mean_norm },
        }
    }
}

/// One sweep trial: indices into the level tables plus a repeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifetimeSpec {
    /// Index into [`lifetime_drift_times`].
    pub drift_index: usize,
    /// Index into [`lifetime_transient_rates`].
    pub transient_index: usize,
    /// The power defense mounted for this cell.
    pub defense: LifetimeDefense,
    /// Repeat index; varies the fault/transient realisation (through
    /// the trial index in the key) and the attack RNG.
    pub repeat: u64,
}

/// The measurements of one sweep trial, in lifetime order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeOutput {
    /// Pearson correlation of the fresh probe vs true (aged) norms.
    pub probe_correlation: f64,
    /// Victim accuracy on the freshly deployed (drifted) crossbar.
    pub deployed_accuracy: f64,
    /// Attacked accuracy with the fresh probe, before session aging.
    pub attacked_accuracy_fresh: f64,
    /// Victim accuracy after the session aged the hardware.
    pub deployed_accuracy_aged: f64,
    /// Attacked accuracy on the aged hardware using the stale probe.
    pub attacked_accuracy_stale: f64,
    /// Attacked accuracy after recalibrating under the policy (equals
    /// the stale value when the policy declined to re-probe).
    pub attacked_accuracy_recalibrated: f64,
    /// Re-probes performed by the recalibration policy (0 or 1 here).
    pub recalibrations: u64,
    /// The oracle's drift time when the session ended.
    pub drift_time_end: f64,
}

/// Experiment sizes: `(num_samples, test_eval, repeats)`.
pub fn lifetime_sweep_params(quick: bool) -> (usize, usize, usize) {
    if quick {
        (800, 200, 1)
    } else {
        (3000, 600, 3)
    }
}

/// The sweep grid: drift times outer, then transient rates, then
/// defenses, repeats innermost.
pub fn lifetime_campaign(quick: bool) -> Campaign<LifetimeSpec> {
    let (_, _, repeats) = lifetime_sweep_params(quick);
    let mut campaign = Campaign::new("lifetime-sweep", LIFETIME_SWEEP_SEED);
    for drift_index in 0..lifetime_drift_times(quick).len() {
        for transient_index in 0..lifetime_transient_rates(quick).len() {
            for defense in LifetimeDefense::all() {
                for repeat in 0..repeats as u64 {
                    campaign.push_trial(LifetimeSpec {
                        drift_index,
                        transient_index,
                        defense,
                        repeat,
                    });
                }
            }
        }
    }
    campaign
}

/// Runs lifetime trials against one shared victim (digits / softmax,
/// seed [`LIFETIME_SWEEP_SEED`]). The evaluation backend is a pure
/// execution detail: outputs are bit-identical across backends.
pub struct LifetimeSweepRunner {
    victim: TrainedVictim,
    strength: f64,
    test_eval: usize,
    backend: BackendSpec,
    policy: RecalibrationPolicy,
    quick: bool,
}

impl LifetimeSweepRunner {
    /// Trains the shared victim with [`lifetime_sweep_params`] sizes at
    /// attack strength 4, recalibrating under `policy`.
    pub fn new(quick: bool, backend: impl Into<BackendSpec>, policy: RecalibrationPolicy) -> Self {
        let (num_samples, test_eval, _) = lifetime_sweep_params(quick);
        LifetimeSweepRunner {
            victim: train_victim(
                DatasetKind::Digits,
                HeadKind::SoftmaxCe,
                num_samples,
                LIFETIME_SWEEP_SEED,
            ),
            strength: 4.0,
            test_eval,
            backend: backend.into(),
            policy,
            quick,
        }
    }

    /// The shared victim.
    pub fn victim(&self) -> &TrainedVictim {
        &self.victim
    }

    /// Attacks with `norms` and evaluates on the oracle's current
    /// (possibly aged) hardware. The RNG is paired across cells within
    /// a repeat and across the fresh/stale/recalibrated phases.
    fn attack_accuracy(
        &self,
        oracle: &Oracle,
        norms: &[f64],
        test: &xbar_data::Dataset,
        repeat: u64,
    ) -> Result<f64, String> {
        let mut rng = ChaCha8Rng::seed_from_u64(9100 + repeat);
        let adv = single_pixel_attack_batch(
            PixelAttackMethod::NormPlus,
            test.inputs(),
            &test.one_hot_targets(),
            PixelAttackResources::norms_only(norms),
            self.strength,
            &mut rng,
        )
        .map_err(|e| e.to_string())?;
        oracle
            .eval_accuracy(&adv, test.labels())
            .map_err(|e| e.to_string())
    }
}

impl TrialRunner for LifetimeSweepRunner {
    type Spec = LifetimeSpec;
    type Output = LifetimeOutput;

    fn run(&self, spec: &LifetimeSpec, ctx: &TrialContext) -> Result<LifetimeOutput, String> {
        let _span = xbar_obs::span(xbar_obs::names::SPAN_LIFETIME_TRIAL);
        // Out-of-range grid cells are deterministic failures: journal
        // them after one attempt instead of burning retries.
        let drift_time = *lifetime_drift_times(self.quick)
            .get(spec.drift_index)
            .ok_or_else(|| {
                permanent_error(format!("drift index {} out of range", spec.drift_index))
            })?;
        let rate = *lifetime_transient_rates(self.quick)
            .get(spec.transient_index)
            .ok_or_else(|| {
                permanent_error(format!(
                    "transient index {} out of range",
                    spec.transient_index
                ))
            })?;

        let key = FaultKey::new(ctx.campaign_seed, ctx.trial_index as u64);
        let n = self.victim.net.num_inputs();
        // The fresh probe (one query per input column) stays inside
        // drift epoch 0; the filler queries after it cross exactly one
        // epoch boundary, aging the array by another `drift_time`.
        let aging_interval = n as u64 + 200;
        let mut cfg = OracleConfig::ideal()
            .with_access(OutputAccess::None)
            .with_backend(self.backend)
            .with_faults(FaultInjection::new(
                FaultSpec::none().with_drift(0.3, 0.1, drift_time),
                key,
            ))
            .with_transients(TransientInjection::new(
                TransientSpec::none()
                    .with_flip_rate(rate)
                    .with_jitter_sigma(rate),
                key,
            ));
        if drift_time > 0.0 {
            cfg = cfg.with_drift_schedule(DriftSchedule::every(aging_interval, drift_time));
        }
        let oracle = Oracle::new(self.victim.net.clone(), &cfg, 55).map_err(|e| e.to_string())?;
        let mean_norm = self.victim.net.column_l1_norms().iter().sum::<f64>() / n as f64;
        let mut defended = DefendedOracle::new(
            oracle,
            spec.defense.power_defense(mean_norm),
            4300 + ctx.trial_index as u64,
        )
        .map_err(|e| e.to_string())?;

        let test = self
            .victim
            .test
            .subset(&(0..self.victim.test.len().min(self.test_eval)).collect::<Vec<usize>>());

        // Fresh phase: probe, then attack the young hardware.
        let norms_fresh = defended
            .probe_column_norms(1.0, 1)
            .map_err(|e| e.to_string())?;
        let truth = defended.inner().true_column_norms();
        let probe_correlation = pearson(&norms_fresh, &truth).unwrap_or(0.0);
        let deployed_accuracy = defended
            .inner()
            .eval_accuracy(test.inputs(), test.labels())
            .map_err(|e| e.to_string())?;
        let attacked_accuracy_fresh =
            self.attack_accuracy(defended.inner(), &norms_fresh, &test, spec.repeat)?;
        let probed_at_queries = defended.inner().queries_issued();
        let probed_at_drift = defended.inner().drift_time();

        // Aging phase: run the session past the drift epoch boundary.
        let filler: Vec<&[f64]> = (0..256)
            .map(|i| test.inputs().row(i % test.len()))
            .collect();
        defended.query_batch(&filler).map_err(|e| e.to_string())?;
        let deployed_accuracy_aged = defended
            .inner()
            .eval_accuracy(test.inputs(), test.labels())
            .map_err(|e| e.to_string())?;
        let attacked_accuracy_stale =
            self.attack_accuracy(defended.inner(), &norms_fresh, &test, spec.repeat)?;

        // Recalibration phase: re-probe iff the policy says the fresh
        // scan has gone stale.
        let stale = !self.policy.is_never()
            && ((self.policy.every_queries > 0
                && defended.inner().queries_issued() - probed_at_queries
                    >= self.policy.every_queries)
                || (self.policy.staleness_threshold > 0.0
                    && defended.inner().drift_time() - probed_at_drift
                        >= self.policy.staleness_threshold));
        let (attacked_accuracy_recalibrated, recalibrations) = if stale {
            xbar_obs::count(xbar_obs::names::PROBE_RECALIBRATION, 1);
            let norms_new = defended
                .probe_column_norms(1.0, 1)
                .map_err(|e| e.to_string())?;
            (
                self.attack_accuracy(defended.inner(), &norms_new, &test, spec.repeat)?,
                1,
            )
        } else {
            (attacked_accuracy_stale, 0)
        };

        Ok(LifetimeOutput {
            probe_correlation,
            deployed_accuracy,
            attacked_accuracy_fresh,
            deployed_accuracy_aged,
            attacked_accuracy_stale,
            attacked_accuracy_recalibrated,
            recalibrations,
            drift_time_end: defended.inner().drift_time(),
        })
    }
}

/// One aggregated (drift_time, transient rate, defense) cell.
#[derive(Debug, Serialize)]
pub struct LifetimeCell {
    /// Drift-time level of the cell.
    pub drift_time: f64,
    /// Transient-rate level of the cell.
    pub transient_rate: f64,
    /// Defense label.
    pub defense: &'static str,
    /// Repeats that produced an output (failed trials are skipped).
    pub repeats_ok: usize,
    /// Fresh-probe correlation over the repeats.
    pub probe_correlation: RunSummary,
    /// Deployed accuracy at the start of the session.
    pub deployed_accuracy: RunSummary,
    /// Attacked accuracy with the fresh probe.
    pub attacked_accuracy_fresh: RunSummary,
    /// Attacked accuracy on aged hardware with the stale probe.
    pub attacked_accuracy_stale: RunSummary,
    /// Attacked accuracy after policy-driven recalibration.
    pub attacked_accuracy_recalibrated: RunSummary,
    /// Mean re-probes performed per trial.
    pub mean_recalibrations: f64,
}

/// Groups per-trial outputs back into cells (trials are contiguous by
/// construction of [`lifetime_campaign`]). Cells whose repeats all
/// failed are dropped — with `tolerate_failures` the sweep reports what
/// survived.
pub fn lifetime_cells(
    quick: bool,
    outputs: &[Option<LifetimeOutput>],
) -> Result<Vec<LifetimeCell>, String> {
    let (_, _, repeats) = lifetime_sweep_params(quick);
    let mut cells = Vec::new();
    let mut next = 0;
    for &drift_time in &lifetime_drift_times(quick) {
        for &transient_rate in &lifetime_transient_rates(quick) {
            for defense in LifetimeDefense::all() {
                let trials: Vec<LifetimeOutput> = (0..repeats)
                    .filter_map(|_| {
                        let out = outputs.get(next).and_then(Option::as_ref).copied();
                        next += 1;
                        out
                    })
                    .collect();
                if trials.is_empty() {
                    continue;
                }
                let collect = |f: &dyn Fn(&LifetimeOutput) -> f64| -> Vec<f64> {
                    trials.iter().map(f).collect()
                };
                cells.push(LifetimeCell {
                    drift_time,
                    transient_rate,
                    defense: defense.label(),
                    repeats_ok: trials.len(),
                    probe_correlation: RunSummary::from_values(&collect(&|t| t.probe_correlation)),
                    deployed_accuracy: RunSummary::from_values(&collect(&|t| t.deployed_accuracy)),
                    attacked_accuracy_fresh: RunSummary::from_values(&collect(&|t| {
                        t.attacked_accuracy_fresh
                    })),
                    attacked_accuracy_stale: RunSummary::from_values(&collect(&|t| {
                        t.attacked_accuracy_stale
                    })),
                    attacked_accuracy_recalibrated: RunSummary::from_values(&collect(&|t| {
                        t.attacked_accuracy_recalibrated
                    })),
                    mean_recalibrations: collect(&|t| t.recalibrations as f64).iter().sum::<f64>()
                        / trials.len() as f64,
                });
            }
        }
    }
    Ok(cells)
}

fn print_cells(cells: &[LifetimeCell]) {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                format!("{}", c.drift_time),
                format!("{}", c.transient_rate),
                c.defense.to_string(),
                fmt(c.probe_correlation.mean, 4),
                fmt(c.attacked_accuracy_fresh.mean, 3),
                fmt(c.attacked_accuracy_stale.mean, 3),
                fmt(c.attacked_accuracy_recalibrated.mean, 3),
                fmt(c.mean_recalibrations, 1),
            ]
        })
        .collect();
    println!("--- lifetime sweep: drift_time x transient rate x defense ---");
    println!(
        "{}",
        format_table(
            &[
                "drift t",
                "transients",
                "defense",
                "probe r",
                "atk fresh",
                "atk stale",
                "atk recal",
                "re-probes"
            ],
            &rows
        )
    );
    println!("Expected shape: aging and transients blur the probe (r falls, attacked");
    println!("accuracy rises toward clean); the stale probe is weaker than the fresh one");
    println!("on aged hardware, and recalibration buys part of the attack back.");
}

/// Runs the lifetime campaign and prints/persists the cells (default
/// `results/lifetime-sweep.json`). `opts.faults` and `opts.transients`
/// are ignored — the sweep defines its own per-cell specs.
pub fn run_lifetime_sweep(
    opts: &CampaignOptions,
    policy: &RecalibrationPolicy,
) -> Result<(), String> {
    let runner = LifetimeSweepRunner::new(opts.quick, opts.backend, *policy);
    let campaign = lifetime_campaign(opts.quick);
    let report = execute(&runner, &campaign, opts)?;
    let cells = lifetime_cells(opts.quick, &report.outputs)?;
    print_cells(&cells);
    if report.metrics.degraded > 0 || !report.all_ok() {
        println!(
            "lifetime: {} degraded trial(s), {} failed trial(s)",
            report.metrics.degraded,
            report.failures.len()
        );
    }
    write_json(
        opts.json_out
            .as_deref()
            .unwrap_or("results/lifetime-sweep.json"),
        &cells,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_crossbar::backend::BackendKind;
    use xbar_runtime::{run_campaign, ExecutorConfig, FailureClass, NullSink};

    #[test]
    fn grid_shape_and_fingerprint_stability() {
        let a = lifetime_campaign(true);
        let b = lifetime_campaign(true);
        let (_, _, repeats) = lifetime_sweep_params(true);
        assert_eq!(
            a.len(),
            lifetime_drift_times(true).len()
                * lifetime_transient_rates(true).len()
                * LifetimeDefense::all().len()
                * repeats
        );
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), lifetime_campaign(false).fingerprint());
    }

    /// The graceful-degradation acceptance contract: a permanently
    /// failing cell is journaled and reported without aborting the rest
    /// of the campaign, and the aggregation skips it.
    #[test]
    fn out_of_range_cell_fails_permanently_without_aborting() {
        let mut campaign = Campaign::new("lifetime-test", LIFETIME_SWEEP_SEED);
        campaign.push_trial(LifetimeSpec {
            drift_index: 0,
            transient_index: 0,
            defense: LifetimeDefense::None,
            repeat: 0,
        });
        // An index past the quick drift table: deterministic failure.
        campaign.push_trial(LifetimeSpec {
            drift_index: 99,
            transient_index: 0,
            defense: LifetimeDefense::None,
            repeat: 0,
        });
        let runner =
            LifetimeSweepRunner::new(true, BackendKind::Naive, RecalibrationPolicy::never());
        let dir = std::env::temp_dir().join(format!("xbar_lifetime_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("permanent.jsonl");
        let report = run_campaign(
            &runner,
            &campaign,
            &ExecutorConfig {
                threads: 2,
                max_retries: 3,
                trial_deadline: None,
            },
            Some(&path),
            false,
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(report.metrics.completed, 1);
        assert_eq!(report.metrics.failed, 1);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].trial_index, 1);
        assert_eq!(report.failures[0].class, FailureClass::Permanent);
        // Exactly one attempt: the permanent class skipped the retries.
        assert_eq!(report.failures[0].attempts, 1);

        let (_, records) = xbar_runtime::journal::read_journal(&path).unwrap();
        let failed: Vec<_> = records
            .iter()
            .filter(|r| r.status == xbar_runtime::TrialStatus::Failed)
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].failure_class, Some(FailureClass::Permanent));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Recalibration recovers information on aged hardware: with an
    /// always-stale policy the trial re-probes once, and with `never`
    /// it does not.
    #[test]
    fn recalibration_policy_controls_the_reprobe() {
        let spec = LifetimeSpec {
            drift_index: 1, // drift_time 100 in the quick table
            transient_index: 0,
            defense: LifetimeDefense::None,
            repeat: 0,
        };
        let ctx = TrialContext {
            trial_index: 0,
            campaign_seed: LIFETIME_SWEEP_SEED,
            attempt: 1,
        };
        let never =
            LifetimeSweepRunner::new(true, BackendKind::Naive, RecalibrationPolicy::never());
        let out_never = never.run(&spec, &ctx).unwrap();
        assert_eq!(out_never.recalibrations, 0);
        assert_eq!(
            out_never.attacked_accuracy_recalibrated,
            out_never.attacked_accuracy_stale
        );
        // The session crossed one epoch boundary: 100 -> 200.
        assert!(out_never.drift_time_end > 100.0);

        let eager =
            LifetimeSweepRunner::new(true, BackendKind::Naive, RecalibrationPolicy::every(1));
        let out_eager = eager.run(&spec, &ctx).unwrap();
        assert_eq!(out_eager.recalibrations, 1);
        // Both runners saw the same deterministic lifetime up to the
        // recalibration decision.
        assert_eq!(out_never.probe_correlation, out_eager.probe_correlation);
        assert_eq!(
            out_never.attacked_accuracy_stale,
            out_eager.attacked_accuracy_stale
        );
    }
}
