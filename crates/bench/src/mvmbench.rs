//! The `xbar bench mvm` microbenchmark: a size x threads matrix over
//! the evaluation backends.
//!
//! For each crossbar size in the matrix (up to 1024x1024 = 1,048,576
//! devices in the full run; smaller under `--quick`) and each thread
//! count in 1/2/4/8, one row times the naive, blocked, and parallel
//! backends on warm [`PreparedEval`](xbar_crossbar::backend::PreparedEval)
//! handles, verifies the outputs are bit-identical across backends, and
//! records the prepare-hit vs prepare-miss cost of the prepared-handle
//! API. A fault-lifecycle section times [`FaultyBackend`] deployment
//! (plan compile, plan apply, faulted prepare+eval) on the largest
//! size. CI uploads the report as the `BENCH_mvm.json` artifact and
//! smoke-asserts `bit_identical` and `parallel_speedup` on every row.
//!
//! `host_threads` records the machine's available parallelism so the
//! thread-scaling columns are interpretable: on a single-core host the
//! 2/4/8-thread rows measure scheduling overhead, not speedup.

use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use xbar_crossbar::array::CrossbarArray;
use xbar_crossbar::backend::{BackendKind, BackendSpec, EvalBackend};
use xbar_crossbar::device::DeviceModel;
use xbar_faults::{FaultKey, FaultSpec, FaultyBackend};
use xbar_linalg::Matrix;

use crate::write_json;

/// The campaign seed pinning every array, batch, and fault draw.
const MVM_BENCH_SEED: u64 = 77;

/// Thread counts exercised for the parallel backend in every size row.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One (size x threads) cell of the benchmark matrix.
#[derive(Debug, Clone, Serialize)]
pub struct MvmBenchRow {
    /// Crossbar output rows.
    pub outputs: usize,
    /// Crossbar input columns.
    pub inputs: usize,
    /// Devices in the array (`outputs * inputs`).
    pub devices: usize,
    /// Batch size (input vectors per batched call).
    pub batch: usize,
    /// Timed iterations per backend (after one warm-up).
    pub iterations: usize,
    /// Parallel-backend thread count for this row.
    pub threads: usize,
    /// Mean nanoseconds per warm batched MVM, naive backend.
    pub naive_nanos: u64,
    /// Mean nanoseconds per warm batched MVM, blocked backend.
    pub blocked_nanos: u64,
    /// Mean nanoseconds per warm batched MVM, parallel backend at
    /// `threads` threads.
    pub parallel_nanos: u64,
    /// `naive_nanos / parallel_nanos` — the smoke-tested speedup, safe
    /// at any host core count because the tiled kernel beats the naive
    /// per-vector loop even single-threaded.
    pub parallel_speedup: f64,
    /// `blocked_nanos / parallel_nanos` — the thread-scaling ratio.
    /// Only exceeds 1.0 meaningfully when `host_threads` allows it.
    pub parallel_over_blocked: f64,
    /// Whether blocked and parallel outputs were bit-identical to the
    /// naive backend on this row.
    pub bit_identical: bool,
    /// Mean nanoseconds per `EvalBackend::prepare` (weight
    /// materialisation plus array snapshot).
    pub prepare_nanos: u64,
    /// Batch size used for the prepare-hit vs prepare-miss probe
    /// (small, so the prepare cost is visible against the evaluation).
    pub prepared_probe_batch: usize,
    /// Mean nanoseconds per prepare-miss probe batch: a fresh
    /// `prepare` followed by one batched MVM (what a caller that
    /// re-prepares on every batch pays per call).
    pub cold_batch_nanos: u64,
    /// Mean nanoseconds per prepare-hit probe batch: one batched MVM
    /// on a reused handle.
    pub warm_batch_nanos: u64,
    /// `cold_batch_nanos / warm_batch_nanos` — the payoff of reusing a
    /// prepared handle across batches.
    pub prepared_speedup: f64,
}

/// Fault-injection lifecycle timings on the largest benchmark size.
#[derive(Debug, Clone, Serialize)]
pub struct FaultLifecycleReport {
    /// Crossbar output rows of the timed array.
    pub outputs: usize,
    /// Crossbar input columns of the timed array.
    pub inputs: usize,
    /// Batch size per timed call.
    pub batch: usize,
    /// Mean nanoseconds per prepare-miss batch through a
    /// [`FaultyBackend`] (plan apply + prepare + batched MVM) over the
    /// blocked kernel with a representative (1% stuck-on, 1% stuck-off,
    /// sigma=0.1 variation) plan.
    pub faulty_nanos: u64,
    /// `faulty_nanos` over the bare blocked backend's prepare-miss
    /// cost: the per-deployment fault-injection overhead.
    pub fault_overhead: f64,
    /// Whether a [`FaultyBackend`] carrying an *empty* fault plan
    /// returned outputs bit-identical to the bare blocked backend.
    pub faulty_noop_bit_identical: bool,
    /// Mean nanoseconds per `FaultSpec::compile` of the representative
    /// plan (the per-trial cost of drawing a fault realisation).
    pub fault_compile_nanos: u64,
    /// Mean nanoseconds per `FaultPlan::apply` to the benchmark array
    /// (the per-deployment cost of materialising the faulted
    /// conductances).
    pub fault_apply_nanos: u64,
}

/// The full benchmark report: one row per (size x threads) cell plus
/// the fault lifecycle section.
#[derive(Debug, Clone, Serialize)]
pub struct MvmBenchReport {
    /// Whether the reduced `--quick` matrix was run.
    pub quick: bool,
    /// The seed pinning every draw.
    pub seed: u64,
    /// The host's available parallelism when the benchmark ran. Thread
    /// counts above this measure oversubscription, not speedup.
    pub host_threads: usize,
    /// The (size x threads) matrix, sizes ascending, threads ascending
    /// within a size.
    pub rows: Vec<MvmBenchRow>,
    /// Fault-injection lifecycle timings on the largest size.
    pub faults: FaultLifecycleReport,
}

/// Mean nanoseconds per call of `f` over `iterations` timed calls
/// (callers warm up separately).
fn time_mean<R>(iterations: usize, mut f: impl FnMut() -> R) -> u64 {
    let start = Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(f());
    }
    (start.elapsed().as_nanos() / iterations.max(1) as u128) as u64
}

/// One benchmark size: programs the array once and emits a row per
/// thread count.
fn bench_size(
    outputs: usize,
    inputs: usize,
    batch: usize,
    iterations: usize,
    rng: &mut ChaCha8Rng,
) -> Result<Vec<MvmBenchRow>, String> {
    let w = Matrix::random_uniform(outputs, inputs, -1.0, 1.0, rng);
    let array =
        CrossbarArray::program(&w, &DeviceModel::ideal(), rng).map_err(|e| e.to_string())?;
    let samples = Matrix::random_uniform(batch, inputs, 0.0, 1.0, rng);
    let refs: Vec<&[f64]> = (0..batch).map(|b| samples.row(b)).collect();

    let naive = BackendKind::Naive.build();
    let blocked = BackendKind::Blocked.build();
    let prepared_naive = naive.prepare(&array).map_err(|e| e.to_string())?;
    let prepared_blocked = blocked.prepare(&array).map_err(|e| e.to_string())?;

    // Warm-up doubles as the correctness check: exact equality, not
    // approximate — the tiled kernels' contract is bit-identity.
    let out_naive = naive
        .mvm_prepared(&prepared_naive, &array, &refs)
        .map_err(|e| e.to_string())?;
    let blocked_identical = out_naive
        == blocked
            .mvm_prepared(&prepared_blocked, &array, &refs)
            .map_err(|e| e.to_string())?;

    let naive_nanos = time_mean(iterations, || {
        naive
            .mvm_prepared(&prepared_naive, &array, &refs)
            .expect("benchmark inputs are well-formed")
    });
    let blocked_nanos = time_mean(iterations, || {
        blocked
            .mvm_prepared(&prepared_blocked, &array, &refs)
            .expect("benchmark inputs are well-formed")
    });

    // A small probe batch keeps the prepare cost visible against the
    // evaluation, as in the oracle's query-sized batches.
    let probe = batch.clamp(1, 8);
    let probe_refs = &refs[..probe];

    let mut rows = Vec::with_capacity(THREAD_COUNTS.len());
    for threads in THREAD_COUNTS {
        let parallel = BackendSpec::new(BackendKind::Parallel)
            .with_threads(threads)
            .build()
            .map_err(|e| e.to_string())?;
        let prepared = parallel.prepare(&array).map_err(|e| e.to_string())?;
        let out_parallel = parallel
            .mvm_prepared(&prepared, &array, &refs)
            .map_err(|e| e.to_string())?;
        let bit_identical = blocked_identical && out_naive == out_parallel;

        let parallel_nanos = time_mean(iterations, || {
            parallel
                .mvm_prepared(&prepared, &array, &refs)
                .expect("benchmark inputs are well-formed")
        });
        let prepare_nanos = time_mean(iterations, || {
            parallel.prepare(&array).expect("array shape is fixed")
        });
        let cold_batch_nanos = time_mean(iterations, || {
            let fresh = parallel.prepare(&array).expect("array shape is fixed");
            parallel
                .mvm_prepared(&fresh, &array, probe_refs)
                .expect("benchmark inputs are well-formed")
        });
        let warm_batch_nanos = time_mean(iterations, || {
            parallel
                .mvm_prepared(&prepared, &array, probe_refs)
                .expect("benchmark inputs are well-formed")
        });

        rows.push(MvmBenchRow {
            outputs,
            inputs,
            devices: outputs * inputs,
            batch,
            iterations,
            threads,
            naive_nanos,
            blocked_nanos,
            parallel_nanos,
            parallel_speedup: naive_nanos as f64 / parallel_nanos.max(1) as f64,
            parallel_over_blocked: blocked_nanos as f64 / parallel_nanos.max(1) as f64,
            bit_identical,
            prepare_nanos,
            prepared_probe_batch: probe,
            cold_batch_nanos,
            warm_batch_nanos,
            prepared_speedup: cold_batch_nanos as f64 / warm_batch_nanos.max(1) as f64,
        });
    }
    Ok(rows)
}

/// Fault-injection lifecycle timings on one array.
fn bench_faults(
    outputs: usize,
    inputs: usize,
    batch: usize,
    iterations: usize,
    rng: &mut ChaCha8Rng,
) -> Result<FaultLifecycleReport, String> {
    let w = Matrix::random_uniform(outputs, inputs, -1.0, 1.0, rng);
    let array =
        CrossbarArray::program(&w, &DeviceModel::ideal(), rng).map_err(|e| e.to_string())?;
    let samples = Matrix::random_uniform(batch, inputs, 0.0, 1.0, rng);
    let refs: Vec<&[f64]> = (0..batch).map(|b| samples.row(b)).collect();

    let blocked = BackendKind::Blocked.build();
    let key = FaultKey::new(MVM_BENCH_SEED, 0);
    let fault_spec = FaultSpec::none()
        .with_stuck_on_rate(0.01)
        .with_stuck_off_rate(0.01)
        .with_variation_sigma(0.1);
    let plan = fault_spec
        .compile(outputs, inputs, key)
        .map_err(|e| e.to_string())?;
    let faulty = FaultyBackend::from_kind(BackendKind::Blocked, plan.clone());
    let noop = FaultyBackend::from_kind(
        BackendKind::Blocked,
        FaultSpec::none()
            .compile(outputs, inputs, key)
            .map_err(|e| e.to_string())?,
    );

    // The zero-fault bit-identity contract, on prepared handles.
    let prepared_blocked = blocked.prepare(&array).map_err(|e| e.to_string())?;
    let prepared_noop = noop.prepare(&array).map_err(|e| e.to_string())?;
    let faulty_noop_bit_identical = blocked
        .mvm_prepared(&prepared_blocked, &array, &refs)
        .map_err(|e| e.to_string())?
        == noop
            .mvm_prepared(&prepared_noop, &array, &refs)
            .map_err(|e| e.to_string())?;

    // Both sides timed prepare-miss (fresh handle per call), so the
    // ratio isolates what fault deployment adds to a deployment.
    let blocked_cold_nanos = time_mean(iterations, || {
        let fresh = blocked.prepare(&array).expect("array shape is fixed");
        blocked
            .mvm_prepared(&fresh, &array, &refs)
            .expect("benchmark inputs are well-formed")
    });
    let faulty_nanos = time_mean(iterations, || {
        let fresh = faulty.prepare(&array).expect("array shape is fixed");
        faulty
            .mvm_prepared(&fresh, &array, &refs)
            .expect("benchmark inputs are well-formed")
    });
    let fault_compile_nanos = time_mean(iterations, || {
        fault_spec
            .compile(outputs, inputs, key)
            .expect("spec validated above")
    });
    let fault_apply_nanos = time_mean(iterations, || plan.apply(&array).expect("shapes match"));

    Ok(FaultLifecycleReport {
        outputs,
        inputs,
        batch,
        faulty_nanos,
        fault_overhead: faulty_nanos as f64 / blocked_cold_nanos.max(1) as f64,
        faulty_noop_bit_identical,
        fault_compile_nanos,
        fault_apply_nanos,
    })
}

/// Runs the benchmark matrix, prints one summary line per row, and
/// persists the report (default `results/BENCH_mvm.json`).
///
/// # Errors
///
/// Fails if a crossbar cannot be programmed or if any backend disagrees
/// with the naive outputs on any bit.
pub fn run_mvm_bench(quick: bool, json_out: Option<&str>) -> Result<MvmBenchReport, String> {
    // (outputs, inputs, batch, iterations); sizes ascending. The full
    // matrix tops out at 1024x1024 = 1,048,576 devices.
    let sizes: &[(usize, usize, usize, usize)] = if quick {
        &[(128, 64, 32, 3), (256, 128, 64, 3)]
    } else {
        &[(256, 128, 64, 5), (512, 512, 128, 3), (1024, 1024, 256, 3)]
    };
    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut rng = ChaCha8Rng::seed_from_u64(MVM_BENCH_SEED);
    let mut rows = Vec::new();
    for &(outputs, inputs, batch, iterations) in sizes {
        rows.extend(bench_size(outputs, inputs, batch, iterations, &mut rng)?);
    }
    let &(outputs, inputs, batch, iterations) = sizes.last().expect("matrix is non-empty");
    let faults = bench_faults(outputs, inputs, batch, iterations, &mut rng)?;

    let report = MvmBenchReport {
        quick,
        seed: MVM_BENCH_SEED,
        host_threads,
        rows,
        faults,
    };
    for row in &report.rows {
        println!(
            "mvm {}x{} ({} devices) batch={} threads={}: naive {:.3} ms, blocked {:.3} ms, \
             parallel {:.3} ms ({:.2}x naive, {:.2}x blocked), prepared warm/cold {:.3}/{:.3} ms \
             ({:.2}x), bit-identical: {}",
            row.outputs,
            row.inputs,
            row.devices,
            row.batch,
            row.threads,
            row.naive_nanos as f64 / 1e6,
            row.blocked_nanos as f64 / 1e6,
            row.parallel_nanos as f64 / 1e6,
            row.parallel_speedup,
            row.parallel_over_blocked,
            row.warm_batch_nanos as f64 / 1e6,
            row.cold_batch_nanos as f64 / 1e6,
            row.prepared_speedup,
            row.bit_identical,
        );
    }
    println!("host threads: {host_threads} (thread counts above this measure oversubscription)");
    println!(
        "faults {}x{}: faulty(blocked) {:.3} ms, overhead {:.2}x, compile {:.3} ms, \
         apply {:.3} ms, zero-fault bit-identical: {}",
        report.faults.outputs,
        report.faults.inputs,
        report.faults.faulty_nanos as f64 / 1e6,
        report.faults.fault_overhead,
        report.faults.fault_compile_nanos as f64 / 1e6,
        report.faults.fault_apply_nanos as f64 / 1e6,
        report.faults.faulty_noop_bit_identical,
    );
    write_json(json_out.unwrap_or("results/BENCH_mvm.json"), &report);
    if let Some(bad) = report.rows.iter().find(|r| !r.bit_identical) {
        return Err(format!(
            "backend outputs diverged from naive at {}x{} threads={}",
            bad.outputs, bad.inputs, bad.threads
        ));
    }
    if !report.faults.faulty_noop_bit_identical {
        return Err("zero-fault FaultyBackend diverged from blocked outputs".into());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_reports_a_bit_identical_matrix() {
        let dir = std::env::temp_dir().join(format!("xbar_mvmbench_{}", std::process::id()));
        let path = dir.join("BENCH_mvm.json");
        let report = run_mvm_bench(true, path.to_str()).unwrap();

        // 2 quick sizes x 4 thread counts.
        assert_eq!(report.rows.len(), 8);
        assert!(report.host_threads >= 1);
        for row in &report.rows {
            assert!(
                row.bit_identical,
                "{}x{} t={}",
                row.outputs, row.inputs, row.threads
            );
            assert_eq!(row.devices, row.outputs * row.inputs);
            assert!(row.naive_nanos > 0 && row.blocked_nanos > 0 && row.parallel_nanos > 0);
            assert!(row.parallel_speedup > 0.0 && row.parallel_over_blocked > 0.0);
            assert!(row.prepare_nanos > 0 && row.cold_batch_nanos > 0 && row.warm_batch_nanos > 0);
            assert!(row.prepared_speedup > 0.0);
            assert!(row.prepared_probe_batch >= 1 && row.prepared_probe_batch <= row.batch);
        }
        assert_eq!(
            report.rows.iter().map(|r| r.threads).collect::<Vec<_>>(),
            [1, 2, 4, 8, 1, 2, 4, 8]
        );
        assert!(report.faults.faulty_noop_bit_identical);
        assert!(report.faults.fault_overhead > 0.0);
        assert!(report.faults.fault_compile_nanos > 0 && report.faults.fault_apply_nanos > 0);

        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.contains("\"host_threads\""));
        assert!(json.contains("\"parallel_speedup\""));
        assert!(json.contains("\"prepared_speedup\""));
        assert!(json.contains("\"fault_overhead\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
