//! The `xbar bench mvm` microbenchmark: naive vs blocked batched MVM.
//!
//! Times [`EvalBackend::mvm_batch`] for both backends on one
//! crossbar-shaped workload (1024x256 outputs x inputs, batch 256 by
//! default; smaller under `--quick`), verifies the outputs are
//! bit-identical, and writes a machine-readable report — CI uploads it
//! as the `BENCH_mvm.json` artifact. A third row times a
//! [`FaultyBackend`] wrapping the blocked kernel under a representative
//! fault plan, recording the fault-injection overhead.

use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use xbar_crossbar::array::CrossbarArray;
use xbar_crossbar::backend::{BackendKind, EvalBackend};
use xbar_crossbar::device::DeviceModel;
use xbar_faults::{FaultKey, FaultSpec, FaultyBackend};
use xbar_linalg::Matrix;

use crate::write_json;

/// The result of one naive-vs-blocked MVM comparison.
#[derive(Debug, Clone, Serialize)]
pub struct MvmBenchReport {
    /// Crossbar output rows.
    pub outputs: usize,
    /// Crossbar input columns.
    pub inputs: usize,
    /// Batch size (input vectors per `mvm_batch` call).
    pub batch: usize,
    /// Timed iterations per backend (after one warm-up).
    pub iterations: usize,
    /// Mean nanoseconds per `mvm_batch` call, naive backend.
    pub naive_nanos: u64,
    /// Mean nanoseconds per `mvm_batch` call, blocked backend.
    pub blocked_nanos: u64,
    /// `naive_nanos / blocked_nanos`.
    pub speedup: f64,
    /// Whether the two backends returned bit-identical outputs.
    pub bit_identical: bool,
    /// Mean nanoseconds per `mvm_batch` call, [`FaultyBackend`] over the
    /// blocked backend with a representative (1% stuck-on, 1% stuck-off,
    /// σ=0.1 variation) fault plan.
    pub faulty_nanos: u64,
    /// `faulty_nanos / blocked_nanos`: the fault-injection overhead.
    pub fault_overhead: f64,
    /// Whether a [`FaultyBackend`] carrying an *empty* fault plan
    /// returned outputs bit-identical to the bare blocked backend.
    pub faulty_noop_bit_identical: bool,
    /// Mean nanoseconds per `FaultSpec::compile` of the representative
    /// plan (the per-trial cost of drawing a fault realisation).
    pub fault_compile_nanos: u64,
    /// Mean nanoseconds per `FaultPlan::apply` to the benchmark array
    /// (the per-deployment cost of materialising the faulted
    /// conductances).
    pub fault_apply_nanos: u64,
}

fn time_backend(
    backend: &dyn EvalBackend,
    array: &CrossbarArray,
    refs: &[&[f64]],
    iterations: usize,
) -> u64 {
    let start = Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(
            backend
                .mvm_batch(array, refs)
                .expect("benchmark inputs are well-formed"),
        );
    }
    (start.elapsed().as_nanos() / iterations as u128) as u64
}

/// Runs the microbenchmark, prints a summary line, and persists the
/// report (default `results/BENCH_mvm.json`).
///
/// # Errors
///
/// Fails if the crossbar cannot be programmed or if the two backends
/// disagree on any output bit.
pub fn run_mvm_bench(quick: bool, json_out: Option<&str>) -> Result<MvmBenchReport, String> {
    let (outputs, inputs, batch, iterations) = if quick {
        (256, 128, 64, 3)
    } else {
        (1024, 256, 256, 5)
    };
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let w = Matrix::random_uniform(outputs, inputs, -1.0, 1.0, &mut rng);
    let array =
        CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).map_err(|e| e.to_string())?;
    let samples = Matrix::random_uniform(batch, inputs, 0.0, 1.0, &mut rng);
    let refs: Vec<&[f64]> = (0..batch).map(|b| samples.row(b)).collect();

    let naive = BackendKind::Naive.build();
    let blocked = BackendKind::Blocked.build();

    // Warm-up doubles as the correctness check: exact equality, not
    // approximate — the blocked kernel's contract is bit-identity.
    let out_naive = naive.mvm_batch(&array, &refs).map_err(|e| e.to_string())?;
    let out_blocked = blocked
        .mvm_batch(&array, &refs)
        .map_err(|e| e.to_string())?;
    let bit_identical = out_naive == out_blocked;

    // The faulty row: a representative non-trivial plan over the
    // blocked kernel, plus the zero-fault bit-identity contract.
    let key = FaultKey::new(77, 0);
    let plan = FaultSpec::none()
        .with_stuck_on_rate(0.01)
        .with_stuck_off_rate(0.01)
        .with_variation_sigma(0.1)
        .compile(outputs, inputs, key)
        .map_err(|e| e.to_string())?;
    let faulty = FaultyBackend::from_kind(BackendKind::Blocked, plan.clone());
    let noop = FaultyBackend::from_kind(
        BackendKind::Blocked,
        FaultSpec::none()
            .compile(outputs, inputs, key)
            .map_err(|e| e.to_string())?,
    );
    let faulty_noop_bit_identical =
        noop.mvm_batch(&array, &refs).map_err(|e| e.to_string())? == out_blocked;

    let naive_nanos = time_backend(naive.as_ref(), &array, &refs, iterations);
    let blocked_nanos = time_backend(blocked.as_ref(), &array, &refs, iterations);
    let faulty_nanos = time_backend(&faulty, &array, &refs, iterations);
    let speedup = naive_nanos as f64 / blocked_nanos.max(1) as f64;
    let fault_overhead = faulty_nanos as f64 / blocked_nanos.max(1) as f64;

    // Plan lifecycle rows: what a campaign pays per trial to draw a
    // fault realisation (compile) and to bake it into an array (apply).
    let fault_spec = FaultSpec::none()
        .with_stuck_on_rate(0.01)
        .with_stuck_off_rate(0.01)
        .with_variation_sigma(0.1);
    let fault_compile_nanos = {
        let start = Instant::now();
        for _ in 0..iterations {
            std::hint::black_box(
                fault_spec
                    .compile(outputs, inputs, key)
                    .expect("spec validated above"),
            );
        }
        (start.elapsed().as_nanos() / iterations as u128) as u64
    };
    let fault_apply_nanos = {
        let start = Instant::now();
        for _ in 0..iterations {
            std::hint::black_box(plan.apply(&array).expect("shapes match"));
        }
        (start.elapsed().as_nanos() / iterations as u128) as u64
    };

    let report = MvmBenchReport {
        outputs,
        inputs,
        batch,
        iterations,
        naive_nanos,
        blocked_nanos,
        speedup,
        bit_identical,
        faulty_nanos,
        fault_overhead,
        faulty_noop_bit_identical,
        fault_compile_nanos,
        fault_apply_nanos,
    };
    println!(
        "mvm_batch {outputs}x{inputs} batch={batch}: naive {:.3} ms, blocked {:.3} ms, \
         speedup {speedup:.2}x, bit-identical: {bit_identical}",
        naive_nanos as f64 / 1e6,
        blocked_nanos as f64 / 1e6,
    );
    println!(
        "faulty(blocked) {:.3} ms, fault overhead {fault_overhead:.2}x, \
         zero-fault bit-identical: {faulty_noop_bit_identical}",
        faulty_nanos as f64 / 1e6,
    );
    println!(
        "fault plan: compile {:.3} ms, apply {:.3} ms",
        fault_compile_nanos as f64 / 1e6,
        fault_apply_nanos as f64 / 1e6,
    );
    write_json(json_out.unwrap_or("results/BENCH_mvm.json"), &report);
    if !bit_identical {
        return Err("blocked backend diverged from naive outputs".into());
    }
    if !faulty_noop_bit_identical {
        return Err("zero-fault FaultyBackend diverged from blocked outputs".into());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_reports_bit_identical_outputs() {
        let dir = std::env::temp_dir().join(format!("xbar_mvmbench_{}", std::process::id()));
        let path = dir.join("BENCH_mvm.json");
        let report = run_mvm_bench(true, path.to_str()).unwrap();
        assert!(report.bit_identical);
        assert!(report.faulty_noop_bit_identical);
        assert!(report.naive_nanos > 0 && report.blocked_nanos > 0 && report.faulty_nanos > 0);
        assert!(report.fault_overhead > 0.0);
        assert!(report.fault_compile_nanos > 0 && report.fault_apply_nanos > 0);
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"bit_identical\""));
        assert!(json.contains("\"fault_overhead\""));
        assert!(json.contains("\"fault_compile_nanos\""));
        assert!(json.contains("\"fault_apply_nanos\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
