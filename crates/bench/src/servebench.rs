//! The `xbar bench serve` throughput benchmark: the campaign service
//! under concurrent sessions, coalescing on vs off.
//!
//! Starts an in-process [`xbar_serve::Server`] hosting one power-only
//! victim on a blocked-kernel crossbar, drives 1/8/64 concurrent
//! client sessions issuing single-query requests, and records
//! aggregate queries/sec per configuration — CI uploads the report as
//! the `BENCH_serve.json` artifact. The interesting row is 64
//! sessions: cross-session coalescing fills one blocked evaluation
//! batch from unrelated clients' queries, amortising the per-call crossbar
//! traversal that single-query evaluation pays 64 times over.

use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_crossbar::backend::BackendKind;
use xbar_crossbar::power::PowerModel;
use xbar_nn::activation::Activation;
use xbar_nn::network::SingleLayerNet;
use xbar_obs::Histogram;
use xbar_serve::coalesce::CoalescePolicy;
use xbar_serve::{Client, ServeConfig, Server, VictimRegistry};

use crate::write_json;

/// One (session count, coalescing) throughput measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchRow {
    /// Concurrent client sessions.
    pub sessions: usize,
    /// Whether cross-session batch coalescing was enabled.
    pub coalesce: bool,
    /// Total queries served across all sessions.
    pub queries: usize,
    /// Wall-clock nanoseconds from first request to last reply.
    pub elapsed_nanos: u64,
    /// Aggregate throughput, queries per second.
    pub qps: f64,
    /// Median per-query round-trip latency, nanoseconds (client-side,
    /// estimated from a log-spaced [`Histogram`] merged across all
    /// session threads).
    pub latency_p50_nanos: f64,
    /// 95th-percentile per-query round-trip latency, nanoseconds.
    pub latency_p95_nanos: f64,
    /// 99th-percentile per-query round-trip latency, nanoseconds.
    pub latency_p99_nanos: f64,
    /// Worst observed per-query round-trip latency, nanoseconds.
    pub latency_max_nanos: u64,
}

/// The full serve-throughput report.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    /// Victim crossbar output rows.
    pub outputs: usize,
    /// Victim crossbar input columns.
    pub inputs: usize,
    /// Single-input queries issued per session.
    pub queries_per_session: usize,
    /// Worker threads in the server's evaluation pool.
    pub workers: usize,
    /// One row per (sessions, coalescing) configuration.
    pub rows: Vec<ServeBenchRow>,
    /// `qps(coalesce on) / qps(coalesce off)` at the highest session
    /// count.
    pub coalesce_speedup_at_max_sessions: f64,
    /// Whether coalescing improved aggregate throughput at the highest
    /// session count.
    pub coalescing_wins_at_max_sessions: bool,
}

/// Session `s`'s `q`-th benchmark input, deterministic and cheap.
fn bench_input(s: usize, q: usize, dim: usize) -> Vec<f64> {
    (0..dim)
        .map(|j| (((s * 131 + q * 17 + j) as f64) * 0.013).sin())
        .collect()
}

/// Runs one (sessions, coalescing) configuration against a fresh
/// server and returns its throughput row.
fn run_config(
    victim: &Oracle,
    sessions: usize,
    coalesce: bool,
    queries_per_session: usize,
    workers: usize,
    dim: usize,
) -> Result<ServeBenchRow, String> {
    let mut registry = VictimRegistry::new();
    registry
        .insert("bench", victim.clone())
        .map_err(|e| e.to_string())?;
    let config = ServeConfig {
        workers,
        coalesce: CoalescePolicy {
            enabled: coalesce,
            ..CoalescePolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry, config).map_err(|e| e.to_string())?;
    let addr = server.local_addr();

    let start = Instant::now();
    // Each session thread records its round-trip latencies into its own
    // histogram; the merge is associative, so the merged histogram is
    // exactly what one shared (but contended) histogram would hold.
    let latency = std::thread::scope(|scope| -> Result<Histogram, String> {
        let handles: Vec<_> = (0..sessions)
            .map(|s| {
                scope.spawn(move || -> Result<Histogram, String> {
                    let mut latency = Histogram::new();
                    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                    let id = format!("bench-{s}");
                    client
                        .hello(&id, Some("bench"), Some(7000 + s as u64), None)
                        .map_err(|e| e.to_string())?;
                    for q in 0..queries_per_session {
                        let input = bench_input(s, q, dim);
                        let sent = Instant::now();
                        client
                            .query(&id, std::slice::from_ref(&input))
                            .map_err(|e| e.to_string())?;
                        latency.record(sent.elapsed().as_nanos() as u64);
                    }
                    client.close(&id).map_err(|e| e.to_string())?;
                    Ok(latency)
                })
            })
            .collect();
        let mut merged = Histogram::new();
        for handle in handles {
            let latency = handle
                .join()
                .map_err(|_| "bench client thread panicked".to_string())??;
            merged.merge(&latency);
        }
        Ok(merged)
    })?;
    let elapsed = start.elapsed();
    server.shutdown();

    let queries = sessions * queries_per_session;
    let elapsed_nanos = elapsed.as_nanos() as u64;
    Ok(ServeBenchRow {
        sessions,
        coalesce,
        queries,
        elapsed_nanos,
        qps: queries as f64 / (elapsed_nanos.max(1) as f64 / 1e9),
        latency_p50_nanos: latency.quantile(0.50),
        latency_p95_nanos: latency.quantile(0.95),
        latency_p99_nanos: latency.quantile(0.99),
        latency_max_nanos: latency.max(),
    })
}

/// Runs the serve throughput benchmark, prints one line per
/// configuration, and persists the report (default
/// `results/BENCH_serve.json`).
///
/// # Errors
///
/// Fails if the server cannot start or any benchmark session errors.
pub fn run_serve_bench(quick: bool, json_out: Option<&str>) -> Result<ServeBenchReport, String> {
    // A tall crossbar (many output rows, few inputs) keeps the wire
    // cost per query small relative to the per-batch conductance
    // reduction that coalescing amortises.
    let (outputs, inputs, queries_per_session) = if quick {
        (512, 128, 16)
    } else {
        (2048, 128, 48)
    };
    let workers = 4;
    let session_counts = [1usize, 8, 64];

    // A power-only victim — the paper's attacker model (power side
    // channel, no output access) and the shape coalescing amortises:
    // the blocked backend materialises the array's input-line
    // conductance totals once per power batch, so a single-query
    // batch pays the full O(outputs x inputs) reduction per query
    // while a coalesced batch pays it once for every session in the
    // batch. Noise sources stay off so evaluation takes the batched
    // kernel (per-device noise draws are inherently per-sample).
    let mut rng = ChaCha8Rng::seed_from_u64(4096);
    let net = SingleLayerNet::new_random(inputs, outputs, Activation::Identity, &mut rng);
    let cfg = OracleConfig::ideal()
        .with_access(OutputAccess::None)
        .with_backend(BackendKind::Blocked)
        .with_power(PowerModel::default());
    let victim = Oracle::new(net, &cfg, 2026).map_err(|e| e.to_string())?;

    let mut rows = Vec::new();
    for &sessions in &session_counts {
        for coalesce in [false, true] {
            let row = run_config(
                &victim,
                sessions,
                coalesce,
                queries_per_session,
                workers,
                inputs,
            )?;
            println!(
                "serve {:>2} sessions, coalescing {:>3}: {:>6} queries in {:>8.1} ms, \
                 {:>9.0} q/s, p50/p95/p99 {:.2}/{:.2}/{:.2} ms",
                row.sessions,
                if row.coalesce { "on" } else { "off" },
                row.queries,
                row.elapsed_nanos as f64 / 1e6,
                row.qps,
                row.latency_p50_nanos / 1e6,
                row.latency_p95_nanos / 1e6,
                row.latency_p99_nanos / 1e6,
            );
            rows.push(row);
        }
    }

    let max_sessions = *session_counts.last().expect("non-empty");
    let qps_at = |coalesce: bool| {
        rows.iter()
            .find(|r| r.sessions == max_sessions && r.coalesce == coalesce)
            .map(|r| r.qps)
            .unwrap_or(0.0)
    };
    let coalesce_speedup_at_max_sessions = qps_at(true) / qps_at(false).max(f64::MIN_POSITIVE);
    let coalescing_wins_at_max_sessions = coalesce_speedup_at_max_sessions > 1.0;
    println!(
        "coalescing at {max_sessions} sessions: {coalesce_speedup_at_max_sessions:.2}x \
         ({})",
        if coalescing_wins_at_max_sessions {
            "improves aggregate throughput"
        } else {
            "no improvement on this run"
        }
    );

    let report = ServeBenchReport {
        outputs,
        inputs,
        queries_per_session,
        workers,
        rows,
        coalesce_speedup_at_max_sessions,
        coalescing_wins_at_max_sessions,
    };
    write_json(json_out.unwrap_or("results/BENCH_serve.json"), &report);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_measures_all_configurations() {
        let dir = std::env::temp_dir().join(format!("xbar_servebench_{}", std::process::id()));
        let path = dir.join("BENCH_serve.json");
        let report = run_serve_bench(true, path.to_str()).unwrap();
        assert_eq!(report.rows.len(), 6);
        for row in &report.rows {
            assert_eq!(row.queries, row.sessions * report.queries_per_session);
            assert!(row.qps > 0.0, "row {row:?}");
            // Latency percentiles are monotone and bounded by the max.
            assert!(row.latency_p50_nanos > 0.0, "row {row:?}");
            assert!(
                row.latency_p95_nanos >= row.latency_p50_nanos,
                "row {row:?}"
            );
            assert!(
                row.latency_p99_nanos >= row.latency_p95_nanos,
                "row {row:?}"
            );
            assert!(
                row.latency_p99_nanos <= row.latency_max_nanos as f64,
                "row {row:?}"
            );
        }
        // The speedup is machine-dependent; the report just has to
        // record it (the full run is where the win is demonstrated).
        assert!(report.coalesce_speedup_at_max_sessions > 0.0);
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"coalesce_speedup_at_max_sessions\""));
        assert!(json.contains("\"qps\""));
        assert!(json.contains("\"latency_p50_nanos\""));
        assert!(json.contains("\"latency_p95_nanos\""));
        assert!(json.contains("\"latency_p99_nanos\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
