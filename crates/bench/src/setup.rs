//! Shared experiment setup: dataset generation, victim training, and the
//! four (dataset x head) configurations of the paper's evaluation.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use xbar_data::synth::digits::DigitsConfig;
use xbar_data::synth::objects::ObjectsConfig;
use xbar_data::Dataset;
use xbar_nn::activation::Activation;
use xbar_nn::loss::Loss;
use xbar_nn::network::SingleLayerNet;
use xbar_nn::train::{train, SgdConfig};

/// Which procedural dataset stands in for which paper dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// MNIST stand-in: 28x28 grayscale digit glyphs.
    Digits,
    /// CIFAR-10 stand-in: 32x32x3 colour textures.
    Objects,
}

impl DatasetKind {
    /// Display name used in tables (kept alongside the paper's name).
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::Digits => "digits (MNIST-like)",
            DatasetKind::Objects => "objects (CIFAR-like)",
        }
    }

    /// Generates `n` samples with the given seed.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        match self {
            DatasetKind::Digits => DigitsConfig::default().num_samples(n).seed(seed).generate(),
            DatasetKind::Objects => ObjectsConfig::default()
                .num_samples(n)
                .seed(seed)
                .generate(),
        }
    }
}

/// The two output-head configurations of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeadKind {
    /// Linear output trained with MSE loss.
    LinearMse,
    /// Softmax output trained with categorical cross-entropy.
    SoftmaxCe,
}

impl HeadKind {
    /// Display name used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            HeadKind::LinearMse => "Linear",
            HeadKind::SoftmaxCe => "Softmax",
        }
    }

    /// The activation for this head.
    pub fn activation(&self) -> Activation {
        match self {
            HeadKind::LinearMse => Activation::Identity,
            HeadKind::SoftmaxCe => Activation::Softmax,
        }
    }

    /// The training loss for this head.
    pub fn loss(&self) -> Loss {
        match self {
            HeadKind::LinearMse => Loss::Mse,
            HeadKind::SoftmaxCe => Loss::CrossEntropy,
        }
    }
}

/// A trained victim plus its data splits.
#[derive(Debug, Clone)]
pub struct TrainedVictim {
    /// The trained network.
    pub net: SingleLayerNet,
    /// Training portion.
    pub train: Dataset,
    /// Held-out test portion.
    pub test: Dataset,
    /// Clean test accuracy of the trained network.
    pub test_accuracy: f64,
}

/// Victim-training hyperparameters per head. The linear+MSE head needs a
/// smaller step on the high-dimensional objects dataset (lr 0.05 with
/// momentum diverges there).
pub fn victim_sgd(head: HeadKind) -> SgdConfig {
    match head {
        HeadKind::LinearMse => SgdConfig {
            learning_rate: 0.01,
            momentum: 0.9,
            weight_decay: 0.0,
            epochs: 25,
            batch_size: 32,
            lr_decay: 1.0,
            shuffle: true,
        },
        HeadKind::SoftmaxCe => SgdConfig {
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
            epochs: 25,
            batch_size: 32,
            lr_decay: 1.0,
            shuffle: true,
        },
    }
}

/// Generates data, splits 85/15, and trains a victim for the given
/// configuration. `seed` controls both data generation and training, so
/// independent runs use different seeds.
pub fn train_victim(
    dataset: DatasetKind,
    head: HeadKind,
    num_samples: usize,
    seed: u64,
) -> TrainedVictim {
    let ds = dataset.generate(num_samples, seed);
    let split = ds.split_frac(0.85).expect("fraction in range");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED);
    let mut net = SingleLayerNet::new_random(
        ds.num_features(),
        ds.num_classes(),
        head.activation(),
        &mut rng,
    );
    train(
        &mut net,
        &split.train,
        head.loss(),
        &victim_sgd(head),
        &mut rng,
    )
    .expect("victim training is well-configured");
    let preds = net
        .predict_batch(split.test.inputs())
        .expect("shapes agree");
    let test_accuracy = xbar_nn::metrics::accuracy(&preds, split.test.labels());
    TrainedVictim {
        net,
        train: split.train,
        test: split.test,
        test_accuracy,
    }
}

/// The four (dataset, head) configurations of Table I / Fig. 3 / Fig. 4,
/// in the paper's panel order.
pub fn paper_configs() -> [(DatasetKind, HeadKind); 4] {
    [
        (DatasetKind::Digits, HeadKind::LinearMse),
        (DatasetKind::Digits, HeadKind::SoftmaxCe),
        (DatasetKind::Objects, HeadKind::LinearMse),
        (DatasetKind::Objects, HeadKind::SoftmaxCe),
    ]
}

/// Parses an optional `--json <path>` (and `--quick`) from the command
/// line; returns `(json_path, quick)`. `--quick` shrinks experiment sizes
/// for smoke-testing.
pub fn parse_args() -> (Option<String>, bool) {
    let args: Vec<String> = std::env::args().collect();
    let mut json = None;
    let mut quick = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                if i + 1 < args.len() {
                    json = Some(args[i + 1].clone());
                    i += 1;
                }
            }
            "--quick" => quick = true,
            other => eprintln!("note: ignoring unknown argument {other}"),
        }
        i += 1;
    }
    (json, quick)
}

/// Writes a serialisable result to `path` as pretty JSON (creating parent
/// directories), logging rather than failing on I/O errors so a missing
/// `results/` directory never loses an experiment run.
pub fn write_json<T: Serialize>(path: &str, value: &T) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(path, s) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                println!("wrote {path}");
            }
        }
        Err(e) => eprintln!("warning: could not serialise results: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_pairings() {
        assert_eq!(HeadKind::LinearMse.loss(), Loss::Mse);
        assert_eq!(HeadKind::SoftmaxCe.activation(), Activation::Softmax);
        assert!(DatasetKind::Digits.label().contains("MNIST"));
        assert_eq!(paper_configs().len(), 4);
    }

    #[test]
    fn train_victim_produces_reasonable_model() {
        let v = train_victim(DatasetKind::Digits, HeadKind::SoftmaxCe, 600, 1);
        assert!(v.test_accuracy > 0.6, "accuracy {}", v.test_accuracy);
        assert_eq!(v.net.num_inputs(), 784);
        assert_eq!(v.net.num_outputs(), 10);
        assert!(!v.train.is_empty() && !v.test.is_empty());
    }

    #[test]
    fn dataset_generation_shapes() {
        let d = DatasetKind::Digits.generate(20, 2);
        assert_eq!(d.num_features(), 784);
        let o = DatasetKind::Objects.generate(20, 2);
        assert_eq!(o.num_features(), 3072);
    }
}
