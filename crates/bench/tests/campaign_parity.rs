//! Acceptance tests for the campaign runtime wiring: a fig4-style grid
//! run through `run_campaign` must (1) reproduce the historical serial
//! loop bit for bit at any thread count, (2) produce byte-identical
//! journals across thread counts once sorted by trial index, and
//! (3) resume from a truncated journal without re-running or
//! duplicating completed trials.

use std::fs;
use std::path::PathBuf;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_bench::campaign::{
    Fig4Runner, Fig4Spec, Fig4TrialOutput, FIG4_ORACLE_SEED, FIG4_VICTIM_SEED,
};
use xbar_bench::{train_victim, DatasetKind, HeadKind};
use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_core::pixel_attack::{single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources};
use xbar_core::probe::probe_column_norms;
use xbar_core::sweep::method_reps;
use xbar_crossbar::backend::BackendKind;
use xbar_runtime::journal::read_journal;
use xbar_runtime::{run_campaign, Campaign, ExecutorConfig, NullSink, TrialStatus};

/// A shrunken fig4 panel: all five methods on digits/softmax, two
/// strengths, a small victim. Same code path as the real grid.
fn tiny_campaign() -> Campaign<Fig4Spec> {
    let strengths = vec![0.0, 4.0];
    let mut campaign = Campaign::new("fig4-tiny", FIG4_VICTIM_SEED);
    for method in PixelAttackMethod::all() {
        campaign.push_trial(Fig4Spec {
            dataset: DatasetKind::Digits,
            head: HeadKind::SoftmaxCe,
            method,
            strengths: strengths.clone(),
            num_samples: 160,
            stochastic_reps: 2,
        });
    }
    campaign
}

/// The historical serial loop of the fig4 binary, reproduced verbatim:
/// one victim and one oracle shared across all methods of the panel.
fn serial_reference(campaign: &Campaign<Fig4Spec>) -> Vec<Fig4TrialOutput> {
    let spec0 = &campaign.trials[0];
    let victim = train_victim(
        spec0.dataset,
        spec0.head,
        spec0.num_samples,
        FIG4_VICTIM_SEED,
    );
    let mut oracle = Oracle::new(
        victim.net.clone(),
        &OracleConfig::ideal().with_access(OutputAccess::None),
        FIG4_ORACLE_SEED,
    )
    .unwrap();
    let norms = probe_column_norms(&mut oracle, 1.0, 1).unwrap();
    let probe_queries = oracle.query_count();
    let clean_accuracy = oracle
        .eval_accuracy(victim.test.inputs(), victim.test.labels())
        .unwrap();
    let targets = victim.test.one_hot_targets();

    campaign
        .trials
        .iter()
        .map(|spec| {
            let reps = method_reps(spec.method, spec.stochastic_reps);
            let accuracies = spec
                .strengths
                .iter()
                .map(|&eps| {
                    let mut acc_sum = 0.0;
                    for rep in 0..reps {
                        let mut rng = ChaCha8Rng::seed_from_u64(1000 + rep as u64);
                        let res = PixelAttackResources::full(&norms, &victim.net, spec.head.loss());
                        let adv = single_pixel_attack_batch(
                            spec.method,
                            victim.test.inputs(),
                            &targets,
                            res,
                            eps,
                            &mut rng,
                        )
                        .unwrap();
                        acc_sum += oracle.eval_accuracy(&adv, victim.test.labels()).unwrap();
                    }
                    acc_sum / reps as f64
                })
                .collect();
            Fig4TrialOutput {
                clean_accuracy,
                probe_queries,
                accuracies,
            }
        })
        .collect()
}

fn tmp(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("xbar-campaign-parity-{tag}-{}", std::process::id()));
    p
}

/// Header line first, record lines sorted (the `{"trial":N` prefix makes
/// the textual sort coincide with index order for single-digit grids).
fn canonical_journal(path: &PathBuf) -> String {
    let text = fs::read_to_string(path).unwrap();
    let mut lines = text.lines();
    let header = lines.next().unwrap().to_string();
    let mut records: Vec<&str> = lines.collect();
    records.sort_unstable();
    format!("{header}\n{}", records.join("\n"))
}

#[test]
fn campaign_matches_serial_reference_across_thread_counts() {
    let campaign = tiny_campaign();
    let reference = serial_reference(&campaign);

    let journals = [tmp("t1"), tmp("t4"), tmp("t4-blocked")];
    for (threads, backend, journal) in [
        (1, BackendKind::Naive, &journals[0]),
        (4, BackendKind::Naive, &journals[1]),
        (4, BackendKind::Blocked, &journals[2]),
    ] {
        let report = run_campaign(
            &Fig4Runner::new(backend),
            &campaign,
            &ExecutorConfig::with_threads(threads),
            Some(journal),
            false,
            &mut NullSink,
        )
        .unwrap();
        assert!(report.all_ok());
        assert_eq!(report.outputs.len(), campaign.len());
        for (i, output) in report.outputs.iter().enumerate() {
            assert_eq!(
                output.as_ref().unwrap(),
                &reference[i],
                "trial {i} diverged from the serial path at {threads} thread(s), {backend} backend"
            );
        }
    }

    // The checkpoints are byte-identical too, once sorted by trial —
    // across thread counts AND across evaluation backends.
    assert_eq!(
        canonical_journal(&journals[0]),
        canonical_journal(&journals[1])
    );
    assert_eq!(
        canonical_journal(&journals[0]),
        canonical_journal(&journals[2])
    );
    for journal in &journals {
        fs::remove_file(journal).ok();
    }
}

#[test]
fn resume_after_truncation_skips_completed_trials() {
    let campaign = tiny_campaign();
    let journal = tmp("resume");

    let full = run_campaign(
        &Fig4Runner::default(),
        &campaign,
        &ExecutorConfig::with_threads(2),
        Some(&journal),
        false,
        &mut NullSink,
    )
    .unwrap();
    assert!(full.all_ok());

    // Simulate a kill: drop the final record line from the journal.
    let text = fs::read_to_string(&journal).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    lines.pop();
    fs::write(&journal, format!("{}\n", lines.join("\n"))).unwrap();

    let resumed = run_campaign(
        &Fig4Runner::default(),
        &campaign,
        &ExecutorConfig::with_threads(2),
        Some(&journal),
        true,
        &mut NullSink,
    )
    .unwrap();
    assert!(resumed.all_ok());
    assert_eq!(resumed.metrics.skipped, campaign.len() - 1);
    assert_eq!(resumed.metrics.completed, 1);

    // Resumed outputs (one recomputed, the rest deserialised from the
    // journal) equal the uninterrupted run's outputs exactly.
    for (i, (a, b)) in full.outputs.iter().zip(resumed.outputs.iter()).enumerate() {
        assert_eq!(a, b, "trial {i} changed across resume");
    }

    // No duplicates: exactly one Ok record per trial.
    let (_, records) = read_journal(&journal).unwrap();
    let mut per_trial = vec![0usize; campaign.len()];
    for record in &records {
        assert_eq!(record.status, TrialStatus::Ok);
        per_trial[record.trial] += 1;
    }
    assert!(per_trial.iter().all(|&count| count == 1), "{per_trial:?}");
    fs::remove_file(&journal).ok();
}
