//! Acceptance tests for the observability layer: the deterministic
//! content of an `xbar-obs` trace — per-trial oracle-query counters,
//! power-probe counters, value summaries, and span counts — must be
//! bit-identical across executor thread counts. Only the `*_nanos`
//! wall-clock fields may differ.

use std::path::PathBuf;

use serde::Value;
use xbar_bench::campaign::{fig4_campaign, Fig4Runner, Fig4Spec, FIG4_VICTIM_SEED};
use xbar_bench::{DatasetKind, HeadKind};
use xbar_core::pixel_attack::PixelAttackMethod;
use xbar_crossbar::backend::BackendKind;
use xbar_runtime::{run_campaign_traced, Campaign, ExecutorConfig, NullSink};

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xbar_trace_det_{tag}_{}.jsonl", std::process::id()))
}

/// A shrunken fig4 panel: all five methods on digits/softmax, two
/// strengths, a small victim. Same code path as the real grid.
fn tiny_campaign() -> Campaign<Fig4Spec> {
    let strengths = vec![0.0, 4.0];
    let mut campaign = Campaign::new("fig4-tiny-trace", FIG4_VICTIM_SEED);
    for method in PixelAttackMethod::all() {
        campaign.push_trial(Fig4Spec {
            dataset: DatasetKind::Digits,
            head: HeadKind::SoftmaxCe,
            method,
            strengths: strengths.clone(),
            num_samples: 160,
            stochastic_reps: 2,
        });
    }
    campaign
}

/// Renders the deterministic half of a trace: per trial (sorted by
/// index) the status, attempts, counters, value summaries, and span
/// *names and counts* — everything except the `*_nanos` fields.
fn deterministic_view(path: &PathBuf) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap();
    let mut rows = Vec::new();
    for line in text.lines() {
        let record = serde_json::parse_value(line).unwrap();
        if record.get("kind").and_then(Value::as_str) != Some("trial") {
            continue;
        }
        let trial = match record.get("trial") {
            Some(Value::U64(t)) => *t,
            other => panic!("bad trial field: {other:?}"),
        };
        let counters = serde_json::to_string(record.get("counters").expect("counters")).unwrap();
        let values = serde_json::to_string(record.get("values").expect("values")).unwrap();
        let span_counts: Vec<String> = record
            .get("spans")
            .and_then(Value::as_object)
            .expect("spans")
            .iter()
            .map(|(name, stats)| {
                let count = stats
                    .get("count")
                    .map(|c| serde_json::to_string(c).unwrap());
                format!("{name}:{}", count.unwrap_or_default())
            })
            .collect();
        rows.push((
            trial,
            format!(
                "trial={trial} status={:?} attempts={:?} counters={counters} values={values} spans={}",
                record.get("status").and_then(Value::as_str),
                record.get("attempts"),
                span_counts.join(",")
            ),
        ));
    }
    rows.sort_by_key(|(trial, _)| *trial);
    rows.into_iter().map(|(_, row)| row).collect()
}

fn assert_thread_invariant(campaign: &Campaign<Fig4Spec>, tag: &str) {
    let run = |threads: usize, backend: BackendKind| {
        let path = tmp(&format!("{tag}_t{threads}_{backend}"));
        let report = run_campaign_traced(
            &Fig4Runner::new(backend),
            campaign,
            &ExecutorConfig::with_threads(threads),
            None,
            false,
            &mut NullSink,
            Some(&path),
        )
        .unwrap();
        assert!(report.all_ok());
        (
            path,
            report.metrics.oracle_queries,
            report.metrics.probe_measurements,
        )
    };
    let (serial_path, serial_queries, serial_probes) = run(1, BackendKind::Naive);
    let (parallel_path, parallel_queries, parallel_probes) = run(4, BackendKind::Naive);
    let (blocked_path, blocked_queries, blocked_probes) = run(4, BackendKind::Blocked);

    let serial = deterministic_view(&serial_path);
    let parallel = deterministic_view(&parallel_path);
    let blocked = deterministic_view(&blocked_path);
    std::fs::remove_file(&serial_path).ok();
    std::fs::remove_file(&parallel_path).ok();
    std::fs::remove_file(&blocked_path).ok();

    assert_eq!(serial.len(), campaign.len());
    assert_eq!(
        serial, parallel,
        "deterministic trace content must be thread-count-invariant"
    );
    assert_eq!(
        serial, blocked,
        "deterministic trace content must be backend-invariant"
    );
    assert_eq!(
        (serial_queries, serial_probes),
        (blocked_queries, blocked_probes)
    );
    // The per-trial records really carry the side-channel accounting.
    assert!(
        serial
            .iter()
            .all(|row| row.contains("oracle.query") && row.contains("probe.measurement")),
        "{serial:#?}"
    );
    // And the executor's aggregate metrics agree across thread counts.
    assert_eq!(serial_queries, parallel_queries);
    assert_eq!(serial_probes, parallel_probes);
    assert!(serial_queries > 0 && serial_probes > 0);
}

#[test]
fn tiny_fig4_trace_counters_are_thread_invariant() {
    assert_thread_invariant(&tiny_campaign(), "tiny");
}

/// The full acceptance criterion: `fig4 --quick` traced at 1 and 4
/// threads. ~20 s per run in release, several minutes in debug — so
/// debug builds skip it and CI runs it with `cargo test --release`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug builds; run with --release (CI does)"
)]
fn fig4_quick_trace_counters_are_thread_invariant() {
    assert_thread_invariant(&fig4_campaign(true), "fig4_quick");
}
