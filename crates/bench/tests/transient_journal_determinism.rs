//! Acceptance test for the transient-fault keying contract: a campaign
//! with per-query transient faults enabled journals *byte-identically*
//! across executor thread counts and evaluation backends.
//!
//! Transient draws are keyed by
//! `(campaign_seed, trial_index, global query index, device)` — never by
//! scheduling — so the only permitted difference between runs is the
//! completion order of the journal's record lines. Sorted, the journals
//! must match byte for byte, header included.

use std::path::PathBuf;

use xbar_bench::campaign::{Fig4Runner, Fig4Spec, FIG4_VICTIM_SEED};
use xbar_bench::{DatasetKind, HeadKind};
use xbar_core::pixel_attack::PixelAttackMethod;
use xbar_crossbar::backend::BackendKind;
use xbar_faults::TransientSpec;
use xbar_runtime::{run_campaign, Campaign, ExecutorConfig, NullSink};

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "xbar_transient_journal_{tag}_{}.jsonl",
        std::process::id()
    ))
}

/// A shrunken fig4 panel with non-trivial transients on every query.
fn tiny_transient_campaign() -> Campaign<Fig4Spec> {
    let mut campaign = Campaign::new("fig4-tiny-transients", FIG4_VICTIM_SEED);
    for method in [PixelAttackMethod::NormPlus, PixelAttackMethod::RandomPixel] {
        campaign.push_trial(Fig4Spec {
            dataset: DatasetKind::Digits,
            head: HeadKind::SoftmaxCe,
            method,
            strengths: vec![0.0, 4.0],
            num_samples: 160,
            stochastic_reps: 1,
        });
    }
    campaign
}

/// The journal's header line plus its record lines sorted — the only
/// run-to-run difference a correct executor may produce is record order.
fn sorted_journal(path: &PathBuf) -> (String, Vec<String>) {
    let text = std::fs::read_to_string(path).unwrap();
    let mut lines = text.lines().map(str::to_string);
    let header = lines.next().expect("journal has a header");
    let mut records: Vec<String> = lines.collect();
    records.sort();
    (header, records)
}

#[test]
fn transient_campaign_journals_are_thread_and_backend_invariant() {
    let campaign = tiny_transient_campaign();
    let transients = TransientSpec::none()
        .with_flip_rate(0.01)
        .with_jitter_sigma(0.05);
    let run = |threads: usize, backend: BackendKind| {
        let path = tmp(&format!("t{threads}_{backend}"));
        std::fs::remove_file(&path).ok();
        let report = run_campaign(
            &Fig4Runner::new(backend).with_transients(Some(transients)),
            &campaign,
            &ExecutorConfig::with_threads(threads),
            Some(&path),
            false,
            &mut NullSink,
        )
        .unwrap();
        assert!(report.all_ok());
        let journal = sorted_journal(&path);
        std::fs::remove_file(&path).ok();
        journal
    };

    let serial = run(1, BackendKind::Naive);
    let parallel = run(3, BackendKind::Naive);
    let blocked = run(3, BackendKind::Blocked);

    assert_eq!(serial.1.len(), campaign.len());
    assert_eq!(
        serial, parallel,
        "transient-fault journals must be thread-count-invariant"
    );
    assert_eq!(
        serial, blocked,
        "transient-fault journals must be backend-invariant"
    );

    // And the transients actually bite: the probed power side channel
    // differs from the pristine oracle's. (The journaled accuracies are
    // evaluated out-of-band on the deployed array, so they may tie; the
    // query path is where transients live.)
    use xbar_bench::train_victim;
    use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
    use xbar_core::probe::probe_column_norms;
    use xbar_faults::{FaultKey, TransientInjection};

    let victim = train_victim(
        DatasetKind::Digits,
        HeadKind::SoftmaxCe,
        200,
        FIG4_VICTIM_SEED,
    );
    let probe = |cfg: &OracleConfig| {
        let mut oracle = Oracle::new(victim.net.clone(), cfg, 55).unwrap();
        probe_column_norms(&mut oracle, 1.0, 1).unwrap()
    };
    let base = OracleConfig::ideal().with_access(OutputAccess::None);
    let transient_cfg = base.with_transients(TransientInjection::new(
        transients,
        FaultKey::new(FIG4_VICTIM_SEED, 0),
    ));
    assert_ne!(
        probe(&base),
        probe(&transient_cfg),
        "flip rate 0.01 + jitter 0.05 left the probed norms untouched"
    );
}
