//! A small, dependency-free command-line parser for the `xbar` binary.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: one subcommand, optional bare positional
/// arguments (e.g. `xbar trace summarize out.jsonl`), plus `--key value`
/// options and valueless `--flag` switches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    positionals: Vec<String>,
    options: HashMap<String, String>,
}

/// Errors produced while parsing or reading options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand was given.
    MissingCommand,
    /// An argument was not `--`-prefixed.
    Malformed {
        /// The offending token.
        token: String,
    },
    /// A required option was absent.
    MissingOption {
        /// The option's name (without dashes).
        name: &'static str,
    },
    /// An option's value failed to parse.
    BadValue {
        /// The option's name.
        name: &'static str,
        /// The raw value supplied.
        value: String,
    },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingCommand => write!(f, "missing subcommand (try `xbar help`)"),
            ArgsError::Malformed { token } => write!(f, "malformed argument: {token}"),
            ArgsError::MissingOption { name } => write!(f, "missing required option --{name}"),
            ArgsError::BadValue { name, value } => {
                write!(f, "invalid value for --{name}: {value}")
            }
        }
    }
}

impl std::error::Error for ArgsError {}

impl ParsedArgs {
    /// Parses a token stream (without the program name).
    ///
    /// An option followed by a non-`--` token takes that token as its
    /// value; an option followed by another `--option` (or by nothing)
    /// is a boolean flag, reported by [`ParsedArgs::flag`]. A bare token
    /// that does not follow an option key is a positional argument,
    /// reported by [`ParsedArgs::positional`] — subcommands that take no
    /// positionals reject them via
    /// [`ParsedArgs::expect_no_positionals`].
    ///
    /// # Errors
    ///
    /// * [`ArgsError::MissingCommand`] on an empty stream.
    /// * [`ArgsError::Malformed`] on a `--`-prefixed command.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgsError> {
        let mut it = tokens.into_iter().peekable();
        let command = it.next().ok_or(ArgsError::MissingCommand)?;
        if command.starts_with('-') {
            return Err(ArgsError::Malformed { token: command });
        }
        let mut positionals = Vec::new();
        let mut options = HashMap::new();
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                positionals.push(tok);
                continue;
            };
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().expect("peeked"),
                _ => String::new(),
            };
            options.insert(key.to_string(), value);
        }
        Ok(ParsedArgs {
            command,
            positionals,
            options,
        })
    }

    /// The `index`-th bare positional argument after the subcommand.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positionals.get(index).map(String::as_str)
    }

    /// Rejects stray positional arguments, for subcommands that take
    /// only `--key value` options.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::Malformed`] naming the first positional.
    pub fn expect_no_positionals(&self) -> Result<(), ArgsError> {
        match self.positionals.first() {
            None => Ok(()),
            Some(token) => Err(ArgsError::Malformed {
                token: token.clone(),
            }),
        }
    }

    /// An optional string option. Boolean flags read as `Some("")`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Whether a boolean `--flag` (or any `--name value` option) was
    /// present.
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingOption`] if absent.
    pub fn require(&self, name: &'static str) -> Result<&str, ArgsError> {
        self.get(name).ok_or(ArgsError::MissingOption { name })
    }

    /// A parseable option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] if present but unparseable.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        name: &'static str,
        default: T,
    ) -> Result<T, ArgsError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgsError::BadValue {
                name,
                value: raw.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let a = ParsedArgs::parse(toks(&["train", "--dataset", "digits", "--seed", "7"])).unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get("dataset"), Some("digits"));
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
        assert_eq!(a.get_or("samples", 500usize).unwrap(), 500);
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert_eq!(ParsedArgs::parse(toks(&[])), Err(ArgsError::MissingCommand));
        assert!(matches!(
            ParsedArgs::parse(toks(&["--train"])),
            Err(ArgsError::Malformed { .. })
        ));
    }

    #[test]
    fn positionals_are_captured_and_rejectable() {
        // `trace summarize out.jsonl` style commands take positionals …
        let a =
            ParsedArgs::parse(toks(&["trace", "summarize", "out.jsonl", "--top", "5"])).unwrap();
        assert_eq!(a.command, "trace");
        assert_eq!(a.positional(0), Some("summarize"));
        assert_eq!(a.positional(1), Some("out.jsonl"));
        assert_eq!(a.positional(2), None);
        assert_eq!(a.get("top"), Some("5"));
        assert!(matches!(
            a.expect_no_positionals(),
            Err(ArgsError::Malformed { .. })
        ));

        // … while option-only commands can still reject strays.
        let b = ParsedArgs::parse(toks(&["train", "oops"])).unwrap();
        assert_eq!(b.positional(0), Some("oops"));
        assert!(b.expect_no_positionals().is_err());
        let c = ParsedArgs::parse(toks(&["train", "--seed", "7"])).unwrap();
        assert!(c.expect_no_positionals().is_ok());
    }

    #[test]
    fn valueless_options_are_flags() {
        // A trailing option and one followed by another option are both
        // flags; parsing their (empty) value as a number fails cleanly.
        let a = ParsedArgs::parse(toks(&["campaign", "--resume", "--threads", "4"])).unwrap();
        assert!(a.flag("resume"));
        assert!(a.flag("threads"));
        assert!(!a.flag("quick"));
        assert_eq!(a.get_or("threads", 0usize).unwrap(), 4);

        let b = ParsedArgs::parse(toks(&["train", "--seed"])).unwrap();
        assert!(b.flag("seed"));
        assert!(matches!(
            b.get_or("seed", 0u64),
            Err(ArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn require_and_bad_value() {
        let a = ParsedArgs::parse(toks(&["probe", "--strength", "abc"])).unwrap();
        assert!(matches!(
            a.require("model"),
            Err(ArgsError::MissingOption { name: "model" })
        ));
        assert!(matches!(
            a.get_or("strength", 1.0f64),
            Err(ArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn errors_display() {
        assert!(!ArgsError::MissingCommand.to_string().is_empty());
        assert!(ArgsError::MissingOption { name: "model" }
            .to_string()
            .contains("--model"));
    }
}
