//! The `xbar` subcommand implementations.

use crate::args::{ArgsError, ParsedArgs};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_core::blackbox::{run_blackbox_attack, BlackBoxConfig};
use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
use xbar_core::persist;
use xbar_core::pixel_attack::{single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources};
use xbar_core::probe::{probe_column_norms, probe_norms_compressed};
use xbar_core::recovery::{recover_columns_by_basis_probes, relative_error};
use xbar_core::report::{ascii_heatmap, fmt, format_table};
use xbar_data::synth::digits::DigitsConfig;
use xbar_data::synth::objects::ObjectsConfig;
use xbar_data::Dataset;
use xbar_nn::activation::Activation;
use xbar_nn::loss::Loss;
use xbar_nn::metrics::accuracy;
use xbar_nn::network::SingleLayerNet;
use xbar_nn::train::{train, SgdConfig};

/// Any error a subcommand can produce.
pub type CliError = Box<dyn std::error::Error>;

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns the subcommand's failure, or an [`ArgsError`] for an unknown
/// command.
pub fn dispatch(args: &ParsedArgs) -> Result<(), CliError> {
    // Only `trace`, `bench`, `faults`, `lifetime`, `infer` and `serve`
    // take positional arguments (their action, plus the trace path).
    if args.command != "trace"
        && args.command != "bench"
        && args.command != "faults"
        && args.command != "lifetime"
        && args.command != "infer"
        && args.command != "serve"
    {
        args.expect_no_positionals()?;
    }
    match args.command.as_str() {
        "train" => cmd_train(args),
        "probe" => cmd_probe(args),
        "attack" => cmd_attack(args),
        "blackbox" => cmd_blackbox(args),
        "recover" => cmd_recover(args),
        "campaign" => cmd_campaign(args),
        "bench" => cmd_bench(args),
        "faults" => cmd_faults(args),
        "lifetime" => cmd_lifetime(args),
        "infer" => cmd_infer(args),
        "serve" => cmd_serve(args),
        "trace" => cmd_trace(args),
        "help" => {
            print_help();
            Ok(())
        }
        other => Err(Box::new(ArgsError::Malformed {
            token: other.to_string(),
        })),
    }
}

/// Prints usage for every subcommand.
pub fn print_help() {
    println!(
        "xbar — power side-channel attacks on NVM crossbar neural networks

USAGE: xbar <command> [--option value]...

COMMANDS:
  train     train a victim and save it
            --out FILE [--dataset digits|objects] [--head linear|softmax]
            [--samples N] [--seed S]
  probe     deploy a model on a crossbar and probe its column 1-norms
            --model FILE [--seed S] [--compressed-queries K]
  attack    run the Fig.4 single-pixel attacks against a deployed model
            --model FILE [--strength X] [--dataset ...] [--samples N] [--seed S]
  blackbox  run the Fig.5 surrogate pipeline against a deployed model
            --model FILE --queries Q [--lambda L] [--eps E]
            [--access label|raw] [--dataset ...] [--samples N] [--seed S]
  recover   recover the weights of a linear model via basis probes
            --model FILE [--seed S]
  campaign  run a figure's experiment grid on the parallel campaign
            runtime (checkpointed and resumable)
            --figure fig4|fig5|ablations [--threads N] [--resume]
            [--journal FILE] [--out FILE] [--retries N] [--quick]
            [--backend naive|blocked|parallel[:N]] [--trace FILE]
            [--faults SPEC.json]
            [--transients FLIP[,JITTER]] [--progress stderr|json|none]
            [--progress-every N]
  bench     micro-benchmarks
            mvm [--quick] [--out FILE]   size x threads backend matrix:
                                         naive vs blocked vs parallel
                                         batched MVM, prepared-handle
                                         hit/miss cost, FaultyBackend
                                         overhead (bit-identity checked;
                                         writes results/BENCH_mvm.json)
            serve [--quick] [--out FILE] campaign-service throughput at
                                         1/8/64 concurrent sessions,
                                         coalescing on vs off (writes
                                         results/BENCH_serve.json)
  serve     multi-tenant attack-campaign service (NDJSON over TCP)
            host --model FILE [--name NAME] [--addr HOST:PORT]
                 [--workers N] [--max-sessions N] [--max-inflight N]
                 [--no-coalesce] [--journal FILE] [--seed S]
                 [--backend naive|blocked|parallel[:N]]
                 [--access none|label|raw] [--power-noise X]
                 [--read-sigma X] [--metrics FILE] [--metrics-every MS]
            serve the model until a client sends the shutdown op;
            --journal makes sessions resumable across restarts;
            --metrics appends periodic telemetry snapshots as JSONL
            drive --addr HOST:PORT --dim N [--sessions N] [--queries Q]
                  [--victim NAME] [--seed S] [--shutdown]
            scripted multi-session client: concurrent budgeted
            sessions plus a same-seed determinism check
            stats [--addr HOST:PORT] [--prom]
            scrape a running service's live metrics plane: per-victim
            request counters, gauges and latency histograms
            (--prom prints Prometheus text exposition instead)
  faults    deterministic device fault injection
            sweep [--quick] [--threads N] [--out FILE] [--resume]
                  [--journal FILE] [--retries N]
                  [--backend naive|blocked|parallel[:N]]
                  [--trace FILE] [--progress stderr|json|none]
                  [--progress-every N]
            attack-success-vs-fault-rate robustness curves over stuck-at,
            variation, drift and line-resistance axes (writes
            results/faults-sweep.json; bit-identical at any thread count)
  lifetime  device-lifetime robustness
            sweep [--quick] [--threads N] [--out FILE] [--resume]
                  [--journal FILE] [--retries N]
                  [--backend naive|blocked|parallel[:N]]
                  [--recalibrate never|every:N|stale:X] [--trace FILE]
                  [--progress stderr|json|none] [--progress-every N]
            (drift time x transient rate x defense) cross-sweep with
            probe recalibration and graceful degradation — failed cells
            are journaled and skipped (writes results/lifetime-sweep.json)
  infer     Bayesian weight recovery from the power side channel
            sweep [--quick] [--threads N] [--out FILE] [--resume]
                  [--journal FILE] [--retries N]
                  [--backend naive|blocked|parallel[:N]]
                  [--trace FILE] [--progress stderr|json|none]
                  [--progress-every N]
            MCMC posterior over column 1-norms from noisy power
            readings, swept over query budget x noise x chain count;
            reports coverage, credible-interval widths, split-R-hat
            convergence and posterior-guided attack bands (writes
            results/infer-sweep.json; bit-identical at any thread count)
  trace     inspect an xbar-obs JSONL trace written by --trace
            summarize FILE   per-stage totals: counters per trial,
                             value series, span counts and wall times;
                             also reads `serve host --metrics` snapshot
                             files (last snapshot wins — counters are
                             cumulative)
  help      this message"
    );
}

/// Reads a fault-spec JSON file into a validated [`xbar_faults::FaultSpec`].
fn load_fault_spec(path: &str) -> Result<xbar_faults::FaultSpec, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read fault spec {path}: {e}"))?;
    let value = serde_json::parse_value(&text).map_err(|e| format!("fault spec {path}: {e}"))?;
    xbar_faults::FaultSpec::from_json_value(&value)
        .map_err(|e| -> CliError { format!("fault spec {path}: {e}").into() })
}

/// Parses `--transients "FLIP[,JITTER]"` into a validated
/// [`xbar_faults::TransientSpec`]. A single number sets only the
/// read-disturb flip rate; a second, comma-separated number sets the
/// transient jitter sigma.
fn parse_transients(text: &str) -> Result<xbar_faults::TransientSpec, CliError> {
    let mut parts = text.splitn(2, ',');
    let flip: f64 =
        parts.next().unwrap_or("").trim().parse().map_err(|_| {
            format!("--transients: bad flip rate in {text:?} (expected FLIP[,JITTER])")
        })?;
    let jitter: f64 = match parts.next() {
        Some(j) => j
            .trim()
            .parse()
            .map_err(|_| format!("--transients: bad jitter sigma in {text:?}"))?,
        None => 0.0,
    };
    let spec = xbar_faults::TransientSpec::none()
        .with_flip_rate(flip)
        .with_jitter_sigma(jitter);
    spec.validate()
        .map_err(|e| -> CliError { format!("--transients {text:?}: {e}").into() })?;
    Ok(spec)
}

/// Parses `--recalibrate never|every:N|stale:X` into a
/// [`xbar_core::probe::RecalibrationPolicy`].
fn parse_recalibrate(text: &str) -> Result<xbar_core::probe::RecalibrationPolicy, CliError> {
    use xbar_core::probe::RecalibrationPolicy;
    if text == "never" {
        return Ok(RecalibrationPolicy::never());
    }
    if let Some(n) = text.strip_prefix("every:") {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("--recalibrate: bad query count in {text:?}"))?;
        if n == 0 {
            return Err(format!("--recalibrate: every:N needs N > 0, got {text:?}").into());
        }
        return Ok(RecalibrationPolicy::every(n));
    }
    if let Some(x) = text.strip_prefix("stale:") {
        let x: f64 = x
            .parse()
            .map_err(|_| format!("--recalibrate: bad staleness threshold in {text:?}"))?;
        if !(x.is_finite() && x > 0.0) {
            return Err(format!("--recalibrate: stale:X needs X > 0, got {text:?}").into());
        }
        return Ok(RecalibrationPolicy::on_staleness(x));
    }
    Err(format!("--recalibrate: expected never|every:N|stale:X, got {text:?}").into())
}

/// Parses `--backend naive|blocked|parallel[:THREADS]` into a
/// [`xbar_crossbar::backend::BackendSpec`] — the one place the grammar
/// lives, shared by `campaign`, the sweeps, and `serve host`. The
/// `default` kind applies when the flag is absent.
fn backend_spec(
    args: &ParsedArgs,
    default: xbar_crossbar::backend::BackendKind,
) -> Result<xbar_crossbar::backend::BackendSpec, CliError> {
    match args.get("backend") {
        None => Ok(xbar_crossbar::backend::BackendSpec::new(default)),
        Some(raw) => raw
            .parse()
            .map_err(|e: String| -> CliError { format!("--backend: {e}").into() }),
    }
}

/// Parses the executor options shared by `campaign` and `faults sweep`.
/// The journal is always kept (it is what `--resume` reads); the default
/// path is per campaign so grids don't clobber each other.
fn campaign_options(
    args: &ParsedArgs,
    default_journal: &str,
) -> Result<xbar_bench::figures::CampaignOptions, CliError> {
    use xbar_bench::figures::{CampaignOptions, ProgressMode};

    let mut opts = CampaignOptions::new(args.flag("quick"));
    opts.threads = args.get_or("threads", 0usize)?;
    opts.max_retries = args.get_or("retries", 1u32)?;
    opts.resume = args.flag("resume");
    opts.json_out = args.get("out").map(str::to_string);
    opts.trace = args
        .get("trace")
        .filter(|t| !t.is_empty())
        .map(std::path::PathBuf::from);
    opts.progress = args.get_or("progress", ProgressMode::Stderr)?;
    opts.progress_every = args.get_or("progress-every", 1usize)?.max(1);
    // Pure execution detail: results are bit-identical across backends.
    opts.backend = backend_spec(args, xbar_crossbar::backend::BackendKind::Naive)?;
    let journal = args
        .get("journal")
        .filter(|j| !j.is_empty())
        .map(str::to_string)
        .unwrap_or_else(|| default_journal.to_string());
    opts.journal = Some(journal.into());
    Ok(opts)
}

fn cmd_campaign(args: &ParsedArgs) -> Result<(), CliError> {
    use xbar_bench::figures::{run_ablations, run_fig4, run_fig5};

    let figure = args.require("figure")?.to_string();
    let mut opts = campaign_options(args, &format!("results/{figure}-journal.jsonl"))?;
    // Optional device faults, injected into every trial's deployed
    // crossbar under the (campaign_seed, trial_index) key.
    opts.faults = args.get("faults").map(load_fault_spec).transpose()?;
    // Optional per-query transient faults, keyed additionally by the
    // global query index.
    opts.transients = args.get("transients").map(parse_transients).transpose()?;

    let run = match figure.as_str() {
        "fig4" => run_fig4,
        "fig5" => run_fig5,
        "ablations" => run_ablations,
        other => {
            return Err(Box::new(ArgsError::BadValue {
                name: "figure",
                value: other.to_string(),
            }))
        }
    };
    run(&opts).map_err(|e| -> CliError { e.into() })
}

fn cmd_bench(args: &ParsedArgs) -> Result<(), CliError> {
    match args.positional(0) {
        Some("mvm") => {
            xbar_bench::mvmbench::run_mvm_bench(args.flag("quick"), args.get("out"))?;
            Ok(())
        }
        Some("serve") => {
            xbar_bench::servebench::run_serve_bench(args.flag("quick"), args.get("out"))?;
            Ok(())
        }
        Some(other) => Err(format!("unknown bench {other:?} (expected: mvm, serve)").into()),
        None => Err("usage: xbar bench mvm|serve [--quick] [--out FILE]".into()),
    }
}

/// Parses `--access none|label|raw` into an [`OutputAccess`].
fn parse_output_access(text: &str) -> Result<OutputAccess, CliError> {
    match text {
        "none" => Ok(OutputAccess::None),
        "label" => Ok(OutputAccess::LabelOnly),
        "raw" => Ok(OutputAccess::Raw),
        other => Err(Box::new(ArgsError::BadValue {
            name: "access",
            value: other.to_string(),
        })),
    }
}

fn cmd_serve(args: &ParsedArgs) -> Result<(), CliError> {
    match args.positional(0) {
        Some("host") => cmd_serve_host(args),
        Some("drive") => cmd_serve_drive(args),
        Some("stats") => cmd_serve_stats(args),
        Some(other) => {
            Err(format!("unknown serve action {other:?} (expected: host, drive, stats)").into())
        }
        None => Err("usage: xbar serve host --model FILE [--addr HOST:PORT] | \
             xbar serve drive --addr HOST:PORT --dim N | \
             xbar serve stats [--addr HOST:PORT] [--prom]"
            .into()),
    }
}

/// `xbar serve host`: deploy a saved model behind the campaign service
/// and serve it until a client sends the `shutdown` op.
fn cmd_serve_host(args: &ParsedArgs) -> Result<(), CliError> {
    use xbar_crossbar::backend::BackendKind;
    use xbar_crossbar::device::DeviceModel;
    use xbar_crossbar::power::PowerModel;
    use xbar_serve::coalesce::CoalescePolicy;
    use xbar_serve::{ServeConfig, Server, VictimRegistry};

    // Validate every option before touching the filesystem or network.
    let model_path = args.require("model")?.to_string();
    let name = args.get("name").unwrap_or("victim").to_string();
    let seed: u64 = args.get_or("seed", 1)?;
    let access = parse_output_access(args.get("access").unwrap_or("none"))?;
    let power_noise: f64 = args.get_or("power-noise", 0.0)?;
    let device = DeviceModel {
        read_sigma: args.get_or("read-sigma", 0.0)?,
        ..DeviceModel::ideal()
    };
    let metrics = args
        .get("metrics")
        .filter(|m| !m.is_empty())
        .map(std::path::PathBuf::from);
    let metrics_every =
        std::time::Duration::from_millis(args.get_or("metrics-every", 1000u64)?.max(1));
    let backend = backend_spec(args, BackendKind::Blocked)?;
    let net = persist::load_network(&model_path)?;
    let cfg = OracleConfig::ideal()
        .with_access(access)
        .with_device(device)
        .with_backend(backend)
        .with_power(PowerModel::default().with_noise(power_noise));
    let oracle = Oracle::new(net, &cfg, seed)?;
    let dim = oracle.num_inputs();

    let mut registry = VictimRegistry::new();
    registry.insert(&name, oracle)?;
    let config = ServeConfig {
        workers: args.get_or("workers", 4usize)?.max(1),
        max_sessions: args.get_or("max-sessions", 256usize)?,
        max_inflight: args.get_or("max-inflight", 4096usize)?,
        coalesce: CoalescePolicy {
            enabled: !args.flag("no-coalesce"),
            ..CoalescePolicy::default()
        },
        journal: args
            .get("journal")
            .filter(|j| !j.is_empty())
            .map(std::path::PathBuf::from),
        metrics,
        metrics_every,
        ..ServeConfig::default()
    };
    let server = Server::start(
        args.get("addr").unwrap_or("127.0.0.1:7878"),
        registry,
        config,
    )?;
    println!(
        "serving victim {name:?} ({dim} inputs) on {} — send the shutdown op to stop",
        server.local_addr()
    );
    server.run_until_shutdown();
    println!("campaign service drained and stopped");
    Ok(())
}

/// `xbar serve drive`: a scripted multi-session client for smoke tests —
/// drives N concurrent budgeted sessions, then replays one seed twice
/// and checks the served streams are bit-identical.
fn cmd_serve_drive(args: &ParsedArgs) -> Result<(), CliError> {
    use xbar_serve::Client;

    let addr = args.require("addr")?.to_string();
    let dim: usize = args.get_or("dim", 0usize)?;
    if dim == 0 {
        return Err("serve drive: --dim N (the victim's input dimension) is required".into());
    }
    let sessions: usize = args.get_or("sessions", 4usize)?.max(1);
    let queries: usize = args.get_or("queries", 8usize)?.max(1);
    let victim = args.get("victim").unwrap_or("victim").to_string();
    let base_seed: u64 = args.get_or("seed", 100)?;

    let input = |s: usize, q: usize| -> Vec<f64> {
        (0..dim)
            .map(|j| (((s * 131 + q * 17 + j) as f64) * 0.013).sin())
            .collect()
    };

    let start = std::time::Instant::now();
    std::thread::scope(|scope| -> Result<(), CliError> {
        let handles: Vec<_> = (0..sessions)
            .map(|s| {
                let (addr, victim) = (&addr, &victim);
                scope.spawn(move || -> Result<(), String> {
                    let mut client = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
                    // Seed-scoped ids: sessions persist server-side
                    // (resumable), so repeated drives against one
                    // server must not collide unless they share --seed.
                    let id = format!("drive-{base_seed}-{s}");
                    let budget = queries as u64;
                    client
                        .hello(
                            &id,
                            Some(victim),
                            Some(base_seed + 1 + s as u64),
                            Some(budget),
                        )
                        .map_err(|e| e.to_string())?;
                    for q in 0..queries {
                        client
                            .query(&id, std::slice::from_ref(&input(s, q)))
                            .map_err(|e| e.to_string())?;
                    }
                    // The budget is exactly spent: one more must bounce.
                    if client
                        .query(&id, std::slice::from_ref(&input(s, 0)))
                        .is_ok()
                    {
                        return Err(format!("session {id} exceeded its budget"));
                    }
                    client.close(&id).map_err(|e| e.to_string())?;
                    Ok(())
                })
            })
            .collect();
        for handle in handles {
            handle
                .join()
                .map_err(|_| -> CliError { "drive session thread panicked".into() })??;
        }
        Ok(())
    })?;
    let elapsed = start.elapsed();
    let total = sessions * queries;
    println!(
        "drove {sessions} sessions x {queries} queries ({total} total) in {:.1} ms \
         ({:.0} q/s aggregate)",
        elapsed.as_secs_f64() * 1e3,
        total as f64 / elapsed.as_secs_f64().max(1e-9),
    );

    // Determinism spot-check: the same seed served twice must yield
    // bit-identical records, however its queries were coalesced.
    let mut client = Client::connect(addr.as_str())?;
    let probes: Vec<Vec<f64>> = (0..2).map(|q| input(0, q)).collect();
    let check_a = format!("drive-{base_seed}-check-a");
    let check_b = format!("drive-{base_seed}-check-b");
    client.hello(&check_a, Some(&victim), Some(base_seed), None)?;
    let a = client.query(&check_a, &probes)?;
    client.close(&check_a)?;
    client.hello(&check_b, Some(&victim), Some(base_seed), None)?;
    let b = client.query(&check_b, &probes)?;
    client.close(&check_b)?;
    if a != b {
        return Err("determinism check failed: same-seed sessions diverged".into());
    }
    println!("determinism check: same-seed sessions bit-identical");

    if args.flag("shutdown") {
        client.shutdown_server()?;
        println!("asked the server to drain and stop");
    }
    Ok(())
}

/// `xbar serve stats`: scrape the live metrics plane of a running
/// service. Read-only — consumes no budget, admitted even when the
/// session table is full or the server is draining.
fn cmd_serve_stats(args: &ParsedArgs) -> Result<(), CliError> {
    use xbar_serve::Client;

    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let mut client = Client::connect(addr)?;
    if args.flag("prom") {
        print!("{}", client.stats_prometheus()?);
        return Ok(());
    }
    let stats = client.stats()?;
    print!("{}", render_serve_stats(&stats));
    Ok(())
}

fn cmd_faults(args: &ParsedArgs) -> Result<(), CliError> {
    match args.positional(0) {
        Some("sweep") => {
            let opts = campaign_options(args, "results/faults-sweep-journal.jsonl")?;
            xbar_bench::faultsweep::run_fault_sweep(&opts).map_err(|e| -> CliError { e.into() })
        }
        Some(other) => Err(format!("unknown faults action {other:?} (expected: sweep)").into()),
        None => {
            Err("usage: xbar faults sweep [--quick] [--threads N] [--out FILE] [--resume]".into())
        }
    }
}

fn cmd_lifetime(args: &ParsedArgs) -> Result<(), CliError> {
    match args.positional(0) {
        Some("sweep") => {
            let mut opts = campaign_options(args, "results/lifetime-sweep-journal.jsonl")?;
            // The lifetime sweep is the graceful-degradation showcase:
            // permanently failing cells are journaled and skipped in the
            // aggregation instead of aborting the sweep.
            opts.tolerate_failures = true;
            let policy = args
                .get("recalibrate")
                .map(parse_recalibrate)
                .transpose()?
                .unwrap_or(xbar_core::probe::RecalibrationPolicy::every(1));
            xbar_bench::lifetimesweep::run_lifetime_sweep(&opts, &policy)
                .map_err(|e| -> CliError { e.into() })
        }
        Some(other) => Err(format!("unknown lifetime action {other:?} (expected: sweep)").into()),
        None => Err(
            "usage: xbar lifetime sweep [--quick] [--threads N] [--out FILE] [--resume] \
             [--recalibrate never|every:N|stale:X]"
                .into(),
        ),
    }
}

fn cmd_infer(args: &ParsedArgs) -> Result<(), CliError> {
    match args.positional(0) {
        Some("sweep") => {
            let opts = campaign_options(args, "results/infer-sweep-journal.jsonl")?;
            xbar_bench::infersweep::run_infer_sweep(&opts).map_err(|e| -> CliError { e.into() })
        }
        Some(other) => Err(format!("unknown infer action {other:?} (expected: sweep)").into()),
        None => {
            Err("usage: xbar infer sweep [--quick] [--threads N] [--out FILE] [--resume]".into())
        }
    }
}

fn cmd_trace(args: &ParsedArgs) -> Result<(), CliError> {
    match args.positional(0) {
        Some("summarize") => match args.positional(1) {
            Some(path) => {
                print!("{}", summarize_trace(path)?);
                Ok(())
            }
            None => Err("usage: xbar trace summarize <trace.jsonl>".into()),
        },
        Some(other) => Err(format!("unknown trace action {other:?} (expected: summarize)").into()),
        None => Err("usage: xbar trace summarize <trace.jsonl>".into()),
    }
}

/// Best-effort unsigned coercion for a trace/stats JSON number.
fn json_u64(v: &serde::Value) -> u64 {
    use serde::Value;
    match v {
        Value::U64(x) => *x,
        Value::I64(x) => (*x).max(0) as u64,
        Value::F64(x) => *x as u64,
        _ => 0,
    }
}

/// Best-effort float coercion for a trace/stats JSON number.
fn json_f64(v: &serde::Value) -> f64 {
    use serde::Value;
    match v {
        Value::U64(x) => *x as f64,
        Value::I64(x) => *x as f64,
        Value::F64(x) => *x,
        _ => 0.0,
    }
}

/// Renders a serve `stats` snapshot (the JSON shape of
/// [`xbar_obs::MetricsSnapshot::to_json`]) as per-victim counter, gauge
/// and histogram tables. Shared by `xbar serve stats` and the
/// serve-metrics section of `xbar trace summarize`.
fn render_serve_stats(stats: &serde::Value) -> String {
    use serde::Value;

    let mut out = String::new();
    let Some(Value::Object(victims)) = stats.get("victims") else {
        out.push_str("snapshot has no victims section\n");
        return out;
    };
    let mut counter_rows: Vec<Vec<String>> = Vec::new();
    let mut gauge_rows: Vec<Vec<String>> = Vec::new();
    let mut histogram_rows: Vec<Vec<String>> = Vec::new();
    for (victim, section) in victims {
        if let Some(Value::Object(counters)) = section.get("counters") {
            for (name, v) in counters {
                counter_rows.push(vec![victim.clone(), name.clone(), json_u64(v).to_string()]);
            }
        }
        if let Some(Value::Object(gauges)) = section.get("gauges") {
            for (name, v) in gauges {
                gauge_rows.push(vec![victim.clone(), name.clone(), fmt(json_f64(v), 1)]);
            }
        }
        if let Some(Value::Object(histograms)) = section.get("histograms") {
            for (name, h) in histograms {
                let q = |key: &str| h.get(key).map(json_f64).unwrap_or(0.0);
                histogram_rows.push(vec![
                    victim.clone(),
                    name.clone(),
                    h.get("count").map(json_u64).unwrap_or(0).to_string(),
                    fmt(q("p50"), 1),
                    fmt(q("p90"), 1),
                    fmt(q("p99"), 1),
                    fmt(q("max"), 1),
                ]);
            }
        }
    }
    if !counter_rows.is_empty() {
        out.push_str("--- service counters (cumulative) ---\n");
        out.push_str(&format_table(
            &["victim", "counter", "total"],
            &counter_rows,
        ));
        out.push('\n');
    }
    if !gauge_rows.is_empty() {
        out.push_str("--- service gauges (instantaneous) ---\n");
        out.push_str(&format_table(&["victim", "gauge", "value"], &gauge_rows));
        out.push('\n');
    }
    if !histogram_rows.is_empty() {
        out.push_str("--- service histograms ---\n");
        out.push_str(&format_table(
            &["victim", "histogram", "count", "p50", "p90", "p99", "max"],
            &histogram_rows,
        ));
        out.push('\n');
    }
    if counter_rows.is_empty() && gauge_rows.is_empty() && histogram_rows.is_empty() {
        out.push_str("snapshot is empty — no metrics recorded yet\n");
    }
    out
}

/// Aggregates an `xbar-obs` JSONL trace into per-stage tables: counter
/// totals and per-trial means, value-series summaries, and span counts
/// with mean wall times. Totals are recomputed from the per-trial
/// records, so a trace whose run was killed before the `end` line still
/// summarizes. Also understands the `xbar-serve-metrics` snapshot
/// records written by `serve host --metrics` — snapshots are cumulative,
/// so only the last one is rendered.
fn summarize_trace(path: &str) -> Result<String, CliError> {
    use serde::Value;
    use std::collections::BTreeMap;

    fn field_u64(record: &Value, key: &str) -> u64 {
        record.get(key).map(json_u64).unwrap_or(0)
    }

    #[derive(Default)]
    struct CounterAgg {
        total: u64,
        trials: usize,
        min: u64,
        max: u64,
    }
    #[derive(Default)]
    struct ValueAgg {
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    }
    #[derive(Default)]
    struct SpanAgg {
        count: u64,
        total_nanos: u64,
    }

    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
    let mut campaigns: Vec<String> = Vec::new();
    let mut trials_ok = 0usize;
    let mut trials_failed = 0usize;
    let mut counters: BTreeMap<String, CounterAgg> = BTreeMap::new();
    let mut values: BTreeMap<String, ValueAgg> = BTreeMap::new();
    let mut spans: BTreeMap<String, SpanAgg> = BTreeMap::new();
    // Live-plane snapshots are cumulative: keep only the last one.
    let mut serve_snapshots = 0usize;
    let mut serve_stats: Option<Value> = None;

    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record = serde_json::parse_value(line)
            .map_err(|e| format!("trace {path} line {}: {e}", line_no + 1))?;
        match record.get("kind").and_then(Value::as_str) {
            Some("xbar-trace") => {
                campaigns.push(format!(
                    "{} (seed {}, {} trials)",
                    record
                        .get("campaign")
                        .and_then(Value::as_str)
                        .unwrap_or("?"),
                    field_u64(&record, "campaign_seed"),
                    field_u64(&record, "total_trials"),
                ));
            }
            Some("trial") => {
                match record.get("status").and_then(Value::as_str) {
                    Some("ok") => trials_ok += 1,
                    _ => trials_failed += 1,
                }
                if let Some(Value::Object(fields)) = record.get("counters") {
                    for (name, v) in fields {
                        let delta = json_u64(v);
                        let agg = counters.entry(name.clone()).or_default();
                        if agg.trials == 0 {
                            (agg.min, agg.max) = (delta, delta);
                        } else {
                            agg.min = agg.min.min(delta);
                            agg.max = agg.max.max(delta);
                        }
                        agg.trials += 1;
                        agg.total += delta;
                    }
                }
                if let Some(Value::Object(fields)) = record.get("values") {
                    for (name, v) in fields {
                        let count = field_u64(v, "count");
                        if count == 0 {
                            continue;
                        }
                        let (lo, hi) = (
                            v.get("min").map(json_f64).unwrap_or(0.0),
                            v.get("max").map(json_f64).unwrap_or(0.0),
                        );
                        let agg = values.entry(name.clone()).or_default();
                        if agg.count == 0 {
                            (agg.min, agg.max) = (lo, hi);
                        } else {
                            agg.min = agg.min.min(lo);
                            agg.max = agg.max.max(hi);
                        }
                        agg.count += count;
                        agg.sum += v.get("sum").map(json_f64).unwrap_or(0.0);
                    }
                }
                if let Some(Value::Object(fields)) = record.get("spans") {
                    for (name, v) in fields {
                        let agg = spans.entry(name.clone()).or_default();
                        agg.count += field_u64(v, "count");
                        agg.total_nanos += field_u64(v, "total_nanos");
                    }
                }
            }
            Some(kind) if kind == xbar_serve::METRICS_RECORD_KIND => {
                serve_snapshots += 1;
                if let Some(stats) = record.get("stats") {
                    serve_stats = Some(stats.clone());
                }
            }
            // `end` totals are recomputed from the trial records above.
            _ => {}
        }
    }

    // A trial trace needs its header; a pure serve-metrics snapshot
    // file has no header and that is fine.
    if campaigns.is_empty() && serve_snapshots == 0 {
        return Err(format!("trace {path} has no xbar-trace header").into());
    }

    let mut out = String::new();
    let trials = trials_ok + trials_failed;
    for campaign in &campaigns {
        out.push_str(&format!("campaign: {campaign}\n"));
    }
    if !campaigns.is_empty() {
        out.push_str(&format!(
            "trials recorded: {trials} ({trials_ok} ok, {trials_failed} failed)\n\n"
        ));
    }

    if trials > 0 {
        let counter_rows: Vec<Vec<String>> = counters
            .iter()
            .map(|(name, agg)| {
                vec![
                    name.clone(),
                    agg.total.to_string(),
                    fmt(agg.total as f64 / trials as f64, 2),
                    agg.min.to_string(),
                    agg.max.to_string(),
                ]
            })
            .collect();
        out.push_str("--- counters (deterministic) ---\n");
        out.push_str(&format_table(
            &["counter", "total", "per trial", "min", "max"],
            &counter_rows,
        ));
        out.push('\n');

        if !values.is_empty() {
            let value_rows: Vec<Vec<String>> = values
                .iter()
                .map(|(name, agg)| {
                    vec![
                        name.clone(),
                        agg.count.to_string(),
                        fmt(agg.sum / agg.count as f64, 4),
                        fmt(agg.min, 4),
                        fmt(agg.max, 4),
                    ]
                })
                .collect();
            out.push_str("--- value series ---\n");
            out.push_str(&format_table(
                &["series", "samples", "mean", "min", "max"],
                &value_rows,
            ));
            out.push('\n');
        }

        if !spans.is_empty() {
            let span_rows: Vec<Vec<String>> = spans
                .iter()
                .map(|(name, agg)| {
                    let mean_ms = if agg.count > 0 {
                        agg.total_nanos as f64 / agg.count as f64 / 1e6
                    } else {
                        0.0
                    };
                    vec![
                        name.clone(),
                        agg.count.to_string(),
                        fmt(agg.total_nanos as f64 / 1e9, 3),
                        fmt(mean_ms, 3),
                    ]
                })
                .collect();
            out.push_str("--- spans (wall clock) ---\n");
            out.push_str(&format_table(
                &["span", "count", "total s", "mean ms"],
                &span_rows,
            ));
            out.push('\n');
        }
    } else if !campaigns.is_empty() {
        out.push_str("no trial records — nothing to aggregate\n");
    }

    if let Some(stats) = &serve_stats {
        out.push_str(&format!(
            "serve-metrics snapshots: {serve_snapshots} (rendering the last — counters are cumulative)\n"
        ));
        out.push_str(&render_serve_stats(stats));
    }
    Ok(out)
}

fn load_dataset(args: &ParsedArgs) -> Result<Dataset, CliError> {
    let kind = args.get("dataset").unwrap_or("digits");
    let samples: usize = args.get_or("samples", 1000)?;
    let seed: u64 = args.get_or("seed", 0)?;
    match kind {
        "digits" => Ok(DigitsConfig::default()
            .num_samples(samples)
            .seed(seed)
            .generate()),
        "objects" => Ok(ObjectsConfig::default()
            .num_samples(samples)
            .seed(seed)
            .generate()),
        other => Err(Box::new(ArgsError::BadValue {
            name: "dataset",
            value: other.to_string(),
        })),
    }
}

fn cmd_train(args: &ParsedArgs) -> Result<(), CliError> {
    let out = args.require("out")?.to_string();
    let head = args.get("head").unwrap_or("softmax");
    let seed: u64 = args.get_or("seed", 0)?;
    let (activation, loss, lr) = match head {
        "linear" => (Activation::Identity, Loss::Mse, 0.01),
        "softmax" => (Activation::Softmax, Loss::CrossEntropy, 0.05),
        other => {
            return Err(Box::new(ArgsError::BadValue {
                name: "head",
                value: other.to_string(),
            }))
        }
    };
    let ds = load_dataset(args)?;
    let split = ds.split_frac(0.85)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net =
        SingleLayerNet::new_random(ds.num_features(), ds.num_classes(), activation, &mut rng);
    let sgd = SgdConfig {
        learning_rate: lr,
        epochs: args.get_or("epochs", 25)?,
        ..SgdConfig::default()
    };
    let report = train(&mut net, &split.train, loss, &sgd, &mut rng)?;
    let test_acc = accuracy(
        &net.predict_batch(split.test.inputs())?,
        split.test.labels(),
    );
    println!(
        "trained {head} head: loss {:.4} -> {:.4}, test accuracy {test_acc:.3}",
        report.initial_loss, report.final_loss
    );
    persist::save_network(&out, &net)?;
    println!("saved model to {out}");
    Ok(())
}

fn cmd_probe(args: &ParsedArgs) -> Result<(), CliError> {
    let net = persist::load_network(args.require("model")?)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let mut oracle = Oracle::new(
        net,
        &OracleConfig::ideal().with_access(OutputAccess::None),
        seed,
    )?;
    let compressed: usize = args.get_or("compressed-queries", 0)?;
    let norms = if compressed > 0 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC5);
        probe_norms_compressed(&mut oracle, compressed, 1e-2, &mut rng)?
    } else {
        probe_column_norms(&mut oracle, 1.0, 1)?
    };
    println!(
        "probed {} columns with {} power queries",
        norms.len(),
        oracle.query_count()
    );
    // Render as a heatmap when the dimension is a known image shape.
    let n = norms.len();
    let shape = match n {
        784 => Some(xbar_data::ImageShape::new(28, 28, 1)),
        3072 => Some(xbar_data::ImageShape::new(32, 32, 3)),
        _ => None,
    };
    if let Some(shape) = shape {
        println!("{}", ascii_heatmap(&norms, shape, 0));
    }
    let top = xbar_linalg::vec_ops::top_k_indices(&norms, 5);
    println!("top-5 columns by probed 1-norm: {top:?}");
    Ok(())
}

fn cmd_attack(args: &ParsedArgs) -> Result<(), CliError> {
    let net = persist::load_network(args.require("model")?)?;
    let strength: f64 = args.get_or("strength", 4.0)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let ds = load_dataset(args)?;
    let split = ds.split_frac(0.85)?;
    let loss = match net.activation() {
        Activation::Softmax => Loss::CrossEntropy,
        _ => Loss::Mse,
    };
    let mut oracle = Oracle::new(
        net.clone(),
        &OracleConfig::ideal().with_access(OutputAccess::None),
        seed,
    )?;
    let norms = probe_column_norms(&mut oracle, 1.0, 1)?;
    let clean = oracle.eval_accuracy(split.test.inputs(), split.test.labels())?;
    let targets = split.test.one_hot_targets();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA7);
    let mut rows = Vec::new();
    for method in PixelAttackMethod::all() {
        let adv = single_pixel_attack_batch(
            method,
            split.test.inputs(),
            &targets,
            PixelAttackResources::full(&norms, &net, loss),
            strength,
            &mut rng,
        )?;
        let acc = oracle.eval_accuracy(&adv, split.test.labels())?;
        rows.push(vec![
            method.paper_label().to_string(),
            fmt(acc, 3),
            fmt(clean - acc, 3),
        ]);
    }
    println!("clean accuracy {clean:.3}; single-pixel attacks at strength {strength}:");
    println!(
        "{}",
        format_table(&["method", "accuracy", "degradation"], &rows)
    );
    Ok(())
}

fn cmd_blackbox(args: &ParsedArgs) -> Result<(), CliError> {
    let net = persist::load_network(args.require("model")?)?;
    let queries: usize = args.get_or("queries", 200)?;
    let lambda: f64 = args.get_or("lambda", 0.0)?;
    let eps: f64 = args.get_or("eps", 0.1)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let access = match args.get("access").unwrap_or("label") {
        "label" => OutputAccess::LabelOnly,
        "raw" => OutputAccess::Raw,
        other => {
            return Err(Box::new(ArgsError::BadValue {
                name: "access",
                value: other.to_string(),
            }))
        }
    };
    let ds = load_dataset(args)?;
    let split = ds.split_frac(0.85)?;
    let mut oracle = Oracle::new(net, &OracleConfig::ideal().with_access(access), seed)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBB);
    let mut cfg = BlackBoxConfig::default()
        .with_num_queries(queries)
        .with_power_weight(lambda)
        .with_fgsm_eps(eps);
    cfg.surrogate.sgd.epochs = (38_400 / queries).clamp(60, 2000);
    let (out, _) = run_blackbox_attack(&mut oracle, &split.train, &split.test, &cfg, &mut rng)?;
    println!(
        "queries {queries}, power λ {lambda}: surrogate acc {:.3}, oracle {:.3} -> {:.3} (degradation {:.3})",
        out.surrogate_test_accuracy,
        out.oracle_clean_accuracy,
        out.oracle_adversarial_accuracy,
        out.degradation()
    );
    Ok(())
}

fn cmd_recover(args: &ParsedArgs) -> Result<(), CliError> {
    let net = persist::load_network(args.require("model")?)?;
    if net.activation() != Activation::Identity {
        println!(
            "note: model head is {}; basis-probe recovery assumes a linear head",
            net.activation().name()
        );
    }
    let seed: u64 = args.get_or("seed", 1)?;
    let mut oracle = Oracle::new(
        net.clone(),
        &OracleConfig::ideal().with_access(OutputAccess::Raw),
        seed,
    )?;
    let recovered = recover_columns_by_basis_probes(&mut oracle, 1.0)?;
    let err = relative_error(&recovered, net.weights())?;
    println!(
        "recovered {}x{} weights in {} queries; relative error {err:.2e}",
        recovered.rows(),
        recovered.cols(),
        oracle.query_count()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(tokens.iter().map(|t| t.to_string())).unwrap()
    }

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("xbar-cli-test-{name}-{}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn unknown_command_rejected() {
        let args = parse(&["frobnicate"]);
        assert!(dispatch(&args).is_err());
    }

    #[test]
    fn help_succeeds() {
        assert!(dispatch(&parse(&["help"])).is_ok());
    }

    #[test]
    fn train_probe_attack_recover_pipeline() {
        let model = tmp("model");
        // Small sizes keep the test fast.
        dispatch(&parse(&[
            "train",
            "--out",
            &model,
            "--head",
            "linear",
            "--samples",
            "200",
            "--epochs",
            "5",
        ]))
        .unwrap();
        dispatch(&parse(&["probe", "--model", &model])).unwrap();
        dispatch(&parse(&[
            "probe",
            "--model",
            &model,
            "--compressed-queries",
            "100",
        ]))
        .unwrap();
        dispatch(&parse(&[
            "attack",
            "--model",
            &model,
            "--samples",
            "200",
            "--strength",
            "3",
        ]))
        .unwrap();
        dispatch(&parse(&["recover", "--model", &model])).unwrap();
        std::fs::remove_file(&model).ok();
    }

    #[test]
    fn blackbox_pipeline() {
        let model = tmp("bb-model");
        dispatch(&parse(&[
            "train",
            "--out",
            &model,
            "--head",
            "linear",
            "--samples",
            "200",
            "--epochs",
            "5",
        ]))
        .unwrap();
        dispatch(&parse(&[
            "blackbox",
            "--model",
            &model,
            "--queries",
            "40",
            "--lambda",
            "1.0",
            "--samples",
            "200",
        ]))
        .unwrap();
        std::fs::remove_file(&model).ok();
    }

    #[test]
    fn campaign_argument_validation() {
        // Missing --figure.
        assert!(dispatch(&parse(&["campaign"])).is_err());
        // Unknown figure.
        assert!(dispatch(&parse(&["campaign", "--figure", "fig9"])).is_err());
        // Bad thread count.
        assert!(dispatch(&parse(&[
            "campaign",
            "--figure",
            "fig4",
            "--threads",
            "lots",
        ]))
        .is_err());
        // Unknown evaluation backend.
        assert!(dispatch(&parse(&[
            "campaign",
            "--figure",
            "fig4",
            "--backend",
            "quantum",
        ]))
        .is_err());
        // Malformed backend specs: a non-numeric thread count, and a
        // thread suffix on a kind that takes none.
        for bad in ["parallel:x", "parallel:-1", "naive:2", "blocked:4", ""] {
            let err =
                dispatch(&parse(&["campaign", "--figure", "fig4", "--backend", bad])).unwrap_err();
            assert!(err.to_string().contains("--backend"), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn bench_mvm_quick_writes_report() {
        let out = tmp("bench-mvm.json");
        dispatch(&parse(&["bench", "mvm", "--quick", "--out", &out])).unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("\"bit_identical\": true"), "{text}");
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn bench_argument_validation() {
        // Missing and unknown bench actions are rejected.
        assert!(dispatch(&parse(&["bench"])).is_err());
        assert!(dispatch(&parse(&["bench", "frobnicate"])).is_err());
    }

    #[test]
    fn serve_argument_validation() {
        // Missing and unknown serve actions are rejected.
        assert!(dispatch(&parse(&["serve"])).is_err());
        assert!(dispatch(&parse(&["serve", "frobnicate"])).is_err());
        // host: missing model and malformed options fail before any
        // socket is opened or file is read.
        assert!(dispatch(&parse(&["serve", "host"])).is_err());
        assert!(dispatch(&parse(&[
            "serve",
            "host",
            "--model",
            "/nonexistent/m.json",
            "--access",
            "quantum",
        ]))
        .is_err());
        assert!(dispatch(&parse(&[
            "serve",
            "host",
            "--model",
            "/nonexistent/m.json",
            "--seed",
            "lots",
        ]))
        .is_err());
        assert!(dispatch(&parse(&[
            "serve",
            "host",
            "--model",
            "/nonexistent/m.json",
            "--metrics-every",
            "lots",
        ]))
        .is_err());
        // A malformed backend spec is rejected before the model file is
        // even read — the error names the flag, not the missing file.
        let err = dispatch(&parse(&[
            "serve",
            "host",
            "--model",
            "/nonexistent/m.json",
            "--backend",
            "parallel:x",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--backend"), "{err}");
        // stats: an unresolvable address fails without hanging.
        assert!(dispatch(&parse(&["serve", "stats", "--addr", "not an addr"])).is_err());
        // drive: missing address / dimension and malformed counts fail
        // before any connection attempt.
        assert!(dispatch(&parse(&["serve", "drive"])).is_err());
        assert!(dispatch(&parse(&["serve", "drive", "--addr", "127.0.0.1:1"])).is_err());
        assert!(dispatch(&parse(&[
            "serve",
            "drive",
            "--addr",
            "127.0.0.1:1",
            "--dim",
            "3",
            "--sessions",
            "lots",
        ]))
        .is_err());
    }

    #[test]
    fn output_access_parsing() {
        assert!(matches!(
            parse_output_access("none"),
            Ok(OutputAccess::None)
        ));
        assert!(matches!(
            parse_output_access("label"),
            Ok(OutputAccess::LabelOnly)
        ));
        assert!(matches!(parse_output_access("raw"), Ok(OutputAccess::Raw)));
        assert!(parse_output_access("quantum").is_err());
    }

    #[test]
    fn serve_host_drive_round_trip() {
        // Train a tiny victim, host it on an ephemeral port in a
        // background thread, and drive it with the scripted client —
        // the out-of-process CI smoke, in-process.
        let model = tmp("serve-model");
        dispatch(&parse(&[
            "train",
            "--out",
            &model,
            "--head",
            "linear",
            "--samples",
            "200",
            "--epochs",
            "2",
        ]))
        .unwrap();
        let net = persist::load_network(&model).unwrap();
        let dim = net.weights().cols();

        let mut registry = xbar_serve::VictimRegistry::new();
        let oracle = Oracle::new(
            net,
            &OracleConfig::ideal().with_access(OutputAccess::None),
            1,
        )
        .unwrap();
        registry.insert("victim", oracle).unwrap();
        let server =
            xbar_serve::Server::start("127.0.0.1:0", registry, xbar_serve::ServeConfig::default())
                .unwrap();
        let addr = server.local_addr().to_string();
        let host = std::thread::spawn(move || server.run_until_shutdown());

        dispatch(&parse(&[
            "serve",
            "drive",
            "--addr",
            &addr,
            "--dim",
            &dim.to_string(),
            "--sessions",
            "3",
            "--queries",
            "4",
        ]))
        .unwrap();
        // Scrape the live metrics plane both ways, then stop the server.
        dispatch(&parse(&["serve", "stats", "--addr", &addr])).unwrap();
        dispatch(&parse(&["serve", "stats", "--addr", &addr, "--prom"])).unwrap();
        let mut client = xbar_serve::Client::connect(addr.as_str()).unwrap();
        client.shutdown_server().unwrap();
        host.join().unwrap();
        std::fs::remove_file(&model).ok();
    }

    #[test]
    fn serve_stats_renders_a_snapshot() {
        use serde_json::parse_value;

        let stats = parse_value(
            r#"{"victims":{"toy":{
                "counters":{"serve.requests":9,"serve.queries":40},
                "gauges":{"serve.inflight":0.0},
                "histograms":{"serve.request_ns":{"count":9,"sum":900,
                    "min":10,"max":200,"p50":95.0,"p90":180.0,
                    "p99":199.0,"p999":200.0,"buckets":[[256.0,9]]}}}}}"#,
        )
        .unwrap();
        let rendered = render_serve_stats(&stats);
        assert!(rendered.contains("service counters"), "{rendered}");
        assert!(rendered.contains("serve.queries"), "{rendered}");
        assert!(rendered.contains("40"), "{rendered}");
        assert!(rendered.contains("serve.inflight"), "{rendered}");
        assert!(rendered.contains("serve.request_ns"), "{rendered}");
        assert!(rendered.contains("95.0"), "{rendered}");
        // Degenerate shapes degrade gracefully instead of panicking.
        let empty = parse_value(r#"{"victims":{}}"#).unwrap();
        assert!(render_serve_stats(&empty).contains("no metrics recorded"));
        let hostile = parse_value(r#"{"something":"else"}"#).unwrap();
        assert!(render_serve_stats(&hostile).contains("no victims"));
    }

    #[test]
    fn faults_argument_validation() {
        // Missing and unknown faults actions are rejected.
        assert!(dispatch(&parse(&["faults"])).is_err());
        assert!(dispatch(&parse(&["faults", "frobnicate"])).is_err());
        // Bad executor options are rejected before any work starts.
        assert!(dispatch(&parse(&["faults", "sweep", "--threads", "lots"])).is_err());
    }

    #[test]
    fn lifetime_argument_validation() {
        // Missing and unknown lifetime actions are rejected.
        assert!(dispatch(&parse(&["lifetime"])).is_err());
        assert!(dispatch(&parse(&["lifetime", "frobnicate"])).is_err());
        // Bad executor and recalibration options fail before any work.
        assert!(dispatch(&parse(&["lifetime", "sweep", "--threads", "lots"])).is_err());
        assert!(dispatch(&parse(&["lifetime", "sweep", "--recalibrate", "sometimes"])).is_err());
    }

    #[test]
    fn infer_argument_validation() {
        // Missing and unknown infer actions are rejected.
        assert!(dispatch(&parse(&["infer"])).is_err());
        assert!(dispatch(&parse(&["infer", "frobnicate"])).is_err());
        // Bad executor options are rejected before any work starts.
        assert!(dispatch(&parse(&["infer", "sweep", "--threads", "lots"])).is_err());
        assert!(dispatch(&parse(&["infer", "sweep", "--backend", "quantum"])).is_err());
    }

    #[test]
    fn transient_spec_parsing() {
        let spec = parse_transients("0.02").unwrap();
        assert_eq!(spec.flip_rate, 0.02);
        assert_eq!(spec.jitter_sigma, 0.0);
        let spec = parse_transients("0.02, 0.1").unwrap();
        assert_eq!(spec.flip_rate, 0.02);
        assert_eq!(spec.jitter_sigma, 0.1);
        // Malformed numbers and out-of-domain rates are rejected.
        assert!(parse_transients("").is_err());
        assert!(parse_transients("lots").is_err());
        assert!(parse_transients("0.02,many").is_err());
        assert!(parse_transients("1.5").is_err());
        assert!(parse_transients("0.02,-0.1").is_err());
        // A bad --transients value fails the campaign command early.
        assert!(dispatch(&parse(&[
            "campaign",
            "--figure",
            "fig4",
            "--transients",
            "lots",
        ]))
        .is_err());
    }

    #[test]
    fn recalibration_policy_parsing() {
        assert!(parse_recalibrate("never").unwrap().is_never());
        let every = parse_recalibrate("every:500").unwrap();
        assert_eq!(every.every_queries, 500);
        let stale = parse_recalibrate("stale:2.5").unwrap();
        assert_eq!(stale.staleness_threshold, 2.5);
        // Unknown shapes and out-of-domain values are rejected.
        assert!(parse_recalibrate("sometimes").is_err());
        assert!(parse_recalibrate("every:0").is_err());
        assert!(parse_recalibrate("every:lots").is_err());
        assert!(parse_recalibrate("stale:0").is_err());
        assert!(parse_recalibrate("stale:NaN").is_err());
    }

    #[test]
    fn fault_spec_loading() {
        let path = tmp("fault-spec.json");
        std::fs::write(&path, r#"{"stuck_on_rate": 0.02, "variation_sigma": 0.1}"#).unwrap();
        let spec = load_fault_spec(&path).unwrap();
        assert_eq!(spec.stuck_on_rate, 0.02);
        assert_eq!(spec.variation_sigma, 0.1);
        assert_eq!(spec.stuck_off_rate, 0.0);
        // Unknown keys, invalid rates and missing files are rejected.
        std::fs::write(&path, r#"{"stuck_rate": 0.02}"#).unwrap();
        assert!(load_fault_spec(&path).is_err());
        std::fs::write(&path, r#"{"stuck_on_rate": 1.5}"#).unwrap();
        assert!(load_fault_spec(&path).is_err());
        assert!(load_fault_spec("/nonexistent/spec.json").is_err());
        // A bad --faults file fails the campaign command early.
        assert!(dispatch(&parse(&[
            "campaign",
            "--figure",
            "fig4",
            "--faults",
            "/nonexistent/spec.json",
        ]))
        .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_summarize_reads_a_trace() {
        use std::time::Duration;
        use xbar_obs::{Collector, Counters, TraceWriter};

        let path = tmp("trace.jsonl");
        let counters = Counters::new();
        counters.counter_add(Some(0), xbar_obs::names::ORACLE_QUERY, 40);
        counters.counter_add(Some(0), xbar_obs::names::PROBE_MEASUREMENT, 8);
        counters.observe(Some(0), xbar_obs::names::ORACLE_POWER, 1.25);
        let obs = counters.take_trial(0);
        let mut writer = TraceWriter::create(std::path::Path::new(&path)).unwrap();
        writer.campaign_header("test-campaign", 9, 1).unwrap();
        writer
            .trial(0, true, 1, Duration::from_millis(2), &obs)
            .unwrap();
        writer.end(1, 0, 0, Duration::from_millis(3), &obs).unwrap();
        drop(writer);

        dispatch(&parse(&["trace", "summarize", &path])).unwrap();
        let summary = summarize_trace(&path).unwrap();
        assert!(summary.contains("test-campaign"), "{summary}");
        assert!(summary.contains(xbar_obs::names::ORACLE_QUERY), "{summary}");

        // Unknown action and missing path are rejected.
        assert!(dispatch(&parse(&["trace", "frobnicate", &path])).is_err());
        assert!(dispatch(&parse(&["trace", "summarize"])).is_err());
        assert!(dispatch(&parse(&["trace"])).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_summarize_reads_serve_metrics_snapshots() {
        let path = tmp("serve-metrics.jsonl");
        // Two cumulative snapshots; no xbar-trace header. The summary
        // must accept the headerless file and render only the LAST
        // snapshot (counters are cumulative, not deltas).
        std::fs::write(
            &path,
            concat!(
                "{\"kind\":\"xbar-serve-metrics\",\"seq\":0,\"stats\":{\"victims\":{\
                 \"toy\":{\"counters\":{\"serve.requests\":3}}}}}\n",
                "{\"kind\":\"xbar-serve-metrics\",\"seq\":1,\"stats\":{\"victims\":{\
                 \"toy\":{\"counters\":{\"serve.requests\":9,\"serve.queries\":40},\
                 \"gauges\":{\"serve.draining\":0.0},\
                 \"histograms\":{\"serve.request_ns\":{\"count\":9,\"sum\":900,\
                 \"min\":10,\"max\":200,\"p50\":95.0,\"p90\":180.0,\"p99\":199.0,\
                 \"p999\":200.0,\"buckets\":[[256.0,9]]}}}}}}\n",
            ),
        )
        .unwrap();
        let summary = summarize_trace(&path).unwrap();
        assert!(summary.contains("serve-metrics snapshots: 2"), "{summary}");
        assert!(summary.contains("serve.queries"), "{summary}");
        assert!(summary.contains("40"), "{summary}");
        assert!(summary.contains("serve.request_ns"), "{summary}");
        assert!(!summary.contains("campaign:"), "{summary}");
        // Through the CLI too.
        dispatch(&parse(&["trace", "summarize", &path])).unwrap();

        // A mixed file — trial trace plus serve snapshots — renders
        // both planes.
        let mut mixed = std::fs::read_to_string(&path).unwrap();
        mixed.insert_str(
            0,
            "{\"kind\":\"xbar-trace\",\"campaign\":\"mixed\",\"campaign_seed\":7,\
             \"total_trials\":1}\n{\"kind\":\"trial\",\"status\":\"ok\",\
             \"counters\":{\"serve.sessions\":2}}\n",
        );
        std::fs::write(&path, mixed).unwrap();
        let summary = summarize_trace(&path).unwrap();
        assert!(summary.contains("campaign: mixed"), "{summary}");
        assert!(summary.contains("serve.sessions"), "{summary}");
        assert!(summary.contains("serve.request_ns"), "{summary}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_summarize_rejects_non_traces() {
        let path = tmp("not-a-trace.jsonl");
        std::fs::write(&path, "{\"kind\":\"something-else\"}\n").unwrap();
        assert!(dispatch(&parse(&["trace", "summarize", &path])).is_err());
        std::fs::remove_file(&path).ok();
        // Missing file.
        assert!(dispatch(&parse(&["trace", "summarize", "/nonexistent/x.jsonl"])).is_err());
    }

    #[test]
    fn positionals_rejected_outside_trace() {
        assert!(dispatch(&parse(&["train", "stray"])).is_err());
        assert!(dispatch(&parse(&["campaign", "stray", "--figure", "fig4"])).is_err());
    }

    #[test]
    fn bad_option_values_rejected() {
        let model = tmp("bad-model");
        assert!(dispatch(&parse(&["train", "--out", &model, "--head", "quantum"])).is_err());
        assert!(dispatch(&parse(&["train", "--out", &model, "--dataset", "imagenet"])).is_err());
        assert!(dispatch(&parse(&["probe"])).is_err()); // missing --model
        std::fs::remove_file(&model).ok();
    }
}
