//! `xbar` — command-line driver for the `xbar-power-attacks` workspace.
//!
//! ```text
//! xbar train --out model.json --head softmax --dataset digits
//! xbar probe --model model.json
//! xbar attack --model model.json --strength 4
//! xbar blackbox --model model.json --queries 200 --lambda 10 --access label
//! xbar recover --model model.json
//! ```
//!
//! Run `xbar help` for the full option list.

mod args;
mod commands;

use args::ParsedArgs;

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match ParsedArgs::parse(tokens) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            commands::print_help();
            std::process::exit(2);
        }
    };
    if let Err(e) = commands::dispatch(&parsed) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
