//! The end-to-end Case-2 black-box pipeline of the paper's Fig. 5:
//! query the oracle → train a surrogate (with or without power loss) →
//! run FGSM on the surrogate → evaluate the adversarial examples on the
//! oracle.

use crate::fgsm::{fgsm_batch, BoxConstraint};
use crate::oracle::Oracle;
use crate::surrogate::{collect_queries, train_surrogate, SurrogateConfig};
use crate::{AttackError, Result};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use xbar_data::Dataset;
use xbar_nn::loss::Loss;
use xbar_nn::metrics::accuracy;
use xbar_nn::network::SingleLayerNet;

/// Configuration of a black-box attack run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlackBoxConfig {
    /// Number of oracle queries used to train the surrogate (the paper's
    /// x-axis in Fig. 5).
    pub num_queries: usize,
    /// The power-loss weight λ (Eq. 9); `0.0` is the no-power baseline.
    pub power_weight: f64,
    /// FGSM attack strength (the paper uses 0.1).
    pub fgsm_eps: f64,
    /// Surrogate SGD hyperparameters.
    pub surrogate: SurrogateConfig,
}

impl Default for BlackBoxConfig {
    fn default() -> Self {
        BlackBoxConfig {
            num_queries: 100,
            power_weight: 0.0,
            fgsm_eps: 0.1,
            surrogate: SurrogateConfig::default(),
        }
    }
}

impl BlackBoxConfig {
    /// Builder-style setter for the query count.
    pub fn with_num_queries(mut self, q: usize) -> Self {
        self.num_queries = q;
        self
    }

    /// Builder-style setter for λ (also propagated into the surrogate
    /// config).
    pub fn with_power_weight(mut self, lambda: f64) -> Self {
        self.power_weight = lambda;
        self.surrogate.power_weight = lambda;
        self
    }

    /// Builder-style setter for the FGSM strength.
    pub fn with_fgsm_eps(mut self, eps: f64) -> Self {
        self.fgsm_eps = eps;
        self
    }
}

/// The measurements of one black-box attack run — one point of each curve
/// in the paper's Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlackBoxOutcome {
    /// Surrogate accuracy on the clean test set (Fig. 5 left column).
    pub surrogate_test_accuracy: f64,
    /// Oracle accuracy on the clean test set (reference level).
    pub oracle_clean_accuracy: f64,
    /// Oracle accuracy on the surrogate-crafted adversarial test set
    /// (Fig. 5 centre column; lower = stronger attack).
    pub oracle_adversarial_accuracy: f64,
    /// Oracle queries consumed by this run.
    pub queries_used: usize,
}

impl BlackBoxOutcome {
    /// The attack's accuracy degradation,
    /// `clean accuracy − adversarial accuracy` (Fig. 5 right column
    /// compares this between λ>0 and λ=0).
    pub fn degradation(&self) -> f64 {
        self.oracle_clean_accuracy - self.oracle_adversarial_accuracy
    }
}

/// Runs the full pipeline once.
///
/// Query inputs are drawn from `train_pool` without replacement (with
/// replacement once the pool is exhausted), matching the paper's
/// "querying with Q inputs from the training set".
///
/// # Errors
///
/// * [`AttackError::InvalidParameter`] for a zero query count or an empty
///   pool/test set.
/// * Propagates query, training and attack errors.
pub fn run_blackbox_attack<R: Rng + ?Sized>(
    oracle: &mut Oracle,
    train_pool: &Dataset,
    test: &Dataset,
    cfg: &BlackBoxConfig,
    rng: &mut R,
) -> Result<(BlackBoxOutcome, SingleLayerNet)> {
    if cfg.num_queries == 0 {
        return Err(AttackError::InvalidParameter {
            name: "num_queries",
        });
    }
    if train_pool.is_empty() || test.is_empty() {
        return Err(AttackError::InvalidParameter { name: "dataset" });
    }
    let start_queries = oracle.query_count();

    // 1. Pick query rows.
    let indices = sample_indices(train_pool.len(), cfg.num_queries, rng);

    // 2. Query the oracle.
    let queries = {
        let _span = xbar_obs::span(xbar_obs::names::SPAN_COLLECT_QUERIES);
        collect_queries(oracle, train_pool.inputs(), &indices)?
    };

    // 3. Train the surrogate with the configured λ.
    let mut surrogate_cfg = cfg.surrogate;
    surrogate_cfg.power_weight = cfg.power_weight;
    let surrogate = {
        let _span = xbar_obs::span(xbar_obs::names::SPAN_TRAIN_SURROGATE);
        train_surrogate(&queries, &surrogate_cfg, rng)?
    };

    // 4. Surrogate quality on the clean test set.
    let surrogate_preds = surrogate.predict_batch(test.inputs())?;
    let surrogate_test_accuracy = accuracy(&surrogate_preds, test.labels());

    // 5. FGSM on the surrogate, evaluated on the oracle.
    let targets = test.one_hot_targets();
    let adv = {
        let _span = xbar_obs::span(xbar_obs::names::SPAN_CRAFT);
        fgsm_batch(
            &surrogate,
            test.inputs(),
            &targets,
            Loss::Mse,
            cfg.fgsm_eps,
            BoxConstraint::None,
        )?
    };
    let _eval_span = xbar_obs::span(xbar_obs::names::SPAN_EVALUATE);
    let oracle_clean_accuracy = oracle.eval_accuracy(test.inputs(), test.labels())?;
    let oracle_adversarial_accuracy = oracle.eval_accuracy(&adv, test.labels())?;
    drop(_eval_span);

    Ok((
        BlackBoxOutcome {
            surrogate_test_accuracy,
            oracle_clean_accuracy,
            oracle_adversarial_accuracy,
            queries_used: oracle.query_count() - start_queries,
        },
        surrogate,
    ))
}

/// Draws `count` indices from `0..len`: a shuffled pass without
/// replacement, switching to uniform with-replacement draws once the pool
/// is exhausted.
fn sample_indices<R: Rng + ?Sized>(len: usize, count: usize, rng: &mut R) -> Vec<usize> {
    let mut base: Vec<usize> = (0..len).collect();
    base.shuffle(rng);
    if count <= len {
        base.truncate(count);
        base
    } else {
        let mut out = base;
        while out.len() < count {
            out.push(rng.gen_range(0..len));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{OracleConfig, OutputAccess};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xbar_data::synth::blobs::BlobsConfig;
    use xbar_nn::activation::Activation;
    use xbar_nn::train::{train, SgdConfig};

    fn trained_oracle(access: OutputAccess, seed: u64) -> (Oracle, Dataset, Dataset) {
        let ds = BlobsConfig::new(3, 10)
            .num_samples(400)
            .seed(seed)
            .spread(0.15)
            .generate();
        let split = ds.split_frac(0.75).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net = SingleLayerNet::new_random(10, 3, Activation::Identity, &mut rng);
        train(
            &mut net,
            &split.train,
            Loss::Mse,
            &SgdConfig::default(),
            &mut rng,
        )
        .unwrap();
        let oracle = Oracle::new(
            net,
            &OracleConfig::ideal().with_access(access),
            seed ^ 0xBEEF,
        )
        .unwrap();
        (oracle, split.train, split.test)
    }

    #[test]
    fn pipeline_produces_sane_numbers() {
        let (mut oracle, train_pool, test) = trained_oracle(OutputAccess::Raw, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cfg = BlackBoxConfig::default().with_num_queries(60);
        let (out, surrogate) =
            run_blackbox_attack(&mut oracle, &train_pool, &test, &cfg, &mut rng).unwrap();
        assert_eq!(out.queries_used, 60);
        assert!(out.oracle_clean_accuracy > 0.8, "{out:?}");
        assert!((0.0..=1.0).contains(&out.surrogate_test_accuracy));
        assert!(out.oracle_adversarial_accuracy <= out.oracle_clean_accuracy + 0.05);
        assert_eq!(surrogate.num_inputs(), 10);
    }

    #[test]
    fn attack_degrades_oracle_accuracy_with_enough_queries() {
        let (mut oracle, train_pool, test) = trained_oracle(OutputAccess::Raw, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cfg = BlackBoxConfig::default()
            .with_num_queries(200)
            .with_fgsm_eps(0.3);
        let (out, _) =
            run_blackbox_attack(&mut oracle, &train_pool, &test, &cfg, &mut rng).unwrap();
        assert!(
            out.degradation() > 0.2,
            "attack should bite with 200 queries: {out:?}"
        );
    }

    #[test]
    fn label_only_access_also_works() {
        let (mut oracle, train_pool, test) = trained_oracle(OutputAccess::LabelOnly, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cfg = BlackBoxConfig::default().with_num_queries(100);
        let (out, _) =
            run_blackbox_attack(&mut oracle, &train_pool, &test, &cfg, &mut rng).unwrap();
        assert!(out.surrogate_test_accuracy > 0.5, "{out:?}");
    }

    #[test]
    fn power_weight_propagates() {
        let cfg = BlackBoxConfig::default().with_power_weight(0.01);
        assert_eq!(cfg.power_weight, 0.01);
        assert_eq!(cfg.surrogate.power_weight, 0.01);
    }

    #[test]
    fn degradation_definition() {
        let out = BlackBoxOutcome {
            surrogate_test_accuracy: 0.9,
            oracle_clean_accuracy: 0.8,
            oracle_adversarial_accuracy: 0.3,
            queries_used: 10,
        };
        assert!((out.degradation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parameter_validation() {
        let (mut oracle, train_pool, test) = trained_oracle(OutputAccess::Raw, 9);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let cfg = BlackBoxConfig::default().with_num_queries(0);
        assert!(run_blackbox_attack(&mut oracle, &train_pool, &test, &cfg, &mut rng).is_err());
    }

    #[test]
    fn sample_indices_without_then_with_replacement() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let idx = sample_indices(10, 6, &mut rng);
        assert_eq!(idx.len(), 6);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "no repeats when count <= len");
        let big = sample_indices(4, 10, &mut rng);
        assert_eq!(big.len(), 10);
        assert!(big.iter().all(|&i| i < 4));
    }
}
