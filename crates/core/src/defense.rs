//! Power-obfuscation countermeasures — an extension beyond the paper.
//!
//! The paper's conclusion motivates defending the power side channel.
//! This module implements two natural hardware countermeasures as
//! wrappers around the oracle's power observations, so the attack suite
//! can quantify their cost/benefit:
//!
//! * [`PowerDefense::DummyConductances`] — extra always-on conductance on
//!   each input line (e.g. dummy columns), adding a *static* per-line
//!   offset to `G_j`. Defeats naive norm probing unless the attacker
//!   calibrates differentially.
//! * [`PowerDefense::RandomizedDummy`] — per-query re-randomised dummy
//!   conductances, which cannot be calibrated away by repeat-free probing
//!   and degrade gracefully with probe averaging.
//! * [`PowerDefense::AdditiveNoise`] — injected measurement noise (e.g. a
//!   noisy on-chip regulator).

use crate::oracle::{Oracle, QueryRecord};
use crate::{AttackError, Result};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A power-side-channel countermeasure applied on top of the oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerDefense {
    /// No defense (pass-through).
    None,
    /// Static extra conductance per input line, in weight units: the
    /// observed power becomes `p + Σ_j u_j d_j` with fixed `d`.
    DummyConductances {
        /// Per-input-line offsets (length = input dimension).
        offsets: Vec<f64>,
    },
    /// Per-query re-randomised dummy conductances: offsets are drawn
    /// uniformly from `[0, magnitude]` independently per line per query.
    RandomizedDummy {
        /// Maximum per-line offset (weight units).
        magnitude: f64,
    },
    /// Additional Gaussian measurement noise of the given σ (weight
    /// units).
    AdditiveNoise {
        /// Noise standard deviation.
        sigma: f64,
    },
}

impl PowerDefense {
    /// Validates the defense parameters for an oracle with `num_inputs`
    /// input lines.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] for negative magnitudes,
    /// non-finite values, or offset vectors of the wrong length.
    pub fn validate(&self, num_inputs: usize) -> Result<()> {
        match self {
            PowerDefense::None => Ok(()),
            PowerDefense::DummyConductances { offsets } => {
                if offsets.len() != num_inputs {
                    return Err(AttackError::InvalidParameter { name: "offsets" });
                }
                if offsets.iter().any(|d| !d.is_finite() || *d < 0.0) {
                    return Err(AttackError::InvalidParameter { name: "offsets" });
                }
                Ok(())
            }
            PowerDefense::RandomizedDummy { magnitude } => {
                if !(magnitude.is_finite() && *magnitude >= 0.0) {
                    return Err(AttackError::InvalidParameter { name: "magnitude" });
                }
                Ok(())
            }
            PowerDefense::AdditiveNoise { sigma } => {
                if !(sigma.is_finite() && *sigma >= 0.0) {
                    return Err(AttackError::InvalidParameter { name: "sigma" });
                }
                Ok(())
            }
        }
    }

    /// The extra power term for one query.
    fn extra_power<R: Rng + ?Sized>(&self, u: &[f64], rng: &mut R) -> f64 {
        match self {
            PowerDefense::None => 0.0,
            PowerDefense::DummyConductances { offsets } => {
                u.iter().zip(offsets).map(|(&uj, &dj)| uj * dj).sum()
            }
            PowerDefense::RandomizedDummy { magnitude } => u
                .iter()
                .map(|&uj| uj * rng.gen_range(0.0..=*magnitude))
                .sum(),
            PowerDefense::AdditiveNoise { sigma } => {
                if *sigma == 0.0 {
                    0.0
                } else {
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                }
            }
        }
    }
}

/// An oracle whose power observations pass through a [`PowerDefense`].
/// Output observations are unaffected — the countermeasures only touch
/// the analogue supply rail.
#[derive(Debug, Clone)]
pub struct DefendedOracle {
    oracle: Oracle,
    defense: PowerDefense,
    rng: ChaCha8Rng,
}

impl DefendedOracle {
    /// Wraps an oracle with a defense. `seed` drives the defense's own
    /// randomness (unknown to the attacker).
    ///
    /// # Errors
    ///
    /// Propagates [`PowerDefense::validate`].
    pub fn new(oracle: Oracle, defense: PowerDefense, seed: u64) -> Result<Self> {
        defense.validate(oracle.num_inputs())?;
        Ok(DefendedOracle {
            oracle,
            defense,
            rng: ChaCha8Rng::seed_from_u64(seed),
        })
    }

    /// The wrapped oracle (e.g. for evaluation-side calls).
    pub fn inner(&self) -> &Oracle {
        &self.oracle
    }

    /// Input dimension.
    pub fn num_inputs(&self) -> usize {
        self.oracle.num_inputs()
    }

    /// Queries consumed so far.
    pub fn query_count(&self) -> usize {
        self.oracle.query_count()
    }

    /// One defended query (same contract as [`Oracle::query`]).
    ///
    /// # Errors
    ///
    /// Propagates oracle query errors.
    pub fn query(&mut self, u: &[f64]) -> Result<QueryRecord> {
        let mut rec = self.oracle.query(u)?;
        rec.observation.power += self.defense.extra_power(u, &mut self.rng);
        Ok(rec)
    }

    /// A batch of defended queries (same contract as
    /// [`Oracle::query_batch`]). The defense's own randomness is drawn
    /// per query in batch order, so a batch equals the same queries
    /// issued one at a time.
    ///
    /// # Errors
    ///
    /// Propagates oracle query errors.
    pub fn query_batch(&mut self, inputs: &[&[f64]]) -> Result<Vec<QueryRecord>> {
        let mut records = self.oracle.query_batch(inputs)?;
        for (rec, u) in records.iter_mut().zip(inputs) {
            rec.observation.power += self.defense.extra_power(u, &mut self.rng);
        }
        Ok(records)
    }

    /// Probes all column norms through the defense (the defended analogue
    /// of [`crate::probe::probe_column_norms`]); what the attacker
    /// recovers is the *defended* landscape. Each repeat issues its `N`
    /// basis probes as one defended batch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::probe::probe_column_norms`].
    pub fn probe_column_norms(&mut self, beta: f64, repeats: usize) -> Result<Vec<f64>> {
        if !(beta.is_finite() && beta != 0.0) {
            return Err(AttackError::InvalidParameter { name: "beta" });
        }
        if repeats == 0 {
            return Err(AttackError::InvalidParameter { name: "repeats" });
        }
        let n = self.num_inputs();
        let probes: Vec<Vec<f64>> = (0..n)
            .map(|j| {
                let mut probe = vec![0.0; n];
                probe[j] = beta;
                probe
            })
            .collect();
        let refs: Vec<&[f64]> = probes.iter().map(Vec::as_slice).collect();
        let mut norms = vec![0.0; n];
        for _ in 0..repeats {
            let records = self.query_batch(&refs)?;
            for (norm, rec) in norms.iter_mut().zip(&records) {
                *norm += rec.observation.power;
            }
        }
        for norm in &mut norms {
            *norm /= repeats as f64 * beta;
        }
        Ok(norms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{OracleConfig, OutputAccess};
    use xbar_linalg::Matrix;
    use xbar_nn::activation::Activation;
    use xbar_nn::network::SingleLayerNet;
    use xbar_stats::correlation::pearson;

    fn base_oracle() -> Oracle {
        let w = Matrix::from_fn(4, 12, |i, j| ((i * 12 + j) as f64 * 0.61).sin());
        let net = SingleLayerNet::from_weights(w, Activation::Identity);
        Oracle::new(
            net,
            &OracleConfig::ideal().with_access(OutputAccess::None),
            31,
        )
        .unwrap()
    }

    #[test]
    fn none_defense_is_transparent() {
        let mut bare = base_oracle();
        let mut defended = DefendedOracle::new(base_oracle(), PowerDefense::None, 1).unwrap();
        let u = vec![0.5; 12];
        assert_eq!(
            bare.query(&u).unwrap().observation.power,
            defended.query(&u).unwrap().observation.power
        );
    }

    #[test]
    fn static_dummies_shift_probed_norms_by_offsets() {
        let offsets: Vec<f64> = (0..12).map(|j| j as f64 * 0.1).collect();
        let mut defended = DefendedOracle::new(
            base_oracle(),
            PowerDefense::DummyConductances {
                offsets: offsets.clone(),
            },
            2,
        )
        .unwrap();
        let true_norms = defended.inner().true_column_norms();
        let probed = defended.probe_column_norms(1.0, 1).unwrap();
        for j in 0..12 {
            assert!((probed[j] - true_norms[j] - offsets[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn static_dummies_can_flip_the_argmax() {
        let true_norms = base_oracle().true_column_norms();
        let argmax = xbar_linalg::vec_ops::argmax(&true_norms);
        // Put a huge dummy on a different column.
        let decoy = (argmax + 1) % 12;
        let mut offsets = vec![0.0; 12];
        offsets[decoy] = 100.0;
        let mut defended = DefendedOracle::new(
            base_oracle(),
            PowerDefense::DummyConductances { offsets },
            3,
        )
        .unwrap();
        let probed = defended.probe_column_norms(1.0, 1).unwrap();
        assert_eq!(xbar_linalg::vec_ops::argmax(&probed), decoy);
    }

    #[test]
    fn randomized_dummies_decorrelate_probes() {
        let run = |defense: PowerDefense| -> f64 {
            let mut defended = DefendedOracle::new(base_oracle(), defense, 4).unwrap();
            let true_norms = defended.inner().true_column_norms();
            let probed = defended.probe_column_norms(1.0, 1).unwrap();
            pearson(&probed, &true_norms).unwrap()
        };
        let clean_r = run(PowerDefense::None);
        let defended_r = run(PowerDefense::RandomizedDummy { magnitude: 20.0 });
        assert!((clean_r - 1.0).abs() < 1e-9);
        assert!(
            defended_r.abs() < 0.9,
            "randomised dummies should hurt correlation: {defended_r}"
        );
    }

    #[test]
    fn additive_noise_defense_averages_away() {
        let defense = PowerDefense::AdditiveNoise { sigma: 1.0 };
        let err_of = |repeats: usize| -> f64 {
            let mut defended = DefendedOracle::new(base_oracle(), defense.clone(), 5).unwrap();
            let truth = defended.inner().true_column_norms();
            let probed = defended.probe_column_norms(1.0, repeats).unwrap();
            probed
                .iter()
                .zip(&truth)
                .map(|(p, t)| (p - t).abs())
                .sum::<f64>()
                / 12.0
        };
        let e1 = err_of(1);
        let e100 = err_of(100);
        assert!(e100 < e1 / 3.0, "averaging should help: {e1} -> {e100}");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let o = base_oracle();
        assert!(DefendedOracle::new(
            o.clone(),
            PowerDefense::DummyConductances {
                offsets: vec![1.0; 3]
            },
            0
        )
        .is_err());
        assert!(DefendedOracle::new(
            o.clone(),
            PowerDefense::DummyConductances {
                offsets: vec![-1.0; 12]
            },
            0
        )
        .is_err());
        assert!(DefendedOracle::new(
            o.clone(),
            PowerDefense::RandomizedDummy { magnitude: -1.0 },
            0
        )
        .is_err());
        assert!(
            DefendedOracle::new(o, PowerDefense::AdditiveNoise { sigma: f64::NAN }, 0).is_err()
        );
    }

    #[test]
    fn defended_probe_validates_parameters() {
        let mut d = DefendedOracle::new(base_oracle(), PowerDefense::None, 6).unwrap();
        assert!(d.probe_column_norms(0.0, 1).is_err());
        assert!(d.probe_column_norms(1.0, 0).is_err());
    }
}
