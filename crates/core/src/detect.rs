//! Defender-side use of the same side channel: detecting adversarial
//! inputs from their current signatures.
//!
//! The paper's related work (Moitra & Panda, *DetectX*, cited as \[13\])
//! shows that the crossbar's current signature can expose adversarial
//! inputs. This module implements that idea for the attacks in this
//! crate: the defender calibrates the distribution of the Eq. 5 supply
//! current over clean traffic, then flags queries whose current
//! z-score is anomalous.
//!
//! Single-pixel attacks at the largest-norm pixel are especially exposed:
//! the attack *adds attack strength exactly where it costs the most
//! power*, shifting the query's current by `±ε·max_j ‖W[:,j]‖₁` — several
//! calibration standard deviations for the strengths Fig. 4 needs.

use crate::{AttackError, Result};
use serde::{Deserialize, Serialize};
use xbar_stats::descriptive::RunningStats;

/// A calibrated power-anomaly detector.
///
/// # Example
///
/// ```
/// use xbar_core::detect::PowerAnomalyDetector;
///
/// let clean = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 1.02];
/// let det = PowerAnomalyDetector::calibrate(&clean, 3.0)?;
/// assert!(!det.is_anomalous(1.08));
/// assert!(det.is_anomalous(2.0));
/// # Ok::<(), xbar_core::AttackError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerAnomalyDetector {
    mean: f64,
    std: f64,
    threshold: f64,
}

impl PowerAnomalyDetector {
    /// Calibrates on clean-traffic power observations, flagging anything
    /// beyond `threshold` standard deviations from their mean.
    ///
    /// # Errors
    ///
    /// * [`AttackError::InvalidParameter`] with fewer than two
    ///   calibration samples, a zero-variance calibration set, or a
    ///   non-positive/non-finite threshold.
    pub fn calibrate(clean_powers: &[f64], threshold: f64) -> Result<Self> {
        if clean_powers.len() < 2 {
            return Err(AttackError::InvalidParameter {
                name: "clean_powers",
            });
        }
        if !(threshold.is_finite() && threshold > 0.0) {
            return Err(AttackError::InvalidParameter { name: "threshold" });
        }
        let rs: RunningStats = clean_powers.iter().copied().collect();
        let std = rs.sample_std();
        if std == 0.0 {
            return Err(AttackError::InvalidParameter {
                name: "clean_powers",
            });
        }
        Ok(PowerAnomalyDetector {
            mean: rs.mean(),
            std,
            threshold,
        })
    }

    /// The calibrated clean-traffic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The calibrated clean-traffic standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// The z-score of one power observation.
    pub fn z_score(&self, power: f64) -> f64 {
        (power - self.mean) / self.std
    }

    /// Whether one observation is flagged.
    pub fn is_anomalous(&self, power: f64) -> bool {
        self.z_score(power).abs() > self.threshold
    }

    /// Detection rate over a batch of observations (fraction flagged).
    pub fn detection_rate(&self, powers: &[f64]) -> f64 {
        if powers.is_empty() {
            return 0.0;
        }
        powers.iter().filter(|&&p| self.is_anomalous(p)).count() as f64 / powers.len() as f64
    }
}

/// Per-class power-anomaly detector: calibrates one power band per
/// *predicted class*, the way DetectX conditions its current signatures.
///
/// A global band (see [`PowerAnomalyDetector`]) is too coarse for
/// high-variance traffic — on digit images the clean power spread across
/// inputs swamps a single-pixel perturbation. Conditioning on the
/// predicted class tightens each band, since images of one class share a
/// similar active-pixel footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerClassDetector {
    detectors: Vec<PowerAnomalyDetector>,
}

impl PerClassDetector {
    /// Calibrates one band per class from `(predicted class, power)`
    /// clean-traffic pairs.
    ///
    /// # Errors
    ///
    /// * [`AttackError::InvalidParameter`] if `num_classes == 0`, a label
    ///   is out of range, or any class has fewer than two (or
    ///   zero-variance) calibration samples.
    pub fn calibrate(samples: &[(usize, f64)], num_classes: usize, threshold: f64) -> Result<Self> {
        if num_classes == 0 {
            return Err(AttackError::InvalidParameter {
                name: "num_classes",
            });
        }
        let mut per_class: Vec<Vec<f64>> = vec![Vec::new(); num_classes];
        for &(label, power) in samples {
            if label >= num_classes {
                return Err(AttackError::InvalidParameter { name: "samples" });
            }
            per_class[label].push(power);
        }
        let detectors = per_class
            .iter()
            .map(|powers| PowerAnomalyDetector::calibrate(powers, threshold))
            .collect::<Result<Vec<_>>>()?;
        Ok(PerClassDetector { detectors })
    }

    /// Number of calibrated classes.
    pub fn num_classes(&self) -> usize {
        self.detectors.len()
    }

    /// Whether a `(predicted class, power)` observation is flagged.
    ///
    /// # Panics
    ///
    /// Panics if `predicted_class` is out of range.
    pub fn is_anomalous(&self, predicted_class: usize, power: f64) -> bool {
        self.detectors[predicted_class].is_anomalous(power)
    }

    /// Detection rate over `(predicted class, power)` observations.
    pub fn detection_rate(&self, observations: &[(usize, f64)]) -> f64 {
        if observations.is_empty() {
            return 0.0;
        }
        observations
            .iter()
            .filter(|&&(c, p)| self.is_anomalous(c, p))
            .count() as f64
            / observations.len() as f64
    }
}

/// Defender's evaluation of a detector: detection rate on adversarial
/// traffic vs false-positive rate on held-out clean traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Fraction of adversarial queries flagged.
    pub true_positive_rate: f64,
    /// Fraction of clean queries flagged.
    pub false_positive_rate: f64,
}

/// Evaluates a detector on held-out clean and adversarial power traces.
pub fn evaluate_detector(
    detector: &PowerAnomalyDetector,
    clean_powers: &[f64],
    adversarial_powers: &[f64],
) -> DetectionReport {
    DetectionReport {
        true_positive_rate: detector.detection_rate(adversarial_powers),
        false_positive_rate: detector.detection_rate(clean_powers),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{Oracle, OracleConfig, OutputAccess};
    use crate::pixel_attack::{single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xbar_data::synth::blobs::BlobsConfig;
    use xbar_linalg::Matrix;
    use xbar_nn::activation::Activation;
    use xbar_nn::loss::Loss;
    use xbar_nn::network::SingleLayerNet;
    use xbar_nn::train::{train, SgdConfig};

    fn batch_powers(oracle: &mut Oracle, rows: &[&[f64]]) -> Vec<f64> {
        oracle
            .query_batch(rows)
            .unwrap()
            .iter()
            .map(|r| r.observation.power)
            .collect()
    }

    #[test]
    fn calibration_validates() {
        assert!(PowerAnomalyDetector::calibrate(&[1.0], 3.0).is_err());
        assert!(PowerAnomalyDetector::calibrate(&[1.0, 1.0], 3.0).is_err());
        assert!(PowerAnomalyDetector::calibrate(&[1.0, 2.0], 0.0).is_err());
        assert!(PowerAnomalyDetector::calibrate(&[1.0, 2.0], f64::NAN).is_err());
        assert!(PowerAnomalyDetector::calibrate(&[1.0, 2.0], 3.0).is_ok());
    }

    #[test]
    fn z_scores_and_flags() {
        let det = PowerAnomalyDetector::calibrate(&[0.0, 2.0], 2.0).unwrap();
        assert!((det.mean() - 1.0).abs() < 1e-12);
        assert!((det.std() - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!((det.z_score(1.0)).abs() < 1e-12);
        assert!(!det.is_anomalous(1.0));
        assert!(det.is_anomalous(10.0));
        assert!(det.is_anomalous(-10.0));
    }

    #[test]
    fn detection_rate_counts_flags() {
        let det = PowerAnomalyDetector::calibrate(&[0.9, 1.0, 1.1, 1.0, 0.95], 3.0).unwrap();
        assert_eq!(det.detection_rate(&[]), 0.0);
        let rate = det.detection_rate(&[1.0, 5.0, 1.02, -3.0]);
        assert!((rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_pixel_attacks_are_detectable_end_to_end() {
        // Train a victim, deploy it, calibrate on clean power, then check
        // that Fig.4-strength single-pixel attacks light up the detector.
        let ds = BlobsConfig::new(3, 30).num_samples(300).seed(6).generate();
        let split = ds.split_frac(0.8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut net = SingleLayerNet::new_random(30, 3, Activation::Identity, &mut rng);
        train(
            &mut net,
            &split.train,
            Loss::Mse,
            &SgdConfig::default(),
            &mut rng,
        )
        .unwrap();
        let mut oracle = Oracle::new(
            net.clone(),
            &OracleConfig::ideal().with_access(OutputAccess::None),
            8,
        )
        .unwrap();

        // Defender calibrates on clean traffic.
        let train_rows: Vec<&[f64]> = (0..split.train.len())
            .map(|i| split.train.input(i))
            .collect();
        let clean_powers = batch_powers(&mut oracle, &train_rows);
        let det = PowerAnomalyDetector::calibrate(&clean_powers, 3.0).unwrap();

        // Attacker crafts norm-guided single-pixel adversarial inputs at a
        // strength that actually moves the model.
        let norms = net.column_l1_norms();
        let targets = split.test.one_hot_targets();
        let adv = single_pixel_attack_batch(
            PixelAttackMethod::NormPlus,
            split.test.inputs(),
            &targets,
            PixelAttackResources::norms_only(&norms),
            5.0,
            &mut rng,
        )
        .unwrap();
        let adv_rows: Vec<&[f64]> = (0..adv.rows()).map(|i| adv.row(i)).collect();
        let adv_powers = batch_powers(&mut oracle, &adv_rows);
        let test_rows: Vec<&[f64]> = (0..split.test.len()).map(|i| split.test.input(i)).collect();
        let held_out = batch_powers(&mut oracle, &test_rows);
        let report = evaluate_detector(&det, &held_out, &adv_powers);
        assert!(
            report.true_positive_rate > 0.9,
            "detector should catch strength-5 attacks: {report:?}"
        );
        assert!(
            report.false_positive_rate < 0.1,
            "clean traffic should pass: {report:?}"
        );
    }

    #[test]
    fn weak_attacks_evade_detection() {
        // The flip side: small perturbations stay inside the calibrated
        // band — detection is strength-limited, as DetectX also reports.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let w = Matrix::random_uniform(3, 20, -1.0, 1.0, &mut rng);
        let net = SingleLayerNet::from_weights(w, Activation::Identity);
        let mut oracle = Oracle::new(
            net.clone(),
            &OracleConfig::ideal().with_access(OutputAccess::None),
            10,
        )
        .unwrap();
        let clean = Matrix::random_uniform(200, 20, 0.0, 1.0, &mut rng);
        let clean_rows: Vec<&[f64]> = (0..200).map(|i| clean.row(i)).collect();
        let clean_powers = batch_powers(&mut oracle, &clean_rows);
        let det = PowerAnomalyDetector::calibrate(&clean_powers, 3.0).unwrap();
        // Tiny perturbation on a fresh clean batch.
        let fresh = Matrix::random_uniform(100, 20, 0.0, 1.0, &mut rng);
        let norms = net.column_l1_norms();
        let targets = Matrix::zeros(100, 3);
        let adv = single_pixel_attack_batch(
            PixelAttackMethod::NormPlus,
            &fresh,
            &targets,
            PixelAttackResources::norms_only(&norms),
            0.05,
            &mut rng,
        )
        .unwrap();
        let adv_rows: Vec<&[f64]> = (0..100).map(|i| adv.row(i)).collect();
        let adv_powers = batch_powers(&mut oracle, &adv_rows);
        assert!(det.detection_rate(&adv_powers) < 0.1);
    }

    #[test]
    fn per_class_calibration_validates() {
        assert!(PerClassDetector::calibrate(&[(0, 1.0), (0, 2.0)], 0, 3.0).is_err());
        assert!(PerClassDetector::calibrate(&[(5, 1.0)], 2, 3.0).is_err());
        // Class 1 has no samples.
        assert!(PerClassDetector::calibrate(&[(0, 1.0), (0, 2.0)], 2, 3.0).is_err());
        let ok =
            PerClassDetector::calibrate(&[(0, 1.0), (0, 1.2), (1, 5.0), (1, 5.5)], 2, 3.0).unwrap();
        assert_eq!(ok.num_classes(), 2);
    }

    #[test]
    fn per_class_bands_beat_the_global_band() {
        // Two classes with very different clean power levels: a global
        // band must be wide; per-class bands stay tight, so a shift that
        // hides globally is caught per class.
        let class0: Vec<(usize, f64)> = (0..40).map(|i| (0, 1.0 + 0.01 * (i % 5) as f64)).collect();
        let class1: Vec<(usize, f64)> = (0..40).map(|i| (1, 9.0 + 0.01 * (i % 5) as f64)).collect();
        let all: Vec<(usize, f64)> = class0.iter().chain(&class1).copied().collect();
        let per_class = PerClassDetector::calibrate(&all, 2, 3.0).unwrap();
        let global = PowerAnomalyDetector::calibrate(
            &all.iter().map(|&(_, p)| p).collect::<Vec<f64>>(),
            3.0,
        )
        .unwrap();
        // A +1.0 shift on a class-0 query: invisible globally (the global
        // std is ~4), obvious per class.
        let shifted = 2.0;
        assert!(!global.is_anomalous(shifted));
        assert!(per_class.is_anomalous(0, shifted));
        // Clean observations pass per class.
        assert_eq!(per_class.detection_rate(&class0), 0.0);
    }

    #[test]
    fn report_roundtrips_through_serde() {
        let det = PowerAnomalyDetector::calibrate(&[1.0, 2.0, 3.0], 2.5).unwrap();
        let json = serde_json::to_string(&det).unwrap();
        let back: PowerAnomalyDetector = serde_json::from_str(&json).unwrap();
        assert_eq!(det, back);
    }
}
