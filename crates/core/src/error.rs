use std::fmt;

/// Errors produced by the attack library.
#[derive(Debug)]
#[non_exhaustive]
pub enum AttackError {
    /// A linear-algebra failure in a recovery or surrogate step.
    Linalg(xbar_linalg::LinalgError),
    /// A network-level failure (dimension mismatch, bad pairing, ...).
    Nn(xbar_nn::NnError),
    /// A crossbar-simulation failure.
    Crossbar(xbar_crossbar::CrossbarError),
    /// A fault-injection failure (bad spec, plan/array shape mismatch).
    Faults(xbar_faults::FaultsError),
    /// A statistics failure while aggregating results.
    Stats(xbar_stats::StatsError),
    /// The oracle's query budget was exhausted.
    QueryBudgetExhausted {
        /// The configured budget.
        budget: usize,
    },
    /// The oracle does not expose the output access level the attack
    /// needs (e.g. raw-output recovery against a label-only oracle).
    InsufficientAccess {
        /// What the attack needed.
        needed: &'static str,
    },
    /// An attack parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// An I/O failure while persisting or loading attack artifacts.
    Io(std::io::Error),
    /// A (de)serialisation failure while persisting or loading artifacts.
    Serde(serde_json::Error),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            AttackError::Nn(e) => write!(f, "network error: {e}"),
            AttackError::Crossbar(e) => write!(f, "crossbar error: {e}"),
            AttackError::Faults(e) => write!(f, "fault-injection error: {e}"),
            AttackError::Stats(e) => write!(f, "statistics error: {e}"),
            AttackError::QueryBudgetExhausted { budget } => {
                write!(f, "oracle query budget of {budget} exhausted")
            }
            AttackError::InsufficientAccess { needed } => {
                write!(f, "oracle does not expose {needed}")
            }
            AttackError::InvalidParameter { name } => {
                write!(f, "attack parameter {name} is outside its valid domain")
            }
            AttackError::Io(e) => write!(f, "i/o error: {e}"),
            AttackError::Serde(e) => write!(f, "serialisation error: {e}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Linalg(e) => Some(e),
            AttackError::Nn(e) => Some(e),
            AttackError::Crossbar(e) => Some(e),
            AttackError::Faults(e) => Some(e),
            AttackError::Stats(e) => Some(e),
            AttackError::Io(e) => Some(e),
            AttackError::Serde(e) => Some(e),
            _ => None,
        }
    }
}

impl From<xbar_linalg::LinalgError> for AttackError {
    fn from(e: xbar_linalg::LinalgError) -> Self {
        AttackError::Linalg(e)
    }
}

impl From<xbar_nn::NnError> for AttackError {
    fn from(e: xbar_nn::NnError) -> Self {
        AttackError::Nn(e)
    }
}

impl From<xbar_crossbar::CrossbarError> for AttackError {
    fn from(e: xbar_crossbar::CrossbarError) -> Self {
        AttackError::Crossbar(e)
    }
}

impl From<xbar_faults::FaultsError> for AttackError {
    fn from(e: xbar_faults::FaultsError) -> Self {
        AttackError::Faults(e)
    }
}

impl From<xbar_stats::StatsError> for AttackError {
    fn from(e: xbar_stats::StatsError) -> Self {
        AttackError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = AttackError::from(xbar_linalg::LinalgError::Singular);
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
        let e = AttackError::QueryBudgetExhausted { budget: 10 };
        assert!(e.to_string().contains("10"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }
}
