//! Gradient-based evasion attacks: FGSM, FGV, and iterative PGD.
//!
//! FGSM (paper Eq. 2): `r* = ε · sgn(∇_u L)`. These run against any
//! differentiable [`SingleLayerNet`] — in the black-box pipeline that is
//! the *surrogate*, whose adversarial examples transfer to the oracle.

use crate::{AttackError, Result};
use xbar_linalg::Matrix;
use xbar_nn::loss::Loss;
use xbar_nn::network::SingleLayerNet;
use xbar_nn::sensitivity::batch_input_gradients;

/// Optional box constraint applied after perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoxConstraint {
    /// No clipping (the paper's Fig. 4/5 setting).
    None,
    /// Clamp every feature into `[lo, hi]`.
    Clamp {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl BoxConstraint {
    fn apply(&self, x: &mut Matrix) {
        if let BoxConstraint::Clamp { lo, hi } = *self {
            x.map_inplace(|v| v.clamp(lo, hi));
        }
    }
}

fn validate_eps(eps: f64) -> Result<()> {
    if !(eps.is_finite() && eps >= 0.0) {
        return Err(AttackError::InvalidParameter { name: "eps" });
    }
    Ok(())
}

/// Fast gradient sign method on a batch: returns `U + ε·sgn(∇_U L)`.
///
/// # Errors
///
/// * [`AttackError::InvalidParameter`] for a negative or non-finite `eps`.
/// * Propagates gradient-computation errors.
pub fn fgsm_batch(
    net: &SingleLayerNet,
    inputs: &Matrix,
    targets: &Matrix,
    loss: Loss,
    eps: f64,
    constraint: BoxConstraint,
) -> Result<Matrix> {
    validate_eps(eps)?;
    xbar_obs::count(xbar_obs::names::ATTACK_FGSM_BATCH, 1);
    let grads = batch_input_gradients(net, inputs, targets, loss)?;
    let mut adv = inputs
        .zip_map(&grads, |u, g| u + eps * sign(g))
        .expect("gradient shape matches inputs");
    constraint.apply(&mut adv);
    Ok(adv)
}

/// Fast gradient value method: perturbs along the *normalised gradient
/// direction* instead of its sign, `U + ε·∇/‖∇‖₂` per sample.
///
/// # Errors
///
/// Same conditions as [`fgsm_batch`].
pub fn fgv_batch(
    net: &SingleLayerNet,
    inputs: &Matrix,
    targets: &Matrix,
    loss: Loss,
    eps: f64,
    constraint: BoxConstraint,
) -> Result<Matrix> {
    validate_eps(eps)?;
    xbar_obs::count(xbar_obs::names::ATTACK_FGSM_BATCH, 1);
    let grads = batch_input_gradients(net, inputs, targets, loss)?;
    let mut adv = inputs.clone();
    for i in 0..adv.rows() {
        let g = grads.row(i);
        let norm = xbar_linalg::vec_ops::norm2(g);
        if norm == 0.0 {
            continue;
        }
        let row = adv.row_mut(i);
        for (r, &gj) in row.iter_mut().zip(g) {
            *r += eps * gj / norm;
        }
    }
    constraint.apply(&mut adv);
    Ok(adv)
}

/// Projected gradient descent (iterated FGSM with an `ℓ∞` ball of radius
/// `eps`, step `alpha`, `steps` iterations) — the standard stronger
/// multi-step extension of Eq. 2.
///
/// # Errors
///
/// * [`AttackError::InvalidParameter`] for invalid `eps`, `alpha`, or
///   `steps == 0`.
/// * Propagates gradient-computation errors.
#[allow(clippy::too_many_arguments)]
pub fn pgd_batch(
    net: &SingleLayerNet,
    inputs: &Matrix,
    targets: &Matrix,
    loss: Loss,
    eps: f64,
    alpha: f64,
    steps: usize,
    constraint: BoxConstraint,
) -> Result<Matrix> {
    validate_eps(eps)?;
    if !(alpha.is_finite() && alpha > 0.0) {
        return Err(AttackError::InvalidParameter { name: "alpha" });
    }
    if steps == 0 {
        return Err(AttackError::InvalidParameter { name: "steps" });
    }
    let mut adv = inputs.clone();
    for _ in 0..steps {
        xbar_obs::count(xbar_obs::names::ATTACK_PGD_STEP, 1);
        let grads = batch_input_gradients(net, &adv, targets, loss)?;
        adv = adv
            .zip_map(&grads, |u, g| u + alpha * sign(g))
            .expect("gradient shape matches inputs");
        // Project back into the ℓ∞ ball around the original inputs.
        adv = adv
            .zip_map(inputs, |a, u| a.clamp(u - eps, u + eps))
            .expect("shapes match");
        constraint.apply(&mut adv);
    }
    Ok(adv)
}

/// Targeted FGSM: moves each input *toward* a chosen target class by
/// descending the loss against the target's one-hot row,
/// `U − ε·sgn(∇_U L(U, target))`.
///
/// Used for the paper's targeted-attack framing (stop sign → speed
/// limit): instead of merely leaving the true class, the input is pushed
/// into a specific other class.
///
/// # Errors
///
/// Same conditions as [`fgsm_batch`].
pub fn fgsm_targeted_batch(
    net: &SingleLayerNet,
    inputs: &Matrix,
    target_class: usize,
    loss: Loss,
    eps: f64,
    constraint: BoxConstraint,
) -> Result<Matrix> {
    validate_eps(eps)?;
    if target_class >= net.num_outputs() {
        return Err(AttackError::InvalidParameter {
            name: "target_class",
        });
    }
    let mut targets = Matrix::zeros(inputs.rows(), net.num_outputs());
    for i in 0..inputs.rows() {
        targets[(i, target_class)] = 1.0;
    }
    let grads = batch_input_gradients(net, inputs, &targets, loss)?;
    let mut adv = inputs
        .zip_map(&grads, |u, g| u - eps * sign(g))
        .expect("gradient shape matches inputs");
    constraint.apply(&mut adv);
    Ok(adv)
}

#[inline]
fn sign(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xbar_nn::activation::Activation;
    use xbar_nn::train::dataset_loss;

    fn setup() -> (SingleLayerNet, Matrix, Matrix) {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = SingleLayerNet::new_random(6, 3, Activation::Identity, &mut rng);
        let inputs = Matrix::random_uniform(8, 6, 0.0, 1.0, &mut rng);
        let mut targets = Matrix::zeros(8, 3);
        for i in 0..8 {
            targets[(i, i % 3)] = 1.0;
        }
        (net, inputs, targets)
    }

    #[test]
    fn fgsm_increases_loss() {
        let (net, inputs, targets) = setup();
        let before = dataset_loss(&net, &inputs, &targets, Loss::Mse).unwrap();
        let adv = fgsm_batch(&net, &inputs, &targets, Loss::Mse, 0.1, BoxConstraint::None).unwrap();
        let after = dataset_loss(&net, &adv, &targets, Loss::Mse).unwrap();
        assert!(after > before, "{after} should exceed {before}");
    }

    #[test]
    fn fgsm_perturbation_is_linf_bounded() {
        let (net, inputs, targets) = setup();
        let eps = 0.07;
        let adv = fgsm_batch(&net, &inputs, &targets, Loss::Mse, eps, BoxConstraint::None).unwrap();
        let max_dev = (&adv - &inputs).max_abs();
        assert!(max_dev <= eps + 1e-12);
        // Almost all coordinates sit exactly at ±eps (sign attack).
        let at_eps = adv
            .as_slice()
            .iter()
            .zip(inputs.as_slice())
            .filter(|(a, u)| ((*a - *u).abs() - eps).abs() < 1e-12)
            .count();
        assert!(at_eps as f64 > 0.9 * inputs.len() as f64);
    }

    #[test]
    fn zero_eps_is_identity() {
        let (net, inputs, targets) = setup();
        let adv = fgsm_batch(&net, &inputs, &targets, Loss::Mse, 0.0, BoxConstraint::None).unwrap();
        assert!(adv.approx_eq(&inputs, 1e-12));
    }

    #[test]
    fn clamp_constraint_respected() {
        let (net, inputs, targets) = setup();
        let adv = fgsm_batch(
            &net,
            &inputs,
            &targets,
            Loss::Mse,
            0.5,
            BoxConstraint::Clamp { lo: 0.0, hi: 1.0 },
        )
        .unwrap();
        assert!(adv.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn fgv_moves_along_gradient_direction() {
        let (net, inputs, targets) = setup();
        let eps = 0.3;
        let adv = fgv_batch(&net, &inputs, &targets, Loss::Mse, eps, BoxConstraint::None).unwrap();
        // Each row's perturbation has 2-norm eps (when gradient nonzero).
        for i in 0..inputs.rows() {
            let d: Vec<f64> = adv
                .row(i)
                .iter()
                .zip(inputs.row(i))
                .map(|(a, u)| a - u)
                .collect();
            let n = xbar_linalg::vec_ops::norm2(&d);
            assert!((n - eps).abs() < 1e-9, "row {i}: {n}");
        }
    }

    #[test]
    fn pgd_at_least_as_strong_as_fgsm() {
        let (net, inputs, targets) = setup();
        let eps = 0.1;
        let fgsm =
            fgsm_batch(&net, &inputs, &targets, Loss::Mse, eps, BoxConstraint::None).unwrap();
        let pgd = pgd_batch(
            &net,
            &inputs,
            &targets,
            Loss::Mse,
            eps,
            eps / 4.0,
            10,
            BoxConstraint::None,
        )
        .unwrap();
        let l_fgsm = dataset_loss(&net, &fgsm, &targets, Loss::Mse).unwrap();
        let l_pgd = dataset_loss(&net, &pgd, &targets, Loss::Mse).unwrap();
        assert!(l_pgd >= l_fgsm * 0.999, "pgd {l_pgd} vs fgsm {l_fgsm}");
        // PGD stays in the ℓ∞ ball.
        assert!((&pgd - &inputs).max_abs() <= eps + 1e-9);
    }

    #[test]
    fn parameter_validation() {
        let (net, inputs, targets) = setup();
        assert!(fgsm_batch(
            &net,
            &inputs,
            &targets,
            Loss::Mse,
            -1.0,
            BoxConstraint::None
        )
        .is_err());
        assert!(fgsm_batch(
            &net,
            &inputs,
            &targets,
            Loss::Mse,
            f64::INFINITY,
            BoxConstraint::None
        )
        .is_err());
        assert!(pgd_batch(
            &net,
            &inputs,
            &targets,
            Loss::Mse,
            0.1,
            0.0,
            5,
            BoxConstraint::None
        )
        .is_err());
        assert!(pgd_batch(
            &net,
            &inputs,
            &targets,
            Loss::Mse,
            0.1,
            0.01,
            0,
            BoxConstraint::None
        )
        .is_err());
    }

    #[test]
    fn targeted_fgsm_raises_target_class_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = SingleLayerNet::new_random(10, 4, Activation::Identity, &mut rng);
        let inputs = Matrix::random_uniform(40, 10, 0.0, 1.0, &mut rng);
        let target = 2usize;
        let rate = |m: &Matrix| -> f64 {
            let preds = net.predict_batch(m).unwrap();
            preds.iter().filter(|&&p| p == target).count() as f64 / preds.len() as f64
        };
        let before = rate(&inputs);
        let adv = fgsm_targeted_batch(&net, &inputs, target, Loss::Mse, 0.5, BoxConstraint::None)
            .unwrap();
        let after = rate(&adv);
        assert!(after > before, "target rate {before} -> {after}");
        // Out-of-range target class rejected.
        assert!(
            fgsm_targeted_batch(&net, &inputs, 9, Loss::Mse, 0.1, BoxConstraint::None).is_err()
        );
    }

    #[test]
    fn softmax_ce_fgsm_works() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = SingleLayerNet::new_random(5, 3, Activation::Softmax, &mut rng);
        let inputs = Matrix::random_uniform(4, 5, 0.0, 1.0, &mut rng);
        let mut targets = Matrix::zeros(4, 3);
        for i in 0..4 {
            targets[(i, i % 3)] = 1.0;
        }
        let before = dataset_loss(&net, &inputs, &targets, Loss::CrossEntropy).unwrap();
        let adv = fgsm_batch(
            &net,
            &inputs,
            &targets,
            Loss::CrossEntropy,
            0.2,
            BoxConstraint::None,
        )
        .unwrap();
        let after = dataset_loss(&net, &adv, &targets, Loss::CrossEntropy).unwrap();
        assert!(after > before);
    }
}
