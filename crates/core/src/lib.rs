//! # xbar-core
//!
//! The paper's contribution: power side-channel–aided adversarial attacks
//! on single-layer NVM crossbar neural networks
//! (Merkel, *"Enhancing Adversarial Attacks on Single-Layer NVM
//! Crossbar-Based Neural Networks with Power Consumption Information"*,
//! SOCC 2022).
//!
//! The threat model: a victim network `ŷ = f(W u)` runs on an NVM
//! crossbar; the attacker can drive inputs and measure the crossbar's
//! total supply current (Eq. 5), which leaks an affine function of the
//! weight-column 1-norms. Two cases:
//!
//! * **Case 1 — no output access** ([`probe`], [`pixel_attack`]): the
//!   attacker recovers the column 1-norms by basis-input probing and uses
//!   the largest-norm pixel as the target of a single-pixel evasion attack
//!   (paper Sec. III, Fig. 4, Table I).
//! * **Case 2 — output access** ([`surrogate`], [`blackbox`],
//!   [`recovery`]): the attacker trains a surrogate model on query
//!   input/output pairs with the combined loss
//!   `L = L_out + λ·L_power` (Eq. 9) and runs FGSM on the surrogate
//!   (paper Sec. IV, Fig. 5); or, with enough queries, recovers `W`
//!   exactly via least squares.
//!
//! Supporting modules: [`oracle`] (the query-counted victim),
//! [`fgsm`] (gradient evasion attacks, untargeted and targeted),
//! [`defense`] (power-obfuscation countermeasures — an extension beyond
//! the paper), [`detect`] (defender-side current-signature anomaly
//! detection, after the paper's DetectX reference), [`persist`] (JSON
//! round-tripping of attack artifacts), and [`report`] (table/heatmap
//! formatting for the experiment harness).
//!
//! # Example: Case-1 probe and attack
//!
//! ```
//! use xbar_core::oracle::{Oracle, OracleConfig};
//! use xbar_core::probe::probe_column_norms;
//! use xbar_data::synth::blobs::BlobsConfig;
//! use xbar_nn::activation::Activation;
//! use xbar_nn::network::SingleLayerNet;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let net = SingleLayerNet::new_random(6, 3, Activation::Identity, &mut rng);
//! let mut oracle = Oracle::new(net, &OracleConfig::ideal(), 7)?;
//! let norms = probe_column_norms(&mut oracle, 1.0, 1)?;
//! assert_eq!(norms.len(), 6);
//! assert_eq!(oracle.query_count(), 6);
//! # Ok::<(), xbar_core::AttackError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod blackbox;
pub mod defense;
pub mod detect;
mod error;
pub mod fgsm;
pub mod oracle;
pub mod persist;
pub mod pixel_attack;
pub mod prelude;
pub mod probe;
pub mod recovery;
pub mod report;
pub mod surrogate;
pub mod sweep;

pub use error::AttackError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AttackError>;
