//! The oracle: the victim network deployed on a crossbar, wrapped in a
//! query-counted interface exposing exactly what the threat model allows.

use crate::{AttackError, Result};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use xbar_crossbar::array::CrossbarArray;
use xbar_crossbar::device::DeviceModel;
use xbar_crossbar::power::PowerModel;
use xbar_linalg::{vec_ops, Matrix};
use xbar_nn::network::SingleLayerNet;

/// What the attacker can see of the network's output per query.
///
/// Power is always observable (that is the premise of the paper); this
/// enum controls the *digital* output channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutputAccess {
    /// Case 1 of the paper: no output access at all.
    None,
    /// Case 2, label-only rows of Fig. 5: only the argmax label.
    LabelOnly,
    /// Case 2, raw-output rows of Fig. 5: the full output vector.
    Raw,
}

/// Configuration of the deployed oracle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Device model used when programming the crossbar.
    pub device: DeviceModel,
    /// Power measurement channel.
    pub power: PowerModel,
    /// Output access granted to the attacker.
    pub access: OutputAccess,
    /// Optional hard cap on the number of queries.
    pub query_budget: Option<usize>,
}

impl OracleConfig {
    /// The paper's idealised setting: ideal devices, noiseless power,
    /// raw-output access, unlimited queries.
    pub fn ideal() -> Self {
        OracleConfig {
            device: DeviceModel::ideal(),
            power: PowerModel::default(),
            access: OutputAccess::Raw,
            query_budget: None,
        }
    }

    /// Builder-style setter for the output access level.
    pub fn with_access(mut self, access: OutputAccess) -> Self {
        self.access = access;
        self
    }

    /// Builder-style setter for the device model.
    pub fn with_device(mut self, device: DeviceModel) -> Self {
        self.device = device;
        self
    }

    /// Builder-style setter for the power model.
    pub fn with_power(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Builder-style setter for the query budget.
    pub fn with_query_budget(mut self, budget: usize) -> Self {
        self.query_budget = Some(budget);
        self
    }
}

/// One query's worth of observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Raw output vector, if [`OutputAccess::Raw`].
    pub output: Option<Vec<f64>>,
    /// Predicted label, if [`OutputAccess::LabelOnly`] or raw.
    pub label: Option<usize>,
    /// Calibrated power observation in weight units (see
    /// [`Oracle::query`] for the calibration).
    pub power: f64,
}

/// The victim: a trained [`SingleLayerNet`] programmed onto a
/// [`CrossbarArray`], exposing queries according to an [`OracleConfig`].
///
/// Inference runs on the *crossbar* (i.e. on the as-programmed, possibly
/// non-ideal weights), not on the floating-point network — the network is
/// kept only for white-box baselines and evaluation.
#[derive(Debug, Clone)]
pub struct Oracle {
    net: SingleLayerNet,
    xbar: CrossbarArray,
    config: OracleConfig,
    query_count: usize,
    rng: ChaCha8Rng,
}

impl Oracle {
    /// Deploys a trained network onto a crossbar.
    ///
    /// `seed` drives the oracle's internal noise streams (programming
    /// variation, read noise, measurement noise); the attacker has no
    /// influence over or knowledge of it.
    ///
    /// # Errors
    ///
    /// Propagates crossbar programming and configuration errors.
    pub fn new(net: SingleLayerNet, config: &OracleConfig, seed: u64) -> Result<Self> {
        config.power.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let xbar = CrossbarArray::program(net.weights(), &config.device, &mut rng)?;
        Ok(Oracle {
            net,
            xbar,
            config: *config,
            query_count: 0,
            rng,
        })
    }

    /// The oracle's configuration.
    pub fn config(&self) -> &OracleConfig {
        &self.config
    }

    /// Input dimension `N`.
    pub fn num_inputs(&self) -> usize {
        self.net.num_inputs()
    }

    /// Output dimension `M`.
    pub fn num_outputs(&self) -> usize {
        self.net.num_outputs()
    }

    /// Queries consumed so far.
    pub fn query_count(&self) -> usize {
        self.query_count
    }

    /// Resets the query counter (e.g. between experiment repetitions).
    pub fn reset_query_count(&mut self) {
        self.query_count = 0;
    }

    /// The white-box network (ground truth) — for evaluation and the
    /// paper's "Worst" baseline only, never used by black-box attacks.
    pub fn white_box_net(&self) -> &SingleLayerNet {
        &self.net
    }

    /// The true column 1-norms of the *deployed* (as-programmed) weights —
    /// ground truth for probe-fidelity experiments.
    pub fn true_column_norms(&self) -> Vec<f64> {
        self.xbar.effective_weights().col_l1_norms()
    }

    fn consume_query(&mut self) -> Result<()> {
        if let Some(budget) = self.config.query_budget {
            if self.query_count >= budget {
                return Err(AttackError::QueryBudgetExhausted { budget });
            }
        }
        self.query_count += 1;
        xbar_obs::count(xbar_obs::names::ORACLE_QUERY, 1);
        Ok(())
    }

    /// Crossbar forward pass (with read noise if the device has any),
    /// activation applied. Internal — all external access goes through
    /// [`Oracle::query`].
    fn crossbar_forward(&mut self, u: &[f64]) -> Result<Vec<f64>> {
        let mut s = if self.xbar.device().read_sigma > 0.0 {
            self.xbar.noisy_mvm(u, &mut self.rng)?
        } else {
            self.xbar.checked_mvm(u)?
        };
        self.net.activation().apply_row(&mut s);
        Ok(s)
    }

    /// One attacker query: runs the input on the crossbar and returns what
    /// the access level allows, plus the power observation.
    ///
    /// The power observation is *calibrated to weight units*: the raw
    /// measured power `P = V_dd · i_total` is mapped through the known
    /// hardware constants (`V_dd`, the mapping scale `k`, `g_min`, `M`) to
    /// `(P/V_dd − 2 M g_min Σ_j u_j)/k = Σ_j u_j ‖W[:,j]‖₁` (exactly, for
    /// ideal devices; plus scaled measurement noise otherwise). This is
    /// the standard Kerckhoffs assumption that the accelerator design —
    /// but not its weights — is public.
    ///
    /// # Errors
    ///
    /// * [`AttackError::QueryBudgetExhausted`] once the budget is spent.
    /// * Crossbar errors on malformed inputs.
    pub fn query(&mut self, u: &[f64]) -> Result<QueryRecord> {
        self.consume_query()?;
        let power = self.calibrated_power_internal(u)?;
        let (output, label) = match self.config.access {
            OutputAccess::None => (None, None),
            OutputAccess::LabelOnly => {
                let y = self.crossbar_forward(u)?;
                (None, Some(vec_ops::argmax(&y)))
            }
            OutputAccess::Raw => {
                let y = self.crossbar_forward(u)?;
                let label = vec_ops::argmax(&y);
                (Some(y), Some(label))
            }
        };
        Ok(QueryRecord {
            output,
            label,
            power,
        })
    }

    /// Power-only query (Case 1): cheaper notation for
    /// [`Oracle::query`]`.power` that works at any access level.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Oracle::query`].
    pub fn query_power(&mut self, u: &[f64]) -> Result<f64> {
        self.consume_query()?;
        self.calibrated_power_internal(u)
    }

    fn calibrated_power_internal(&mut self, u: &[f64]) -> Result<f64> {
        let raw = self.config.power.measure(&self.xbar, u, &mut self.rng)?;
        let mapping = self.xbar.mapping();
        let m = self.xbar.num_outputs() as f64;
        let baseline = 2.0 * m * mapping.g_min * u.iter().sum::<f64>();
        let calibrated = (raw / self.config.power.v_dd - baseline) / mapping.scale;
        xbar_obs::observe(xbar_obs::names::ORACLE_POWER, calibrated);
        Ok(calibrated)
    }

    // ------------------------------------------------------------------
    // Evaluation-side methods (free for the experimenter, not the
    // attacker: they do not consume queries).
    // ------------------------------------------------------------------

    /// Deployed-model predictions for a batch (noiseless crossbar read).
    ///
    /// # Errors
    ///
    /// Propagates dimension errors.
    pub fn eval_predict_batch(&self, inputs: &Matrix) -> Result<Vec<usize>> {
        let mut labels = Vec::with_capacity(inputs.rows());
        for i in 0..inputs.rows() {
            let mut s = self.xbar.checked_mvm(inputs.row(i))?;
            self.net.activation().apply_row(&mut s);
            labels.push(vec_ops::argmax(&s));
        }
        Ok(labels)
    }

    /// Deployed-model accuracy on a labelled set.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors.
    pub fn eval_accuracy(&self, inputs: &Matrix, labels: &[usize]) -> Result<f64> {
        let preds = self.eval_predict_batch(inputs)?;
        Ok(xbar_nn::metrics::accuracy(&preds, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_nn::activation::Activation;

    fn toy_oracle(access: OutputAccess) -> Oracle {
        let net = SingleLayerNet::from_weights(
            Matrix::from_rows(&[&[1.0, -0.5, 0.0], &[0.25, 0.5, -1.0]]),
            Activation::Identity,
        );
        Oracle::new(net, &OracleConfig::ideal().with_access(access), 3).unwrap()
    }

    #[test]
    fn raw_access_reveals_everything() {
        let mut o = toy_oracle(OutputAccess::Raw);
        let rec = o.query(&[1.0, 0.0, 0.0]).unwrap();
        let out = rec.output.unwrap();
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert!((out[1] - 0.25).abs() < 1e-12);
        assert_eq!(rec.label, Some(0));
        assert_eq!(o.query_count(), 1);
    }

    #[test]
    fn label_only_hides_raw_outputs() {
        let mut o = toy_oracle(OutputAccess::LabelOnly);
        let rec = o.query(&[1.0, 0.0, 0.0]).unwrap();
        assert!(rec.output.is_none());
        assert_eq!(rec.label, Some(0));
    }

    #[test]
    fn no_access_reveals_only_power() {
        let mut o = toy_oracle(OutputAccess::None);
        let rec = o.query(&[1.0, 0.0, 0.0]).unwrap();
        assert!(rec.output.is_none());
        assert!(rec.label.is_none());
        assert!(rec.power > 0.0);
    }

    #[test]
    fn calibrated_power_equals_weighted_column_norms() {
        // The central identity: power(u) = Σ_j u_j ‖W[:,j]‖₁ in weight
        // units, for the ideal crossbar.
        let mut o = toy_oracle(OutputAccess::None);
        let norms = o.true_column_norms();
        for j in 0..3 {
            let mut e = vec![0.0; 3];
            e[j] = 1.0;
            let p = o.query_power(&e).unwrap();
            assert!(
                (p - norms[j]).abs() < 1e-9,
                "column {j}: {p} vs {}",
                norms[j]
            );
        }
        // Linearity in the input.
        let p = o.query_power(&[0.5, 0.25, 1.0]).unwrap();
        let want = 0.5 * norms[0] + 0.25 * norms[1] + 1.0 * norms[2];
        assert!((p - want).abs() < 1e-9);
    }

    #[test]
    fn calibration_cancels_gmin_offset() {
        let net = SingleLayerNet::from_weights(
            Matrix::from_rows(&[&[0.8, -0.4], &[0.2, 0.6]]),
            Activation::Identity,
        );
        let device = DeviceModel {
            g_min: 0.07,
            g_max: 1.0,
            ..DeviceModel::ideal()
        };
        let cfg = OracleConfig::ideal().with_device(device);
        let mut o = Oracle::new(net.clone(), &cfg, 5).unwrap();
        let norms = net.weights().col_l1_norms();
        for j in 0..2 {
            let mut e = vec![0.0; 2];
            e[j] = 1.0;
            let p = o.query_power(&e).unwrap();
            assert!((p - norms[j]).abs() < 1e-9, "column {j}");
        }
    }

    #[test]
    fn query_budget_enforced() {
        let net =
            SingleLayerNet::from_weights(Matrix::from_rows(&[&[1.0, 0.5]]), Activation::Identity);
        let cfg = OracleConfig::ideal().with_query_budget(2);
        let mut o = Oracle::new(net, &cfg, 1).unwrap();
        assert!(o.query_power(&[1.0, 0.0]).is_ok());
        assert!(o.query(&[0.0, 1.0]).is_ok());
        assert!(matches!(
            o.query_power(&[1.0, 1.0]),
            Err(AttackError::QueryBudgetExhausted { budget: 2 })
        ));
        o.reset_query_count();
        assert!(o.query_power(&[1.0, 0.0]).is_ok());
    }

    #[test]
    fn eval_does_not_consume_queries() {
        let o = toy_oracle(OutputAccess::None);
        let inputs = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]);
        let preds = o.eval_predict_batch(&inputs).unwrap();
        assert_eq!(preds, vec![0, 0]);
        assert_eq!(o.query_count(), 0);
        let acc = o.eval_accuracy(&inputs, &[0, 0]).unwrap();
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn noisy_power_is_noisy_but_centred() {
        let net =
            SingleLayerNet::from_weights(Matrix::from_rows(&[&[1.0, -0.5]]), Activation::Identity);
        let cfg = OracleConfig::ideal().with_power(PowerModel::default().with_noise(0.05));
        let mut o = Oracle::new(net.clone(), &cfg, 11).unwrap();
        let norms = net.weights().col_l1_norms();
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| o.query_power(&[1.0, 0.0]).unwrap())
            .sum::<f64>()
            / n as f64;
        assert!((mean - norms[0]).abs() < 0.02, "{mean} vs {}", norms[0]);
        // Individual readings vary.
        let a = o.query_power(&[1.0, 0.0]).unwrap();
        let b = o.query_power(&[1.0, 0.0]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_given_seed() {
        let make = || {
            let net = SingleLayerNet::from_weights(
                Matrix::from_rows(&[&[1.0, -0.5]]),
                Activation::Identity,
            );
            let cfg = OracleConfig::ideal().with_power(PowerModel::default().with_noise(0.1));
            Oracle::new(net, &cfg, 42).unwrap()
        };
        let mut a = make();
        let mut b = make();
        for _ in 0..5 {
            assert_eq!(
                a.query_power(&[0.5, 0.5]).unwrap(),
                b.query_power(&[0.5, 0.5]).unwrap()
            );
        }
    }
}
