//! The oracle: the victim network deployed on a crossbar, wrapped in a
//! query-counted interface exposing exactly what the threat model allows.

use crate::{AttackError, Result};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};
use xbar_crossbar::array::CrossbarArray;
use xbar_crossbar::backend::{BackendKind, BackendSpec, EvalBackend, PreparedEval};
use xbar_crossbar::device::DeviceModel;
use xbar_crossbar::power::PowerModel;
use xbar_crossbar::CrossbarError;
use xbar_faults::{FaultInjection, TransientInjection};
use xbar_linalg::{vec_ops, Matrix};
use xbar_nn::network::SingleLayerNet;

/// A schedule on which the oracle's hardware decays: every
/// `interval_queries` queries the fault plan's `drift_time` advances by
/// `time_step` and the array is redeployed from the pristine
/// programming (stuck-at and variation draws are key-stable, so only
/// the drift factors move — monotonically toward `g_min`).
///
/// Epochs are a pure function of a query's *global index*
/// (`epoch = index / interval_queries`), never of batch boundaries or
/// issue order within a batch, so drifting campaigns keep the oracle's
/// bit-identity across backends, threads, and batch splits.
///
/// The schedule is inert when `interval_queries` is zero
/// ([`DriftSchedule::never`], the default) or when the oracle carries
/// no [`FaultInjection`] with a non-zero `drift_nu` — the drift model's
/// parameters live in the fault spec; the schedule only advances its
/// clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftSchedule {
    /// Queries per drift epoch; zero disables the schedule.
    pub interval_queries: u64,
    /// How far `drift_time` advances per epoch.
    pub time_step: f64,
}

impl Default for DriftSchedule {
    fn default() -> Self {
        DriftSchedule::never()
    }
}

impl DriftSchedule {
    /// The inert schedule: the hardware never ages.
    pub const fn never() -> Self {
        DriftSchedule {
            interval_queries: 0,
            time_step: 0.0,
        }
    }

    /// Advance `drift_time` by `time_step` every `interval_queries`
    /// queries.
    pub const fn every(interval_queries: u64, time_step: f64) -> Self {
        DriftSchedule {
            interval_queries,
            time_step,
        }
    }

    /// Whether the schedule ever advances the clock.
    pub fn is_active(&self) -> bool {
        self.interval_queries > 0 && self.time_step > 0.0
    }

    /// The drift epoch global query `index` falls in.
    pub fn epoch(&self, index: u64) -> u64 {
        if self.is_active() {
            index / self.interval_queries
        } else {
            0
        }
    }
}

/// The noise key of one evaluated query: which per-entity noise stream
/// the draws come from (`seed`) and the query's position in that stream
/// (`index`).
///
/// This is exactly the `(oracle seed, global query index)` pair the
/// oracle keys its own queries by — lifted into a value so a
/// multi-tenant service can evaluate queries belonging to *different*
/// sessions in one coalesced batch: sample `i` of the batch draws from
/// `keys[i]`'s stream and from nothing else, so a query's result is a
/// pure function of its key and the deployed hardware, never of its
/// batch-mates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueryKey {
    /// The noise-stream seed (a session's seed, or the oracle's own).
    pub seed: u64,
    /// The global query index within that seed's stream.
    pub index: u64,
}

impl QueryKey {
    /// Pairs a stream seed with a global query index.
    pub const fn new(seed: u64, index: u64) -> Self {
        QueryKey { seed, index }
    }
}

/// What the attacker can see of the network's output per query.
///
/// Power is always observable (that is the premise of the paper); this
/// enum controls the *digital* output channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutputAccess {
    /// Case 1 of the paper: no output access at all.
    None,
    /// Case 2, label-only rows of Fig. 5: only the argmax label.
    LabelOnly,
    /// Case 2, raw-output rows of Fig. 5: the full output vector.
    Raw,
}

/// Configuration of the deployed oracle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Device model used when programming the crossbar.
    pub device: DeviceModel,
    /// Power measurement channel.
    pub power: PowerModel,
    /// Output access granted to the attacker.
    pub access: OutputAccess,
    /// Optional hard cap on the number of queries.
    pub query_budget: Option<usize>,
    /// Evaluation backend used for batched queries and evaluation.
    /// Backends are bit-identical by contract, so this is a pure
    /// performance knob (kind, tile sizes, and — for the parallel
    /// kernel — thread count).
    pub backend: BackendSpec,
    /// Optional device faults injected at deployment: the spec is
    /// compiled under its key and applied to the freshly programmed
    /// array, so queries, evaluation, and
    /// [`Oracle::true_column_norms`] all see the faulted hardware.
    pub faults: Option<FaultInjection>,
    /// Optional per-query transient faults (read-disturb flips and
    /// conductance jitter): every attacker query reads a transiently
    /// perturbed copy of the deployed array, keyed by the query's
    /// global index. Evaluation-side methods are unaffected.
    pub transients: Option<TransientInjection>,
    /// Schedule on which the deployed hardware's conductance drift
    /// advances. Requires `faults` with a non-zero `drift_nu` to have
    /// any effect.
    pub drift: DriftSchedule,
}

impl OracleConfig {
    /// The paper's idealised setting: ideal devices, noiseless power,
    /// raw-output access, unlimited queries.
    pub fn ideal() -> Self {
        OracleConfig {
            device: DeviceModel::ideal(),
            power: PowerModel::default(),
            access: OutputAccess::Raw,
            query_budget: None,
            backend: BackendSpec::new(BackendKind::Naive),
            faults: None,
            transients: None,
            drift: DriftSchedule::never(),
        }
    }

    /// Builder-style setter for the output access level.
    #[must_use]
    pub fn with_access(mut self, access: OutputAccess) -> Self {
        self.access = access;
        self
    }

    /// Builder-style setter for the device model.
    #[must_use]
    pub fn with_device(mut self, device: DeviceModel) -> Self {
        self.device = device;
        self
    }

    /// Builder-style setter for the power model.
    #[must_use]
    pub fn with_power(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Builder-style setter for the query budget.
    #[must_use]
    pub fn with_query_budget(mut self, budget: usize) -> Self {
        self.query_budget = Some(budget);
        self
    }

    /// Builder-style setter for the evaluation backend. Accepts either
    /// a bare [`BackendKind`] (default tile sizes, auto threads) or a
    /// full [`BackendSpec`].
    #[must_use]
    pub fn with_backend(mut self, backend: impl Into<BackendSpec>) -> Self {
        self.backend = backend.into();
        self
    }

    /// Builder-style setter for deployment-time fault injection.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultInjection) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Builder-style setter for per-query transient faults.
    #[must_use]
    pub fn with_transients(mut self, transients: TransientInjection) -> Self {
        self.transients = Some(transients);
        self
    }

    /// Builder-style setter for the drift schedule.
    #[must_use]
    pub fn with_drift_schedule(mut self, drift: DriftSchedule) -> Self {
        self.drift = drift;
        self
    }

    /// The transient injection, if one is configured and non-empty.
    fn active_transients(&self) -> Option<TransientInjection> {
        self.transients.filter(|t| !t.spec.is_empty())
    }
}

/// Everything one query revealed, across both channels (the digital
/// output — gated by [`OutputAccess`] — and the always-on power side
/// channel). This is the typed response shape shared by every query
/// entry point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Raw output vector, if [`OutputAccess::Raw`].
    pub output: Option<Vec<f64>>,
    /// Predicted label, if [`OutputAccess::LabelOnly`] or raw.
    pub label: Option<usize>,
    /// Calibrated power observation in weight units (see
    /// [`Oracle::query`] for the calibration).
    pub power: f64,
}

/// One query's worth of observations, plus its bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Global index of this query (0-based, monotone across the
    /// oracle's lifetime; not reset by
    /// [`Oracle::reset_query_count`]).
    pub index: u64,
    /// What the query revealed.
    pub observation: Observation,
}

/// One prepared evaluation session: the built backend plus the
/// [`PreparedEval`] handle it materialised for one conductance
/// generation of the deployed array.
struct PreparedSession {
    backend: Box<dyn EvalBackend>,
    prepared: PreparedEval,
}

/// Lazily built, generation-checked cache of the oracle's
/// [`PreparedSession`] — the piece that lets `query_batch`,
/// `observe_batch_keyed`, and `eval_predict_batch` amortise the
/// `O(M·N)` weight materialisation across batches. Shared via `Arc` so
/// concurrent keyed observers on an `Arc<Oracle>` (the serve coalescer)
/// reuse one handle without holding the lock across evaluation.
///
/// Clones start empty: a cloned oracle re-prepares on first use, which
/// costs one materialisation and can never alias another oracle's
/// state.
struct PreparedCache {
    slot: Mutex<Option<Arc<PreparedSession>>>,
}

impl Default for PreparedCache {
    fn default() -> Self {
        PreparedCache {
            slot: Mutex::new(None),
        }
    }
}

impl Clone for PreparedCache {
    fn clone(&self) -> Self {
        PreparedCache::default()
    }
}

impl std::fmt::Debug for PreparedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let generation = self
            .slot
            .lock()
            .ok()
            .and_then(|slot| slot.as_ref().map(|s| s.prepared.generation()));
        f.debug_struct("PreparedCache")
            .field("generation", &generation)
            .finish()
    }
}

/// The victim: a trained [`SingleLayerNet`] programmed onto a
/// [`CrossbarArray`], exposing queries according to an [`OracleConfig`].
///
/// Inference runs on the *crossbar* (i.e. on the as-programmed, possibly
/// non-ideal weights), not on the floating-point network — the network is
/// kept only for white-box baselines and evaluation.
#[derive(Debug, Clone)]
pub struct Oracle {
    net: SingleLayerNet,
    xbar: CrossbarArray,
    /// The as-programmed array before any fault plan — kept so an
    /// active [`DriftSchedule`] can redeploy the plan at a later
    /// `drift_time` (the key-stable draws leave stuck-at and variation
    /// identical; only the drift factors advance).
    pristine: CrossbarArray,
    config: OracleConfig,
    query_count: usize,
    queries_issued: u64,
    drift_epoch: u64,
    seed: u64,
    /// Cached prepared-evaluation session for the deployed array's
    /// current conductance generation (see [`PreparedCache`]).
    prepared: PreparedCache,
}

impl Oracle {
    /// Deploys a trained network onto a crossbar.
    ///
    /// `seed` drives the oracle's internal noise streams (programming
    /// variation, read noise, measurement noise); the attacker has no
    /// influence over or knowledge of it. Programming draws from the
    /// seed's stream 0; query `q` draws from stream `q + 1`, so a
    /// query's noise depends only on the seed and the query's global
    /// index — never on batch boundaries or thread scheduling.
    ///
    /// If the config carries a [`FaultInjection`], the compiled fault
    /// plan is applied to the freshly programmed array here, once — the
    /// oracle *is* the faulted hardware from then on. Fault draws are
    /// keyed by the injection's own `(campaign_seed, trial_index)` key,
    /// not by `seed`, so they are independent of the oracle's noise
    /// streams.
    ///
    /// # Errors
    ///
    /// Propagates crossbar programming, fault-spec, and configuration
    /// errors.
    pub fn new(net: SingleLayerNet, config: &OracleConfig, seed: u64) -> Result<Self> {
        config.power.validate()?;
        if let Some(transients) = &config.transients {
            transients.spec.validate()?;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pristine = CrossbarArray::program(net.weights(), &config.device, &mut rng)?;
        let mut xbar = pristine.clone();
        if let Some(injection) = &config.faults {
            let plan = injection.compile(xbar.num_outputs(), xbar.num_inputs())?;
            xbar = plan.apply(&xbar)?;
        }
        config.backend.validate()?;
        Ok(Oracle {
            net,
            xbar,
            pristine,
            config: *config,
            query_count: 0,
            queries_issued: 0,
            drift_epoch: 0,
            seed,
            prepared: PreparedCache::default(),
        })
    }

    /// The oracle's configuration.
    pub fn config(&self) -> &OracleConfig {
        &self.config
    }

    /// Input dimension `N`.
    pub fn num_inputs(&self) -> usize {
        self.net.num_inputs()
    }

    /// Output dimension `M`.
    pub fn num_outputs(&self) -> usize {
        self.net.num_outputs()
    }

    /// Queries consumed so far.
    pub fn query_count(&self) -> usize {
        self.query_count
    }

    /// Global queries issued over the oracle's lifetime. Unlike
    /// [`Oracle::query_count`], this is never reset — it is the clock
    /// the drift schedule and staleness-based recalibration policies
    /// read.
    pub fn queries_issued(&self) -> u64 {
        self.queries_issued
    }

    /// The effective `drift_time` of the currently deployed array: the
    /// fault spec's base time plus the elapsed schedule epochs. Zero
    /// when no fault injection is configured.
    pub fn drift_time(&self) -> f64 {
        match &self.config.faults {
            Some(injection) => {
                injection.spec.drift_time + self.drift_epoch as f64 * self.config.drift.time_step
            }
            None => 0.0,
        }
    }

    /// Resets the query counter (e.g. between experiment repetitions).
    pub fn reset_query_count(&mut self) {
        self.query_count = 0;
    }

    /// The white-box network (ground truth) — for evaluation and the
    /// paper's "Worst" baseline only, never used by black-box attacks.
    pub fn white_box_net(&self) -> &SingleLayerNet {
        &self.net
    }

    /// The true column 1-norms of the *deployed* (as-programmed) weights —
    /// ground truth for probe-fidelity experiments.
    pub fn true_column_norms(&self) -> Vec<f64> {
        self.xbar.effective_weights().col_l1_norms()
    }

    /// Consumes `count` queries against the budget, all-or-nothing, and
    /// returns the global index of the first one.
    fn consume_queries(&mut self, count: usize) -> Result<u64> {
        if let Some(budget) = self.config.query_budget {
            if self.query_count + count > budget {
                return Err(AttackError::QueryBudgetExhausted { budget });
            }
        }
        let base = self.queries_issued;
        self.query_count += count;
        self.queries_issued += count as u64;
        xbar_obs::count(xbar_obs::names::ORACLE_QUERY, count as u64);
        Ok(base)
    }

    /// The noise RNG for global query `index`: stream `index + 1` of the
    /// oracle seed (stream 0 programmed the crossbar). Within one
    /// query's stream, power-measurement noise draws come first, then
    /// forward read noise — matching [`Oracle::query`]'s order.
    fn stream_rng(seed: u64, index: u64) -> ChaCha8Rng {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(index + 1);
        rng
    }

    /// Whether queries can change the deployed array (active schedule
    /// with a fault injection to re-apply).
    fn drifting(&self) -> bool {
        self.config.drift.is_active() && self.config.faults.is_some()
    }

    /// Redeploys the array if global query `index` falls in a later
    /// drift epoch than the currently deployed one. The fault plan is
    /// recompiled under its original key at the advanced `drift_time`
    /// and re-applied to the pristine programming: the key-stable draw
    /// order keeps stuck-at and variation decisions identical while
    /// the drift factors decay.
    fn advance_drift_to(&mut self, index: u64) -> Result<()> {
        let epoch = self.config.drift.epoch(index);
        if epoch <= self.drift_epoch || !self.drifting() {
            return Ok(());
        }
        let advanced = epoch - self.drift_epoch;
        self.drift_epoch = epoch;
        let injection = self.config.faults.expect("drifting() checked faults");
        let mut spec = injection.spec;
        spec.drift_time += epoch as f64 * self.config.drift.time_step;
        let plan = FaultInjection::new(spec, injection.key)
            .compile(self.pristine.num_outputs(), self.pristine.num_inputs())?;
        self.xbar = plan.apply(&self.pristine)?;
        xbar_obs::count(xbar_obs::names::ORACLE_DRIFT_ADVANCE, advanced);
        Ok(())
    }

    /// Calibrates one raw power measurement to weight units and records
    /// the observation.
    fn calibrate(&self, raw: f64, u: &[f64]) -> f64 {
        let mapping = self.xbar.mapping();
        let m = self.xbar.num_outputs() as f64;
        let baseline = 2.0 * m * mapping.g_min * u.iter().sum::<f64>();
        let calibrated = (raw / self.config.power.v_dd - baseline) / mapping.scale;
        xbar_obs::observe(xbar_obs::names::ORACLE_POWER, calibrated);
        calibrated
    }

    /// One attacker query: runs the input on the crossbar and returns what
    /// the access level allows, plus the power observation. Equivalent to
    /// `query_batch(&[u])` — batch boundaries never change results.
    ///
    /// The power observation is *calibrated to weight units*: the raw
    /// measured power `P = V_dd · i_total` is mapped through the known
    /// hardware constants (`V_dd`, the mapping scale `k`, `g_min`, `M`) to
    /// `(P/V_dd − 2 M g_min Σ_j u_j)/k = Σ_j u_j ‖W[:,j]‖₁` (exactly, for
    /// ideal devices; plus scaled measurement noise otherwise). This is
    /// the standard Kerckhoffs assumption that the accelerator design —
    /// but not its weights — is public.
    ///
    /// # Errors
    ///
    /// * [`AttackError::QueryBudgetExhausted`] once the budget is spent.
    /// * Crossbar errors on malformed inputs.
    pub fn query(&mut self, u: &[f64]) -> Result<QueryRecord> {
        let mut records = self.query_batch(&[u])?;
        Ok(records.pop().expect("batch of one yields one record"))
    }

    /// A batch of attacker queries, evaluated by the configured
    /// [`BackendKind`].
    ///
    /// Bit-identical to issuing the same inputs through [`Oracle::query`]
    /// one at a time, in order, for every backend and at any batch
    /// partitioning: query `q`'s noise comes from the seed's stream
    /// `q + 1` alone, and the blocked backend's kernels reduce in the
    /// same floating-point order as the per-vector path.
    ///
    /// Budget accounting is all-or-nothing: if fewer than `inputs.len()`
    /// queries remain, no query is consumed.
    ///
    /// # Errors
    ///
    /// * [`AttackError::QueryBudgetExhausted`] if the batch does not fit
    ///   in the remaining budget.
    /// * Crossbar errors on malformed inputs (checked up front; no
    ///   queries are consumed).
    pub fn query_batch(&mut self, inputs: &[&[f64]]) -> Result<Vec<QueryRecord>> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let n = self.num_inputs();
        for u in inputs {
            if u.len() != n {
                return Err(CrossbarError::InputLenMismatch {
                    expected: n,
                    got: u.len(),
                }
                .into());
            }
        }
        let base = self.consume_queries(inputs.len())?;
        if !self.drifting() {
            return self.query_chunk(inputs, base);
        }
        // The deployed array is a pure function of each query's global
        // index; split the batch at drift-epoch boundaries so a batch
        // spanning an epoch stays bit-identical to the same queries
        // issued one at a time.
        let mut records = Vec::with_capacity(inputs.len());
        let mut start = 0usize;
        while start < inputs.len() {
            let q = base + start as u64;
            self.advance_drift_to(q)?;
            let boundary = (self.config.drift.epoch(q) + 1) * self.config.drift.interval_queries;
            let end = inputs.len().min((boundary - base) as usize);
            records.extend(self.query_chunk(&inputs[start..end], q)?);
            start = end;
        }
        Ok(records)
    }

    /// Evaluates one epoch-homogeneous chunk of queries whose first
    /// sample has global index `base`.
    fn query_chunk(&mut self, inputs: &[&[f64]], base: u64) -> Result<Vec<QueryRecord>> {
        let keys: Vec<QueryKey> = (0..inputs.len())
            .map(|i| QueryKey::new(self.seed, base + i as u64))
            .collect();
        let observations = self.observe_keyed_unchecked(inputs, &keys)?;
        Ok(observations
            .into_iter()
            .enumerate()
            .map(|(i, observation)| QueryRecord {
                index: base + i as u64,
                observation,
            })
            .collect())
    }

    /// A session's private view of this deployed oracle: the **same
    /// hardware** (network, programmed and faulted arrays,
    /// configuration), but noise drawn from `seed`'s streams instead of
    /// the deployment seed's, fresh query counters, and its own
    /// `budget`.
    ///
    /// This is the multi-tenant primitive behind `xbar serve`: one
    /// victim crossbar is deployed once, and every attack session forks
    /// a view whose query stream is keyed by
    /// `(session seed, session query index)` — so a session's
    /// [`QueryRecord`]s are a pure function of its own seed and indices,
    /// bit-identical no matter what other sessions do to the shared
    /// hardware.
    ///
    /// The view restarts the drift clock at the deployment's current
    /// epoch's base spec; session views are intended for non-drifting
    /// deployments (a served, aging victim would couple sessions through
    /// the shared clock — see [`Oracle::observe_batch_keyed`]).
    pub fn session_view(&self, seed: u64, budget: Option<usize>) -> Oracle {
        let mut config = self.config;
        config.query_budget = budget;
        Oracle {
            net: self.net.clone(),
            xbar: self.xbar.clone(),
            pristine: self.pristine.clone(),
            config,
            query_count: 0,
            queries_issued: 0,
            drift_epoch: 0,
            seed,
            prepared: PreparedCache::default(),
        }
    }

    /// Evaluates a batch of queries whose noise keys are supplied by the
    /// caller instead of this oracle's own counter — the cross-session
    /// coalescing entry point.
    ///
    /// Sample `i` draws its noise from `keys[i]`'s stream exactly as a
    /// [`Oracle::query_batch`] call would for its own
    /// `(seed, global index)` pair, so filling one batch with unrelated
    /// sessions' pending queries returns, for each session, bit-identical
    /// observations to that session issuing the same queries alone
    /// through its [`Oracle::session_view`]. Budget accounting, query
    /// counting, and [`QueryRecord`] indexing are the caller's job (the
    /// session manager's, in `xbar serve`).
    ///
    /// Takes `&self`: keyed observation never mutates the deployed
    /// hardware.
    ///
    /// # Errors
    ///
    /// * [`AttackError::InvalidParameter`] if `keys.len() !=
    ///   inputs.len()`, or if the oracle has an active
    ///   [`DriftSchedule`] — a drifting deployment's hardware is a
    ///   function of *its own* query clock, which cross-session keying
    ///   cannot reproduce.
    /// * Crossbar errors on malformed inputs.
    pub fn observe_batch_keyed(
        &self,
        inputs: &[&[f64]],
        keys: &[QueryKey],
    ) -> Result<Vec<Observation>> {
        if keys.len() != inputs.len() {
            return Err(AttackError::InvalidParameter { name: "keys" });
        }
        if self.drifting() {
            return Err(AttackError::InvalidParameter {
                name: "drift (keyed observation requires a non-drifting oracle)",
            });
        }
        let n = self.num_inputs();
        for u in inputs {
            if u.len() != n {
                return Err(CrossbarError::InputLenMismatch {
                    expected: n,
                    got: u.len(),
                }
                .into());
            }
        }
        self.observe_keyed_unchecked(inputs, keys)
    }

    /// The prepared-evaluation session for the deployed array's current
    /// conductance generation, building (and caching) it on first use.
    ///
    /// The cache key is [`CrossbarArray::generation`]: re-programming,
    /// fault application, and drift-time advance all replace `self.xbar`
    /// through `map_conductances`/`FaultPlan::apply`, which bump the
    /// generation — so a stale session can never be returned, only
    /// rebuilt. Works under `&self` so concurrent keyed observers on an
    /// `Arc<Oracle>` (the serve coalescer) share one handle.
    fn prepared_session(&self) -> Result<Arc<PreparedSession>> {
        let mut slot = self
            .prepared
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(session) = slot.as_ref() {
            if session.prepared.generation() == self.xbar.generation() {
                return Ok(Arc::clone(session));
            }
        }
        let backend = self.config.backend.build()?;
        let prepared = backend.prepare(&self.xbar)?;
        let session = Arc::new(PreparedSession { backend, prepared });
        *slot = Some(Arc::clone(&session));
        Ok(session)
    }

    /// The shared evaluation core: sample `i`'s noise (and transient
    /// perturbation) is keyed by `keys[i]`. Inputs are assumed validated
    /// and the deployed array assumed current for every key.
    fn observe_keyed_unchecked(
        &self,
        inputs: &[&[f64]],
        keys: &[QueryKey],
    ) -> Result<Vec<Observation>> {
        let transients = self.config.active_transients();
        let session = self.prepared_session()?;
        let noisy_power = self.config.power.noise_sigma > 0.0;
        let needs_forward = self.config.access != OutputAccess::None;
        let noisy_read = needs_forward && self.xbar.device().read_sigma > 0.0;

        let (powers, raw_outputs) = if noisy_power && noisy_read {
            // Both noise sources share each query's stream (power draws
            // first, then read draws), so the stages cannot be split
            // into separate batch calls — run per sample.
            let mut powers = Vec::with_capacity(inputs.len());
            let mut outs = Vec::with_capacity(inputs.len());
            for (i, u) in inputs.iter().enumerate() {
                let mut rng = Self::stream_rng(keys[i].seed, keys[i].index);
                let perturbed;
                let array = match transients {
                    Some(injection) => {
                        perturbed = injection.perturbed(&self.xbar, keys[i].index);
                        &perturbed
                    }
                    None => &self.xbar,
                };
                let raw = self.config.power.measure(array, u, &mut rng)?;
                powers.push(self.calibrate(raw, u));
                outs.push(array.noisy_mvm(u, &mut rng)?);
            }
            (powers, Some(outs))
        } else {
            let raws = if noisy_power {
                self.keyed_noisy_power(&session, transients, inputs, keys)?
            } else {
                self.keyed_power(&session, transients, inputs, keys)?
            };
            let powers = raws
                .iter()
                .zip(inputs)
                .map(|(&raw, u)| self.calibrate(raw, u))
                .collect();
            let outs = if !needs_forward {
                None
            } else if noisy_read {
                Some(self.keyed_noisy_mvm(&session, transients, inputs, keys)?)
            } else {
                Some(self.keyed_mvm(&session, transients, inputs, keys)?)
            };
            (powers, outs)
        };

        let mut out_iter = raw_outputs.map(|mut rows| {
            for row in &mut rows {
                self.net.activation().apply_row(row);
            }
            rows.into_iter()
        });
        let mut observations = Vec::with_capacity(inputs.len());
        for power in powers {
            let mut next_output = || {
                out_iter
                    .as_mut()
                    .expect("forward ran")
                    .next()
                    .expect("one output row per query")
            };
            let (output, label) = match self.config.access {
                OutputAccess::None => (None, None),
                OutputAccess::LabelOnly => {
                    let y = next_output();
                    (None, Some(vec_ops::argmax(&y)))
                }
                OutputAccess::Raw => {
                    let y = next_output();
                    let label = vec_ops::argmax(&y);
                    (Some(y), Some(label))
                }
            };
            observations.push(Observation {
                output,
                label,
                power,
            });
        }
        Ok(observations)
    }

    // The four keyed evaluation shapes. With transients active each
    // sample reads its own perturbed array — a fresh conductance
    // generation that can never hit the cached handle — so every sample
    // becomes a single-sample prepare + evaluate under its key's index:
    // exactly what `xbar_faults::TransientBackend` does for contiguous
    // indices, but valid for the arbitrary per-sample keys of a
    // coalesced batch. Without transients the whole batch goes to the
    // cached prepared session in one call; backends are bit-identical
    // per sample by contract, so both shapes yield the same floats.

    fn keyed_power(
        &self,
        session: &PreparedSession,
        transients: Option<xbar_faults::TransientInjection>,
        inputs: &[&[f64]],
        keys: &[QueryKey],
    ) -> Result<Vec<f64>> {
        match transients {
            None => Ok(session.backend.power_prepared(
                &self.config.power,
                &session.prepared,
                &self.xbar,
                inputs,
            )?),
            Some(injection) => {
                let mut out = Vec::with_capacity(inputs.len());
                for (i, input) in inputs.iter().enumerate() {
                    let perturbed = injection.perturbed(&self.xbar, keys[i].index);
                    let p = session.backend.prepare(&perturbed)?;
                    out.extend(session.backend.power_prepared(
                        &self.config.power,
                        &p,
                        &perturbed,
                        &[input],
                    )?);
                }
                Ok(out)
            }
        }
    }

    fn keyed_noisy_power(
        &self,
        session: &PreparedSession,
        transients: Option<xbar_faults::TransientInjection>,
        inputs: &[&[f64]],
        keys: &[QueryKey],
    ) -> Result<Vec<f64>> {
        match transients {
            None => Ok(session.backend.noisy_power_prepared(
                &self.config.power,
                &session.prepared,
                &self.xbar,
                inputs,
                &mut |i| Self::stream_rng(keys[i].seed, keys[i].index),
            )?),
            Some(injection) => {
                let mut out = Vec::with_capacity(inputs.len());
                for (i, input) in inputs.iter().enumerate() {
                    let perturbed = injection.perturbed(&self.xbar, keys[i].index);
                    let p = session.backend.prepare(&perturbed)?;
                    out.extend(session.backend.noisy_power_prepared(
                        &self.config.power,
                        &p,
                        &perturbed,
                        &[input],
                        &mut |_| Self::stream_rng(keys[i].seed, keys[i].index),
                    )?);
                }
                Ok(out)
            }
        }
    }

    fn keyed_mvm(
        &self,
        session: &PreparedSession,
        transients: Option<xbar_faults::TransientInjection>,
        inputs: &[&[f64]],
        keys: &[QueryKey],
    ) -> Result<Vec<Vec<f64>>> {
        match transients {
            None => Ok(session
                .backend
                .mvm_prepared(&session.prepared, &self.xbar, inputs)?),
            Some(injection) => {
                let mut out = Vec::with_capacity(inputs.len());
                for (i, input) in inputs.iter().enumerate() {
                    let perturbed = injection.perturbed(&self.xbar, keys[i].index);
                    let p = session.backend.prepare(&perturbed)?;
                    out.extend(session.backend.mvm_prepared(&p, &perturbed, &[input])?);
                }
                Ok(out)
            }
        }
    }

    fn keyed_noisy_mvm(
        &self,
        session: &PreparedSession,
        transients: Option<xbar_faults::TransientInjection>,
        inputs: &[&[f64]],
        keys: &[QueryKey],
    ) -> Result<Vec<Vec<f64>>> {
        match transients {
            None => Ok(session.backend.noisy_mvm_prepared(
                &session.prepared,
                &self.xbar,
                inputs,
                &mut |i| Self::stream_rng(keys[i].seed, keys[i].index),
            )?),
            Some(injection) => {
                let mut out = Vec::with_capacity(inputs.len());
                for (i, input) in inputs.iter().enumerate() {
                    let perturbed = injection.perturbed(&self.xbar, keys[i].index);
                    let p = session.backend.prepare(&perturbed)?;
                    out.extend(session.backend.noisy_mvm_prepared(
                        &p,
                        &perturbed,
                        &[input],
                        &mut |_| Self::stream_rng(keys[i].seed, keys[i].index),
                    )?);
                }
                Ok(out)
            }
        }
    }

    // ------------------------------------------------------------------
    // Evaluation-side methods (free for the experimenter, not the
    // attacker: they do not consume queries).
    // ------------------------------------------------------------------

    /// Deployed-model predictions for a batch (noiseless crossbar read).
    ///
    /// # Errors
    ///
    /// Propagates dimension errors.
    pub fn eval_predict_batch(&self, inputs: &Matrix) -> Result<Vec<usize>> {
        if inputs.rows() == 0 {
            return Ok(Vec::new());
        }
        let session = self.prepared_session()?;
        let rows: Vec<&[f64]> = (0..inputs.rows()).map(|i| inputs.row(i)).collect();
        let mut outs = session
            .backend
            .mvm_prepared(&session.prepared, &self.xbar, &rows)?;
        Ok(outs
            .iter_mut()
            .map(|y| {
                self.net.activation().apply_row(y);
                vec_ops::argmax(y)
            })
            .collect())
    }

    /// Deployed-model accuracy on a labelled set.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors.
    pub fn eval_accuracy(&self, inputs: &Matrix, labels: &[usize]) -> Result<f64> {
        let preds = self.eval_predict_batch(inputs)?;
        Ok(xbar_nn::metrics::accuracy(&preds, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_nn::activation::Activation;

    fn toy_oracle(access: OutputAccess) -> Oracle {
        let net = SingleLayerNet::from_weights(
            Matrix::from_rows(&[&[1.0, -0.5, 0.0], &[0.25, 0.5, -1.0]]),
            Activation::Identity,
        );
        Oracle::new(net, &OracleConfig::ideal().with_access(access), 3).unwrap()
    }

    fn power(o: &mut Oracle, u: &[f64]) -> f64 {
        o.query(u).unwrap().observation.power
    }

    #[test]
    fn prepared_session_is_cached_and_invalidated_by_redeployment() {
        use xbar_faults::{FaultInjection, FaultKey, FaultSpec};

        // Stable hardware: consecutive batches share one session (same
        // Arc, no re-materialisation).
        let oracle = toy_oracle(OutputAccess::Raw);
        let s1 = oracle.prepared_session().unwrap();
        let s2 = oracle.prepared_session().unwrap();
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(s1.prepared.generation(), oracle.xbar.generation());

        // A clone starts with an empty cache but an identical array
        // generation (clones are the same conductances).
        let cloned = oracle.clone();
        let s3 = cloned.prepared_session().unwrap();
        assert!(!Arc::ptr_eq(&s1, &s3));
        assert_eq!(s3.prepared.generation(), s1.prepared.generation());

        // Drift redeployment replaces the array (fresh generation), so
        // the cached session is rebuilt — never served stale.
        let net = SingleLayerNet::from_weights(
            Matrix::from_rows(&[&[1.0, -0.5, 0.2], &[0.25, 0.5, -1.0]]),
            Activation::Identity,
        );
        let device = DeviceModel {
            g_min: 0.02,
            g_max: 1.0,
            ..DeviceModel::ideal()
        };
        let cfg = OracleConfig::ideal()
            .with_device(device)
            .with_backend(BackendSpec::new(BackendKind::Blocked))
            .with_faults(FaultInjection::new(
                FaultSpec::none().with_drift(0.1, 0.05, 1.0),
                FaultKey::new(7, 0),
            ))
            .with_drift_schedule(DriftSchedule::every(2, 10.0));
        let mut o = Oracle::new(net, &cfg, 1).unwrap();
        let u = [0.8, 0.5, 0.9];
        o.query(&u).unwrap();
        let before = o.prepared_session().unwrap().prepared.generation();
        assert_eq!(before, o.xbar.generation());
        for _ in 0..4 {
            o.query(&u).unwrap();
        }
        let after = o.prepared_session().unwrap().prepared.generation();
        assert_eq!(after, o.xbar.generation());
        assert_ne!(before, after, "drift redeployment must rebuild the session");
    }

    #[test]
    fn raw_access_reveals_everything() {
        let mut o = toy_oracle(OutputAccess::Raw);
        let rec = o.query(&[1.0, 0.0, 0.0]).unwrap();
        let out = rec.observation.output.unwrap();
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert!((out[1] - 0.25).abs() < 1e-12);
        assert_eq!(rec.observation.label, Some(0));
        assert_eq!(rec.index, 0);
        assert_eq!(o.query_count(), 1);
    }

    #[test]
    fn label_only_hides_raw_outputs() {
        let mut o = toy_oracle(OutputAccess::LabelOnly);
        let rec = o.query(&[1.0, 0.0, 0.0]).unwrap();
        assert!(rec.observation.output.is_none());
        assert_eq!(rec.observation.label, Some(0));
    }

    #[test]
    fn no_access_reveals_only_power() {
        let mut o = toy_oracle(OutputAccess::None);
        let rec = o.query(&[1.0, 0.0, 0.0]).unwrap();
        assert!(rec.observation.output.is_none());
        assert!(rec.observation.label.is_none());
        assert!(rec.observation.power > 0.0);
    }

    #[test]
    fn calibrated_power_equals_weighted_column_norms() {
        // The central identity: power(u) = Σ_j u_j ‖W[:,j]‖₁ in weight
        // units, for the ideal crossbar.
        let mut o = toy_oracle(OutputAccess::None);
        let norms = o.true_column_norms();
        for j in 0..3 {
            let mut e = vec![0.0; 3];
            e[j] = 1.0;
            let p = power(&mut o, &e);
            assert!(
                (p - norms[j]).abs() < 1e-9,
                "column {j}: {p} vs {}",
                norms[j]
            );
        }
        // Linearity in the input.
        let p = power(&mut o, &[0.5, 0.25, 1.0]);
        let want = 0.5 * norms[0] + 0.25 * norms[1] + 1.0 * norms[2];
        assert!((p - want).abs() < 1e-9);
    }

    #[test]
    fn calibration_cancels_gmin_offset() {
        let net = SingleLayerNet::from_weights(
            Matrix::from_rows(&[&[0.8, -0.4], &[0.2, 0.6]]),
            Activation::Identity,
        );
        let device = DeviceModel {
            g_min: 0.07,
            g_max: 1.0,
            ..DeviceModel::ideal()
        };
        let cfg = OracleConfig::ideal().with_device(device);
        let mut o = Oracle::new(net.clone(), &cfg, 5).unwrap();
        let norms = net.weights().col_l1_norms();
        for j in 0..2 {
            let mut e = vec![0.0; 2];
            e[j] = 1.0;
            let p = power(&mut o, &e);
            assert!((p - norms[j]).abs() < 1e-9, "column {j}");
        }
    }

    #[test]
    fn query_budget_enforced() {
        let net =
            SingleLayerNet::from_weights(Matrix::from_rows(&[&[1.0, 0.5]]), Activation::Identity);
        let cfg = OracleConfig::ideal().with_query_budget(2);
        let mut o = Oracle::new(net, &cfg, 1).unwrap();
        assert!(o.query(&[1.0, 0.0]).is_ok());
        assert!(o.query(&[0.0, 1.0]).is_ok());
        assert!(matches!(
            o.query(&[1.0, 1.0]),
            Err(AttackError::QueryBudgetExhausted { budget: 2 })
        ));
        o.reset_query_count();
        assert!(o.query(&[1.0, 0.0]).is_ok());
    }

    #[test]
    fn batch_budget_is_all_or_nothing() {
        let net =
            SingleLayerNet::from_weights(Matrix::from_rows(&[&[1.0, 0.5]]), Activation::Identity);
        let cfg = OracleConfig::ideal().with_query_budget(3);
        let mut o = Oracle::new(net, &cfg, 1).unwrap();
        let u = [1.0, 0.0];
        assert!(o.query_batch(&[&u, &u]).is_ok());
        // Two more would overflow the budget of 3: nothing is consumed.
        assert!(matches!(
            o.query_batch(&[&u, &u]),
            Err(AttackError::QueryBudgetExhausted { budget: 3 })
        ));
        assert_eq!(o.query_count(), 2);
        assert!(o.query(&u).is_ok());
    }

    #[test]
    fn batch_matches_sequential_queries_at_any_split() {
        // Noisy power AND noisy reads: the strongest equivalence claim.
        let net = SingleLayerNet::from_weights(
            Matrix::from_rows(&[&[1.0, -0.5, 0.2], &[0.25, 0.5, -1.0]]),
            Activation::Identity,
        );
        let cfg = OracleConfig::ideal()
            .with_power(PowerModel::default().with_noise(0.05))
            .with_device(DeviceModel::ideal().with_read_sigma(0.01));
        let inputs: Vec<Vec<f64>> = (0..7)
            .map(|i| (0..3).map(|j| ((i * 3 + j) as f64 * 0.21).sin()).collect())
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();

        let mut seq = Oracle::new(net.clone(), &cfg, 42).unwrap();
        let one_by_one: Vec<QueryRecord> = refs.iter().map(|u| seq.query(u).unwrap()).collect();

        for backend in [
            BackendSpec::new(BackendKind::Naive),
            BackendSpec::new(BackendKind::Blocked),
            BackendSpec::new(BackendKind::Parallel).with_threads(3),
        ] {
            let cfg_b = cfg.with_backend(backend);
            // One big batch.
            let mut o = Oracle::new(net.clone(), &cfg_b, 42).unwrap();
            assert_eq!(o.query_batch(&refs).unwrap(), one_by_one, "{backend}");
            // An uneven split.
            let mut o = Oracle::new(net.clone(), &cfg_b, 42).unwrap();
            let mut split = o.query_batch(&refs[..2]).unwrap();
            split.extend(o.query_batch(&refs[2..5]).unwrap());
            split.extend(o.query_batch(&refs[5..]).unwrap());
            assert_eq!(split, one_by_one, "{backend} split");
        }
    }

    #[test]
    fn blocked_backend_is_bit_identical_on_noiseless_batches() {
        let mut naive = toy_oracle(OutputAccess::Raw);
        let mut blocked = {
            let net = SingleLayerNet::from_weights(
                Matrix::from_rows(&[&[1.0, -0.5, 0.0], &[0.25, 0.5, -1.0]]),
                Activation::Identity,
            );
            Oracle::new(
                net,
                &OracleConfig::ideal().with_backend(BackendKind::Blocked),
                3,
            )
            .unwrap()
        };
        let inputs: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![0.1 * i as f64, 0.3, 1.0 - 0.2 * i as f64])
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        assert_eq!(
            naive.query_batch(&refs).unwrap(),
            blocked.query_batch(&refs).unwrap()
        );
    }

    #[test]
    fn single_query_equals_batch_of_one() {
        // The compat contract the removed `query_power` wrapper relied
        // on: `query(u)` is exactly `query_batch(&[u])`, noise included.
        let cfg = OracleConfig::ideal().with_power(PowerModel::default().with_noise(0.1));
        let net =
            SingleLayerNet::from_weights(Matrix::from_rows(&[&[1.0, -0.5]]), Activation::Identity);
        let mut a = Oracle::new(net.clone(), &cfg, 17).unwrap();
        let mut b = Oracle::new(net, &cfg, 17).unwrap();
        for i in 0..4 {
            let u = [0.5 + 0.1 * i as f64, 0.25];
            assert_eq!(
                a.query(&u).unwrap(),
                b.query_batch(&[&u]).unwrap()[0].clone()
            );
        }
    }

    #[test]
    fn fault_injection_changes_deployment_deterministically() {
        use xbar_faults::{FaultInjection, FaultKey, FaultSpec};
        let net = SingleLayerNet::from_weights(
            Matrix::from_rows(&[&[1.0, -0.5, 0.0], &[0.25, 0.5, -1.0]]),
            Activation::Identity,
        );
        let injection = FaultInjection::new(
            FaultSpec::none().with_stuck_off_rate(0.4),
            FaultKey::new(99, 1),
        );
        let cfg = OracleConfig::ideal().with_faults(injection);
        let faulted = Oracle::new(net.clone(), &cfg, 3).unwrap();
        let pristine = Oracle::new(net.clone(), &OracleConfig::ideal(), 3).unwrap();
        // The faulted deployment's ground truth differs...
        assert_ne!(faulted.true_column_norms(), pristine.true_column_norms());
        // ...but is reproducible given the same injection key.
        let again = Oracle::new(net.clone(), &cfg, 3).unwrap();
        assert_eq!(faulted.true_column_norms(), again.true_column_norms());
        // An empty spec deploys bit-identically to no injection at all.
        let noop = OracleConfig::ideal()
            .with_faults(FaultInjection::new(FaultSpec::none(), FaultKey::new(99, 1)));
        let noop_oracle = Oracle::new(net, &noop, 3).unwrap();
        assert_eq!(
            noop_oracle.true_column_norms(),
            pristine.true_column_norms()
        );
    }

    #[test]
    fn transient_queries_are_split_invariant_and_keyed() {
        use xbar_faults::{FaultKey, TransientInjection, TransientSpec};
        let net = SingleLayerNet::from_weights(
            Matrix::from_rows(&[&[1.0, -0.5, 0.2], &[0.25, 0.5, -1.0]]),
            Activation::Identity,
        );
        let device = DeviceModel {
            g_min: 0.05,
            g_max: 1.0,
            ..DeviceModel::ideal()
        };
        let spec = TransientSpec::none()
            .with_flip_rate(0.2)
            .with_jitter_sigma(0.1);
        let cfg = OracleConfig::ideal()
            .with_device(device)
            .with_transients(TransientInjection::new(spec, FaultKey::new(5, 3)));
        let inputs: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..3).map(|j| ((i * 3 + j) as f64 * 0.37).cos()).collect())
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();

        let mut seq = Oracle::new(net.clone(), &cfg, 42).unwrap();
        let one_by_one: Vec<QueryRecord> = refs.iter().map(|u| seq.query(u).unwrap()).collect();
        for backend in [
            BackendSpec::new(BackendKind::Naive),
            BackendSpec::new(BackendKind::Blocked),
            BackendSpec::new(BackendKind::Parallel).with_threads(2),
        ] {
            let mut o = Oracle::new(net.clone(), &cfg.with_backend(backend), 42).unwrap();
            let mut split = o.query_batch(&refs[..4]).unwrap();
            split.extend(o.query_batch(&refs[4..]).unwrap());
            assert_eq!(split, one_by_one, "{backend}");
        }
        // The same input at two different global indices reads two
        // different transient perturbations.
        let mut o = Oracle::new(net.clone(), &cfg, 42).unwrap();
        let a = o.query(refs[0]).unwrap().observation.power;
        let b = o.query(refs[0]).unwrap().observation.power;
        assert_ne!(a, b);
        // An empty transient spec deploys bit-identically to none.
        let noop = cfg.with_transients(TransientInjection::new(
            TransientSpec::none(),
            FaultKey::new(5, 3),
        ));
        let mut plain =
            Oracle::new(net.clone(), &OracleConfig::ideal().with_device(device), 7).unwrap();
        let mut wrapped = Oracle::new(net, &noop, 7).unwrap();
        assert_eq!(
            plain.query_batch(&refs).unwrap(),
            wrapped.query_batch(&refs).unwrap()
        );
    }

    #[test]
    fn drift_schedule_ages_the_array_split_invariantly() {
        use xbar_faults::{FaultInjection, FaultKey, FaultSpec};
        let net = SingleLayerNet::from_weights(
            Matrix::from_rows(&[&[1.0, -0.5, 0.2], &[0.25, 0.5, -1.0]]),
            Activation::Identity,
        );
        let device = DeviceModel {
            g_min: 0.02,
            g_max: 1.0,
            ..DeviceModel::ideal()
        };
        let injection = FaultInjection::new(
            FaultSpec::none().with_drift(0.1, 0.05, 1.0),
            FaultKey::new(77, 0),
        );
        let cfg = OracleConfig::ideal()
            .with_device(device)
            .with_faults(injection)
            .with_drift_schedule(DriftSchedule::every(3, 50.0));
        // The same input at every query, so the power trend isolates
        // the hardware's decay.
        let u = vec![0.8, 0.5, 0.9];
        let refs: Vec<&[f64]> = (0..8).map(|_| u.as_slice()).collect();

        let mut seq = Oracle::new(net.clone(), &cfg, 42).unwrap();
        assert_eq!(seq.drift_time(), 1.0);
        let one_by_one: Vec<QueryRecord> = refs.iter().map(|u| seq.query(u).unwrap()).collect();
        // 8 queries at 3 per epoch: the deployed array has aged twice.
        assert_eq!(seq.drift_time(), 1.0 + 2.0 * 50.0);
        assert_eq!(seq.queries_issued(), 8);

        // One big batch spanning both epoch boundaries is bit-identical
        // — each drift redeployment bumps the array generation, so the
        // cached prepared session is rebuilt rather than reused stale.
        for backend in [
            BackendSpec::new(BackendKind::Naive),
            BackendSpec::new(BackendKind::Blocked),
            BackendSpec::new(BackendKind::Parallel).with_threads(2),
        ] {
            let mut o = Oracle::new(net.clone(), &cfg.with_backend(backend), 42).unwrap();
            assert_eq!(o.query_batch(&refs).unwrap(), one_by_one, "{backend}");
        }

        // Power on a fixed input decays as the hardware drifts toward
        // g_min (columns lose conductance, so less current flows).
        let early = one_by_one[0].observation.power;
        let late = one_by_one[7].observation.power;
        assert!(
            late < early,
            "power should decay under drift: {early} -> {late}"
        );

        // Without a fault injection the schedule is inert.
        let inert = OracleConfig::ideal()
            .with_device(device)
            .with_drift_schedule(DriftSchedule::every(3, 50.0));
        let mut o = Oracle::new(net, &inert, 42).unwrap();
        for u in &refs {
            o.query(u).unwrap();
        }
        assert_eq!(o.drift_time(), 0.0);
    }

    #[test]
    fn query_indices_are_global_and_survive_resets() {
        let mut o = toy_oracle(OutputAccess::None);
        assert_eq!(o.query(&[1.0, 0.0, 0.0]).unwrap().index, 0);
        o.reset_query_count();
        let recs = o
            .query_batch(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]])
            .unwrap();
        assert_eq!(recs[0].index, 1);
        assert_eq!(recs[1].index, 2);
        assert_eq!(o.query_count(), 2);
    }

    #[test]
    fn batch_rejects_malformed_inputs_without_consuming() {
        let mut o = toy_oracle(OutputAccess::None);
        let good = [1.0, 0.0, 0.0];
        let bad = [1.0, 0.0];
        assert!(o.query_batch(&[&good, &bad]).is_err());
        assert_eq!(o.query_count(), 0);
        assert!(o.query_batch(&[]).unwrap().is_empty());
        assert_eq!(o.query_count(), 0);
    }

    #[test]
    fn eval_does_not_consume_queries() {
        let o = toy_oracle(OutputAccess::None);
        let inputs = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]);
        let preds = o.eval_predict_batch(&inputs).unwrap();
        assert_eq!(preds, vec![0, 0]);
        assert_eq!(o.query_count(), 0);
        let acc = o.eval_accuracy(&inputs, &[0, 0]).unwrap();
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn noisy_power_is_noisy_but_centred() {
        let net =
            SingleLayerNet::from_weights(Matrix::from_rows(&[&[1.0, -0.5]]), Activation::Identity);
        let cfg = OracleConfig::ideal().with_power(PowerModel::default().with_noise(0.05));
        let mut o = Oracle::new(net.clone(), &cfg, 11).unwrap();
        let norms = net.weights().col_l1_norms();
        let n = 2000;
        let mean: f64 = (0..n).map(|_| power(&mut o, &[1.0, 0.0])).sum::<f64>() / n as f64;
        assert!((mean - norms[0]).abs() < 0.02, "{mean} vs {}", norms[0]);
        // Individual readings vary.
        let a = power(&mut o, &[1.0, 0.0]);
        let b = power(&mut o, &[1.0, 0.0]);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_given_seed() {
        let make = || {
            let net = SingleLayerNet::from_weights(
                Matrix::from_rows(&[&[1.0, -0.5]]),
                Activation::Identity,
            );
            let cfg = OracleConfig::ideal().with_power(PowerModel::default().with_noise(0.1));
            Oracle::new(net, &cfg, 42).unwrap()
        };
        let mut a = make();
        let mut b = make();
        for _ in 0..5 {
            assert_eq!(power(&mut a, &[0.5, 0.5]), power(&mut b, &[0.5, 0.5]));
        }
    }

    /// A deployment whose configuration exercises every noise source a
    /// served victim can carry (noisy power, noisy reads, transient
    /// faults, permanent faults) — the hardest case for keyed-batch
    /// equivalence.
    fn serveable_oracle(access: OutputAccess, backend: impl Into<BackendSpec>) -> Oracle {
        use xbar_faults::{FaultInjection, FaultKey, FaultSpec, TransientInjection, TransientSpec};
        let net = SingleLayerNet::from_weights(
            Matrix::from_rows(&[&[1.0, -0.5, 0.2], &[0.25, 0.5, -1.0]]),
            Activation::Identity,
        );
        let device = DeviceModel {
            g_min: 0.05,
            g_max: 1.0,
            read_sigma: 0.01,
            ..DeviceModel::ideal()
        };
        let cfg = OracleConfig::ideal()
            .with_access(access)
            .with_device(device)
            .with_backend(backend)
            .with_power(PowerModel::default().with_noise(0.05))
            .with_faults(FaultInjection::new(
                FaultSpec::none().with_stuck_off_rate(0.1),
                FaultKey::new(31, 4),
            ))
            .with_transients(TransientInjection::new(
                TransientSpec::none()
                    .with_flip_rate(0.1)
                    .with_jitter_sigma(0.05),
                FaultKey::new(31, 4),
            ));
        Oracle::new(net, &cfg, 1234).unwrap()
    }

    fn probe_inputs(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..3).map(|j| ((i * 3 + j) as f64 * 0.29).sin()).collect())
            .collect()
    }

    #[test]
    fn keyed_batch_matches_session_view_queries() {
        // The serve contract: a session's results through
        // `observe_batch_keyed` on the shared deployment must be
        // bit-identical to the same session querying its own
        // `session_view` directly — for every access level, backend,
        // and noise/transient combination.
        for access in [
            OutputAccess::None,
            OutputAccess::LabelOnly,
            OutputAccess::Raw,
        ] {
            for backend in [
                BackendSpec::new(BackendKind::Naive),
                BackendSpec::new(BackendKind::Blocked),
                BackendSpec::new(BackendKind::Parallel).with_threads(2),
            ] {
                let deployed = serveable_oracle(access, backend);
                let inputs = probe_inputs(5);
                let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
                for session_seed in [7u64, 8, 9] {
                    let mut solo = deployed.session_view(session_seed, None);
                    let direct = solo.query_batch(&refs).unwrap();
                    let keys: Vec<QueryKey> = (0..refs.len() as u64)
                        .map(|i| QueryKey::new(session_seed, i))
                        .collect();
                    let keyed = deployed.observe_batch_keyed(&refs, &keys).unwrap();
                    for (rec, obs) in direct.iter().zip(&keyed) {
                        assert_eq!(&rec.observation, obs, "{access:?} {backend} {session_seed}");
                    }
                }
            }
        }
    }

    #[test]
    fn keyed_batch_is_order_and_mix_invariant() {
        // A coalesced batch mixing sessions in arbitrary order returns,
        // per key, the same floats as each session served alone.
        let deployed = serveable_oracle(OutputAccess::Raw, BackendKind::Blocked);
        let inputs = probe_inputs(6);
        let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        // Solo baselines: session 100 asks queries 0..3 on inputs 0..3,
        // session 200 asks queries 0..3 on inputs 3..6.
        let base_a = deployed
            .observe_batch_keyed(
                &refs[..3],
                &[
                    QueryKey::new(100, 0),
                    QueryKey::new(100, 1),
                    QueryKey::new(100, 2),
                ],
            )
            .unwrap();
        let base_b = deployed
            .observe_batch_keyed(
                &refs[3..],
                &[
                    QueryKey::new(200, 0),
                    QueryKey::new(200, 1),
                    QueryKey::new(200, 2),
                ],
            )
            .unwrap();
        // One interleaved batch, sessions shuffled together.
        let mixed = deployed
            .observe_batch_keyed(
                &[refs[3], refs[0], refs[4], refs[1], refs[5], refs[2]],
                &[
                    QueryKey::new(200, 0),
                    QueryKey::new(100, 0),
                    QueryKey::new(200, 1),
                    QueryKey::new(100, 1),
                    QueryKey::new(200, 2),
                    QueryKey::new(100, 2),
                ],
            )
            .unwrap();
        assert_eq!(mixed[1], base_a[0]);
        assert_eq!(mixed[3], base_a[1]);
        assert_eq!(mixed[5], base_a[2]);
        assert_eq!(mixed[0], base_b[0]);
        assert_eq!(mixed[2], base_b[1]);
        assert_eq!(mixed[4], base_b[2]);
    }

    #[test]
    fn session_view_shares_hardware_but_not_noise_or_budget() {
        let deployed = serveable_oracle(OutputAccess::None, BackendKind::Naive);
        let mut a = deployed.session_view(1, Some(2));
        let mut b = deployed.session_view(2, Some(2));
        // Same deployed (faulted) hardware: identical ground truth.
        assert_eq!(a.true_column_norms(), deployed.true_column_norms());
        assert_eq!(b.true_column_norms(), deployed.true_column_norms());
        // Different seeds draw different noise on the same query.
        let u = [0.4, -0.2, 0.8];
        let pa = a.query(&u).unwrap().observation.power;
        let pb = b.query(&u).unwrap().observation.power;
        assert_ne!(pa, pb);
        // Budgets are per view, independent of the deployment's.
        assert!(a.query(&u).is_ok());
        assert!(matches!(
            a.query(&u),
            Err(AttackError::QueryBudgetExhausted { budget: 2 })
        ));
        assert!(b.query(&u).is_ok());
    }

    #[test]
    fn keyed_batch_rejects_mismatch_and_drift() {
        let deployed = serveable_oracle(OutputAccess::None, BackendKind::Naive);
        let u = [0.1, 0.2, 0.3];
        // keys.len() != inputs.len()
        assert!(matches!(
            deployed.observe_batch_keyed(&[&u], &[]),
            Err(AttackError::InvalidParameter { .. })
        ));
        // Wrong input dimension.
        assert!(deployed
            .observe_batch_keyed(&[&[0.1, 0.2]], &[QueryKey::new(1, 0)])
            .is_err());
        // A drifting deployment cannot serve keyed batches: its
        // hardware is a function of its own query clock.
        use xbar_faults::{FaultInjection, FaultKey, FaultSpec};
        let net = SingleLayerNet::from_weights(
            Matrix::from_rows(&[&[1.0, -0.5, 0.2], &[0.25, 0.5, -1.0]]),
            Activation::Identity,
        );
        let cfg = OracleConfig::ideal()
            .with_faults(FaultInjection::new(
                FaultSpec::none().with_drift(0.1, 0.05, 1.0),
                FaultKey::new(1, 0),
            ))
            .with_drift_schedule(DriftSchedule::every(3, 50.0));
        let drifting = Oracle::new(net, &cfg, 5).unwrap();
        assert!(matches!(
            drifting.observe_batch_keyed(&[&u], &[QueryKey::new(1, 0)]),
            Err(AttackError::InvalidParameter { .. })
        ));
    }
}
