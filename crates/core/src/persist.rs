//! Persistence for attack artifacts: trained networks, query logs, and
//! probe results, as JSON files.
//!
//! Real attack campaigns are incremental — probing one session, training
//! surrogates the next — so the attacker's state must round-trip through
//! disk. Every serialisable artifact in the workspace derives serde;
//! these helpers add the file plumbing with a version/kind header so a
//! file can't be silently loaded as the wrong artifact.

use crate::surrogate::QueryDataset;
use crate::{AttackError, Result};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;
use xbar_nn::network::SingleLayerNet;

/// Format version written into every artifact file.
const FORMAT_VERSION: u32 = 1;

/// A typed, versioned envelope around a serialisable artifact.
#[derive(Debug, Serialize, Deserialize)]
struct Envelope<T> {
    format_version: u32,
    kind: String,
    payload: T,
}

fn io_err(e: std::io::Error) -> AttackError {
    // Reuse the InvalidParameter variant's spirit without widening the
    // public error enum for io: wrap through a crossbar-free path.
    AttackError::Io(e)
}

/// Writes an artifact of the given `kind` to a writer.
///
/// # Errors
///
/// Returns [`AttackError::Io`] on write failures or
/// [`AttackError::Serde`] on serialisation failures.
pub fn save_artifact<T: Serialize, W: Write>(writer: W, kind: &str, payload: &T) -> Result<()> {
    let env = Envelope {
        format_version: FORMAT_VERSION,
        kind: kind.to_string(),
        payload,
    };
    serde_json::to_writer_pretty(writer, &env).map_err(AttackError::Serde)
}

/// Reads an artifact of the given `kind` from a reader, verifying the
/// header.
///
/// # Errors
///
/// * [`AttackError::Serde`] on malformed JSON.
/// * [`AttackError::InvalidParameter`] if the file holds a different kind
///   or format version.
pub fn load_artifact<T: DeserializeOwned, R: Read>(reader: R, kind: &str) -> Result<T> {
    let env: Envelope<T> = serde_json::from_reader(reader).map_err(AttackError::Serde)?;
    if env.format_version != FORMAT_VERSION {
        return Err(AttackError::InvalidParameter {
            name: "format_version",
        });
    }
    if env.kind != kind {
        return Err(AttackError::InvalidParameter { name: "kind" });
    }
    Ok(env.payload)
}

/// Saves a trained network (e.g. a surrogate) to a JSON file.
///
/// # Errors
///
/// See [`save_artifact`]; file-creation failures map to
/// [`AttackError::Io`].
pub fn save_network<P: AsRef<Path>>(path: P, net: &SingleLayerNet) -> Result<()> {
    let f = std::fs::File::create(path).map_err(io_err)?;
    save_artifact(std::io::BufWriter::new(f), "single-layer-net", net)
}

/// Loads a network saved by [`save_network`].
///
/// # Errors
///
/// See [`load_artifact`].
pub fn load_network<P: AsRef<Path>>(path: P) -> Result<SingleLayerNet> {
    let f = std::fs::File::open(path).map_err(io_err)?;
    load_artifact(std::io::BufReader::new(f), "single-layer-net")
}

/// Saves an attacker's query log.
///
/// # Errors
///
/// See [`save_artifact`].
pub fn save_query_log<P: AsRef<Path>>(path: P, log: &QueryDataset) -> Result<()> {
    let f = std::fs::File::create(path).map_err(io_err)?;
    save_artifact(std::io::BufWriter::new(f), "query-log", log)
}

/// Loads a query log saved by [`save_query_log`].
///
/// # Errors
///
/// See [`load_artifact`].
pub fn load_query_log<P: AsRef<Path>>(path: P) -> Result<QueryDataset> {
    let f = std::fs::File::open(path).map_err(io_err)?;
    load_artifact(std::io::BufReader::new(f), "query-log")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xbar_linalg::Matrix;
    use xbar_nn::activation::Activation;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("xbar-persist-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn network_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = SingleLayerNet::new_random(8, 3, Activation::Softmax, &mut rng);
        let path = tmp("net");
        save_network(&path, &net).unwrap();
        let loaded = load_network(&path).unwrap();
        assert_eq!(net, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_log_roundtrip() {
        let log = QueryDataset {
            inputs: Matrix::from_rows(&[&[0.1, 0.2], &[0.3, 0.4]]),
            targets: Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
            powers: vec![0.5, 0.7],
        };
        let path = tmp("log");
        save_query_log(&path, &log).unwrap();
        let loaded = load_query_log(&path).unwrap();
        assert_eq!(log, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kind_mismatch_rejected() {
        let log = QueryDataset {
            inputs: Matrix::ones(1, 2),
            targets: Matrix::ones(1, 1),
            powers: vec![1.0],
        };
        let mut buf = Vec::new();
        save_artifact(&mut buf, "query-log", &log).unwrap();
        let res: Result<QueryDataset> = load_artifact(buf.as_slice(), "single-layer-net");
        assert!(matches!(
            res,
            Err(AttackError::InvalidParameter { name: "kind" })
        ));
    }

    #[test]
    fn malformed_json_rejected() {
        let res: Result<QueryDataset> = load_artifact(&b"not json"[..], "query-log");
        assert!(matches!(res, Err(AttackError::Serde(_))));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_network("/nonexistent/path/net.json"),
            Err(AttackError::Io(_))
        ));
    }
}
