//! Case-1 single- and multi-pixel attacks guided by power information
//! (paper Sec. III, Fig. 4).
//!
//! With only the column 1-norms (from [`crate::probe`]), the attacker
//! perturbs the pixel whose weight column has the largest 1-norm. The
//! five methods of Fig. 4:
//!
//! * `RandomPixel` (RP) — random pixel, random ± direction (no model
//!   information; the weakest baseline).
//! * `NormPlus` (+) — largest-1-norm pixel, always add the strength.
//! * `NormMinus` (−) — largest-1-norm pixel, always subtract.
//! * `NormRandom` (RD) — largest-1-norm pixel, random ± direction.
//! * `WorstCase` (Worst) — white-box bound: the most sensitive pixel
//!   perturbed along the loss gradient (single-pixel FGSM).

use crate::{AttackError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use xbar_linalg::{vec_ops, Matrix};
use xbar_nn::loss::Loss;
use xbar_nn::network::SingleLayerNet;
use xbar_nn::sensitivity::batch_input_gradients;

/// The pixel-selection strategies of the paper's Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PixelAttackMethod {
    /// "RP": random pixel, random sign.
    RandomPixel,
    /// "+": largest-norm pixel, add the attack strength.
    NormPlus,
    /// "−": largest-norm pixel, subtract the attack strength.
    NormMinus,
    /// "RD": largest-norm pixel, random sign.
    NormRandom,
    /// "Worst": most sensitive pixel along the loss gradient (white box).
    WorstCase,
}

impl PixelAttackMethod {
    /// The label used in the paper's Fig. 4 legend.
    pub fn paper_label(&self) -> &'static str {
        match self {
            PixelAttackMethod::RandomPixel => "RP",
            PixelAttackMethod::NormPlus => "+",
            PixelAttackMethod::NormMinus => "-",
            PixelAttackMethod::NormRandom => "RD",
            PixelAttackMethod::WorstCase => "Worst",
        }
    }

    /// Whether the method needs probed column norms.
    pub fn needs_norms(&self) -> bool {
        matches!(
            self,
            PixelAttackMethod::NormPlus
                | PixelAttackMethod::NormMinus
                | PixelAttackMethod::NormRandom
        )
    }

    /// Whether the method needs white-box gradients.
    pub fn needs_white_box(&self) -> bool {
        matches!(self, PixelAttackMethod::WorstCase)
    }

    /// All five methods in the paper's legend order.
    pub fn all() -> [PixelAttackMethod; 5] {
        [
            PixelAttackMethod::RandomPixel,
            PixelAttackMethod::NormPlus,
            PixelAttackMethod::NormMinus,
            PixelAttackMethod::NormRandom,
            PixelAttackMethod::WorstCase,
        ]
    }
}

/// Resources a pixel attack may draw on: probed norms for the
/// norm-guided methods, and the white-box model for the "Worst" bound.
#[derive(Debug, Clone, Copy)]
pub struct PixelAttackResources<'a> {
    /// Probed column 1-norms (length = input dimension).
    pub norms: Option<&'a [f64]>,
    /// White-box network and its training loss.
    pub white_box: Option<(&'a SingleLayerNet, Loss)>,
}

impl<'a> PixelAttackResources<'a> {
    /// Resources with only probed norms (the Case-1 attacker).
    pub fn norms_only(norms: &'a [f64]) -> Self {
        PixelAttackResources {
            norms: Some(norms),
            white_box: None,
        }
    }

    /// Full resources (for running all methods side by side).
    pub fn full(norms: &'a [f64], net: &'a SingleLayerNet, loss: Loss) -> Self {
        PixelAttackResources {
            norms: Some(norms),
            white_box: Some((net, loss)),
        }
    }
}

/// Applies a single-pixel attack to every sample of a batch and returns
/// the perturbed inputs (no clipping, matching the paper).
///
/// `targets` are one-hot ground-truth rows (used only by `WorstCase`).
///
/// # Errors
///
/// * [`AttackError::InvalidParameter`] if `strength` is negative or not
///   finite, or if a required resource is missing / has the wrong length.
/// * Propagates gradient errors for `WorstCase`.
pub fn single_pixel_attack_batch<R: Rng + ?Sized>(
    method: PixelAttackMethod,
    inputs: &Matrix,
    targets: &Matrix,
    resources: PixelAttackResources<'_>,
    strength: f64,
    rng: &mut R,
) -> Result<Matrix> {
    if !(strength.is_finite() && strength >= 0.0) {
        return Err(AttackError::InvalidParameter { name: "strength" });
    }
    let n = inputs.cols();
    let mut adv = inputs.clone();
    match method {
        PixelAttackMethod::RandomPixel => {
            for i in 0..adv.rows() {
                let j = rng.gen_range(0..n);
                let dir = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                adv[(i, j)] += dir * strength;
            }
        }
        PixelAttackMethod::NormPlus
        | PixelAttackMethod::NormMinus
        | PixelAttackMethod::NormRandom => {
            let norms = resources
                .norms
                .ok_or(AttackError::InvalidParameter { name: "norms" })?;
            if norms.len() != n {
                return Err(AttackError::InvalidParameter { name: "norms" });
            }
            let j = vec_ops::argmax(norms);
            for i in 0..adv.rows() {
                let dir = match method {
                    PixelAttackMethod::NormPlus => 1.0,
                    PixelAttackMethod::NormMinus => -1.0,
                    _ => {
                        if rng.gen_bool(0.5) {
                            1.0
                        } else {
                            -1.0
                        }
                    }
                };
                adv[(i, j)] += dir * strength;
            }
        }
        PixelAttackMethod::WorstCase => {
            let (net, loss) = resources
                .white_box
                .ok_or(AttackError::InvalidParameter { name: "white_box" })?;
            let grads = batch_input_gradients(net, inputs, targets, loss)?;
            for i in 0..adv.rows() {
                let g = grads.row(i);
                let abs: Vec<f64> = g.iter().map(|v| v.abs()).collect();
                let j = vec_ops::argmax(&abs);
                adv[(i, j)] += g[j].signum() * strength;
            }
        }
    }
    xbar_obs::count(xbar_obs::names::ATTACK_PIXEL_STEP, adv.rows() as u64);
    Ok(adv)
}

/// Multi-pixel variant of the norm-guided attack: perturbs the pixels with
/// the top `num_pixels` 1-norms, each with an independently guessed ±
/// direction. The paper observes success *decreases* with `num_pixels`
/// because all directions must be guessed right (`(1/2)^N` odds).
///
/// # Errors
///
/// * [`AttackError::InvalidParameter`] for an invalid strength,
///   `num_pixels == 0`, or mismatched `norms`.
pub fn multi_pixel_norm_attack_batch<R: Rng + ?Sized>(
    inputs: &Matrix,
    norms: &[f64],
    num_pixels: usize,
    strength: f64,
    rng: &mut R,
) -> Result<Matrix> {
    if !(strength.is_finite() && strength >= 0.0) {
        return Err(AttackError::InvalidParameter { name: "strength" });
    }
    if num_pixels == 0 {
        return Err(AttackError::InvalidParameter { name: "num_pixels" });
    }
    if norms.len() != inputs.cols() {
        return Err(AttackError::InvalidParameter { name: "norms" });
    }
    let top = vec_ops::top_k_indices(norms, num_pixels);
    let mut adv = inputs.clone();
    for i in 0..adv.rows() {
        for &j in &top {
            let dir = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            adv[(i, j)] += dir * strength;
        }
    }
    xbar_obs::count(
        xbar_obs::names::ATTACK_PIXEL_STEP,
        (adv.rows() * top.len()) as u64,
    );
    Ok(adv)
}

/// White-box multi-pixel bound: top-`num_pixels` most sensitive pixels,
/// each along the loss gradient — the multi-pixel analogue of `Worst`.
///
/// # Errors
///
/// Same validation as [`multi_pixel_norm_attack_batch`], plus gradient
/// errors.
pub fn multi_pixel_worst_attack_batch(
    net: &SingleLayerNet,
    inputs: &Matrix,
    targets: &Matrix,
    loss: Loss,
    num_pixels: usize,
    strength: f64,
) -> Result<Matrix> {
    if !(strength.is_finite() && strength >= 0.0) {
        return Err(AttackError::InvalidParameter { name: "strength" });
    }
    if num_pixels == 0 {
        return Err(AttackError::InvalidParameter { name: "num_pixels" });
    }
    let grads = batch_input_gradients(net, inputs, targets, loss)?;
    let mut adv = inputs.clone();
    for i in 0..adv.rows() {
        let g = grads.row(i).to_vec();
        let abs: Vec<f64> = g.iter().map(|v| v.abs()).collect();
        for &j in &vec_ops::top_k_indices(&abs, num_pixels) {
            adv[(i, j)] += g[j].signum() * strength;
        }
    }
    Ok(adv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xbar_nn::activation::Activation;
    use xbar_nn::train::dataset_loss;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    fn setup() -> (SingleLayerNet, Matrix, Matrix, Vec<f64>) {
        let mut r = rng();
        let net = SingleLayerNet::new_random(8, 3, Activation::Identity, &mut r);
        let inputs = Matrix::random_uniform(10, 8, 0.0, 1.0, &mut r);
        let mut targets = Matrix::zeros(10, 3);
        for i in 0..10 {
            targets[(i, i % 3)] = 1.0;
        }
        let norms = net.weights().col_l1_norms();
        (net, inputs, targets, norms)
    }

    #[test]
    fn every_method_changes_exactly_one_pixel_per_sample() {
        let (net, inputs, targets, norms) = setup();
        let res = PixelAttackResources::full(&norms, &net, Loss::Mse);
        for method in PixelAttackMethod::all() {
            let adv =
                single_pixel_attack_batch(method, &inputs, &targets, res, 0.5, &mut rng()).unwrap();
            for i in 0..inputs.rows() {
                let changed = adv
                    .row(i)
                    .iter()
                    .zip(inputs.row(i))
                    .filter(|(a, u)| (*a - *u).abs() > 1e-12)
                    .count();
                assert_eq!(changed, 1, "{method:?} sample {i}");
                // Magnitude of the change is exactly the strength.
                let max_d: f64 = adv
                    .row(i)
                    .iter()
                    .zip(inputs.row(i))
                    .map(|(a, u)| (a - u).abs())
                    .fold(0.0, f64::max);
                assert!((max_d - 0.5).abs() < 1e-12, "{method:?}");
            }
        }
    }

    #[test]
    fn norm_methods_hit_the_argmax_norm_pixel() {
        let (net, inputs, targets, norms) = setup();
        let j_star = vec_ops::argmax(&norms);
        let res = PixelAttackResources::full(&norms, &net, Loss::Mse);
        for method in [PixelAttackMethod::NormPlus, PixelAttackMethod::NormMinus] {
            let adv =
                single_pixel_attack_batch(method, &inputs, &targets, res, 0.3, &mut rng()).unwrap();
            for i in 0..inputs.rows() {
                let d = adv[(i, j_star)] - inputs[(i, j_star)];
                match method {
                    PixelAttackMethod::NormPlus => assert!((d - 0.3).abs() < 1e-12),
                    PixelAttackMethod::NormMinus => assert!((d + 0.3).abs() < 1e-12),
                    _ => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn worst_case_increases_loss_most() {
        let (net, inputs, targets, norms) = setup();
        let res = PixelAttackResources::full(&norms, &net, Loss::Mse);
        let strength = 1.0;
        let loss_of = |m: &Matrix| dataset_loss(&net, m, &targets, Loss::Mse).unwrap();
        let mut r = rng();
        let worst = single_pixel_attack_batch(
            PixelAttackMethod::WorstCase,
            &inputs,
            &targets,
            res,
            strength,
            &mut r,
        )
        .unwrap();
        let worst_loss = loss_of(&worst);
        // Worst is a per-sample optimum over (pixel, direction) for the
        // linearised loss; it must beat every other strategy here.
        for method in [
            PixelAttackMethod::RandomPixel,
            PixelAttackMethod::NormPlus,
            PixelAttackMethod::NormMinus,
            PixelAttackMethod::NormRandom,
        ] {
            let adv = single_pixel_attack_batch(method, &inputs, &targets, res, strength, &mut r)
                .unwrap();
            assert!(
                worst_loss >= loss_of(&adv) * 0.999,
                "{method:?} beat WorstCase"
            );
        }
    }

    #[test]
    fn missing_resources_rejected() {
        let (_, inputs, targets, norms) = setup();
        let no_res = PixelAttackResources {
            norms: None,
            white_box: None,
        };
        assert!(single_pixel_attack_batch(
            PixelAttackMethod::NormPlus,
            &inputs,
            &targets,
            no_res,
            0.1,
            &mut rng()
        )
        .is_err());
        assert!(single_pixel_attack_batch(
            PixelAttackMethod::WorstCase,
            &inputs,
            &targets,
            no_res,
            0.1,
            &mut rng()
        )
        .is_err());
        // Wrong-length norms.
        let short = &norms[..3];
        assert!(single_pixel_attack_batch(
            PixelAttackMethod::NormPlus,
            &inputs,
            &targets,
            PixelAttackResources::norms_only(short),
            0.1,
            &mut rng()
        )
        .is_err());
    }

    #[test]
    fn strength_validation() {
        let (net, inputs, targets, norms) = setup();
        let res = PixelAttackResources::full(&norms, &net, Loss::Mse);
        assert!(single_pixel_attack_batch(
            PixelAttackMethod::RandomPixel,
            &inputs,
            &targets,
            res,
            -1.0,
            &mut rng()
        )
        .is_err());
        assert!(multi_pixel_norm_attack_batch(&inputs, &norms, 2, f64::NAN, &mut rng()).is_err());
        assert!(multi_pixel_norm_attack_batch(&inputs, &norms, 0, 0.1, &mut rng()).is_err());
    }

    #[test]
    fn multi_pixel_touches_top_k() {
        let (_, inputs, _, norms) = setup();
        let k = 3;
        let adv = multi_pixel_norm_attack_batch(&inputs, &norms, k, 0.2, &mut rng()).unwrap();
        let top = vec_ops::top_k_indices(&norms, k);
        for i in 0..inputs.rows() {
            let changed: Vec<usize> = (0..inputs.cols())
                .filter(|&j| (adv[(i, j)] - inputs[(i, j)]).abs() > 1e-12)
                .collect();
            assert_eq!(changed.len(), k);
            for j in &changed {
                assert!(top.contains(j));
            }
        }
    }

    #[test]
    fn multi_pixel_worst_changes_k_pixels_along_gradient() {
        let (net, inputs, targets, _) = setup();
        let adv =
            multi_pixel_worst_attack_batch(&net, &inputs, &targets, Loss::Mse, 2, 0.4).unwrap();
        let before = dataset_loss(&net, &inputs, &targets, Loss::Mse).unwrap();
        let after = dataset_loss(&net, &adv, &targets, Loss::Mse).unwrap();
        assert!(after > before);
    }

    #[test]
    fn paper_labels() {
        assert_eq!(PixelAttackMethod::RandomPixel.paper_label(), "RP");
        assert_eq!(PixelAttackMethod::NormRandom.paper_label(), "RD");
        assert_eq!(PixelAttackMethod::WorstCase.paper_label(), "Worst");
        assert!(PixelAttackMethod::NormPlus.needs_norms());
        assert!(!PixelAttackMethod::RandomPixel.needs_norms());
        assert!(PixelAttackMethod::WorstCase.needs_white_box());
    }
}
