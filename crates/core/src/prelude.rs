//! Convenience re-exports for the most common attack-pipeline types.
//!
//! ```
//! use xbar_core::prelude::*;
//! use xbar_nn::activation::Activation;
//! use xbar_nn::network::SingleLayerNet;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let net = SingleLayerNet::new_random(4, 2, Activation::Identity, &mut rng);
//! let cfg = OracleConfig::ideal().with_backend(BackendKind::Blocked);
//! let mut oracle = Oracle::new(net, &cfg, 3)?;
//! let records = oracle.query_batch(&[&[1.0, 0.0, 0.0, 0.0], &[0.0, 1.0, 0.0, 0.0]])?;
//! assert_eq!(records.len(), 2);
//! assert!(records[1].observation.power >= 0.0);
//! # Ok::<(), AttackError>(())
//! ```

pub use crate::defense::{DefendedOracle, PowerDefense};
pub use crate::fgsm::{fgsm_batch, fgsm_targeted_batch, pgd_batch, BoxConstraint};
pub use crate::oracle::{Observation, Oracle, OracleConfig, OutputAccess, QueryKey, QueryRecord};
pub use crate::pixel_attack::{single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources};
pub use crate::probe::{probe_column_norms, probe_columns_subset, probe_norms_compressed};
pub use crate::recovery::{
    recover_columns_by_basis_probes, recover_weights_least_squares, recover_weights_ridge,
};
pub use crate::surrogate::{collect_queries, train_surrogate, QueryDataset, SurrogateConfig};
pub use crate::{AttackError, Result};
pub use xbar_crossbar::backend::{
    BackendKind, BackendSpec, BatchConfig, EvalBackend, PreparedEval,
};
