//! Case-1 probing: recovering the weight-column 1-norms from power
//! measurements alone (paper Sec. II-B and III).
//!
//! Setting input `j` to `V_dd` and grounding the rest makes the total
//! current `i_total = V_dd · G_j`, so one query per input line recovers
//! every `G_j` — and with the one-sided mapping, `G_j` is affine in
//! `‖W[:,j]‖₁`. The oracle's calibrated power (see
//! [`crate::oracle::Oracle::query`]) returns the norms directly.
//!
//! The paper also notes the full scan costs `N` queries and that a search
//! over a *smooth* norm landscape (MNIST-like data) can find the largest
//! norm with fewer queries; [`argmax_norm_hill_climb`] implements that
//! strategy for image-shaped inputs.

use crate::oracle::Oracle;
use crate::{AttackError, Result};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use xbar_data::ImageShape;

/// When a cached column-norm estimate must be re-measured on aging
/// hardware.
///
/// Both triggers zero ([`RecalibrationPolicy::never`], the default)
/// means probe once and trust the estimate forever — the paper's
/// steady-state assumption. Otherwise either trigger firing forces a
/// fresh probe:
///
/// * `every_queries > 0`: re-probe once that many oracle queries have
///   been issued since the last probe.
/// * `staleness_threshold > 0`: re-probe once the oracle's effective
///   `drift_time` has advanced by at least that much since the last
///   probe (see [`Oracle::drift_time`]).
///
/// Recalibration probes go through [`probe_column_norms`], so their
/// cost is charged against the session's query budget like any other
/// attacker traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecalibrationPolicy {
    /// Re-probe after this many oracle queries (0 = no query trigger).
    pub every_queries: u64,
    /// Re-probe after `drift_time` advances by this much (0 = no
    /// staleness trigger).
    pub staleness_threshold: f64,
}

impl Default for RecalibrationPolicy {
    fn default() -> Self {
        RecalibrationPolicy::never()
    }
}

impl RecalibrationPolicy {
    /// Probe once, never re-probe.
    pub const fn never() -> Self {
        RecalibrationPolicy {
            every_queries: 0,
            staleness_threshold: 0.0,
        }
    }

    /// Re-probe every `every_queries` oracle queries.
    pub const fn every(every_queries: u64) -> Self {
        RecalibrationPolicy {
            every_queries,
            staleness_threshold: 0.0,
        }
    }

    /// Re-probe when `drift_time` has advanced by `threshold`.
    pub const fn on_staleness(threshold: f64) -> Self {
        RecalibrationPolicy {
            every_queries: 0,
            staleness_threshold: threshold,
        }
    }

    /// Whether this policy never re-probes.
    pub fn is_never(&self) -> bool {
        self.every_queries == 0 && self.staleness_threshold <= 0.0
    }
}

/// A column-norm estimate that re-measures itself under a
/// [`RecalibrationPolicy`] as the oracle's hardware decays.
///
/// The first [`RecalibratingProbe::norms`] call always probes; later
/// calls return the cached estimate until the policy declares it stale,
/// at which point a fresh [`probe_column_norms`] scan runs (charged
/// against the oracle's query budget) and
/// [`xbar_obs::names::PROBE_RECALIBRATION`] is counted.
#[derive(Debug, Clone)]
pub struct RecalibratingProbe {
    policy: RecalibrationPolicy,
    beta: f64,
    repeats: usize,
    norms: Option<Vec<f64>>,
    probed_at_query: u64,
    probed_at_drift: f64,
    recalibrations: u64,
}

impl RecalibratingProbe {
    /// A probe with the given policy; `beta` and `repeats` are passed
    /// through to [`probe_column_norms`].
    pub fn new(policy: RecalibrationPolicy, beta: f64, repeats: usize) -> Self {
        RecalibratingProbe {
            policy,
            beta,
            repeats,
            norms: None,
            probed_at_query: 0,
            probed_at_drift: 0.0,
            recalibrations: 0,
        }
    }

    /// Whether the cached estimate is stale under the policy.
    fn stale(&self, oracle: &Oracle) -> bool {
        if self.norms.is_none() {
            return true;
        }
        if self.policy.every_queries > 0
            && oracle.queries_issued() - self.probed_at_query >= self.policy.every_queries
        {
            return true;
        }
        self.policy.staleness_threshold > 0.0
            && oracle.drift_time() - self.probed_at_drift >= self.policy.staleness_threshold
    }

    /// The current column-norm estimate, re-probing first if the policy
    /// declares the cache stale.
    ///
    /// # Errors
    ///
    /// Propagates [`probe_column_norms`] errors (including query-budget
    /// exhaustion of a recalibration scan; the stale cache is kept in
    /// that case).
    pub fn norms(&mut self, oracle: &mut Oracle) -> Result<&[f64]> {
        if self.stale(oracle) {
            let fresh = probe_column_norms(oracle, self.beta, self.repeats)?;
            if self.norms.is_some() {
                self.recalibrations += 1;
                xbar_obs::count(xbar_obs::names::PROBE_RECALIBRATION, 1);
            }
            self.norms = Some(fresh);
            self.probed_at_query = oracle.queries_issued();
            self.probed_at_drift = oracle.drift_time();
        }
        Ok(self.norms.as_deref().expect("probed above"))
    }

    /// How many times the estimate has been re-measured (the initial
    /// probe is not a recalibration).
    pub fn recalibrations(&self) -> u64 {
        self.recalibrations
    }

    /// The cached estimate, if any — the graceful-degradation fallback
    /// when a recalibration scan no longer fits the query budget.
    pub fn cached(&self) -> Option<&[f64]> {
        self.norms.as_deref()
    }

    /// Drops the cache, forcing the next [`RecalibratingProbe::norms`]
    /// call to probe.
    pub fn invalidate(&mut self) {
        self.norms = None;
    }
}

/// Recovers all column 1-norms with one basis query per input
/// (`N` queries total, times `repeats` for noise averaging).
///
/// `beta` is the probe amplitude (the paper's `β e_j` inputs); the result
/// is normalised back by `beta`. The `N` basis probes of each repeat are
/// issued as one [`Oracle::query_batch`], so the configured backend can
/// amortise the per-query setup across the whole scan.
///
/// # Errors
///
/// * [`AttackError::InvalidParameter`] if `beta == 0`, not finite, or
///   `repeats == 0`.
/// * Propagates query-budget exhaustion.
pub fn probe_column_norms(oracle: &mut Oracle, beta: f64, repeats: usize) -> Result<Vec<f64>> {
    if !(beta.is_finite() && beta != 0.0) {
        return Err(AttackError::InvalidParameter { name: "beta" });
    }
    if repeats == 0 {
        return Err(AttackError::InvalidParameter { name: "repeats" });
    }
    let _span = xbar_obs::span(xbar_obs::names::SPAN_PROBE);
    let n = oracle.num_inputs();
    let probes: Vec<Vec<f64>> = (0..n)
        .map(|j| {
            let mut probe = vec![0.0; n];
            probe[j] = beta;
            probe
        })
        .collect();
    let refs: Vec<&[f64]> = probes.iter().map(Vec::as_slice).collect();
    let mut norms = vec![0.0; n];
    for _ in 0..repeats {
        let records = oracle.query_batch(&refs)?;
        xbar_obs::count(xbar_obs::names::PROBE_MEASUREMENT, n as u64);
        for (norm, rec) in norms.iter_mut().zip(&records) {
            *norm += rec.observation.power;
        }
    }
    for norm in &mut norms {
        *norm /= repeats as f64 * beta;
    }
    Ok(norms)
}

/// Probes only the given input indices (each costing `repeats` queries),
/// returning `(index, estimated norm)` pairs.
///
/// # Errors
///
/// Same conditions as [`probe_column_norms`], plus
/// [`AttackError::InvalidParameter`] for an out-of-range index.
pub fn probe_columns_subset(
    oracle: &mut Oracle,
    indices: &[usize],
    beta: f64,
    repeats: usize,
) -> Result<Vec<(usize, f64)>> {
    if !(beta.is_finite() && beta != 0.0) {
        return Err(AttackError::InvalidParameter { name: "beta" });
    }
    if repeats == 0 {
        return Err(AttackError::InvalidParameter { name: "repeats" });
    }
    let n = oracle.num_inputs();
    let mut probes = Vec::with_capacity(indices.len());
    for &j in indices {
        if j >= n {
            return Err(AttackError::InvalidParameter { name: "indices" });
        }
        let mut probe = vec![0.0; n];
        probe[j] = beta;
        probes.push(probe);
    }
    let refs: Vec<&[f64]> = probes.iter().map(Vec::as_slice).collect();
    let mut sums = vec![0.0; indices.len()];
    for _ in 0..repeats {
        let records = oracle.query_batch(&refs)?;
        xbar_obs::count(xbar_obs::names::PROBE_MEASUREMENT, indices.len() as u64);
        for (sum, rec) in sums.iter_mut().zip(&records) {
            *sum += rec.observation.power;
        }
    }
    Ok(indices
        .iter()
        .zip(&sums)
        .map(|(&j, &sum)| (j, sum / (repeats as f64 * beta)))
        .collect())
}

/// Outcome of a query-limited search for the largest-norm input.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Index of the best input found.
    pub best_index: usize,
    /// Its estimated norm.
    pub best_norm: f64,
    /// Queries spent by the search.
    pub queries_used: usize,
}

/// Query-efficient search for the largest column norm over an image grid:
/// multi-start hill climbing on the pixel lattice (paper Sec. III's
/// "standard optimization techniques or search strategies" remark).
///
/// Works well when the norm landscape is smooth (the MNIST-like case);
/// on rapidly varying landscapes (CIFAR-like) it degrades towards random
/// probing — exactly the failure mode the paper predicts.
///
/// `channel_stride` handles multi-channel images: neighbours move in
/// pixel space, keeping the channel fixed.
///
/// # Errors
///
/// * [`AttackError::InvalidParameter`] for zero starts/budget or a shape
///   that does not match the oracle input dimension.
/// * Propagates probing errors.
pub fn argmax_norm_hill_climb<R: Rng + ?Sized>(
    oracle: &mut Oracle,
    shape: ImageShape,
    num_starts: usize,
    max_queries: usize,
    rng: &mut R,
) -> Result<SearchOutcome> {
    if num_starts == 0 {
        return Err(AttackError::InvalidParameter { name: "num_starts" });
    }
    if max_queries == 0 {
        return Err(AttackError::InvalidParameter {
            name: "max_queries",
        });
    }
    if shape.len() != oracle.num_inputs() {
        return Err(AttackError::InvalidParameter { name: "shape" });
    }
    let start_count = oracle.query_count();
    let mut cache: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
    let mut spent = 0usize;

    let eval = |oracle: &mut Oracle,
                idx: usize,
                spent: &mut usize,
                cache: &mut std::collections::HashMap<usize, f64>|
     -> Result<Option<f64>> {
        if let Some(&v) = cache.get(&idx) {
            return Ok(Some(v));
        }
        if *spent >= max_queries {
            return Ok(None);
        }
        let v = probe_columns_subset(oracle, &[idx], 1.0, 1)?[0].1;
        *spent += 1;
        cache.insert(idx, v);
        Ok(Some(v))
    };

    let mut best_index = 0;
    let mut best_norm = f64::NEG_INFINITY;
    // Deterministic start grid + random extras.
    let mut starts: Vec<(usize, usize)> = Vec::new();
    let grid = (num_starts as f64).sqrt().ceil() as usize;
    for gr in 0..grid {
        for gc in 0..grid {
            if starts.len() < num_starts {
                starts.push((
                    (gr * shape.height) / grid.max(1) + shape.height / (2 * grid.max(1)),
                    (gc * shape.width) / grid.max(1) + shape.width / (2 * grid.max(1)),
                ));
            }
        }
    }
    starts.shuffle(rng);

    'outer: for &(mut r, mut c) in &starts {
        r = r.min(shape.height - 1);
        c = c.min(shape.width - 1);
        let ch = 0;
        let mut here = match eval(oracle, shape.index(r, c, ch), &mut spent, &mut cache)? {
            Some(v) => v,
            None => break 'outer,
        };
        loop {
            if here > best_norm {
                best_norm = here;
                best_index = shape.index(r, c, ch);
            }
            // Examine the 4-neighbourhood; move to the best improving one.
            let mut moved = false;
            let neighbours = [
                (r.wrapping_sub(1), c),
                (r + 1, c),
                (r, c.wrapping_sub(1)),
                (r, c + 1),
            ];
            let mut best_step: Option<(usize, usize, f64)> = None;
            for &(nr, nc) in &neighbours {
                if nr >= shape.height || nc >= shape.width {
                    continue;
                }
                match eval(oracle, shape.index(nr, nc, ch), &mut spent, &mut cache)? {
                    Some(v) => {
                        if v > here && best_step.is_none_or(|(_, _, bv)| v > bv) {
                            best_step = Some((nr, nc, v));
                        }
                    }
                    None => break 'outer,
                }
            }
            if let Some((nr, nc, v)) = best_step {
                r = nr;
                c = nc;
                here = v;
                moved = true;
            }
            if !moved {
                break;
            }
        }
    }

    if best_norm == f64::NEG_INFINITY {
        // Budget too small to evaluate anything: fall back to index 0.
        best_index = 0;
        best_norm = 0.0;
    }
    Ok(SearchOutcome {
        best_index,
        best_norm,
        queries_used: oracle.query_count() - start_count,
    })
}

/// Least-squares norm recovery from *random-input* power queries.
///
/// Each power observation is linear in the unknown norm vector `ν`:
/// `p_b = ⟨u_b, ν⟩` (Eq. 5). `K` random queries therefore give a linear
/// system for `ν`, solvable exactly once `K ≥ N` — and, because natural
/// norm landscapes are compressible, a ridge-regularised solve already
/// identifies the dominant columns with `K < N` queries, undercutting
/// the `N`-query basis scan of [`probe_column_norms`].
///
/// Returns the estimated norm vector. The estimate is unconstrained (it
/// may go slightly negative under heavy regularisation); callers ranking
/// pixels should use it as a score.
///
/// # Errors
///
/// * [`AttackError::InvalidParameter`] for `num_queries == 0` or a
///   negative/non-finite `ridge_lambda`.
/// * Propagates query-budget exhaustion and solver failures.
pub fn probe_norms_compressed<R: Rng + ?Sized>(
    oracle: &mut Oracle,
    num_queries: usize,
    ridge_lambda: f64,
    rng: &mut R,
) -> Result<Vec<f64>> {
    if num_queries == 0 {
        return Err(AttackError::InvalidParameter {
            name: "num_queries",
        });
    }
    if !(ridge_lambda.is_finite() && ridge_lambda >= 0.0) {
        return Err(AttackError::InvalidParameter {
            name: "ridge_lambda",
        });
    }
    let _span = xbar_obs::span(xbar_obs::names::SPAN_PROBE);
    let n = oracle.num_inputs();
    let mut u = xbar_linalg::Matrix::zeros(num_queries, n);
    let mut p = xbar_linalg::Matrix::zeros(num_queries, 1);
    for b in 0..num_queries {
        for v in u.row_mut(b) {
            *v = rng.gen_range(0.0..1.0);
        }
    }
    let refs: Vec<&[f64]> = (0..num_queries).map(|b| u.row(b)).collect();
    let records = oracle.query_batch(&refs)?;
    xbar_obs::count(xbar_obs::names::PROBE_MEASUREMENT, num_queries as u64);
    for (b, rec) in records.iter().enumerate() {
        p[(b, 0)] = rec.observation.power;
    }
    // Centre the design: subtracting the column means concentrates the
    // ridge shrinkage on the informative deviations.
    let nu = xbar_linalg::cholesky::ridge_solve(&u, &p, ridge_lambda)?;
    Ok(nu.col(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{OracleConfig, OutputAccess};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xbar_crossbar::power::PowerModel;
    use xbar_linalg::Matrix;
    use xbar_nn::activation::Activation;
    use xbar_nn::network::SingleLayerNet;

    fn oracle_with_weights(w: Matrix) -> Oracle {
        let net = SingleLayerNet::from_weights(w, Activation::Identity);
        Oracle::new(
            net,
            &OracleConfig::ideal().with_access(OutputAccess::None),
            1,
        )
        .unwrap()
    }

    #[test]
    fn probe_recovers_exact_norms_ideal() {
        let w = Matrix::from_rows(&[&[1.0, -0.5, 0.0], &[0.25, 0.5, -1.0]]);
        let want = w.col_l1_norms();
        let mut o = oracle_with_weights(w);
        let got = probe_column_norms(&mut o, 1.0, 1).unwrap();
        for (g, e) in got.iter().zip(&want) {
            assert!((g - e).abs() < 1e-9);
        }
        assert_eq!(o.query_count(), 3);
    }

    #[test]
    fn probe_is_beta_invariant_for_ideal_crossbar() {
        let w = Matrix::from_rows(&[&[0.7, -0.2]]);
        let mut o = oracle_with_weights(w.clone());
        let a = probe_column_norms(&mut o, 1.0, 1).unwrap();
        let b = probe_column_norms(&mut o, 0.25, 1).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn averaging_suppresses_measurement_noise() {
        let w = Matrix::from_rows(&[&[1.0, -0.5], &[0.5, 0.25]]);
        let want = w.col_l1_norms();
        let net = SingleLayerNet::from_weights(w, Activation::Identity);
        let cfg = OracleConfig::ideal()
            .with_access(OutputAccess::None)
            .with_power(PowerModel::default().with_noise(0.2));
        let run = |seed: u64, repeats: usize| -> f64 {
            let mut o = Oracle::new(net.clone(), &cfg, seed).unwrap();
            let got = probe_column_norms(&mut o, 1.0, repeats).unwrap();
            got.iter()
                .zip(&want)
                .map(|(g, e)| (g - e).abs())
                .fold(0.0, f64::max)
        };
        // Average error over independently seeded trials to avoid
        // flakiness (noise depends only on the oracle seed and the global
        // query index, so trials must vary the seed).
        let err1 = (0..10).map(|t| run(21 + t, 1)).sum::<f64>() / 10.0;
        let err64 = (0..10).map(|t| run(21 + t, 64)).sum::<f64>() / 10.0;
        assert!(
            err64 < err1 / 3.0,
            "64x averaging should cut error ~8x: {err1} -> {err64}"
        );
    }

    #[test]
    fn parameter_validation() {
        let mut o = oracle_with_weights(Matrix::from_rows(&[&[1.0, 0.5]]));
        assert!(probe_column_norms(&mut o, 0.0, 1).is_err());
        assert!(probe_column_norms(&mut o, f64::NAN, 1).is_err());
        assert!(probe_column_norms(&mut o, 1.0, 0).is_err());
        assert!(probe_columns_subset(&mut o, &[5], 1.0, 1).is_err());
    }

    #[test]
    fn subset_probe_costs_only_its_queries() {
        let w = Matrix::from_rows(&[&[1.0, -0.5, 0.25, 0.0]]);
        let mut o = oracle_with_weights(w.clone());
        let got = probe_columns_subset(&mut o, &[2, 0], 1.0, 1).unwrap();
        assert_eq!(o.query_count(), 2);
        assert_eq!(got[0].0, 2);
        assert!((got[0].1 - 0.25).abs() < 1e-9);
        assert!((got[1].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compressed_probe_exact_when_overdetermined() {
        let w = Matrix::random_uniform(4, 12, -1.0, 1.0, &mut ChaCha8Rng::seed_from_u64(1));
        let truth = w.col_l1_norms();
        let mut o = oracle_with_weights(w);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let est = probe_norms_compressed(&mut o, 40, 1e-9, &mut rng).unwrap();
        for (e, t) in est.iter().zip(&truth) {
            assert!((e - t).abs() < 1e-6, "{e} vs {t}");
        }
        assert_eq!(o.query_count(), 40);
    }

    #[test]
    fn compressed_probe_ranks_columns_with_fewer_queries_than_n() {
        // 64 inputs, only 40 queries: ridge recovery should still put the
        // dominant column on top of the ranking.
        let mut w = Matrix::random_uniform(4, 64, -0.1, 0.1, &mut ChaCha8Rng::seed_from_u64(3));
        for i in 0..4 {
            w[(i, 17)] = 1.5; // dominant column
        }
        let mut o = oracle_with_weights(w);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let est = probe_norms_compressed(&mut o, 40, 1e-2, &mut rng).unwrap();
        assert_eq!(xbar_linalg::vec_ops::argmax(&est), 17);
        assert!(o.query_count() < 64);
    }

    #[test]
    fn compressed_probe_validates_parameters() {
        let mut o = oracle_with_weights(Matrix::from_rows(&[&[1.0, 0.5]]));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(probe_norms_compressed(&mut o, 0, 0.1, &mut rng).is_err());
        assert!(probe_norms_compressed(&mut o, 4, -1.0, &mut rng).is_err());
        assert!(probe_norms_compressed(&mut o, 4, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn hill_climb_finds_peak_on_smooth_landscape() {
        // Build a 8x8 weight landscape with a smooth bump at (5, 2).
        let shape = ImageShape::new(8, 8, 1);
        let mut w = Matrix::zeros(1, 64);
        for r in 0..8 {
            for c in 0..8 {
                let d2 = ((r as f64 - 5.0).powi(2) + (c as f64 - 2.0).powi(2)) / 8.0;
                w[(0, shape.index(r, c, 0))] = (-d2).exp();
            }
        }
        let mut o = oracle_with_weights(w);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let out = argmax_norm_hill_climb(&mut o, shape, 4, 64, &mut rng).unwrap();
        assert_eq!(out.best_index, shape.index(5, 2, 0));
        // Must beat a full scan on query count.
        assert!(out.queries_used < 64, "used {} queries", out.queries_used);
    }

    #[test]
    fn hill_climb_respects_budget() {
        let shape = ImageShape::new(6, 6, 1);
        let w = Matrix::random_uniform(1, 36, 0.0, 1.0, &mut ChaCha8Rng::seed_from_u64(9));
        let mut o = oracle_with_weights(w);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let out = argmax_norm_hill_climb(&mut o, shape, 3, 10, &mut rng).unwrap();
        assert!(out.queries_used <= 10);
        assert_eq!(out.queries_used, o.query_count());
    }

    #[test]
    fn recalibration_policy_triggers() {
        assert!(RecalibrationPolicy::never().is_never());
        assert!(RecalibrationPolicy::default().is_never());
        assert!(!RecalibrationPolicy::every(100).is_never());
        assert!(!RecalibrationPolicy::on_staleness(10.0).is_never());
    }

    #[test]
    fn never_policy_probes_once_and_caches() {
        let w = Matrix::from_rows(&[&[1.0, -0.5, 0.25]]);
        let mut o = oracle_with_weights(w);
        let mut probe = RecalibratingProbe::new(RecalibrationPolicy::never(), 1.0, 1);
        let first = probe.norms(&mut o).unwrap().to_vec();
        assert_eq!(o.query_count(), 3);
        // Issue unrelated traffic; the cache must hold.
        o.query(&[0.5, 0.5, 0.5]).unwrap();
        let second = probe.norms(&mut o).unwrap().to_vec();
        assert_eq!(first, second);
        assert_eq!(o.query_count(), 4, "no re-probe happened");
        assert_eq!(probe.recalibrations(), 0);
        assert_eq!(probe.cached(), Some(first.as_slice()));
    }

    #[test]
    fn every_n_policy_reprobes_and_charges_the_budget() {
        let w = Matrix::from_rows(&[&[1.0, -0.5, 0.25]]);
        let mut o = oracle_with_weights(w);
        let mut probe = RecalibratingProbe::new(RecalibrationPolicy::every(4), 1.0, 1);
        probe.norms(&mut o).unwrap();
        assert_eq!(o.query_count(), 3);
        // Fresh: the query counter starts after the probe's own scan.
        probe.norms(&mut o).unwrap();
        assert_eq!(o.query_count(), 3);
        for _ in 0..4 {
            o.query(&[0.1, 0.2, 0.3]).unwrap();
        }
        probe.norms(&mut o).unwrap();
        assert_eq!(o.query_count(), 3 + 4 + 3, "a full re-scan ran");
        assert_eq!(probe.recalibrations(), 1);
    }

    #[test]
    fn staleness_policy_tracks_drift_and_sees_decay() {
        use crate::oracle::DriftSchedule;
        use xbar_crossbar::device::DeviceModel;
        use xbar_faults::{FaultInjection, FaultKey, FaultSpec};
        let w = Matrix::from_rows(&[&[1.0, -0.5, 0.25], &[0.5, 0.75, -0.3]]);
        let net = SingleLayerNet::from_weights(w, Activation::Identity);
        let device = DeviceModel {
            g_min: 0.02,
            g_max: 1.0,
            ..DeviceModel::ideal()
        };
        let cfg = OracleConfig::ideal()
            .with_access(OutputAccess::None)
            .with_device(device)
            .with_faults(FaultInjection::new(
                FaultSpec::none().with_drift(0.1, 0.0, 1.0),
                FaultKey::new(7, 0),
            ))
            .with_drift_schedule(DriftSchedule::every(5, 100.0));
        let mut o = Oracle::new(net, &cfg, 11).unwrap();
        let mut probe = RecalibratingProbe::new(RecalibrationPolicy::on_staleness(50.0), 1.0, 1);
        let fresh = probe.norms(&mut o).unwrap().to_vec();
        // Age the hardware past the threshold.
        for _ in 0..6 {
            o.query(&[0.3, 0.3, 0.3]).unwrap();
        }
        assert!(o.drift_time() > 51.0);
        let recal = probe.norms(&mut o).unwrap().to_vec();
        assert_eq!(probe.recalibrations(), 1);
        // The recalibrated estimate sees the decayed norms.
        assert!(
            recal.iter().sum::<f64>() < fresh.iter().sum::<f64>(),
            "drift must shrink the probed norms: {fresh:?} -> {recal:?}"
        );
    }

    #[test]
    fn hill_climb_validates_parameters() {
        let shape = ImageShape::new(2, 2, 1);
        let mut o = oracle_with_weights(Matrix::from_rows(&[&[1.0, 0.5, 0.2, 0.1]]));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(argmax_norm_hill_climb(&mut o, shape, 0, 10, &mut rng).is_err());
        assert!(argmax_norm_hill_climb(&mut o, shape, 1, 0, &mut rng).is_err());
        let bad_shape = ImageShape::new(3, 3, 1);
        assert!(argmax_norm_hill_climb(&mut o, bad_shape, 1, 10, &mut rng).is_err());
    }
}
