//! Exact weight recovery — the paper's Sec. IV observations about when
//! power information is *useless* because the weights follow directly
//! from input/output pairs:
//!
//! * querying `β e_j` against a linear oracle reveals column `j` of `W`
//!   outright ([`recover_columns_by_basis_probes`]);
//! * with `Q ≥ N` independent queries, `W = (U† Ŷ)ᵀ` by least squares
//!   ([`recover_weights_least_squares`]).
//!
//! For noisy observations the ridge variant trades bias for variance.

use crate::oracle::{Oracle, OutputAccess};
use crate::probe::RecalibrationPolicy;
use crate::{AttackError, Result};
use xbar_linalg::{cholesky, qr, Matrix};

/// Basis-probe weight recovery that re-measures itself under a
/// [`RecalibrationPolicy`] as the hardware decays: the column scan of
/// [`recover_columns_by_basis_probes`] is only as fresh as its last
/// run, so on a drifting oracle callers should route recovery through
/// this helper instead of caching the matrix forever.
///
/// `last`, `last_drift_time`, and `last_queries_issued` describe the
/// previous recovery (pass `None`/`0.0`/`0` for the first call).
/// Returns `Some(fresh matrix)` when the previous recovery is stale
/// under the policy (a re-measurement counts
/// [`xbar_obs::names::PROBE_RECALIBRATION`] and is charged against the
/// oracle's query budget), or `None` when `last` is still fresh.
///
/// # Errors
///
/// Same conditions as [`recover_columns_by_basis_probes`].
pub fn recover_columns_recalibrated(
    oracle: &mut Oracle,
    beta: f64,
    policy: &RecalibrationPolicy,
    last: Option<&Matrix>,
    last_drift_time: f64,
    last_queries_issued: u64,
) -> Result<Option<Matrix>> {
    let stale = match last {
        None => true,
        Some(_) => {
            (policy.every_queries > 0
                && oracle.queries_issued() - last_queries_issued >= policy.every_queries)
                || (policy.staleness_threshold > 0.0
                    && oracle.drift_time() - last_drift_time >= policy.staleness_threshold)
        }
    };
    if !stale {
        return Ok(None);
    }
    let w = recover_columns_by_basis_probes(oracle, beta)?;
    if last.is_some() {
        xbar_obs::count(xbar_obs::names::PROBE_RECALIBRATION, 1);
    }
    Ok(Some(w))
}

/// Recovers the full weight matrix of a *linear* oracle by `N` basis
/// queries `β e_j`: each response is `β · W[:, j]`.
///
/// # Errors
///
/// * [`AttackError::InsufficientAccess`] unless the oracle grants raw
///   output access.
/// * [`AttackError::InvalidParameter`] if `beta` is zero or not finite.
/// * Propagates query errors.
pub fn recover_columns_by_basis_probes(oracle: &mut Oracle, beta: f64) -> Result<Matrix> {
    if oracle.config().access != OutputAccess::Raw {
        return Err(AttackError::InsufficientAccess {
            needed: "raw outputs",
        });
    }
    if !(beta.is_finite() && beta != 0.0) {
        return Err(AttackError::InvalidParameter { name: "beta" });
    }
    let n = oracle.num_inputs();
    let m = oracle.num_outputs();
    let mut w = Matrix::zeros(m, n);
    let mut probe = vec![0.0; n];
    for j in 0..n {
        probe[j] = beta;
        let rec = oracle.query(&probe)?;
        let y = rec.observation.output.expect("raw access checked above");
        for (i, &yi) in y.iter().enumerate() {
            w[(i, j)] = yi / beta;
        }
        probe[j] = 0.0;
    }
    Ok(w)
}

/// Least-squares weight recovery from arbitrary query logs:
/// given inputs `U` (`Q x N`) and outputs `Ŷ` (`Q x M`) of a linear
/// oracle, solves `min ‖U Wᵀ − Ŷ‖_F` and returns `W` (`M x N`).
///
/// Exact when `Q ≥ N` and the queries span the input space — the paper's
/// "power information is useless" regime.
///
/// # Errors
///
/// * [`AttackError::Linalg`] if the system is underdetermined (`Q < N`)
///   or rank deficient.
pub fn recover_weights_least_squares(inputs: &Matrix, outputs: &Matrix) -> Result<Matrix> {
    let wt = qr::lstsq_matrix(inputs, outputs)?;
    Ok(wt.transpose())
}

/// Ridge-regularised recovery for noisy logs or `Q < N`:
/// solves `(UᵀU + λI) Wᵀ = Uᵀ Ŷ`.
///
/// # Errors
///
/// * [`AttackError::InvalidParameter`] for a negative or non-finite λ.
/// * [`AttackError::Linalg`] if the regularised system is still singular
///   (only possible at `λ = 0`).
pub fn recover_weights_ridge(inputs: &Matrix, outputs: &Matrix, lambda: f64) -> Result<Matrix> {
    if !(lambda.is_finite() && lambda >= 0.0) {
        return Err(AttackError::InvalidParameter { name: "lambda" });
    }
    let wt = cholesky::ridge_solve(inputs, outputs, lambda)?;
    Ok(wt.transpose())
}

/// Relative Frobenius error `‖Ŵ − W‖_F / ‖W‖_F` between a recovered and a
/// reference weight matrix.
///
/// # Errors
///
/// Returns [`AttackError::InvalidParameter`] on a shape mismatch or a
/// zero reference.
pub fn relative_error(recovered: &Matrix, reference: &Matrix) -> Result<f64> {
    if recovered.shape() != reference.shape() {
        return Err(AttackError::InvalidParameter { name: "shape" });
    }
    let denom = reference.fro_norm();
    if denom == 0.0 {
        return Err(AttackError::InvalidParameter { name: "reference" });
    }
    Ok((recovered - reference).fro_norm() / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xbar_nn::activation::Activation;
    use xbar_nn::network::SingleLayerNet;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(6)
    }

    fn linear_oracle(w: &Matrix, access: OutputAccess) -> Oracle {
        let net = SingleLayerNet::from_weights(w.clone(), Activation::Identity);
        Oracle::new(net, &OracleConfig::ideal().with_access(access), 23).unwrap()
    }

    #[test]
    fn basis_probes_recover_exactly() {
        let w = Matrix::random_uniform(4, 7, -1.0, 1.0, &mut rng());
        let mut o = linear_oracle(&w, OutputAccess::Raw);
        let rec = recover_columns_by_basis_probes(&mut o, 0.5).unwrap();
        assert!(rec.approx_eq(&w, 1e-9));
        assert_eq!(o.query_count(), 7);
    }

    #[test]
    fn basis_probes_require_raw_access() {
        let w = Matrix::ones(2, 3);
        let mut o = linear_oracle(&w, OutputAccess::LabelOnly);
        assert!(matches!(
            recover_columns_by_basis_probes(&mut o, 1.0),
            Err(AttackError::InsufficientAccess { .. })
        ));
        let mut o = linear_oracle(&w, OutputAccess::Raw);
        assert!(recover_columns_by_basis_probes(&mut o, 0.0).is_err());
    }

    #[test]
    fn least_squares_exact_when_q_at_least_n() {
        let mut r = rng();
        let w = Matrix::random_uniform(3, 8, -1.0, 1.0, &mut r);
        let u = Matrix::random_uniform(20, 8, 0.0, 1.0, &mut r);
        let y = u.matmul(&w.transpose());
        let rec = recover_weights_least_squares(&u, &y).unwrap();
        assert!(relative_error(&rec, &w).unwrap() < 1e-9);
    }

    #[test]
    fn least_squares_fails_when_underdetermined() {
        let mut r = rng();
        let w = Matrix::random_uniform(3, 8, -1.0, 1.0, &mut r);
        let u = Matrix::random_uniform(5, 8, 0.0, 1.0, &mut r); // Q=5 < N=8
        let y = u.matmul(&w.transpose());
        assert!(matches!(
            recover_weights_least_squares(&u, &y),
            Err(AttackError::Linalg(_))
        ));
    }

    #[test]
    fn ridge_recovers_under_noise_better_than_nothing() {
        let mut r = rng();
        let w = Matrix::random_uniform(3, 6, -1.0, 1.0, &mut r);
        let u = Matrix::random_uniform(60, 6, 0.0, 1.0, &mut r);
        let mut y = u.matmul(&w.transpose());
        // Add observation noise.
        let noise = Matrix::random_normal(60, 3, 0.0, 0.05, &mut r);
        y.axpy(1.0, &noise);
        let rec = recover_weights_ridge(&u, &y, 1e-3).unwrap();
        assert!(relative_error(&rec, &w).unwrap() < 0.1);
    }

    #[test]
    fn ridge_handles_q_less_than_n() {
        let mut r = rng();
        let w = Matrix::random_uniform(2, 10, -1.0, 1.0, &mut r);
        let u = Matrix::random_uniform(5, 10, 0.0, 1.0, &mut r);
        let y = u.matmul(&w.transpose());
        // Underdetermined but solvable with regularisation; recovery is
        // not exact, yet the fit on the observed queries must be good.
        let rec = recover_weights_ridge(&u, &y, 1e-6).unwrap();
        let fit = u.matmul(&rec.transpose());
        assert!(fit.approx_eq(&y, 1e-3));
        assert!(recover_weights_ridge(&u, &y, -1.0).is_err());
    }

    #[test]
    fn recalibrated_recovery_reprobes_when_stale() {
        let w = Matrix::random_uniform(3, 4, -1.0, 1.0, &mut rng());
        let mut o = linear_oracle(&w, OutputAccess::Raw);
        let policy = RecalibrationPolicy::every(5);
        // First call always measures.
        let first = recover_columns_recalibrated(&mut o, 1.0, &policy, None, 0.0, 0)
            .unwrap()
            .expect("first recovery measures");
        assert!(first.approx_eq(&w, 1e-9));
        let issued = o.queries_issued();
        // Immediately after: fresh, no re-scan.
        let again =
            recover_columns_recalibrated(&mut o, 1.0, &policy, Some(&first), 0.0, issued).unwrap();
        assert!(again.is_none());
        assert_eq!(o.queries_issued(), issued);
        // Push past the query trigger.
        for _ in 0..5 {
            o.query(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        }
        let fresh =
            recover_columns_recalibrated(&mut o, 1.0, &policy, Some(&first), 0.0, issued).unwrap();
        assert!(fresh.is_some());
    }

    #[test]
    fn recalibrated_recovery_tracks_drifting_hardware() {
        use crate::oracle::DriftSchedule;
        use xbar_faults::{FaultInjection, FaultKey, FaultSpec};

        // A drifting deployment: every 50 queries the drift clock
        // advances by 1.0 and the conductances decay toward g_min.
        let w = Matrix::random_uniform(2, 3, 0.2, 1.0, &mut rng());
        let net = SingleLayerNet::from_weights(w.clone(), Activation::Identity);
        let cfg = OracleConfig::ideal()
            .with_access(OutputAccess::Raw)
            .with_faults(FaultInjection::new(
                FaultSpec::none().with_drift(0.3, 0.0, 1.0),
                FaultKey::new(11, 0),
            ))
            .with_drift_schedule(DriftSchedule::every(50, 1.0));
        let mut o = Oracle::new(net, &cfg, 29).unwrap();
        let policy = RecalibrationPolicy::on_staleness(5.0);

        // First recovery always measures; it sees the t=1.0 hardware.
        let t0 = o.drift_time();
        let first = recover_columns_recalibrated(&mut o, 1.0, &policy, None, t0, 0)
            .unwrap()
            .expect("first recovery measures");
        let issued = o.queries_issued();

        // Fresh: drift has not advanced past the staleness threshold.
        let again =
            recover_columns_recalibrated(&mut o, 1.0, &policy, Some(&first), t0, issued).unwrap();
        assert!(again.is_none(), "estimate is still fresh");

        // Age the deployment well past the threshold.
        let probe = [0.4, 0.7, 0.2];
        for _ in 0..300 {
            o.query(&probe).unwrap();
        }
        assert!(o.drift_time() - t0 >= 5.0);
        let recalibrated =
            recover_columns_recalibrated(&mut o, 1.0, &policy, Some(&first), t0, issued)
                .unwrap()
                .expect("staleness threshold crossed");

        // The hardware decayed between the scans, so the estimates
        // genuinely differ ...
        assert!(relative_error(&recalibrated, &first).unwrap() > 0.01);
        // ... and the recalibrated estimate predicts the *current*
        // oracle better than the stale one. Compare one-query
        // predictions against the live output.
        let observed = o.query(&probe).unwrap().observation.output.unwrap();
        let predict = |est: &Matrix| -> f64 {
            (0..est.rows())
                .map(|i| {
                    let yhat: f64 = est.row(i).iter().zip(&probe).map(|(wij, u)| wij * u).sum();
                    (yhat - observed[i]).abs()
                })
                .sum()
        };
        assert!(
            predict(&recalibrated) < predict(&first),
            "recalibrated estimate must track the decayed hardware: fresh err {} vs stale err {}",
            predict(&recalibrated),
            predict(&first)
        );
    }

    #[test]
    fn never_policy_keeps_stale_estimate_under_drift() {
        use crate::oracle::DriftSchedule;
        use xbar_faults::{FaultInjection, FaultKey, FaultSpec};

        let w = Matrix::random_uniform(2, 3, 0.2, 1.0, &mut rng());
        let net = SingleLayerNet::from_weights(w.clone(), Activation::Identity);
        let cfg = OracleConfig::ideal()
            .with_access(OutputAccess::Raw)
            .with_faults(FaultInjection::new(
                FaultSpec::none().with_drift(0.3, 0.0, 1.0),
                FaultKey::new(11, 0),
            ))
            .with_drift_schedule(DriftSchedule::every(10, 1.0));
        let mut o = Oracle::new(net, &cfg, 31).unwrap();
        let policy = RecalibrationPolicy::never();
        let t0 = o.drift_time();
        let first = recover_columns_recalibrated(&mut o, 1.0, &policy, None, t0, 0)
            .unwrap()
            .expect("first recovery measures");
        let issued = o.queries_issued();
        for _ in 0..100 {
            o.query(&[0.4, 0.7, 0.2]).unwrap();
        }
        // Heavily drifted, but the policy never declares staleness: the
        // caller keeps serving the stale estimate — exactly the failure
        // mode `on_staleness` exists to prevent.
        let again =
            recover_columns_recalibrated(&mut o, 1.0, &policy, Some(&first), t0, issued).unwrap();
        assert!(again.is_none());
    }

    #[test]
    fn relative_error_validation() {
        let a = Matrix::ones(2, 2);
        assert!(relative_error(&a, &Matrix::ones(2, 3)).is_err());
        assert!(relative_error(&a, &Matrix::zeros(2, 2)).is_err());
        assert_eq!(relative_error(&a, &a).unwrap(), 0.0);
    }
}
