//! Plain-text reporting helpers for the experiment harness: aligned
//! tables (the paper's Table I) and ASCII heatmaps (the paper's Fig. 3
//! panels), so every experiment binary can print the same rows/series the
//! paper reports without a plotting stack.

use xbar_data::ImageShape;

/// Renders an aligned text table. The first row of `rows` lines up under
/// `headers`; every cell is padded to its column's widest entry.
///
/// # Panics
///
/// Panics if any row has a different number of cells than `headers`.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            row.len(),
            headers.len(),
            "row {i} has {} cells, expected {}",
            row.len(),
            headers.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Intensity ramp used by [`ascii_heatmap`], darkest to brightest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders per-pixel values of channel `channel` as an ASCII heatmap,
/// normalising min→' ' and max→'@'. This is how the experiment binaries
/// show the paper's Fig. 3 sensitivity and 1-norm maps.
///
/// # Panics
///
/// Panics if `values.len() != shape.len()` or `channel >= shape.channels`.
pub fn ascii_heatmap(values: &[f64], shape: ImageShape, channel: usize) -> String {
    assert_eq!(values.len(), shape.len(), "heatmap: value count mismatch");
    assert!(channel < shape.channels, "heatmap: channel out of range");
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for r in 0..shape.height {
        for c in 0..shape.width {
            let v = values[shape.index(r, c, channel)];
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let range = if hi > lo { hi - lo } else { 1.0 };
    let mut out = String::with_capacity((shape.width + 1) * shape.height);
    for r in 0..shape.height {
        for c in 0..shape.width {
            let v = values[shape.index(r, c, channel)];
            let t = ((v - lo) / range).clamp(0.0, 1.0);
            let idx = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Formats a float for table cells with fixed precision.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats `mean ± std`.
pub fn fmt_pm(mean: f64, std: f64, decimals: usize) -> String {
    format!("{mean:.decimals$} ± {std:.decimals$}")
}

/// Appends a significance asterisk when `p < alpha` (the paper's Fig. 5
/// annotation convention).
pub fn fmt_with_significance(value: f64, p: f64, alpha: f64, decimals: usize) -> String {
    if p < alpha {
        format!("{value:.decimals$}*")
    } else {
        format!("{value:.decimals$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let t = format_table(
            &["Dataset", "Acc"],
            &[
                vec!["digits".into(), "0.90".into()],
                vec!["objects-long-name".into(), "0.36".into()],
            ],
        );
        assert!(t.contains("digits"));
        assert!(t.contains("objects-long-name"));
        // All lines equal width.
        let widths: Vec<usize> = t.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{t}");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn table_validates_row_lengths() {
        let _ = format_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn heatmap_shape_and_extremes() {
        let shape = ImageShape::new(2, 3, 1);
        let vals = vec![0.0, 0.5, 1.0, 1.0, 0.5, 0.0];
        let h = ascii_heatmap(&vals, shape, 0);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 3);
        assert_eq!(lines[0].chars().next().unwrap(), ' ');
        assert_eq!(lines[0].chars().last().unwrap(), '@');
    }

    #[test]
    fn heatmap_constant_input_does_not_divide_by_zero() {
        let shape = ImageShape::new(2, 2, 1);
        let h = ascii_heatmap(&[0.5; 4], shape, 0);
        assert_eq!(h.lines().count(), 2);
    }

    #[test]
    fn heatmap_multichannel_selects_channel() {
        let shape = ImageShape::new(1, 2, 2);
        // channel 0: [0, 1]; channel 1: [1, 0]
        let vals = vec![0.0, 1.0, 1.0, 0.0];
        let h0 = ascii_heatmap(&vals, shape, 0);
        let h1 = ascii_heatmap(&vals, shape, 1);
        assert_eq!(h0.lines().next().unwrap(), " @");
        assert_eq!(h1.lines().next().unwrap(), "@ ");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt(0.12345, 2), "0.12");
        assert_eq!(fmt_pm(0.5, 0.01, 2), "0.50 ± 0.01");
        assert_eq!(fmt_with_significance(0.2, 0.01, 0.05, 2), "0.20*");
        assert_eq!(fmt_with_significance(0.2, 0.2, 0.05, 2), "0.20");
    }
}
