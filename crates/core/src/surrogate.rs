//! Case-2 surrogate training with the combined output+power loss
//! (paper Sec. IV, Eq. 9).
//!
//! The attacker queries the oracle, recording inputs, outputs (raw or
//! label-only) and power, then trains a linear surrogate minimising
//!
//! ```text
//! L = L_out + λ · L_power                     (Eq. 9)
//! L_out   = MSE(Ŵ u, y_oracle)
//! L_power = MSE(Σ_j u_j ‖Ŵ[:,j]‖₁, p_oracle)
//! ```
//!
//! The power term's weight gradient is
//! `∂L_power/∂ŵ_ij = (2/B) Σ_b (p̂_b − p_b) · u_bj · sgn(ŵ_ij)`
//! (subgradient 0 at `ŵ_ij = 0`), which couples the surrogate's weight
//! *magnitudes* to the side channel while `L_out` pins their signs.

use crate::oracle::{Oracle, OutputAccess};
use crate::{AttackError, Result};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use xbar_linalg::Matrix;
use xbar_nn::activation::Activation;
use xbar_nn::loss::Loss;
use xbar_nn::network::SingleLayerNet;
use xbar_nn::train::SgdConfig;

/// The attacker's recorded query log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryDataset {
    /// Query inputs (`Q x N`).
    pub inputs: Matrix,
    /// Regression targets (`Q x M`): raw oracle outputs, or one-hot
    /// labels when only labels were observable.
    pub targets: Matrix,
    /// Calibrated power observations (`Q`, weight units).
    pub powers: Vec<f64>,
}

impl QueryDataset {
    /// Number of recorded queries.
    pub fn len(&self) -> usize {
        self.powers.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.powers.is_empty()
    }

    /// Root-mean-square of the recorded powers, used to normalise the
    /// power-loss term so that λ is comparable across datasets whose raw
    /// power magnitudes differ by orders of magnitude (power in weight
    /// units grows with the input dimension). Returns 1.0 for an empty or
    /// all-zero log.
    pub fn power_rms(&self) -> f64 {
        if self.powers.is_empty() {
            return 1.0;
        }
        let ms = self.powers.iter().map(|p| p * p).sum::<f64>() / self.powers.len() as f64;
        if ms > 0.0 {
            ms.sqrt()
        } else {
            1.0
        }
    }

    /// Mean squared 2-norm of the query inputs, used to scale the
    /// surrogate learning rate (the MSE Hessian's top eigenvalue grows
    /// with `‖u‖²`, so a fixed step diverges on high-dimensional data).
    pub fn mean_squared_input_norm(&self) -> f64 {
        if self.inputs.rows() == 0 {
            return 1.0;
        }
        let ms = self
            .inputs
            .rows_iter()
            .map(|u| u.iter().map(|x| x * x).sum::<f64>())
            .sum::<f64>()
            / self.inputs.rows() as f64;
        ms.max(f64::MIN_POSITIVE)
    }
}

/// Queries the oracle on the given rows of `pool` and assembles the
/// attacker's [`QueryDataset`]. Label-only oracles yield one-hot targets;
/// raw oracles yield the output vectors.
///
/// # Errors
///
/// * [`AttackError::InsufficientAccess`] against an output-less oracle.
/// * Propagates query errors (budget, dimensions).
pub fn collect_queries(
    oracle: &mut Oracle,
    pool: &Matrix,
    indices: &[usize],
) -> Result<QueryDataset> {
    if oracle.config().access == OutputAccess::None {
        return Err(AttackError::InsufficientAccess {
            needed: "network outputs (label or raw)",
        });
    }
    let m = oracle.num_outputs();
    let mut inputs = Matrix::zeros(indices.len(), pool.cols());
    let mut targets = Matrix::zeros(indices.len(), m);
    let mut powers = Vec::with_capacity(indices.len());
    let rows: Vec<&[f64]> = indices.iter().map(|&idx| pool.row(idx)).collect();
    let records = oracle.query_batch(&rows)?;
    for (row, (u, rec)) in rows.iter().zip(&records).enumerate() {
        inputs.row_mut(row).copy_from_slice(u);
        match (&rec.observation.output, rec.observation.label) {
            (Some(y), _) => targets.row_mut(row).copy_from_slice(y),
            (None, Some(l)) => targets[(row, l)] = 1.0,
            (None, None) => unreachable!("access checked above"),
        }
        powers.push(rec.observation.power);
    }
    Ok(QueryDataset {
        inputs,
        targets,
        powers,
    })
}

/// Configuration of the surrogate trainer.
///
/// The learning rate is **dimensionless**: the trainer rescales it by
/// `M / mean‖u‖²` (the inverse of the MSE Hessian's natural scale), so a
/// single default converges on both the 784-dimensional and the
/// 3072-dimensional data without divergence.
///
/// The power loss is computed on **RMS-normalised** powers (see
/// [`QueryDataset::power_rms`]), so the λ range `0..~0.1` is meaningful
/// regardless of the raw power magnitude. (The paper's `0..0.01` range is
/// tied to its unspecified power normalisation; what transfers is the
/// *existence* of a small-λ sweet spot, not the absolute values.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurrogateConfig {
    /// The power-loss weight λ of Eq. 9 (`0.0` disables the side channel).
    pub power_weight: f64,
    /// Scale-invariant power matching (default **true**). The crossbar's
    /// weight→conductance scale `k = (g_max−g_min)/max|W|` depends on the
    /// *secret* weights, so a real attacker observes power only up to an
    /// unknown gain. With this flag the power loss matches RMS-normalised
    /// power *profiles* (`p̂/rms(p̂)` vs `p/rms(p)`), which is both the
    /// realistic threat model and the formulation under which the side
    /// channel helps: absolute matching forces the surrogate to inflate
    /// weight magnitudes along arbitrary sign patterns (junk mass), which
    /// degrades attack transfer. Set to `false` for the absolute
    /// (weight-units) variant used in the ablation studies.
    pub scale_invariant_power: bool,
    /// SGD hyperparameters (`learning_rate` is dimensionless; see above).
    pub sgd: SgdConfig,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            power_weight: 0.0,
            scale_invariant_power: true,
            sgd: SgdConfig {
                learning_rate: 0.05,
                momentum: 0.9,
                weight_decay: 0.0,
                epochs: 60,
                batch_size: 32,
                lr_decay: 1.0,
                shuffle: true,
            },
        }
    }
}

impl SurrogateConfig {
    /// Builder-style setter for λ.
    pub fn with_power_weight(mut self, lambda: f64) -> Self {
        self.power_weight = lambda;
        self
    }
}

/// The surrogate's power prediction per sample:
/// `p̂_b = Σ_j u_bj ‖Ŵ[:,j]‖₁`.
pub fn surrogate_power_estimates(net: &SingleLayerNet, inputs: &Matrix) -> Vec<f64> {
    let norms = net.column_l1_norms();
    inputs
        .rows_iter()
        .map(|u| u.iter().zip(&norms).map(|(&uj, &nj)| uj * nj).sum())
        .collect()
}

/// Breakdown of the combined loss on a query log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CombinedLoss {
    /// The output MSE term.
    pub output: f64,
    /// The power MSE term (unweighted).
    pub power: f64,
    /// `output + λ·power`.
    pub total: f64,
}

/// Evaluates Eq. 9 on a query log.
///
/// # Errors
///
/// Propagates forward-pass dimension errors.
pub fn combined_loss(
    net: &SingleLayerNet,
    queries: &QueryDataset,
    lambda: f64,
) -> Result<CombinedLoss> {
    let outputs = net.forward_batch(&queries.inputs)?;
    let out_loss = Loss::Mse.value(&outputs, &queries.targets);
    let p_hat = surrogate_power_estimates(net, &queries.inputs);
    let b = queries.len().max(1) as f64;
    let power_loss = p_hat
        .iter()
        .zip(&queries.powers)
        .map(|(&a, &b_)| (a - b_) * (a - b_))
        .sum::<f64>()
        / b;
    Ok(CombinedLoss {
        output: out_loss,
        power: power_loss,
        total: out_loss + lambda * power_loss,
    })
}

/// Trains a linear surrogate on a query log with the combined loss.
///
/// The surrogate has the oracle's input/output shape, a linear (identity)
/// head, and no bias — the paper uses only linear surrogates in Sec. IV.
///
/// # Errors
///
/// * [`AttackError::InvalidParameter`] for a negative/non-finite λ or an
///   empty query log.
/// * Propagates SGD hyperparameter validation failures.
pub fn train_surrogate<R: Rng + ?Sized>(
    queries: &QueryDataset,
    cfg: &SurrogateConfig,
    rng: &mut R,
) -> Result<SingleLayerNet> {
    if queries.is_empty() {
        return Err(AttackError::InvalidParameter { name: "queries" });
    }
    if !(cfg.power_weight.is_finite() && cfg.power_weight >= 0.0) {
        return Err(AttackError::InvalidParameter {
            name: "power_weight",
        });
    }
    if cfg.sgd.batch_size == 0 {
        return Err(AttackError::InvalidParameter { name: "batch_size" });
    }
    let (q, n) = queries.inputs.shape();
    let m = queries.targets.cols();
    let mut net = SingleLayerNet::new_random(n, m, Activation::Identity, rng);
    let mut velocity = Matrix::zeros(m, n);
    // Dimensionless learning rate: rescale by the inverse Hessian scale
    // (2/M)·mean‖u‖² so one default works from 6 to 3072 input features.
    let mut lr = cfg.sgd.learning_rate * m as f64 / queries.mean_squared_input_norm();
    // RMS-normalised power targets make λ transferable across datasets.
    let power_scale = queries.power_rms();
    let mut order: Vec<usize> = (0..q).collect();

    for _ in 0..cfg.sgd.epochs {
        if cfg.sgd.shuffle {
            order.shuffle(rng);
        }
        // Surrogate-side power normaliser, refreshed once per epoch: the
        // RMS of the surrogate's own predicted powers over the full query
        // set (stop-gradient) for scale-invariant matching, or the
        // measured RMS for the absolute variant.
        let s_hat = if cfg.power_weight > 0.0 && cfg.scale_invariant_power {
            let all = surrogate_power_estimates(&net, &queries.inputs);
            let ms = all.iter().map(|p| p * p).sum::<f64>() / all.len() as f64;
            if ms > 0.0 {
                ms.sqrt()
            } else {
                power_scale
            }
        } else {
            power_scale
        };
        for chunk in order.chunks(cfg.sgd.batch_size) {
            let x = queries.inputs.select_rows(chunk);
            let t = queries.targets.select_rows(chunk);
            let b = chunk.len() as f64;
            // Output-loss gradient: (1/B) Δᵀ X with Δ = 2(ŷ − y)/M.
            let outputs = net.forward_batch(&x)?;
            let deltas = outputs
                .zip_map(&t, |o, y| 2.0 * (o - y) / m as f64)
                .expect("shapes match");
            let mut grad = deltas.matmul_tn(&x)?;
            grad.scale_inplace(1.0 / b);
            // Power-loss gradient: rank-structured — v_j = (2/B) Σ_b
            // (p̂_b − p_b) u_bj, then grad_ij += λ v_j sgn(ŵ_ij).
            if cfg.power_weight > 0.0 {
                let p_hat = surrogate_power_estimates(&net, &x);
                // Residuals of the normalised powers: p̂/ŝ − p/s.
                let errs: Vec<f64> = chunk
                    .iter()
                    .enumerate()
                    .map(|(row, &orig)| p_hat[row] / s_hat - queries.powers[orig] / power_scale)
                    .collect();
                let mut v = vec![0.0; n];
                for (row, &e) in errs.iter().enumerate() {
                    for (vj, &uj) in v.iter_mut().zip(x.row(row)) {
                        *vj += e * uj;
                    }
                }
                // Chain rule through p̂/ŝ (ŝ held fixed).
                for vj in &mut v {
                    *vj *= 2.0 / (b * s_hat);
                }
                let w = net.weights().clone();
                for i in 0..m {
                    for j in 0..n {
                        // Subgradient: 0 at w = 0 (f64::signum(0.0) is 1).
                        let wij = w[(i, j)];
                        if wij != 0.0 {
                            grad[(i, j)] += cfg.power_weight * v[j] * wij.signum();
                        }
                    }
                }
            }
            if cfg.sgd.weight_decay > 0.0 {
                grad.axpy(cfg.sgd.weight_decay, net.weights());
            }
            velocity.scale_inplace(cfg.sgd.momentum);
            velocity.axpy(-lr, &grad);
            net.weights_mut().axpy(1.0, &velocity);
        }
        lr *= cfg.sgd.lr_decay;
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(2)
    }

    fn linear_oracle(w: Matrix, access: OutputAccess) -> Oracle {
        let net = SingleLayerNet::from_weights(w, Activation::Identity);
        Oracle::new(net, &OracleConfig::ideal().with_access(access), 17).unwrap()
    }

    fn pool(q: usize, n: usize) -> Matrix {
        Matrix::random_uniform(q, n, 0.0, 1.0, &mut ChaCha8Rng::seed_from_u64(33))
    }

    #[test]
    fn collect_queries_raw_targets_are_outputs() {
        let w = Matrix::from_rows(&[&[1.0, -0.5], &[0.25, 0.75]]);
        let mut o = linear_oracle(w.clone(), OutputAccess::Raw);
        let p = pool(5, 2);
        let q = collect_queries(&mut o, &p, &[0, 2, 4]).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.inputs.row(1), p.row(2));
        let want = w.matvec(p.row(2));
        for (a, b) in q.targets.row(1).iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
        // Powers equal the weighted column norms.
        let norms = w.col_l1_norms();
        let want_p: f64 = p.row(2).iter().zip(&norms).map(|(&u, &n)| u * n).sum();
        assert!((q.powers[1] - want_p).abs() < 1e-9);
    }

    #[test]
    fn collect_queries_label_only_targets_are_one_hot() {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut o = linear_oracle(w, OutputAccess::LabelOnly);
        let p = Matrix::from_rows(&[&[0.9, 0.1], &[0.1, 0.9]]);
        let q = collect_queries(&mut o, &p, &[0, 1]).unwrap();
        assert_eq!(q.targets.row(0), &[1.0, 0.0]);
        assert_eq!(q.targets.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn collect_queries_requires_output_access() {
        let w = Matrix::from_rows(&[&[1.0, 0.0]]);
        let mut o = linear_oracle(w, OutputAccess::None);
        let p = pool(3, 2);
        assert!(matches!(
            collect_queries(&mut o, &p, &[0]),
            Err(AttackError::InsufficientAccess { .. })
        ));
    }

    #[test]
    fn surrogate_power_estimates_match_definition() {
        let w = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 0.5]]);
        let net = SingleLayerNet::from_weights(w, Activation::Identity);
        let inputs = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 1.0]]);
        let p = surrogate_power_estimates(&net, &inputs);
        assert!((p[0] - 1.5).abs() < 1e-12); // ‖col0‖₁ = 1.5
        assert!((p[1] - 0.75 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn power_gradient_matches_finite_differences() {
        // Check the analytic subgradient of L_power against finite
        // differences at a point with no zero weights.
        let mut r = rng();
        let w = Matrix::from_rows(&[&[0.4, -0.7, 0.2], &[-0.1, 0.3, 0.9]]);
        let inputs = Matrix::random_uniform(4, 3, 0.1, 1.0, &mut r);
        let powers = vec![0.5, 1.0, 0.2, 0.7];
        let lambda = 1.0;
        let loss_at = |wm: &Matrix| -> f64 {
            let net = SingleLayerNet::from_weights(wm.clone(), Activation::Identity);
            let p_hat = surrogate_power_estimates(&net, &inputs);
            p_hat
                .iter()
                .zip(&powers)
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f64>()
                / 4.0
        };
        // Analytic: v_j = (2/B) Σ_b e_b u_bj; g_ij = v_j sgn(w_ij).
        let net = SingleLayerNet::from_weights(w.clone(), Activation::Identity);
        let p_hat = surrogate_power_estimates(&net, &inputs);
        let mut v = [0.0; 3];
        for b in 0..4 {
            let e = p_hat[b] - powers[b];
            for (vj, &uj) in v.iter_mut().zip(inputs.row(b)) {
                *vj += 2.0 * e * uj / 4.0;
            }
        }
        let h = 1e-6;
        for i in 0..2 {
            for j in 0..3 {
                let analytic = lambda * v[j] * w[(i, j)].signum();
                let mut wp = w.clone();
                wp[(i, j)] += h;
                let mut wm = w.clone();
                wm[(i, j)] -= h;
                let fd = (loss_at(&wp) - loss_at(&wm)) / (2.0 * h);
                assert!(
                    (analytic - fd).abs() < 1e-5,
                    "({i},{j}): analytic {analytic} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn surrogate_learns_linear_oracle_raw() {
        let mut r = rng();
        let w = Matrix::random_uniform(3, 6, -1.0, 1.0, &mut r);
        let mut o = linear_oracle(w.clone(), OutputAccess::Raw);
        let p = pool(200, 6);
        let idx: Vec<usize> = (0..200).collect();
        let q = collect_queries(&mut o, &p, &idx).unwrap();
        let net = train_surrogate(&q, &SurrogateConfig::default(), &mut r).unwrap();
        // With 200 > 6 raw-output queries the surrogate should recover W
        // almost exactly.
        let err = (&net.weights().clone() - &w).fro_norm() / w.fro_norm();
        assert!(err < 0.05, "relative error {err}");
    }

    #[test]
    fn power_loss_decreases_when_lambda_positive() {
        let mut r = rng();
        let w = Matrix::random_uniform(3, 6, -1.0, 1.0, &mut r);
        let mut o = linear_oracle(w, OutputAccess::Raw);
        let p = pool(40, 6);
        let idx: Vec<usize> = (0..40).collect();
        let q = collect_queries(&mut o, &p, &idx).unwrap();
        let cfg0 = SurrogateConfig::default();
        let cfg1 = SurrogateConfig::default().with_power_weight(0.01);
        let mut r0 = ChaCha8Rng::seed_from_u64(5);
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let net0 = train_surrogate(&q, &cfg0, &mut r0).unwrap();
        let net1 = train_surrogate(&q, &cfg1, &mut r1).unwrap();
        let l0 = combined_loss(&net0, &q, 0.0).unwrap();
        let l1 = combined_loss(&net1, &q, 0.0).unwrap();
        assert!(
            l1.power < l0.power,
            "λ>0 should fit power better: {} vs {}",
            l1.power,
            l0.power
        );
    }

    #[test]
    fn combined_loss_composition() {
        let w = Matrix::from_rows(&[&[1.0, 0.0]]);
        let net = SingleLayerNet::from_weights(w, Activation::Identity);
        let q = QueryDataset {
            inputs: Matrix::from_rows(&[&[1.0, 0.0]]),
            targets: Matrix::from_rows(&[&[0.0]]),
            powers: vec![2.0],
        };
        let l = combined_loss(&net, &q, 0.5).unwrap();
        // output: (1-0)²/1 = 1; power: (1-2)² = 1; total = 1 + 0.5.
        assert!((l.output - 1.0).abs() < 1e-12);
        assert!((l.power - 1.0).abs() < 1e-12);
        assert!((l.total - 1.5).abs() < 1e-12);
    }

    #[test]
    fn train_surrogate_validates() {
        let q = QueryDataset {
            inputs: Matrix::zeros(0, 3),
            targets: Matrix::zeros(0, 2),
            powers: vec![],
        };
        assert!(train_surrogate(&q, &SurrogateConfig::default(), &mut rng()).is_err());
        let q2 = QueryDataset {
            inputs: Matrix::ones(1, 3),
            targets: Matrix::ones(1, 2),
            powers: vec![1.0],
        };
        let bad = SurrogateConfig::default().with_power_weight(-1.0);
        assert!(train_surrogate(&q2, &bad, &mut rng()).is_err());
    }
}
