//! Reusable attack-evaluation sweeps — the measurement loops behind the
//! paper's Fig. 4 curves, packaged as a library API so downstream users
//! (and the experiment harness) don't hand-roll them.

use crate::oracle::Oracle;
use crate::pixel_attack::{single_pixel_attack_batch, PixelAttackMethod, PixelAttackResources};
use crate::{AttackError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use xbar_data::Dataset;
use xbar_linalg::Matrix;
use xbar_nn::loss::Loss;
use xbar_nn::network::SingleLayerNet;

/// One attack method's accuracy curve over a strength sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCurve {
    /// The paper-legend label of the method ("RP", "+", "-", "RD",
    /// "Worst").
    pub method: String,
    /// Oracle accuracy at each strength, aligned with the sweep's
    /// `strengths`.
    pub accuracies: Vec<f64>,
    /// Oracle queries the attacker needs to mount this method: the power
    /// probe cost of the column norms for the norm-guided methods, zero
    /// for RP (needs no side channel) and for the white-box Worst bound
    /// (bypasses the query interface entirely).
    pub queries: u64,
}

/// A full Fig. 4-style panel: accuracy-vs-strength curves for a set of
/// single-pixel attack methods against one deployed oracle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrengthSweep {
    /// Clean (unattacked) oracle accuracy.
    pub clean_accuracy: f64,
    /// The attack strengths evaluated.
    pub strengths: Vec<f64>,
    /// One curve per method, in the order requested.
    pub curves: Vec<SweepCurve>,
}

impl StrengthSweep {
    /// The curve for a given method label, if present.
    pub fn curve(&self, label: &str) -> Option<&SweepCurve> {
        self.curves.iter().find(|c| c.method == label)
    }
}

/// How many repetitions a method needs: stochastic methods (RP, RD) are
/// averaged over `stochastic_reps` draws, deterministic ones run once.
pub fn method_reps(method: PixelAttackMethod, stochastic_reps: usize) -> usize {
    if matches!(
        method,
        PixelAttackMethod::RandomPixel | PixelAttackMethod::NormRandom
    ) {
        stochastic_reps
    } else {
        1
    }
}

/// One attack-then-measure step: perturbs `inputs` with `method` at
/// strength `eps` and returns the oracle's accuracy on the adversarial
/// batch. The primitive both [`strength_sweep`] and the campaign runtime
/// ports build their repetition loops from.
///
/// # Errors
///
/// Propagates attack and evaluation errors.
#[allow(clippy::too_many_arguments)]
pub fn attack_and_eval<R: Rng + ?Sized>(
    oracle: &Oracle,
    inputs: &Matrix,
    targets: &Matrix,
    labels: &[usize],
    method: PixelAttackMethod,
    resources: PixelAttackResources<'_>,
    eps: f64,
    rng: &mut R,
) -> Result<f64> {
    let adv = single_pixel_attack_batch(method, inputs, targets, resources, eps, rng)?;
    oracle.eval_accuracy(&adv, labels)
}

/// Mean oracle accuracy of `reps` attacked batches, threading `rng`
/// through the repetitions (so stochastic methods draw fresh pixels each
/// time).
///
/// # Errors
///
/// * [`AttackError::InvalidParameter`] if `reps == 0`.
/// * Propagates attack and evaluation errors.
#[allow(clippy::too_many_arguments)]
pub fn averaged_attack_accuracy<R: Rng + ?Sized>(
    oracle: &Oracle,
    inputs: &Matrix,
    targets: &Matrix,
    labels: &[usize],
    method: PixelAttackMethod,
    resources: PixelAttackResources<'_>,
    eps: f64,
    reps: usize,
    rng: &mut R,
) -> Result<f64> {
    if reps == 0 {
        return Err(AttackError::InvalidParameter { name: "reps" });
    }
    let mut acc = 0.0;
    for _ in 0..reps {
        acc += attack_and_eval(oracle, inputs, targets, labels, method, resources, eps, rng)?;
    }
    Ok(acc / reps as f64)
}

/// Runs a Fig. 4-style sweep: every `method` at every strength, evaluated
/// on the oracle's deployed weights. Stochastic methods (RP, RD) are
/// averaged over `stochastic_reps` draws.
///
/// `norms` are the attacker's probed column norms and `probe_queries` is
/// the number of oracle queries spent obtaining them (attributed to the
/// norm-guided methods' [`SweepCurve::queries`]); `white_box`/`loss`
/// supply the Worst baseline (pass the victim net for the white-box
/// bound).
///
/// # Errors
///
/// * [`AttackError::InvalidParameter`] for an empty strength list or zero
///   `stochastic_reps`.
/// * Propagates attack and evaluation errors.
#[allow(clippy::too_many_arguments)]
pub fn strength_sweep<R: Rng + ?Sized>(
    oracle: &Oracle,
    test: &Dataset,
    methods: &[PixelAttackMethod],
    norms: &[f64],
    probe_queries: u64,
    white_box: &SingleLayerNet,
    loss: Loss,
    strengths: &[f64],
    stochastic_reps: usize,
    rng: &mut R,
) -> Result<StrengthSweep> {
    if strengths.is_empty() {
        return Err(AttackError::InvalidParameter { name: "strengths" });
    }
    if stochastic_reps == 0 {
        return Err(AttackError::InvalidParameter {
            name: "stochastic_reps",
        });
    }
    let clean_accuracy = oracle.eval_accuracy(test.inputs(), test.labels())?;
    let targets = test.one_hot_targets();
    let resources = PixelAttackResources::full(norms, white_box, loss);
    let mut curves = Vec::with_capacity(methods.len());
    for &method in methods {
        let reps = method_reps(method, stochastic_reps);
        let mut accuracies = Vec::with_capacity(strengths.len());
        for &eps in strengths {
            accuracies.push(averaged_attack_accuracy(
                oracle,
                test.inputs(),
                &targets,
                test.labels(),
                method,
                resources,
                eps,
                reps,
                rng,
            )?);
        }
        curves.push(SweepCurve {
            method: method.paper_label().to_string(),
            accuracies,
            queries: if method.needs_norms() {
                probe_queries
            } else {
                0
            },
        });
    }
    Ok(StrengthSweep {
        clean_accuracy,
        strengths: strengths.to_vec(),
        curves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{OracleConfig, OutputAccess};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xbar_data::synth::blobs::BlobsConfig;
    use xbar_nn::activation::Activation;
    use xbar_nn::train::{train, SgdConfig};

    fn setup() -> (Oracle, Dataset, SingleLayerNet, Vec<f64>) {
        let ds = BlobsConfig::new(3, 12).num_samples(240).seed(4).generate();
        let split = ds.split_frac(0.8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = SingleLayerNet::new_random(12, 3, Activation::Identity, &mut rng);
        train(
            &mut net,
            &split.train,
            Loss::Mse,
            &SgdConfig::default(),
            &mut rng,
        )
        .unwrap();
        let norms = net.column_l1_norms();
        let oracle = Oracle::new(
            net.clone(),
            &OracleConfig::ideal().with_access(OutputAccess::None),
            5,
        )
        .unwrap();
        (oracle, split.test, net, norms)
    }

    #[test]
    fn sweep_has_expected_shape_and_monotone_worst() {
        let (oracle, test, net, norms) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let strengths = [0.0, 1.0, 3.0, 6.0];
        let sweep = strength_sweep(
            &oracle,
            &test,
            &PixelAttackMethod::all(),
            &norms,
            12,
            &net,
            Loss::Mse,
            &strengths,
            3,
            &mut rng,
        )
        .unwrap();
        assert_eq!(sweep.curves.len(), 5);
        assert_eq!(sweep.strengths, strengths);
        // Probe cost is attributed to the norm-guided methods only.
        for c in &sweep.curves {
            let expected = if c.method == "RP" || c.method == "Worst" {
                0
            } else {
                12
            };
            assert_eq!(c.queries, expected, "method {}", c.method);
        }
        for c in &sweep.curves {
            assert_eq!(c.accuracies.len(), 4);
            // Strength 0 leaves accuracy at the clean level.
            assert!((c.accuracies[0] - sweep.clean_accuracy).abs() < 1e-9);
        }
        // The white-box curve is (weakly) monotone decreasing.
        let worst = sweep.curve("Worst").unwrap();
        for w in worst.accuracies.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-9,
                "worst curve must not recover: {worst:?}"
            );
        }
        // And it lower-bounds every other method at the top strength.
        let worst_final = *worst.accuracies.last().unwrap();
        for c in &sweep.curves {
            assert!(*c.accuracies.last().unwrap() >= worst_final - 1e-9);
        }
        assert!(sweep.curve("no-such-method").is_none());
    }

    #[test]
    fn sweep_validates_parameters() {
        let (oracle, test, net, norms) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert!(strength_sweep(
            &oracle,
            &test,
            &PixelAttackMethod::all(),
            &norms,
            0,
            &net,
            Loss::Mse,
            &[],
            3,
            &mut rng
        )
        .is_err());
        assert!(strength_sweep(
            &oracle,
            &test,
            &PixelAttackMethod::all(),
            &norms,
            0,
            &net,
            Loss::Mse,
            &[1.0],
            0,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn averaged_accuracy_matches_manual_loop() {
        let (oracle, test, net, norms) = setup();
        let targets = test.one_hot_targets();
        let resources = PixelAttackResources::full(&norms, &net, Loss::Mse);

        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let hoisted = averaged_attack_accuracy(
            &oracle,
            test.inputs(),
            &targets,
            test.labels(),
            PixelAttackMethod::NormRandom,
            resources,
            2.0,
            3,
            &mut rng,
        )
        .unwrap();

        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut acc = 0.0;
        for _ in 0..3 {
            let adv = single_pixel_attack_batch(
                PixelAttackMethod::NormRandom,
                test.inputs(),
                &targets,
                resources,
                2.0,
                &mut rng,
            )
            .unwrap();
            acc += oracle.eval_accuracy(&adv, test.labels()).unwrap();
        }
        assert!((hoisted - acc / 3.0).abs() < 1e-15);

        assert!(averaged_attack_accuracy(
            &oracle,
            test.inputs(),
            &targets,
            test.labels(),
            PixelAttackMethod::NormPlus,
            resources,
            2.0,
            0,
            &mut rng,
        )
        .is_err());
    }

    #[test]
    fn method_reps_distinguishes_stochastic_methods() {
        assert_eq!(method_reps(PixelAttackMethod::RandomPixel, 5), 5);
        assert_eq!(method_reps(PixelAttackMethod::NormRandom, 5), 5);
        assert_eq!(method_reps(PixelAttackMethod::NormPlus, 5), 1);
        assert_eq!(method_reps(PixelAttackMethod::NormMinus, 5), 1);
        assert_eq!(method_reps(PixelAttackMethod::WorstCase, 5), 1);
    }

    #[test]
    fn strength_sweep_json_roundtrip() {
        let sweep = StrengthSweep {
            clean_accuracy: 0.925,
            strengths: vec![0.0, 1.0, 2.5],
            curves: vec![
                SweepCurve {
                    method: "RP".into(),
                    accuracies: vec![0.925, 0.9, 0.85],
                    queries: 0,
                },
                SweepCurve {
                    method: "+".into(),
                    accuracies: vec![0.925, 0.8, 0.6],
                    queries: 144,
                },
            ],
        };
        let json = serde_json::to_string(&sweep).unwrap();
        let back: StrengthSweep = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sweep);
    }
}
