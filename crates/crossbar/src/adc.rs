//! Input DAC and output ADC quantisation.
//!
//! Real crossbar accelerators drive the input lines through
//! digital-to-analogue converters and read the output currents through
//! analogue-to-digital converters; both quantise. These are ablation
//! knobs on top of the paper's ideal analysis.

use crate::{CrossbarError, Result};
use serde::{Deserialize, Serialize};

/// A uniform quantiser over a fixed range with `bits` of resolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    bits: u32,
    lo: f64,
    hi: f64,
}

impl Quantizer {
    /// Creates a quantiser with `bits` resolution over `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] if `bits == 0`,
    /// `bits > 24`, or the range is empty/not finite.
    pub fn new(bits: u32, lo: f64, hi: f64) -> Result<Self> {
        if bits == 0 || bits > 24 {
            return Err(CrossbarError::InvalidConfig { name: "bits" });
        }
        if !(lo.is_finite() && hi.is_finite() && hi > lo) {
            return Err(CrossbarError::InvalidConfig { name: "range" });
        }
        Ok(Quantizer { bits, lo, hi })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of representable levels, `2^bits`.
    pub fn levels(&self) -> u64 {
        1u64 << self.bits
    }

    /// The step between adjacent levels.
    pub fn step(&self) -> f64 {
        (self.hi - self.lo) / (self.levels() - 1) as f64
    }

    /// Quantises one value (saturating at the range ends).
    pub fn quantize(&self, x: f64) -> f64 {
        let clamped = x.clamp(self.lo, self.hi);
        let step = self.step();
        self.lo + ((clamped - self.lo) / step).round() * step
    }

    /// Quantises a slice in place.
    pub fn quantize_slice(&self, xs: &mut [f64]) {
        for x in xs {
            *x = self.quantize(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Quantizer::new(8, 0.0, 1.0).is_ok());
        assert!(Quantizer::new(0, 0.0, 1.0).is_err());
        assert!(Quantizer::new(32, 0.0, 1.0).is_err());
        assert!(Quantizer::new(8, 1.0, 1.0).is_err());
        assert!(Quantizer::new(8, 0.0, f64::NAN).is_err());
    }

    #[test]
    fn one_bit_is_binary() {
        let q = Quantizer::new(1, 0.0, 1.0).unwrap();
        assert_eq!(q.levels(), 2);
        assert_eq!(q.quantize(0.4), 0.0);
        assert_eq!(q.quantize(0.6), 1.0);
    }

    #[test]
    fn quantisation_error_bounded_by_half_step() {
        let q = Quantizer::new(4, 0.0, 1.0).unwrap();
        let half = q.step() / 2.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            assert!((q.quantize(x) - x).abs() <= half + 1e-12);
        }
    }

    #[test]
    fn saturates_out_of_range() {
        let q = Quantizer::new(8, -1.0, 1.0).unwrap();
        assert_eq!(q.quantize(5.0), 1.0);
        assert_eq!(q.quantize(-5.0), -1.0);
    }

    #[test]
    fn endpoints_are_representable() {
        let q = Quantizer::new(3, 0.2, 0.8).unwrap();
        assert_eq!(q.quantize(0.2), 0.2);
        assert_eq!(q.quantize(0.8), 0.8);
    }

    #[test]
    fn slice_quantisation() {
        let q = Quantizer::new(1, 0.0, 1.0).unwrap();
        let mut xs = vec![0.1, 0.9, 0.5001];
        q.quantize_slice(&mut xs);
        assert_eq!(xs, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn high_resolution_is_near_exact() {
        let q = Quantizer::new(16, 0.0, 1.0).unwrap();
        assert!((q.quantize(0.123456) - 0.123456).abs() < 1e-4);
    }
}
