//! The crossbar array: programming, matrix-vector multiplication, and the
//! total-current side channel.

use crate::device::DeviceModel;
use crate::mapping::WeightMapping;
use crate::{CrossbarError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use xbar_linalg::Matrix;

/// Process-wide source of conductance-generation fingerprints. Starts
/// at 1 so generation 0 can never name a live array (a useful sentinel
/// for "never prepared").
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// A fresh, process-unique conductance generation.
fn next_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// An `M x N` NVM crossbar array holding one neural-network layer as
/// differential conductance pairs.
///
/// All currents and conductances are in the paper's normalised units
/// (Eq. 4); [`crate::power::PowerModel`] converts to physical units when
/// reporting.
///
/// # Example
///
/// ```
/// use xbar_crossbar::array::CrossbarArray;
/// use xbar_crossbar::device::DeviceModel;
/// use xbar_linalg::Matrix;
/// use rand::SeedableRng;
///
/// let w = Matrix::from_rows(&[&[1.0, -0.5]]);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let xbar = CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng)?;
/// // Differential output equals W·u for the ideal device.
/// assert!((xbar.mvm(&[0.2, 0.4])[0] - 0.0).abs() < 1e-12);
/// # Ok::<(), xbar_crossbar::CrossbarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarArray {
    g_plus: Matrix,
    g_minus: Matrix,
    mapping: WeightMapping,
    device: DeviceModel,
    /// Conductance-generation fingerprint: process-unique, reassigned
    /// whenever the conductances could have changed (programming,
    /// [`Self::map_conductances`], deserialisation). Cloning keeps the
    /// generation — a clone holds bit-identical conductances, so a
    /// [`crate::backend::PreparedEval`] built from one is valid for the
    /// other. Excluded from equality and serialisation.
    generation: u64,
}

/// Equality compares the physical state (conductances, mapping, device)
/// and ignores the [`CrossbarArray::generation`] fingerprint: two arrays
/// holding the same conductances are the same hardware no matter how
/// they were produced.
impl PartialEq for CrossbarArray {
    fn eq(&self, other: &Self) -> bool {
        self.g_plus == other.g_plus
            && self.g_minus == other.g_minus
            && self.mapping == other.mapping
            && self.device == other.device
    }
}

impl Serialize for CrossbarArray {
    fn serialize(&self) -> serde::Value {
        // Mirrors the derive layout (field order preserved); the
        // generation fingerprint is a process-local cache key and is
        // deliberately not persisted.
        serde::Value::Object(vec![
            (String::from("g_plus"), self.g_plus.serialize()),
            (String::from("g_minus"), self.g_minus.serialize()),
            (String::from("mapping"), self.mapping.serialize()),
            (String::from("device"), self.device.serialize()),
        ])
    }
}

impl Deserialize for CrossbarArray {
    fn deserialize(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let obj = value.as_object().ok_or_else(|| {
            serde::DeError::custom(format!(
                "expected object for struct CrossbarArray, found {}",
                value.type_name()
            ))
        })?;
        Ok(CrossbarArray {
            g_plus: Deserialize::deserialize(serde::__get_field(obj, "g_plus"))
                .map_err(|e| e.in_field("g_plus"))?,
            g_minus: Deserialize::deserialize(serde::__get_field(obj, "g_minus"))
                .map_err(|e| e.in_field("g_minus"))?,
            mapping: Deserialize::deserialize(serde::__get_field(obj, "mapping"))
                .map_err(|e| e.in_field("mapping"))?,
            device: Deserialize::deserialize(serde::__get_field(obj, "device"))
                .map_err(|e| e.in_field("device"))?,
            // A deserialised array is new hardware as far as any live
            // prepared state is concerned.
            generation: next_generation(),
        })
    }
}

impl CrossbarArray {
    /// Programs a weight matrix onto a fresh array under the given device
    /// model. Device non-idealities (quantisation, variation, faults) are
    /// applied per device during programming; read noise is applied per
    /// operation at inference time.
    ///
    /// # Errors
    ///
    /// Propagates mapping and device-validation errors.
    pub fn program<R: Rng + ?Sized>(
        weights: &Matrix,
        device: &DeviceModel,
        rng: &mut R,
    ) -> Result<Self> {
        let mapping = WeightMapping::for_weights(weights, device)?;
        let (target_p, target_m) = mapping.map_matrix(weights);
        let mut g_plus = target_p;
        let mut g_minus = target_m;
        for v in g_plus.as_mut_slice() {
            *v = device.program(*v, rng);
        }
        for v in g_minus.as_mut_slice() {
            *v = device.program(*v, rng);
        }
        Ok(CrossbarArray {
            g_plus,
            g_minus,
            mapping,
            device: *device,
            generation: next_generation(),
        })
    }

    /// Programs a weight matrix whose values are already normalised to
    /// `[-1, 1]`, pinning the mapping scale to the full conductance span
    /// per unit weight. Used by [`crate::tile::TiledCrossbar`] so that all
    /// tiles share one global scale and partial sums compose.
    ///
    /// # Errors
    ///
    /// Propagates device-validation errors; rejects empty matrices.
    pub fn program_with_unit_scale<R: Rng + ?Sized>(
        normalized_weights: &Matrix,
        device: &DeviceModel,
        rng: &mut R,
    ) -> Result<Self> {
        device.validate()?;
        if normalized_weights.is_empty() {
            return Err(CrossbarError::UnmappableWeights {
                reason: "empty weight matrix",
            });
        }
        let mapping = WeightMapping {
            scale: device.g_max - device.g_min,
            g_min: device.g_min,
        };
        let (mut g_plus, mut g_minus) = mapping.map_matrix(normalized_weights);
        for v in g_plus.as_mut_slice() {
            *v = device.program(*v, rng);
        }
        for v in g_minus.as_mut_slice() {
            *v = device.program(*v, rng);
        }
        Ok(CrossbarArray {
            g_plus,
            g_minus,
            mapping,
            device: *device,
            generation: next_generation(),
        })
    }

    /// The array's conductance-generation fingerprint.
    ///
    /// Process-unique and reassigned by every operation that can change
    /// the conductances: programming, [`Self::map_conductances`] (and
    /// therefore fault-plan application, transient perturbation, and
    /// drift-time advance, which are built on it), and deserialisation.
    /// Clones keep their source's generation because they hold
    /// bit-identical conductances. [`crate::backend::PreparedEval`] uses
    /// this as its cache key: a prepared handle whose generation no
    /// longer matches the array is stale and is rejected, never silently
    /// reused.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of output rows `M`.
    pub fn num_outputs(&self) -> usize {
        self.g_plus.rows()
    }

    /// Number of input columns `N`.
    pub fn num_inputs(&self) -> usize {
        self.g_plus.cols()
    }

    /// The weight↔conductance mapping in effect.
    pub fn mapping(&self) -> WeightMapping {
        self.mapping
    }

    /// The device model in effect.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// The programmed `G⁺` matrix.
    pub fn g_plus(&self) -> &Matrix {
        &self.g_plus
    }

    /// The programmed `G⁻` matrix.
    pub fn g_minus(&self) -> &Matrix {
        &self.g_minus
    }

    /// The weights the array actually realises,
    /// `(G⁺ - G⁻) / k` — equal to the programmed weights for ideal
    /// devices, and the as-fabricated weights otherwise.
    pub fn effective_weights(&self) -> Matrix {
        let diff = &self.g_plus - &self.g_minus;
        diff.scaled(1.0 / self.mapping.scale)
    }

    /// Total number of programmable devices, `2·M·N` (the `G⁺` plane
    /// followed by the `G⁻` plane).
    pub fn num_devices(&self) -> usize {
        2 * self.num_outputs() * self.num_inputs()
    }

    /// Returns a copy of the array with every conductance replaced by
    /// `f(device_index, g)`, keeping the mapping and device model.
    ///
    /// Device indices enumerate the `G⁺` plane row-major (`i·N + j`),
    /// then the `G⁻` plane (`M·N + i·N + j`). This is the canonical
    /// device ordering that fault-injection plans key their per-device
    /// draws by, so it must never change.
    pub fn map_conductances<F: FnMut(usize, f64) -> f64>(&self, mut f: F) -> CrossbarArray {
        let mut out = self.clone();
        let offset = self.num_outputs() * self.num_inputs();
        for (idx, g) in out.g_plus.as_mut_slice().iter_mut().enumerate() {
            *g = f(idx, *g);
        }
        for (idx, g) in out.g_minus.as_mut_slice().iter_mut().enumerate() {
            *g = f(offset + idx, *g);
        }
        // Even an identity map yields a fresh generation: the fingerprint
        // tracks *possible* change, and a false invalidation only costs
        // one re-prepare while a false hit would silently reuse stale
        // weights.
        out.generation = next_generation();
        out
    }

    /// Noiseless differential MVM in weight units: `i = W_eff · v`
    /// (Eq. 3-4 with the normalisation folded in).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.num_inputs()`; use [`Self::checked_mvm`]
    /// for a fallible variant.
    pub fn mvm(&self, v: &[f64]) -> Vec<f64> {
        self.checked_mvm(v).expect("mvm: input length mismatch")
    }

    /// Fallible noiseless differential MVM.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InputLenMismatch`] on a length mismatch.
    pub fn checked_mvm(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.num_inputs() {
            return Err(CrossbarError::InputLenMismatch {
                expected: self.num_inputs(),
                got: v.len(),
            });
        }
        xbar_obs::count(xbar_obs::names::XBAR_ANALOG_MVM, 1);
        Ok(self.effective_weights().matvec(v))
    }

    /// Differential MVM with per-read device noise applied to every
    /// conductance (one fresh noise draw per device per call).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InputLenMismatch`] on a length mismatch.
    #[allow(clippy::needless_range_loop)]
    pub fn noisy_mvm<R: Rng + ?Sized>(&self, v: &[f64], rng: &mut R) -> Result<Vec<f64>> {
        if v.len() != self.num_inputs() {
            return Err(CrossbarError::InputLenMismatch {
                expected: self.num_inputs(),
                got: v.len(),
            });
        }
        if self.device.read_sigma == 0.0 {
            return self.checked_mvm(v);
        }
        xbar_obs::count(xbar_obs::names::XBAR_ANALOG_MVM, 1);
        let (m, n) = (self.num_outputs(), self.num_inputs());
        let mut out = vec![0.0; m];
        for i in 0..m {
            let mut acc = 0.0;
            for j in 0..n {
                let gp = self.device.read(self.g_plus[(i, j)], rng);
                let gm = self.device.read(self.g_minus[(i, j)], rng);
                acc += (gp - gm) * v[j];
            }
            out[i] = acc / self.mapping.scale;
        }
        Ok(out)
    }

    /// Differential MVM under IR drop (finite wire resistance): returns
    /// `(output currents in weight units, total supply current in
    /// conductance·voltage units)`. With `cfg.r_wire = 0` this equals
    /// ([`Self::mvm`], [`Self::total_current`]) exactly.
    ///
    /// # Errors
    ///
    /// Propagates solver and input-length errors.
    pub fn ir_drop_mvm(
        &self,
        v: &[f64],
        cfg: &crate::irdrop::IrDropConfig,
    ) -> Result<(Vec<f64>, f64)> {
        xbar_obs::count(xbar_obs::names::XBAR_IR_DROP_SOLVE, 1);
        let (mut out, total) =
            crate::irdrop::solve_differential(&self.g_plus, &self.g_minus, v, cfg)?;
        for o in &mut out {
            *o /= self.mapping.scale;
        }
        Ok((out, total))
    }

    /// Per-input-line total conductance `G_j = Σ_i (G⁺_ij + G⁻_ij)` —
    /// the paper's Eq. 5 coefficients.
    pub fn input_line_conductances(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.num_inputs()];
        for i in 0..self.num_outputs() {
            for (j, o) in out.iter_mut().enumerate() {
                *o += self.g_plus[(i, j)] + self.g_minus[(i, j)];
            }
        }
        out
    }

    /// Total steady-state current for an input (Eq. 5):
    /// `i_total = Σ_j v_j G_j`, in normalised conductance·voltage units.
    ///
    /// This is the raw side-channel quantity; measurement noise lives in
    /// [`crate::power::PowerModel`].
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InputLenMismatch`] on a length mismatch.
    pub fn total_current(&self, v: &[f64]) -> Result<f64> {
        if v.len() != self.num_inputs() {
            return Err(CrossbarError::InputLenMismatch {
                expected: self.num_inputs(),
                got: v.len(),
            });
        }
        Ok(self
            .input_line_conductances()
            .iter()
            .zip(v)
            .map(|(&g, &vj)| g * vj)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(3)
    }

    fn ideal_array(w: &Matrix) -> CrossbarArray {
        CrossbarArray::program(w, &DeviceModel::ideal(), &mut rng()).unwrap()
    }

    #[test]
    fn ideal_mvm_equals_exact_matvec() {
        let w = Matrix::from_rows(&[&[0.5, -1.0, 0.25], &[0.0, 0.75, -0.5]]);
        let xbar = ideal_array(&w);
        let v = [0.3, 0.9, 0.1];
        let got = xbar.mvm(&v);
        let want = w.matvec(&v);
        for (g, e) in got.iter().zip(&want) {
            assert!((g - e).abs() < 1e-12);
        }
    }

    #[test]
    fn effective_weights_match_programmed_for_ideal() {
        let w = Matrix::from_rows(&[&[1.0, -0.5], &[0.3, 0.0]]);
        let xbar = ideal_array(&w);
        assert!(xbar.effective_weights().approx_eq(&w, 1e-12));
    }

    #[test]
    fn total_current_is_affine_in_column_norms() {
        // i_total(e_j · Vdd=1) = 2 M g_min + k ‖W[:,j]‖₁, exactly Eq. 5.
        let device = DeviceModel {
            g_min: 0.03,
            g_max: 1.0,
            ..DeviceModel::ideal()
        };
        let w = Matrix::from_rows(&[&[0.6, -0.9], &[-0.2, 0.4]]);
        let xbar = CrossbarArray::program(&w, &device, &mut rng()).unwrap();
        let norms = w.col_l1_norms();
        let k = xbar.mapping().scale;
        for j in 0..2 {
            let mut e = vec![0.0; 2];
            e[j] = 1.0;
            let i_total = xbar.total_current(&e).unwrap();
            let want = 2.0 * 2.0 * device.g_min + k * norms[j];
            assert!((i_total - want).abs() < 1e-12, "column {j}");
        }
    }

    #[test]
    fn total_current_is_linear_in_input() {
        let w = Matrix::from_rows(&[&[0.6, -0.9], &[-0.2, 0.4]]);
        let xbar = ideal_array(&w);
        let a = xbar.total_current(&[1.0, 0.0]).unwrap();
        let b = xbar.total_current(&[0.0, 1.0]).unwrap();
        let ab = xbar.total_current(&[1.0, 1.0]).unwrap();
        assert!((ab - (a + b)).abs() < 1e-12);
        let half = xbar.total_current(&[0.5, 0.0]).unwrap();
        assert!((half - 0.5 * a).abs() < 1e-12);
    }

    #[test]
    fn total_current_nonnegative_for_nonnegative_inputs() {
        let w = Matrix::from_rows(&[&[0.6, -0.9], &[-0.2, 0.4]]);
        let xbar = ideal_array(&w);
        let mut r = rng();
        for _ in 0..20 {
            let v = [r.gen_range(0.0..1.0), r.gen_range(0.0..1.0)];
            assert!(xbar.total_current(&v).unwrap() >= 0.0);
        }
    }

    #[test]
    fn quantised_devices_distort_weights() {
        let device = DeviceModel::ideal().with_levels(4);
        let w = Matrix::from_rows(&[&[0.1, 0.21, -0.37, 0.93]]);
        let xbar = CrossbarArray::program(&w, &device, &mut rng()).unwrap();
        let eff = xbar.effective_weights();
        // Distorted but within one quantisation step (scale⁻¹·span/(L-1)).
        let step = (1.0 / xbar.mapping().scale) / 3.0;
        for j in 0..4 {
            let d = (eff[(0, j)] - w[(0, j)]).abs();
            assert!(d <= step / 2.0 + 1e-12, "weight {j} off by {d}");
        }
        // At least one weight actually moved.
        assert!(!eff.approx_eq(&w, 1e-9));
    }

    #[test]
    fn stuck_faults_change_weights() {
        let device = DeviceModel::ideal().with_stuck_rate(0.5);
        let w = Matrix::from_rows(&[&[0.5; 8]]);
        let xbar = CrossbarArray::program(&w, &device, &mut rng()).unwrap();
        assert!(!xbar.effective_weights().approx_eq(&w, 1e-6));
    }

    #[test]
    fn noisy_mvm_centres_on_ideal() {
        let device = DeviceModel::ideal().with_read_sigma(0.01);
        let w = Matrix::from_rows(&[&[0.5, -0.25], &[0.75, 0.1]]);
        let xbar = CrossbarArray::program(&w, &device, &mut rng()).unwrap();
        let v = [0.8, 0.4];
        let exact = w.matvec(&v);
        let mut r = rng();
        let mut mean = [0.0; 2];
        let reps = 500;
        for _ in 0..reps {
            let out = xbar.noisy_mvm(&v, &mut r).unwrap();
            for (m, o) in mean.iter_mut().zip(&out) {
                *m += o / reps as f64;
            }
        }
        for (m, e) in mean.iter().zip(&exact) {
            assert!((m - e).abs() < 0.02, "noisy mean {m} vs exact {e}");
        }
        // Individual reads differ from the exact value.
        let one = xbar.noisy_mvm(&v, &mut r).unwrap();
        assert!(one.iter().zip(&exact).any(|(a, b)| (a - b).abs() > 1e-9));
    }

    #[test]
    fn dimension_errors() {
        let xbar = ideal_array(&Matrix::from_rows(&[&[1.0, 2.0]]));
        assert!(matches!(
            xbar.checked_mvm(&[1.0]),
            Err(CrossbarError::InputLenMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(xbar.total_current(&[1.0, 2.0, 3.0]).is_err());
        assert!(xbar.noisy_mvm(&[1.0], &mut rng()).is_err());
    }

    #[test]
    fn ir_drop_mvm_matches_ideal_at_zero_resistance() {
        let w = Matrix::from_rows(&[&[0.5, -1.0, 0.25], &[0.0, 0.75, -0.5]]);
        let xbar = ideal_array(&w);
        let v = [0.3, 0.9, 0.1];
        let cfg = crate::irdrop::IrDropConfig {
            r_wire: 0.0,
            ..crate::irdrop::IrDropConfig::default()
        };
        let (out, total) = xbar.ir_drop_mvm(&v, &cfg).unwrap();
        let ideal = xbar.mvm(&v);
        for (a, b) in out.iter().zip(&ideal) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((total - xbar.total_current(&v).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn ir_drop_mvm_attenuates_with_resistance() {
        let w = Matrix::from_rows(&[&[1.0, 0.8, 0.6], &[0.7, 0.9, 0.5]]);
        let xbar = ideal_array(&w);
        let v = [1.0, 1.0, 1.0];
        let cfg = crate::irdrop::IrDropConfig {
            r_wire: 0.1,
            ..crate::irdrop::IrDropConfig::default()
        };
        let (_, total) = xbar.ir_drop_mvm(&v, &cfg).unwrap();
        assert!(total < xbar.total_current(&v).unwrap());
        assert!(total > 0.0);
    }

    #[test]
    fn map_conductances_visits_devices_in_canonical_order() {
        let w = Matrix::from_rows(&[&[0.5, -1.0, 0.25], &[0.0, 0.75, -0.5]]);
        let xbar = ideal_array(&w);
        let mut seen = Vec::new();
        let identity = xbar.map_conductances(|idx, g| {
            seen.push(idx);
            g
        });
        // Identity map is bit-identical and visits 0..num_devices once,
        // G⁺ row-major then G⁻ row-major.
        assert_eq!(identity, xbar);
        assert_eq!(seen, (0..xbar.num_devices()).collect::<Vec<_>>());
        assert_eq!(xbar.num_devices(), 12);
        // A real transform lands in the right plane: zeroing device 0
        // touches G⁺[0,0] only.
        let zeroed = xbar.map_conductances(|idx, g| if idx == 0 { 0.0 } else { g });
        assert_eq!(zeroed.g_plus()[(0, 0)], 0.0);
        assert_eq!(zeroed.g_minus()[(0, 0)], xbar.g_minus()[(0, 0)]);
    }

    #[test]
    fn generation_fingerprints_conductance_change() {
        let w = Matrix::from_rows(&[&[0.5, -1.0], &[0.25, 0.75]]);
        let a = ideal_array(&w);
        let b = ideal_array(&w);
        // Every programming produces distinct hardware.
        assert_ne!(a.generation(), b.generation());
        // Clones hold bit-identical conductances and keep the
        // fingerprint; equality ignores it entirely.
        assert_eq!(a.clone().generation(), a.generation());
        assert_eq!(a, b);
        // Any conductance map — even the identity — is a new generation.
        let mapped = a.map_conductances(|_, g| g);
        assert_ne!(mapped.generation(), a.generation());
        assert_eq!(mapped, a);
        // A serialisation round trip is new hardware to live prepared
        // state, and the persisted form carries no generation field.
        let value = serde::Serialize::serialize(&a);
        let obj = value.as_object().unwrap();
        assert!(obj.iter().all(|(k, _)| k != "generation"));
        let back: CrossbarArray = serde::Deserialize::deserialize(&value).unwrap();
        assert_eq!(back, a);
        assert_ne!(back.generation(), a.generation());
    }

    #[test]
    fn shapes() {
        let xbar = ideal_array(&Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]]));
        assert_eq!(xbar.num_outputs(), 2);
        assert_eq!(xbar.num_inputs(), 3);
        assert_eq!(xbar.input_line_conductances().len(), 3);
    }
}
