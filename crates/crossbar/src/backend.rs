//! Batch-first evaluation backends for the crossbar hot path.
//!
//! Every attack stage is dominated by long runs of matrix-vector
//! products and power readouts against one programmed array. The
//! per-vector entry points ([`CrossbarArray::checked_mvm`],
//! [`PowerModel::exact`]) re-materialise the effective weight matrix and
//! the per-line conductance totals on every call; a batch of `B` inputs
//! pays that `O(M·N)` setup `B` times. The evaluation API is organised
//! around a *prepared handle* that pays the setup once:
//!
//! * [`EvalBackend::prepare`] materialises a [`PreparedEval`] — the
//!   effective weights, the per-line conductance totals, and a snapshot
//!   of the array — fingerprinted by the array's conductance
//!   [`CrossbarArray::generation`].
//! * The `*_prepared` methods evaluate batches against that handle. A
//!   handle whose generation no longer matches the driving array (the
//!   array was re-programmed, fault-applied, or drifted since) is
//!   rejected with [`CrossbarError::StalePrepared`] — never silently
//!   reused.
//!
//! Three backends implement the trait:
//!
//! * [`NaiveBackend`] — the reference implementation: a straight loop
//!   over the existing per-vector calls against the prepared snapshot.
//! * [`BlockedBackend`] — evaluates from the prepared weights (or line
//!   conductances) with a cache-blocked kernel over `outputs x batch`
//!   tiles. Every output cell is still one full-length ascending-index
//!   [`xbar_linalg::vec_ops::dot`] — the identical floating-point
//!   reduction the per-vector path performs — so outputs are
//!   **bit-identical** to [`NaiveBackend`], not merely close.
//! * [`ParallelBackend`] — the blocked kernel tiled over batch chunks
//!   (or output-row blocks for small batches) across a scoped thread
//!   pool. Threads only change *which* worker computes a cell, never
//!   the reduction inside it, so outputs stay bit-identical to
//!   [`NaiveBackend`] at any thread count.
//!
//! Noisy variants take a per-sample RNG-stream factory (sample index →
//! fresh [`ChaCha8Rng`]), so per-device noise draws depend only on the
//! sample's own stream. Results are therefore bit-identical to the
//! sequential path at any thread count and any batch partitioning.
//!
//! All backends emit the same observability events — one
//! [`xbar_obs::names::XBAR_MVM_BATCH`] count and one
//! [`xbar_obs::names::XBAR_BATCH_OCCUPANCY`] observation per batch, plus
//! the per-sample analog-MVM / power-read counts the per-vector path
//! already emits, always on the calling thread — so campaign traces do
//! not depend on the backend choice or thread count.
//! [`EvalBackend::prepare`] emits no events: preparation is a caching
//! detail, not a hardware operation.

use crate::array::CrossbarArray;
use crate::power::PowerModel;
use crate::{CrossbarError, Result};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use xbar_linalg::vec_ops::dot;
use xbar_linalg::Matrix;

/// A per-sample RNG-stream factory: maps the index of a sample within
/// the batch to the RNG that sample's noise draws must come from.
///
/// Callers that need globally stable noise (e.g. an oracle numbering its
/// queries) close over their own offset and derive the stream from the
/// global index.
pub type RngStreams<'a> = &'a mut dyn FnMut(usize) -> ChaCha8Rng;

/// Which [`EvalBackend`] implementation to use — the value carried by
/// configs and CLI flags (usually inside a [`BackendSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BackendKind {
    /// Per-vector loop over the existing sequential calls.
    #[default]
    Naive,
    /// Cache-blocked batch kernel (bit-identical outputs).
    Blocked,
    /// The blocked kernel fanned out across a scoped thread pool
    /// (bit-identical outputs at any thread count).
    Parallel,
}

impl BackendKind {
    /// Constructs the backend this kind names, with default
    /// [`BatchConfig`] (and, for [`BackendKind::Parallel`], auto thread
    /// count). Use [`BackendSpec::build`] to carry explicit tile sizes
    /// or a thread count.
    pub fn build(self) -> Box<dyn EvalBackend> {
        match self {
            BackendKind::Naive => Box::new(NaiveBackend),
            BackendKind::Blocked => Box::new(BlockedBackend::default()),
            BackendKind::Parallel => Box::new(ParallelBackend::default()),
        }
    }

    /// The CLI spelling of this kind.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Naive => "naive",
            BackendKind::Blocked => "blocked",
            BackendKind::Parallel => "parallel",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "naive" => Ok(BackendKind::Naive),
            "blocked" => Ok(BackendKind::Blocked),
            "parallel" => Ok(BackendKind::Parallel),
            other => Err(format!(
                "unknown backend {other:?} (expected naive, blocked, or parallel)"
            )),
        }
    }
}

/// Tile sizes for the blocked kernel ([`BlockedBackend`] and
/// [`ParallelBackend`] workers).
///
/// The defaults keep one tile of effective weights plus the tile's
/// input/output slices within a typical L1/L2 working set. Tiling never
/// changes results — each output cell is one full-length reduction — so
/// these are pure performance knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Output rows per tile.
    pub block_outputs: usize,
    /// Batch samples per tile.
    pub block_samples: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            block_outputs: 64,
            block_samples: 16,
        }
    }
}

impl BatchConfig {
    /// Builder-style setter for the output-row tile size.
    #[must_use]
    pub fn with_block_outputs(mut self, rows: usize) -> Self {
        self.block_outputs = rows;
        self
    }

    /// Builder-style setter for the batch-sample tile size.
    #[must_use]
    pub fn with_block_samples(mut self, samples: usize) -> Self {
        self.block_samples = samples;
        self
    }

    /// Validates the tile sizes.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] if either tile dimension
    /// is zero.
    pub fn validate(&self) -> Result<()> {
        if self.block_outputs == 0 {
            return Err(CrossbarError::InvalidConfig {
                name: "block_outputs",
            });
        }
        if self.block_samples == 0 {
            return Err(CrossbarError::InvalidConfig {
                name: "block_samples",
            });
        }
        Ok(())
    }
}

/// A complete, serializable backend selection: which kernel, its tile
/// sizes, and (for [`BackendKind::Parallel`]) the worker thread count.
///
/// This is the one value configs and CLI flags carry; `--backend` flags
/// parse it via [`std::str::FromStr`] with the grammar
/// `naive | blocked | parallel[:THREADS]` (`parallel` alone, or
/// `THREADS == 0`, auto-sizes to the host's available parallelism).
///
/// ```
/// use xbar_crossbar::backend::{BackendKind, BackendSpec};
///
/// let spec: BackendSpec = "parallel:4".parse()?;
/// assert_eq!(spec.kind, BackendKind::Parallel);
/// assert_eq!(spec.threads, 4);
/// assert!("blocked:4".parse::<BackendSpec>().is_err());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BackendSpec {
    /// Which kernel to run.
    pub kind: BackendKind,
    /// Tile sizes for the blocked/parallel kernels (ignored by
    /// [`BackendKind::Naive`]).
    pub batch: BatchConfig,
    /// Worker threads for [`BackendKind::Parallel`]; `0` auto-sizes to
    /// the host's available parallelism. Ignored by the other kinds.
    pub threads: usize,
}

impl BackendSpec {
    /// A spec for `kind` with default tile sizes and auto threads.
    pub fn new(kind: BackendKind) -> Self {
        BackendSpec {
            kind,
            batch: BatchConfig::default(),
            threads: 0,
        }
    }

    /// Builder-style setter for the tile sizes.
    #[must_use]
    pub fn with_batch(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Builder-style setter for the parallel worker count (`0` = auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Validates the spec without building it.
    ///
    /// # Errors
    ///
    /// Propagates [`BatchConfig::validate`].
    pub fn validate(&self) -> Result<()> {
        self.batch.validate()
    }

    /// Constructs the backend this spec describes.
    ///
    /// # Errors
    ///
    /// Propagates [`BatchConfig::validate`].
    pub fn build(&self) -> Result<Box<dyn EvalBackend>> {
        Ok(match self.kind {
            BackendKind::Naive => Box::new(NaiveBackend),
            BackendKind::Blocked => Box::new(BlockedBackend::new(self.batch)?),
            BackendKind::Parallel => Box::new(ParallelBackend::new(self.batch, self.threads)?),
        })
    }
}

impl From<BackendKind> for BackendSpec {
    fn from(kind: BackendKind) -> Self {
        BackendSpec::new(kind)
    }
}

impl std::fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.kind == BackendKind::Parallel && self.threads > 0 {
            write!(f, "parallel:{}", self.threads)
        } else {
            f.write_str(self.kind.label())
        }
    }
}

impl std::str::FromStr for BackendSpec {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        let (kind_str, threads) = match s.split_once(':') {
            None => (s, None),
            Some((kind, threads)) => (kind, Some(threads)),
        };
        let kind: BackendKind = kind_str.parse()?;
        match threads {
            None => Ok(BackendSpec::new(kind)),
            Some(t) => {
                if kind != BackendKind::Parallel {
                    return Err(format!(
                        "backend {kind_str:?} does not take a thread count \
                         (the :N suffix applies to parallel only)"
                    ));
                }
                let threads: usize = t.parse().map_err(|_| {
                    format!(
                        "invalid thread count {t:?} in backend spec \
                         (expected parallel:N with N a non-negative integer)"
                    )
                })?;
                Ok(BackendSpec::new(kind).with_threads(threads))
            }
        }
    }
}

/// A materialised evaluation handle for one conductance generation of
/// one array: the effective weight matrix, the per-line conductance
/// totals, and a snapshot of the array itself (so noisy per-device
/// reads and decorated backends evaluate the exact state that was
/// prepared).
///
/// Built by [`EvalBackend::prepare`] and consumed by the `*_prepared`
/// methods. The handle is keyed by [`CrossbarArray::generation`]: every
/// `*_prepared` call checks the driving array's current generation
/// against the one the handle was prepared from and fails with
/// [`CrossbarError::StalePrepared`] on mismatch — stale reuse after
/// re-programming, [`CrossbarArray::map_conductances`] (fault-plan
/// application, transient perturbation), or drift-time advance is an
/// error, never silently wrong numbers.
#[derive(Debug, Clone)]
pub struct PreparedEval {
    generation: u64,
    array: CrossbarArray,
    weights: Matrix,
    conductances: Vec<f64>,
}

impl PreparedEval {
    /// Materialises a handle for the array's current generation: one
    /// `O(M·N)` pass building the effective weights, the per-line
    /// conductance totals, and the snapshot.
    pub fn new(array: &CrossbarArray) -> Self {
        PreparedEval {
            generation: array.generation(),
            weights: array.effective_weights(),
            conductances: array.input_line_conductances(),
            array: array.clone(),
        }
    }

    /// The conductance generation this handle was prepared from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The snapshot of the array the handle was prepared from.
    ///
    /// `*_prepared` methods evaluate against this snapshot (the driving
    /// array argument is only the staleness witness) — which is what
    /// lets decorating backends prepare from a *derived* array (e.g. a
    /// faulted copy) and still be driven with the source array.
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }

    /// The materialised effective weights,
    /// [`CrossbarArray::effective_weights`] of the snapshot.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The materialised per-line conductance totals,
    /// [`CrossbarArray::input_line_conductances`] of the snapshot.
    pub fn line_conductances(&self) -> &[f64] {
        &self.conductances
    }

    /// Re-keys the handle to a different source generation.
    ///
    /// For decorating backends only: a decorator that prepares from a
    /// derived array (e.g. [`FaultyBackend`](crate::backend) wrappers in
    /// `xbar-faults` preparing from the faulted copy) re-keys the handle
    /// to the *source* array's generation, so staleness is tracked
    /// against the array callers actually hold.
    pub fn rekey(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Fails unless `array`'s current conductance generation matches the
    /// one this handle was prepared from.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::StalePrepared`] on mismatch.
    pub fn ensure_current(&self, array: &CrossbarArray) -> Result<()> {
        if array.generation() != self.generation {
            return Err(CrossbarError::StalePrepared {
                prepared: self.generation,
                current: array.generation(),
            });
        }
        Ok(())
    }
}

/// Batched evaluation of one programmed crossbar array.
///
/// All implementations must produce outputs bit-identical to looping the
/// corresponding per-vector call over the batch in order, and must emit
/// the same observability events while doing so.
///
/// The entry points are [`EvalBackend::prepare`] plus the `*_prepared`
/// methods: prepare once per deployed array generation, then evaluate
/// any number of batches against the handle.
pub trait EvalBackend: Send + Sync + std::fmt::Debug {
    /// Which [`BackendKind`] this backend implements.
    fn kind(&self) -> BackendKind;

    /// Materialises a [`PreparedEval`] for the array's current
    /// conductance generation. Emits no observability events.
    ///
    /// Decorating backends (fault injection) override this to prepare
    /// from their derived array and re-key the handle to the source
    /// generation — see [`PreparedEval::rekey`].
    ///
    /// # Errors
    ///
    /// Decorator implementations propagate derivation errors (e.g. a
    /// fault plan compiled for a different shape).
    fn prepare(&self, array: &CrossbarArray) -> Result<PreparedEval> {
        Ok(PreparedEval::new(array))
    }

    /// Noiseless differential MVM for a batch of inputs against a
    /// prepared handle — the batched [`CrossbarArray::checked_mvm`].
    ///
    /// `array` is the staleness witness: evaluation reads only the
    /// handle's materialised state.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::StalePrepared`] if `array`'s generation no
    ///   longer matches the handle.
    /// * [`CrossbarError::InputLenMismatch`] if any input has the wrong
    ///   length (checked up front; no partial work happens).
    fn mvm_prepared(
        &self,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> Result<Vec<Vec<f64>>>;

    /// Noiseless measured power for a batch of inputs against a
    /// prepared handle — the batched [`PowerModel::exact`].
    ///
    /// # Errors
    ///
    /// As [`EvalBackend::mvm_prepared`].
    fn power_prepared(
        &self,
        model: &PowerModel,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> Result<Vec<f64>>;

    /// Differential MVM with per-read device noise for a batch of
    /// inputs against a prepared handle. Sample `i`'s noise draws come
    /// from `streams(i)` only, so results match the sequential
    /// per-vector loop at any thread count.
    ///
    /// # Errors
    ///
    /// As [`EvalBackend::mvm_prepared`].
    fn noisy_mvm_prepared(
        &self,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<Vec<f64>>>;

    /// Noisy measured power for a batch of inputs against a prepared
    /// handle; sample `i`'s measurement noise comes from `streams(i)`
    /// only.
    ///
    /// # Errors
    ///
    /// As [`EvalBackend::mvm_prepared`].
    fn noisy_power_prepared(
        &self,
        model: &PowerModel,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<f64>>;
}

/// Rejects the whole batch before any work (or counting) happens, so
/// all backends fail identically and traces never record partial
/// batches.
fn validate_batch(array: &CrossbarArray, inputs: &[&[f64]]) -> Result<()> {
    let n = array.num_inputs();
    for input in inputs {
        if input.len() != n {
            return Err(CrossbarError::InputLenMismatch {
                expected: n,
                got: input.len(),
            });
        }
    }
    Ok(())
}

/// The shared batch-entry observability events (deliberately identical
/// across backends so traces are backend-invariant).
fn record_batch(inputs: &[&[f64]]) {
    xbar_obs::count(xbar_obs::names::XBAR_MVM_BATCH, 1);
    xbar_obs::observe(xbar_obs::names::XBAR_BATCH_OCCUPANCY, inputs.len() as f64);
}

/// Per-sample noisy MVM loop shared by all backends: the per-device
/// draw order inside one sample cannot be restructured without changing
/// results, so batching buys nothing here beyond stream isolation.
fn noisy_mvm_per_sample(
    array: &CrossbarArray,
    inputs: &[&[f64]],
    streams: RngStreams<'_>,
) -> Result<Vec<Vec<f64>>> {
    inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let mut rng = streams(i);
            array.noisy_mvm(input, &mut rng)
        })
        .collect()
}

/// Per-sample noisy power loop shared by all backends.
fn noisy_power_per_sample(
    model: &PowerModel,
    array: &CrossbarArray,
    inputs: &[&[f64]],
    streams: RngStreams<'_>,
) -> Result<Vec<f64>> {
    inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let mut rng = streams(i);
            model.measure(array, input, &mut rng)
        })
        .collect()
}

/// The tiled noiseless MVM kernel over output rows `row0..row1`,
/// writing sample `s`'s row `i` into `out[s][i - row0]`.
///
/// This is the one kernel [`BlockedBackend`] and every
/// [`ParallelBackend`] worker run: each output cell is one full-length
/// ascending-index [`dot`] — the identical reduction `checked_mvm`'s
/// `matvec` performs — so tile boundaries and work partitioning never
/// change a single bit of the result.
fn mvm_tiles_into(
    w_eff: &Matrix,
    inputs: &[&[f64]],
    row0: usize,
    row1: usize,
    config: BatchConfig,
    out: &mut [Vec<f64>],
) {
    let bo = config.block_outputs.max(1);
    let bs = config.block_samples.max(1);
    for s0 in (0..inputs.len()).step_by(bs) {
        let s1 = (s0 + bs).min(inputs.len());
        let mut i0 = row0;
        while i0 < row1 {
            let i1 = (i0 + bo).min(row1);
            for (sample_out, input) in out[s0..s1].iter_mut().zip(&inputs[s0..s1]) {
                for (k, cell) in sample_out[i0 - row0..i1 - row0].iter_mut().enumerate() {
                    *cell = dot(w_eff.row(i0 + k), input);
                }
            }
            i0 = i1;
        }
    }
}

/// The reference backend: a straight loop over the per-vector calls
/// against the prepared snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveBackend;

impl EvalBackend for NaiveBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Naive
    }

    fn mvm_prepared(
        &self,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> Result<Vec<Vec<f64>>> {
        prepared.ensure_current(array)?;
        validate_batch(prepared.array(), inputs)?;
        record_batch(inputs);
        inputs
            .iter()
            .map(|input| prepared.array().checked_mvm(input))
            .collect()
    }

    fn power_prepared(
        &self,
        model: &PowerModel,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> Result<Vec<f64>> {
        prepared.ensure_current(array)?;
        validate_batch(prepared.array(), inputs)?;
        record_batch(inputs);
        inputs
            .iter()
            .map(|input| model.exact(prepared.array(), input))
            .collect()
    }

    fn noisy_mvm_prepared(
        &self,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<Vec<f64>>> {
        prepared.ensure_current(array)?;
        validate_batch(prepared.array(), inputs)?;
        record_batch(inputs);
        noisy_mvm_per_sample(prepared.array(), inputs, streams)
    }

    fn noisy_power_prepared(
        &self,
        model: &PowerModel,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<f64>> {
        prepared.ensure_current(array)?;
        validate_batch(prepared.array(), inputs)?;
        record_batch(inputs);
        noisy_power_per_sample(model, prepared.array(), inputs, streams)
    }
}

/// The cache-blocked batch backend.
///
/// Noiseless evaluation reads the handle's materialised weights (or
/// line conductances) and walks `outputs x batch` tiles so a tile of
/// weight rows stays cache-resident across the tile's samples. Each
/// output cell is one full-length ascending-index dot product, so every
/// number equals the per-vector path's bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockedBackend {
    config: BatchConfig,
}

impl BlockedBackend {
    /// A blocked backend with the given tile sizes.
    ///
    /// # Errors
    ///
    /// Propagates [`BatchConfig::validate`].
    pub fn new(config: BatchConfig) -> Result<Self> {
        config.validate()?;
        Ok(BlockedBackend { config })
    }

    /// The tile sizes in effect.
    pub fn config(&self) -> BatchConfig {
        self.config
    }
}

impl EvalBackend for BlockedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Blocked
    }

    fn mvm_prepared(
        &self,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> Result<Vec<Vec<f64>>> {
        prepared.ensure_current(array)?;
        validate_batch(prepared.array(), inputs)?;
        record_batch(inputs);
        // One analog MVM per sample, exactly like the per-vector path.
        xbar_obs::count(xbar_obs::names::XBAR_ANALOG_MVM, inputs.len() as u64);
        let m = prepared.weights().rows();
        let mut out: Vec<Vec<f64>> = inputs.iter().map(|_| vec![0.0; m]).collect();
        mvm_tiles_into(prepared.weights(), inputs, 0, m, self.config, &mut out);
        Ok(out)
    }

    fn power_prepared(
        &self,
        model: &PowerModel,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> Result<Vec<f64>> {
        prepared.ensure_current(array)?;
        validate_batch(prepared.array(), inputs)?;
        record_batch(inputs);
        // One power read per sample, exactly like the per-vector path.
        xbar_obs::count(xbar_obs::names::XBAR_POWER_READ, inputs.len() as u64);
        let conductances = prepared.line_conductances();
        Ok(inputs
            .iter()
            .map(|input| {
                // Same accumulation as `total_current`, amortising the
                // per-line conductance totals across batches.
                model.v_dd * dot(conductances, input)
            })
            .collect())
    }

    fn noisy_mvm_prepared(
        &self,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<Vec<f64>>> {
        prepared.ensure_current(array)?;
        validate_batch(prepared.array(), inputs)?;
        record_batch(inputs);
        noisy_mvm_per_sample(prepared.array(), inputs, streams)
    }

    fn noisy_power_prepared(
        &self,
        model: &PowerModel,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<f64>> {
        prepared.ensure_current(array)?;
        validate_batch(prepared.array(), inputs)?;
        record_batch(inputs);
        noisy_power_per_sample(model, prepared.array(), inputs, streams)
    }
}

/// The multi-threaded blocked backend: the same tiled kernel as
/// [`BlockedBackend`], fanned out over a scoped thread pool.
///
/// Noiseless MVM partitions the batch into contiguous sample chunks,
/// one per worker, each writing a disjoint slice of the output; when
/// the batch is smaller than the pool, workers instead take contiguous
/// output-row blocks. Either way every output cell is still one
/// full-length ascending-index [`dot`] computed by exactly one worker,
/// so results are **bit-identical** to [`NaiveBackend`] at any thread
/// count — parallelism only changes which thread computes a cell, never
/// the reduction inside it.
///
/// Noisy variants stay sequential per sample: the per-sample RNG-stream
/// factory is an exclusive closure, and per-device draw order is part
/// of the contract.
///
/// All observability events are emitted on the calling thread before
/// work is fanned out (the obs collector scope is thread-local), so
/// traces are identical to the other backends' at any thread count.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelBackend {
    config: BatchConfig,
    threads: usize,
}

impl ParallelBackend {
    /// A parallel backend with the given tile sizes and worker count
    /// (`threads == 0` auto-sizes to the host's available parallelism).
    ///
    /// # Errors
    ///
    /// Propagates [`BatchConfig::validate`].
    pub fn new(config: BatchConfig, threads: usize) -> Result<Self> {
        config.validate()?;
        Ok(ParallelBackend { config, threads })
    }

    /// The tile sizes in effect.
    pub fn config(&self) -> BatchConfig {
        self.config
    }

    /// The configured worker count (`0` = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The worker count actually used: the configured count, or the
    /// host's available parallelism when configured as `0`.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }
}

impl EvalBackend for ParallelBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Parallel
    }

    fn mvm_prepared(
        &self,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> Result<Vec<Vec<f64>>> {
        prepared.ensure_current(array)?;
        validate_batch(prepared.array(), inputs)?;
        // All events on the calling thread: obs scopes are thread-local
        // and must not lose worker-side counts.
        record_batch(inputs);
        xbar_obs::count(xbar_obs::names::XBAR_ANALOG_MVM, inputs.len() as u64);
        let w_eff = prepared.weights();
        let m = w_eff.rows();
        let config = self.config;
        let mut out: Vec<Vec<f64>> = inputs.iter().map(|_| vec![0.0; m]).collect();
        let threads = self
            .resolved_threads()
            .min(inputs.len().max(1))
            .min(m.max(1));
        if threads <= 1 || inputs.is_empty() {
            mvm_tiles_into(w_eff, inputs, 0, m, config, &mut out);
            return Ok(out);
        }
        if inputs.len() >= threads {
            // Wide batch: contiguous sample chunks, one per worker,
            // each writing its own disjoint output slice.
            let chunk = inputs.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (input_chunk, out_chunk) in inputs.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        mvm_tiles_into(w_eff, input_chunk, 0, m, config, out_chunk);
                    });
                }
            });
        } else {
            // Narrow batch: contiguous output-row blocks, one per
            // worker, computed into worker-local buffers and stitched
            // back (an O(M·B) copy against O(M·N·B) compute).
            let rows_per = m.div_ceil(threads);
            let partials = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..m)
                    .step_by(rows_per)
                    .map(|row0| {
                        let row1 = (row0 + rows_per).min(m);
                        scope.spawn(move || {
                            let mut local: Vec<Vec<f64>> =
                                inputs.iter().map(|_| vec![0.0; row1 - row0]).collect();
                            mvm_tiles_into(w_eff, inputs, row0, row1, config, &mut local);
                            (row0, local)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("parallel mvm worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (row0, local) in partials {
                for (sample_out, rows) in out.iter_mut().zip(local) {
                    sample_out[row0..row0 + rows.len()].copy_from_slice(&rows);
                }
            }
        }
        Ok(out)
    }

    fn power_prepared(
        &self,
        model: &PowerModel,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> Result<Vec<f64>> {
        prepared.ensure_current(array)?;
        validate_batch(prepared.array(), inputs)?;
        record_batch(inputs);
        xbar_obs::count(xbar_obs::names::XBAR_POWER_READ, inputs.len() as u64);
        let conductances = prepared.line_conductances();
        let v_dd = model.v_dd;
        let threads = self.resolved_threads();
        let mut out = vec![0.0; inputs.len()];
        if threads <= 1 || inputs.len() < 2 * threads {
            // One O(N) dot per sample: not worth a fan-out below a few
            // samples per worker.
            for (o, input) in out.iter_mut().zip(inputs) {
                *o = v_dd * dot(conductances, input);
            }
            return Ok(out);
        }
        let chunk = inputs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (input_chunk, out_chunk) in inputs.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (o, input) in out_chunk.iter_mut().zip(input_chunk) {
                        *o = v_dd * dot(conductances, input);
                    }
                });
            }
        });
        Ok(out)
    }

    fn noisy_mvm_prepared(
        &self,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<Vec<f64>>> {
        prepared.ensure_current(array)?;
        validate_batch(prepared.array(), inputs)?;
        record_batch(inputs);
        noisy_mvm_per_sample(prepared.array(), inputs, streams)
    }

    fn noisy_power_prepared(
        &self,
        model: &PowerModel,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<f64>> {
        prepared.ensure_current(array)?;
        validate_batch(prepared.array(), inputs)?;
        record_batch(inputs);
        noisy_power_per_sample(model, prepared.array(), inputs, streams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use rand::SeedableRng;
    use xbar_linalg::Matrix;

    // Prepare-once shorthands: the tests below compare backends on
    // single batches, where "prepare, evaluate, drop" is the whole
    // lifecycle.
    fn mvm<B: EvalBackend + ?Sized>(
        backend: &B,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> Result<Vec<Vec<f64>>> {
        let prepared = backend.prepare(array)?;
        backend.mvm_prepared(&prepared, array, inputs)
    }

    fn power<B: EvalBackend + ?Sized>(
        backend: &B,
        model: &PowerModel,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> Result<Vec<f64>> {
        let prepared = backend.prepare(array)?;
        backend.power_prepared(model, &prepared, array, inputs)
    }

    fn noisy_mvm<B: EvalBackend + ?Sized>(
        backend: &B,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<Vec<f64>>> {
        let prepared = backend.prepare(array)?;
        backend.noisy_mvm_prepared(&prepared, array, inputs, streams)
    }

    fn noisy_power<B: EvalBackend + ?Sized>(
        backend: &B,
        model: &PowerModel,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<f64>> {
        let prepared = backend.prepare(array)?;
        backend.noisy_power_prepared(model, &prepared, array, inputs, streams)
    }

    fn array(m: usize, n: usize, seed: u64) -> CrossbarArray {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = Matrix::random_uniform(m, n, -1.0, 1.0, &mut rng);
        CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).unwrap()
    }

    fn batch(n: usize, b: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..b)
            .map(|_| {
                (0..n)
                    .map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0))
                    .collect()
            })
            .collect()
    }

    fn refs(batch: &[Vec<f64>]) -> Vec<&[f64]> {
        batch.iter().map(Vec::as_slice).collect()
    }

    #[test]
    fn blocked_mvm_is_bit_identical_to_naive() {
        let xbar = array(13, 29, 1);
        let inputs = batch(29, 37, 2);
        let refs = refs(&inputs);
        let naive = mvm(&NaiveBackend, &xbar, &refs).unwrap();
        let blocked = mvm(&BlockedBackend::default(), &xbar, &refs).unwrap();
        assert_eq!(naive, blocked);
        // And both equal the sequential per-vector loop.
        for (input, row) in refs.iter().zip(&naive) {
            assert_eq!(row, &xbar.checked_mvm(input).unwrap());
        }
    }

    #[test]
    fn parallel_mvm_is_bit_identical_at_any_thread_count() {
        let xbar = array(19, 23, 11);
        let model = PowerModel::default();
        for b in [1usize, 3, 16] {
            let inputs = batch(23, b, 12);
            let refs = refs(&inputs);
            let naive = mvm(&NaiveBackend, &xbar, &refs).unwrap();
            let p_naive = power(&NaiveBackend, &model, &xbar, &refs).unwrap();
            // 0 = auto; 1 = inline; small and oversubscribed pools; both
            // the sample-chunk (b >= threads) and row-block (b < threads)
            // paths are crossed.
            for threads in [0usize, 1, 2, 3, 8, 32] {
                let parallel = ParallelBackend::new(BatchConfig::default(), threads).unwrap();
                assert_eq!(
                    mvm(&parallel, &xbar, &refs).unwrap(),
                    naive,
                    "mvm b={b} threads={threads}"
                );
                assert_eq!(
                    power(&parallel, &model, &xbar, &refs).unwrap(),
                    p_naive,
                    "power b={b} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn prepared_handles_are_reusable_across_batches() {
        let xbar = array(9, 14, 21);
        let first = batch(14, 6, 22);
        let second = batch(14, 3, 23);
        for spec in [
            BackendSpec::new(BackendKind::Naive),
            BackendSpec::new(BackendKind::Blocked),
            BackendSpec::new(BackendKind::Parallel).with_threads(2),
        ] {
            let backend = spec.build().unwrap();
            let prepared = backend.prepare(&xbar).unwrap();
            assert_eq!(prepared.generation(), xbar.generation());
            for inputs in [&first, &second] {
                let refs = refs(inputs);
                let warm = backend.mvm_prepared(&prepared, &xbar, &refs).unwrap();
                assert_eq!(warm, mvm(backend.as_ref(), &xbar, &refs).unwrap(), "{spec}");
                let model = PowerModel::default();
                let p_warm = backend
                    .power_prepared(&model, &prepared, &xbar, &refs)
                    .unwrap();
                assert_eq!(
                    p_warm,
                    power(backend.as_ref(), &model, &xbar, &refs).unwrap(),
                    "{spec}"
                );
            }
        }
    }

    #[test]
    fn stale_prepared_handles_are_rejected() {
        let xbar = array(5, 7, 31);
        let inputs = batch(7, 2, 32);
        let refs = refs(&inputs);
        let model = PowerModel::default();
        let mut stream = |_: usize| ChaCha8Rng::seed_from_u64(9);
        for kind in [
            BackendKind::Naive,
            BackendKind::Blocked,
            BackendKind::Parallel,
        ] {
            let backend = kind.build();
            let prepared = backend.prepare(&xbar).unwrap();
            // Even an identity conductance map invalidates the handle.
            let remapped = xbar.map_conductances(|_, g| g);
            let err = backend.mvm_prepared(&prepared, &remapped, &refs);
            assert!(
                matches!(err, Err(CrossbarError::StalePrepared { .. })),
                "{kind}: {err:?}"
            );
            assert!(backend
                .power_prepared(&model, &prepared, &remapped, &refs)
                .is_err());
            assert!(backend
                .noisy_mvm_prepared(&prepared, &remapped, &refs, &mut stream)
                .is_err());
            assert!(backend
                .noisy_power_prepared(&model, &prepared, &remapped, &refs, &mut stream)
                .is_err());
            // The handle still serves the generation it was built from.
            assert!(backend.mvm_prepared(&prepared, &xbar, &refs).is_ok());
        }
    }

    #[test]
    fn rekeyed_handles_follow_the_new_source() {
        let xbar = array(4, 5, 41);
        let derived = xbar.map_conductances(|_, g| g * 0.5);
        let backend = BlockedBackend::default();
        let mut prepared = backend.prepare(&derived).unwrap();
        prepared.rekey(xbar.generation());
        let inputs = batch(5, 3, 42);
        let refs = refs(&inputs);
        // Driven with the source array, evaluated from the derived
        // snapshot — the decorator contract.
        let out = backend.mvm_prepared(&prepared, &xbar, &refs).unwrap();
        for (input, row) in refs.iter().zip(&out) {
            assert_eq!(row, &derived.checked_mvm(input).unwrap());
        }
        assert!(backend.mvm_prepared(&prepared, &derived, &refs).is_err());
    }

    #[test]
    fn blocked_power_is_bit_identical_to_naive() {
        let xbar = array(7, 31, 3);
        let inputs = batch(31, 25, 4);
        let refs = refs(&inputs);
        let model = PowerModel::default();
        let naive = power(&NaiveBackend, &model, &xbar, &refs).unwrap();
        let blocked = power(&BlockedBackend::default(), &model, &xbar, &refs).unwrap();
        assert_eq!(naive, blocked);
        for (input, p) in refs.iter().zip(&naive) {
            assert_eq!(*p, model.exact(&xbar, input).unwrap());
        }
    }

    #[test]
    fn tiny_tiles_do_not_change_results() {
        let xbar = array(9, 11, 5);
        let inputs = batch(11, 10, 6);
        let refs = refs(&inputs);
        let tiny = BlockedBackend::new(
            BatchConfig::default()
                .with_block_outputs(2)
                .with_block_samples(3),
        )
        .unwrap();
        assert_eq!(
            mvm(&tiny, &xbar, &refs).unwrap(),
            mvm(&NaiveBackend, &xbar, &refs).unwrap()
        );
    }

    #[test]
    fn noisy_batches_match_sequential_per_sample_streams() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let w = Matrix::random_uniform(6, 10, -1.0, 1.0, &mut rng);
        let device = DeviceModel::ideal().with_read_sigma(0.02);
        let xbar = CrossbarArray::program(&w, &device, &mut rng).unwrap();
        let inputs = batch(10, 9, 8);
        let refs = refs(&inputs);
        let stream = |i: usize| {
            let mut r = ChaCha8Rng::seed_from_u64(99);
            r.set_stream(i as u64);
            r
        };
        let naive = noisy_mvm(&NaiveBackend, &xbar, &refs, &mut { stream }).unwrap();
        for backend in [
            Box::new(BlockedBackend::default()) as Box<dyn EvalBackend>,
            Box::new(ParallelBackend::new(BatchConfig::default(), 4).unwrap()),
        ] {
            assert_eq!(
                naive,
                noisy_mvm(backend.as_ref(), &xbar, &refs, &mut { stream }).unwrap()
            );
        }
        // Sequential reference with the same streams.
        for (i, input) in refs.iter().enumerate() {
            let mut r = stream(i);
            assert_eq!(naive[i], xbar.noisy_mvm(input, &mut r).unwrap());
        }

        let model = PowerModel::default().with_noise(0.1);
        let p_naive = noisy_power(&NaiveBackend, &model, &xbar, &refs, &mut { stream }).unwrap();
        let p_blocked = noisy_power(&BlockedBackend::default(), &model, &xbar, &refs, &mut {
            stream
        })
        .unwrap();
        assert_eq!(p_naive, p_blocked);
    }

    #[test]
    fn wrong_length_inputs_are_rejected_up_front() {
        let xbar = array(4, 6, 9);
        let good = vec![0.5; 6];
        let bad = vec![0.5; 5];
        let refs: Vec<&[f64]> = vec![&good, &bad];
        for backend in [
            BackendKind::Naive.build(),
            BackendKind::Blocked.build(),
            BackendKind::Parallel.build(),
        ] {
            assert!(matches!(
                mvm(backend.as_ref(), &xbar, &refs),
                Err(CrossbarError::InputLenMismatch {
                    expected: 6,
                    got: 5
                })
            ));
            assert!(power(backend.as_ref(), &PowerModel::default(), &xbar, &refs).is_err());
        }
    }

    #[test]
    fn empty_batches_are_fine() {
        let xbar = array(3, 4, 10);
        let refs: Vec<&[f64]> = Vec::new();
        for backend in [
            BackendKind::Naive.build(),
            BackendKind::Blocked.build(),
            BackendKind::Parallel.build(),
        ] {
            assert!(mvm(backend.as_ref(), &xbar, &refs).unwrap().is_empty());
        }
    }

    #[test]
    fn kind_roundtrips_through_strings() {
        for kind in [
            BackendKind::Naive,
            BackendKind::Blocked,
            BackendKind::Parallel,
        ] {
            assert_eq!(kind.label().parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.label());
            assert_eq!(kind.build().kind(), kind);
        }
        assert!("gpu".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::default(), BackendKind::Naive);
    }

    #[test]
    fn backend_spec_parses_and_roundtrips() {
        assert_eq!(
            "naive".parse::<BackendSpec>().unwrap(),
            BackendSpec::new(BackendKind::Naive)
        );
        assert_eq!(
            "blocked".parse::<BackendSpec>().unwrap(),
            BackendSpec::new(BackendKind::Blocked)
        );
        assert_eq!(
            "parallel".parse::<BackendSpec>().unwrap(),
            BackendSpec::new(BackendKind::Parallel)
        );
        let spec: BackendSpec = "parallel:8".parse().unwrap();
        assert_eq!(spec.kind, BackendKind::Parallel);
        assert_eq!(spec.threads, 8);
        // Display round-trips through FromStr.
        for s in ["naive", "blocked", "parallel", "parallel:8"] {
            let spec: BackendSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
            assert_eq!(spec.to_string().parse::<BackendSpec>().unwrap(), spec);
        }
        // Malformed specs fail loudly.
        for bad in [
            "gpu",
            "parallel:x",
            "parallel:-1",
            "naive:2",
            "blocked:4",
            "",
        ] {
            assert!(bad.parse::<BackendSpec>().is_err(), "{bad:?}");
        }
        // From<BackendKind> keeps old call sites working.
        let from_kind: BackendSpec = BackendKind::Blocked.into();
        assert_eq!(from_kind, BackendSpec::new(BackendKind::Blocked));
        assert_eq!(BackendSpec::default().kind, BackendKind::Naive);
    }

    #[test]
    fn spec_build_validates_batch_config() {
        let bad = BackendSpec::new(BackendKind::Blocked)
            .with_batch(BatchConfig::default().with_block_outputs(0));
        assert!(bad.validate().is_err());
        assert!(bad.build().is_err());
        let good = BackendSpec::new(BackendKind::Parallel)
            .with_batch(BatchConfig::default().with_block_outputs(8))
            .with_threads(2);
        assert!(good.validate().is_ok());
        assert_eq!(good.build().unwrap().kind(), BackendKind::Parallel);
    }

    #[test]
    fn batch_config_validates() {
        assert!(BatchConfig::default().validate().is_ok());
        assert!(BlockedBackend::new(BatchConfig::default().with_block_outputs(0)).is_err());
        assert!(BlockedBackend::new(BatchConfig::default().with_block_samples(0)).is_err());
        let cfg = BatchConfig::default()
            .with_block_outputs(8)
            .with_block_samples(4);
        assert_eq!(BlockedBackend::new(cfg).unwrap().config(), cfg);
        assert_eq!(ParallelBackend::new(cfg, 3).unwrap().resolved_threads(), 3);
        assert!(ParallelBackend::new(cfg, 0).unwrap().resolved_threads() >= 1);
    }
}
