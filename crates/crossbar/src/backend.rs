//! Batch-first evaluation backends for the crossbar hot path.
//!
//! Every attack stage is dominated by long runs of matrix-vector
//! products and power readouts against one programmed array. The
//! per-vector entry points ([`CrossbarArray::checked_mvm`],
//! [`PowerModel::exact`]) re-materialise the effective weight matrix and
//! the per-line conductance totals on every call; a batch of `B` inputs
//! pays that `O(M·N)` setup `B` times. [`EvalBackend`] lifts the same
//! operations to batches so a backend can amortise the setup:
//!
//! * [`NaiveBackend`] — the reference implementation: a straight loop
//!   over the existing per-vector calls.
//! * [`BlockedBackend`] — materialises the effective weights (or line
//!   conductances) once per batch and runs a cache-blocked kernel over
//!   `outputs x batch` tiles. Every output cell is still one full-length
//!   ascending-index [`xbar_linalg::vec_ops::dot`] — the identical
//!   floating-point reduction the per-vector path performs — so outputs
//!   are **bit-identical** to [`NaiveBackend`], not merely close.
//!
//! Noisy variants take a per-sample RNG-stream factory (sample index →
//! fresh [`ChaCha8Rng`]), so per-device noise draws depend only on the
//! sample's own stream. Results are therefore bit-identical to the
//! sequential path at any thread count and any batch partitioning.
//!
//! Both backends emit the same observability events — one
//! [`xbar_obs::names::XBAR_MVM_BATCH`] count and one
//! [`xbar_obs::names::XBAR_BATCH_OCCUPANCY`] observation per batch, plus
//! the per-sample analog-MVM / power-read counts the per-vector path
//! already emits — so campaign traces do not depend on the backend
//! choice.

use crate::array::CrossbarArray;
use crate::power::PowerModel;
use crate::{CrossbarError, Result};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use xbar_linalg::vec_ops::dot;

/// A per-sample RNG-stream factory: maps the index of a sample within
/// the batch to the RNG that sample's noise draws must come from.
///
/// Callers that need globally stable noise (e.g. an oracle numbering its
/// queries) close over their own offset and derive the stream from the
/// global index.
pub type RngStreams<'a> = &'a mut dyn FnMut(usize) -> ChaCha8Rng;

/// Which [`EvalBackend`] implementation to use — the value carried by
/// configs and CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BackendKind {
    /// Per-vector loop over the existing sequential calls.
    #[default]
    Naive,
    /// Cache-blocked batch kernel (bit-identical outputs).
    Blocked,
}

impl BackendKind {
    /// Constructs the backend this kind names, with default
    /// [`BatchConfig`].
    pub fn build(self) -> Box<dyn EvalBackend> {
        match self {
            BackendKind::Naive => Box::new(NaiveBackend),
            BackendKind::Blocked => Box::new(BlockedBackend::default()),
        }
    }

    /// The CLI spelling of this kind.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Naive => "naive",
            BackendKind::Blocked => "blocked",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "naive" => Ok(BackendKind::Naive),
            "blocked" => Ok(BackendKind::Blocked),
            other => Err(format!(
                "unknown backend {other:?} (expected naive or blocked)"
            )),
        }
    }
}

/// Tile sizes for the [`BlockedBackend`] kernel.
///
/// The defaults keep one tile of effective weights plus the tile's
/// input/output slices within a typical L1/L2 working set. Tiling never
/// changes results — each output cell is one full-length reduction — so
/// these are pure performance knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Output rows per tile.
    pub block_outputs: usize,
    /// Batch samples per tile.
    pub block_samples: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            block_outputs: 64,
            block_samples: 16,
        }
    }
}

impl BatchConfig {
    /// Builder-style setter for the output-row tile size.
    #[must_use]
    pub fn with_block_outputs(mut self, rows: usize) -> Self {
        self.block_outputs = rows;
        self
    }

    /// Builder-style setter for the batch-sample tile size.
    #[must_use]
    pub fn with_block_samples(mut self, samples: usize) -> Self {
        self.block_samples = samples;
        self
    }

    /// Validates the tile sizes.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] if either tile dimension
    /// is zero.
    pub fn validate(&self) -> Result<()> {
        if self.block_outputs == 0 {
            return Err(CrossbarError::InvalidConfig {
                name: "block_outputs",
            });
        }
        if self.block_samples == 0 {
            return Err(CrossbarError::InvalidConfig {
                name: "block_samples",
            });
        }
        Ok(())
    }
}

/// Batched evaluation of one programmed crossbar array.
///
/// All implementations must produce outputs bit-identical to looping the
/// corresponding per-vector call over the batch in order, and must emit
/// the same observability events while doing so.
pub trait EvalBackend: Send + Sync + std::fmt::Debug {
    /// Which [`BackendKind`] this backend implements.
    fn kind(&self) -> BackendKind;

    /// Noiseless differential MVM for a batch of inputs — the batched
    /// [`CrossbarArray::checked_mvm`].
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InputLenMismatch`] if any input has the
    /// wrong length (checked up front; no partial work happens).
    fn mvm_batch(&self, array: &CrossbarArray, inputs: &[&[f64]]) -> Result<Vec<Vec<f64>>>;

    /// Noiseless measured power for a batch of inputs — the batched
    /// [`PowerModel::exact`].
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InputLenMismatch`] if any input has the
    /// wrong length (checked up front; no partial work happens).
    fn power_batch(
        &self,
        model: &PowerModel,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> Result<Vec<f64>>;

    /// Differential MVM with per-read device noise for a batch of
    /// inputs. Sample `i`'s noise draws come from `streams(i)` only, so
    /// results match the sequential per-vector loop at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InputLenMismatch`] if any input has the
    /// wrong length (checked up front; no partial work happens).
    fn noisy_mvm_batch(
        &self,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<Vec<f64>>>;

    /// Noisy measured power for a batch of inputs; sample `i`'s
    /// measurement noise comes from `streams(i)` only.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InputLenMismatch`] if any input has the
    /// wrong length (checked up front; no partial work happens).
    fn noisy_power_batch(
        &self,
        model: &PowerModel,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<f64>>;
}

/// Rejects the whole batch before any work (or counting) happens, so
/// both backends fail identically and traces never record partial
/// batches.
fn validate_batch(array: &CrossbarArray, inputs: &[&[f64]]) -> Result<()> {
    let n = array.num_inputs();
    for input in inputs {
        if input.len() != n {
            return Err(CrossbarError::InputLenMismatch {
                expected: n,
                got: input.len(),
            });
        }
    }
    Ok(())
}

/// The shared batch-entry observability events (deliberately identical
/// across backends so traces are backend-invariant).
fn record_batch(inputs: &[&[f64]]) {
    xbar_obs::count(xbar_obs::names::XBAR_MVM_BATCH, 1);
    xbar_obs::observe(xbar_obs::names::XBAR_BATCH_OCCUPANCY, inputs.len() as f64);
}

/// Per-sample noisy MVM loop shared by both backends: the per-device
/// draw order inside one sample cannot be restructured without changing
/// results, so batching buys nothing here beyond stream isolation.
fn noisy_mvm_per_sample(
    array: &CrossbarArray,
    inputs: &[&[f64]],
    streams: RngStreams<'_>,
) -> Result<Vec<Vec<f64>>> {
    inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let mut rng = streams(i);
            array.noisy_mvm(input, &mut rng)
        })
        .collect()
}

/// Per-sample noisy power loop shared by both backends.
fn noisy_power_per_sample(
    model: &PowerModel,
    array: &CrossbarArray,
    inputs: &[&[f64]],
    streams: RngStreams<'_>,
) -> Result<Vec<f64>> {
    inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let mut rng = streams(i);
            model.measure(array, input, &mut rng)
        })
        .collect()
}

/// The reference backend: a straight loop over the per-vector calls.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveBackend;

impl EvalBackend for NaiveBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Naive
    }

    fn mvm_batch(&self, array: &CrossbarArray, inputs: &[&[f64]]) -> Result<Vec<Vec<f64>>> {
        validate_batch(array, inputs)?;
        record_batch(inputs);
        inputs
            .iter()
            .map(|input| array.checked_mvm(input))
            .collect()
    }

    fn power_batch(
        &self,
        model: &PowerModel,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> Result<Vec<f64>> {
        validate_batch(array, inputs)?;
        record_batch(inputs);
        inputs
            .iter()
            .map(|input| model.exact(array, input))
            .collect()
    }

    fn noisy_mvm_batch(
        &self,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<Vec<f64>>> {
        validate_batch(array, inputs)?;
        record_batch(inputs);
        noisy_mvm_per_sample(array, inputs, streams)
    }

    fn noisy_power_batch(
        &self,
        model: &PowerModel,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<f64>> {
        validate_batch(array, inputs)?;
        record_batch(inputs);
        noisy_power_per_sample(model, array, inputs, streams)
    }
}

/// The cache-blocked batch backend.
///
/// `mvm_batch` materialises [`CrossbarArray::effective_weights`] once
/// per batch (the per-vector path pays that `O(M·N)` subtraction, scale,
/// and allocation per sample) and walks `outputs x batch` tiles so a
/// tile of weight rows stays cache-resident across the tile's samples.
/// `power_batch` likewise computes
/// [`CrossbarArray::input_line_conductances`] once per batch. Each
/// output cell is one full-length ascending-index dot product, so every
/// number equals the per-vector path's bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockedBackend {
    config: BatchConfig,
}

impl BlockedBackend {
    /// A blocked backend with the given tile sizes.
    ///
    /// # Errors
    ///
    /// Propagates [`BatchConfig::validate`].
    pub fn new(config: BatchConfig) -> Result<Self> {
        config.validate()?;
        Ok(BlockedBackend { config })
    }

    /// The tile sizes in effect.
    pub fn config(&self) -> BatchConfig {
        self.config
    }
}

impl EvalBackend for BlockedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Blocked
    }

    fn mvm_batch(&self, array: &CrossbarArray, inputs: &[&[f64]]) -> Result<Vec<Vec<f64>>> {
        validate_batch(array, inputs)?;
        record_batch(inputs);
        // One analog MVM per sample, exactly like the per-vector path.
        xbar_obs::count(xbar_obs::names::XBAR_ANALOG_MVM, inputs.len() as u64);
        let w_eff = array.effective_weights();
        let m = array.num_outputs();
        let mut out: Vec<Vec<f64>> = inputs.iter().map(|_| vec![0.0; m]).collect();
        let bo = self.config.block_outputs.max(1);
        let bs = self.config.block_samples.max(1);
        for s0 in (0..inputs.len()).step_by(bs) {
            let s1 = (s0 + bs).min(inputs.len());
            for i0 in (0..m).step_by(bo) {
                let i1 = (i0 + bo).min(m);
                for (sample_out, input) in out[s0..s1].iter_mut().zip(&inputs[s0..s1]) {
                    for (i, cell) in sample_out[i0..i1].iter_mut().enumerate() {
                        // Identical reduction to `checked_mvm`'s
                        // `matvec`: one full-length ascending-index dot.
                        *cell = dot(w_eff.row(i0 + i), input);
                    }
                }
            }
        }
        Ok(out)
    }

    fn power_batch(
        &self,
        model: &PowerModel,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> Result<Vec<f64>> {
        validate_batch(array, inputs)?;
        record_batch(inputs);
        // One power read per sample, exactly like the per-vector path.
        xbar_obs::count(xbar_obs::names::XBAR_POWER_READ, inputs.len() as u64);
        let conductances = array.input_line_conductances();
        Ok(inputs
            .iter()
            .map(|input| {
                // Same accumulation as `total_current`, amortising the
                // per-line conductance totals across the batch.
                model.v_dd * dot(&conductances, input)
            })
            .collect())
    }

    fn noisy_mvm_batch(
        &self,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<Vec<f64>>> {
        validate_batch(array, inputs)?;
        record_batch(inputs);
        noisy_mvm_per_sample(array, inputs, streams)
    }

    fn noisy_power_batch(
        &self,
        model: &PowerModel,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> Result<Vec<f64>> {
        validate_batch(array, inputs)?;
        record_batch(inputs);
        noisy_power_per_sample(model, array, inputs, streams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use rand::SeedableRng;
    use xbar_linalg::Matrix;

    fn array(m: usize, n: usize, seed: u64) -> CrossbarArray {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = Matrix::random_uniform(m, n, -1.0, 1.0, &mut rng);
        CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).unwrap()
    }

    fn batch(n: usize, b: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..b)
            .map(|_| {
                (0..n)
                    .map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0))
                    .collect()
            })
            .collect()
    }

    fn refs(batch: &[Vec<f64>]) -> Vec<&[f64]> {
        batch.iter().map(Vec::as_slice).collect()
    }

    #[test]
    fn blocked_mvm_is_bit_identical_to_naive() {
        let xbar = array(13, 29, 1);
        let inputs = batch(29, 37, 2);
        let refs = refs(&inputs);
        let naive = NaiveBackend.mvm_batch(&xbar, &refs).unwrap();
        let blocked = BlockedBackend::default().mvm_batch(&xbar, &refs).unwrap();
        assert_eq!(naive, blocked);
        // And both equal the sequential per-vector loop.
        for (input, row) in refs.iter().zip(&naive) {
            assert_eq!(row, &xbar.checked_mvm(input).unwrap());
        }
    }

    #[test]
    fn blocked_power_is_bit_identical_to_naive() {
        let xbar = array(7, 31, 3);
        let inputs = batch(31, 25, 4);
        let refs = refs(&inputs);
        let model = PowerModel::default();
        let naive = NaiveBackend.power_batch(&model, &xbar, &refs).unwrap();
        let blocked = BlockedBackend::default()
            .power_batch(&model, &xbar, &refs)
            .unwrap();
        assert_eq!(naive, blocked);
        for (input, p) in refs.iter().zip(&naive) {
            assert_eq!(*p, model.exact(&xbar, input).unwrap());
        }
    }

    #[test]
    fn tiny_tiles_do_not_change_results() {
        let xbar = array(9, 11, 5);
        let inputs = batch(11, 10, 6);
        let refs = refs(&inputs);
        let tiny = BlockedBackend::new(
            BatchConfig::default()
                .with_block_outputs(2)
                .with_block_samples(3),
        )
        .unwrap();
        assert_eq!(
            tiny.mvm_batch(&xbar, &refs).unwrap(),
            NaiveBackend.mvm_batch(&xbar, &refs).unwrap()
        );
    }

    #[test]
    fn noisy_batches_match_sequential_per_sample_streams() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let w = Matrix::random_uniform(6, 10, -1.0, 1.0, &mut rng);
        let device = DeviceModel::ideal().with_read_sigma(0.02);
        let xbar = CrossbarArray::program(&w, &device, &mut rng).unwrap();
        let inputs = batch(10, 9, 8);
        let refs = refs(&inputs);
        let stream = |i: usize| {
            let mut r = ChaCha8Rng::seed_from_u64(99);
            r.set_stream(i as u64);
            r
        };
        let naive = NaiveBackend
            .noisy_mvm_batch(&xbar, &refs, &mut { stream })
            .unwrap();
        let blocked = BlockedBackend::default()
            .noisy_mvm_batch(&xbar, &refs, &mut { stream })
            .unwrap();
        assert_eq!(naive, blocked);
        // Sequential reference with the same streams.
        for (i, input) in refs.iter().enumerate() {
            let mut r = stream(i);
            assert_eq!(naive[i], xbar.noisy_mvm(input, &mut r).unwrap());
        }

        let model = PowerModel::default().with_noise(0.1);
        let p_naive = NaiveBackend
            .noisy_power_batch(&model, &xbar, &refs, &mut { stream })
            .unwrap();
        let p_blocked = BlockedBackend::default()
            .noisy_power_batch(&model, &xbar, &refs, &mut { stream })
            .unwrap();
        assert_eq!(p_naive, p_blocked);
    }

    #[test]
    fn wrong_length_inputs_are_rejected_up_front() {
        let xbar = array(4, 6, 9);
        let good = vec![0.5; 6];
        let bad = vec![0.5; 5];
        let refs: Vec<&[f64]> = vec![&good, &bad];
        for backend in [BackendKind::Naive.build(), BackendKind::Blocked.build()] {
            assert!(matches!(
                backend.mvm_batch(&xbar, &refs),
                Err(CrossbarError::InputLenMismatch {
                    expected: 6,
                    got: 5
                })
            ));
            assert!(backend
                .power_batch(&PowerModel::default(), &xbar, &refs)
                .is_err());
        }
    }

    #[test]
    fn empty_batches_are_fine() {
        let xbar = array(3, 4, 10);
        let refs: Vec<&[f64]> = Vec::new();
        assert!(NaiveBackend.mvm_batch(&xbar, &refs).unwrap().is_empty());
        assert!(BlockedBackend::default()
            .mvm_batch(&xbar, &refs)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn kind_roundtrips_through_strings() {
        for kind in [BackendKind::Naive, BackendKind::Blocked] {
            assert_eq!(kind.label().parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.label());
            assert_eq!(kind.build().kind(), kind);
        }
        assert!("gpu".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::default(), BackendKind::Naive);
    }

    #[test]
    fn batch_config_validates() {
        assert!(BatchConfig::default().validate().is_ok());
        assert!(BlockedBackend::new(BatchConfig::default().with_block_outputs(0)).is_err());
        assert!(BlockedBackend::new(BatchConfig::default().with_block_samples(0)).is_err());
        let cfg = BatchConfig::default()
            .with_block_outputs(8)
            .with_block_samples(4);
        assert_eq!(BlockedBackend::new(cfg).unwrap().config(), cfg);
    }
}
