//! NVM device models.
//!
//! Conductances are expressed in normalised units (the paper's Eq. 4
//! normalisation): `g_min` is the off-state leakage and `g_max` the
//! strongest programmable state. The paper analyses the *ideal* device
//! ([`DeviceModel::ideal`]); the non-ideal knobs here (level quantisation,
//! programming variation, stuck-at faults, read noise) implement the
//! non-idealities the paper defers to future work, and power the ablation
//! experiments.

use crate::{CrossbarError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A programmable NVM device model.
///
/// Programming a target conductance passes through, in order:
///
/// 1. clamping to `[g_min, g_max]`;
/// 2. quantisation to `levels` equally spaced states (if set);
/// 3. multiplicative log-normal programming variation (`program_sigma`);
/// 4. stuck-at faults: with probability `stuck_rate` the device ignores
///    the target and sticks at `g_min` or `g_max` (equally likely).
///
/// Reads may additionally carry Gaussian noise (`read_sigma`, relative to
/// `g_max`), modelling transient read fluctuations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Off-state (minimum) conductance, normalised units.
    pub g_min: f64,
    /// Maximum programmable conductance, normalised units.
    pub g_max: f64,
    /// Number of discrete conductance levels, or `None` for analogue.
    pub levels: Option<u32>,
    /// Log-normal programming variation σ (0 = exact programming).
    pub program_sigma: f64,
    /// Probability a device is stuck at a random rail.
    pub stuck_rate: f64,
    /// Per-read Gaussian noise σ as a fraction of `g_max`.
    pub read_sigma: f64,
}

impl DeviceModel {
    /// The ideal device of the paper's analysis: `g_min = 0`, `g_max = 1`,
    /// analogue, exact programming, noiseless reads.
    pub fn ideal() -> Self {
        DeviceModel {
            g_min: 0.0,
            g_max: 1.0,
            levels: None,
            program_sigma: 0.0,
            stuck_rate: 0.0,
            read_sigma: 0.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<()> {
        if !(self.g_min.is_finite() && self.g_min >= 0.0) {
            return Err(CrossbarError::InvalidConfig { name: "g_min" });
        }
        if !(self.g_max.is_finite() && self.g_max > self.g_min) {
            return Err(CrossbarError::InvalidConfig { name: "g_max" });
        }
        if let Some(l) = self.levels {
            if l < 2 {
                return Err(CrossbarError::InvalidConfig { name: "levels" });
            }
        }
        if !(self.program_sigma.is_finite() && self.program_sigma >= 0.0) {
            return Err(CrossbarError::InvalidConfig {
                name: "program_sigma",
            });
        }
        if !(0.0..=1.0).contains(&self.stuck_rate) {
            return Err(CrossbarError::InvalidConfig { name: "stuck_rate" });
        }
        if !(self.read_sigma.is_finite() && self.read_sigma >= 0.0) {
            return Err(CrossbarError::InvalidConfig { name: "read_sigma" });
        }
        Ok(())
    }

    /// Builder-style setter for the number of conductance levels.
    #[must_use]
    pub fn with_levels(mut self, levels: u32) -> Self {
        self.levels = Some(levels);
        self
    }

    /// Builder-style setter for the programming variation.
    #[must_use]
    pub fn with_program_sigma(mut self, sigma: f64) -> Self {
        self.program_sigma = sigma;
        self
    }

    /// Builder-style setter for the stuck-at fault rate.
    #[must_use]
    pub fn with_stuck_rate(mut self, rate: f64) -> Self {
        self.stuck_rate = rate;
        self
    }

    /// Builder-style setter for the read-noise σ.
    #[must_use]
    pub fn with_read_sigma(mut self, sigma: f64) -> Self {
        self.read_sigma = sigma;
        self
    }

    /// Whether the device is exactly the ideal analytical model.
    pub fn is_ideal(&self) -> bool {
        self.levels.is_none()
            && self.program_sigma == 0.0
            && self.stuck_rate == 0.0
            && self.read_sigma == 0.0
    }

    /// Programs a device towards `target` conductance, returning the
    /// conductance actually achieved under this model.
    pub fn program<R: Rng + ?Sized>(&self, target: f64, rng: &mut R) -> f64 {
        // Stuck-at faults trump everything.
        if self.stuck_rate > 0.0 && rng.gen_bool(self.stuck_rate) {
            return if rng.gen_bool(0.5) {
                self.g_min
            } else {
                self.g_max
            };
        }
        let mut g = target.clamp(self.g_min, self.g_max);
        if let Some(levels) = self.levels {
            let span = self.g_max - self.g_min;
            let step = span / (levels - 1) as f64;
            g = self.g_min + ((g - self.g_min) / step).round() * step;
        }
        if self.program_sigma > 0.0 {
            let n = gaussian(rng);
            g *= (self.program_sigma * n).exp();
            g = g.clamp(self.g_min, self.g_max);
        }
        g
    }

    /// One noisy read of a programmed conductance.
    pub fn read<R: Rng + ?Sized>(&self, g: f64, rng: &mut R) -> f64 {
        if self.read_sigma == 0.0 {
            g
        } else {
            (g + self.read_sigma * self.g_max * gaussian(rng)).max(0.0)
        }
    }
}

impl Default for DeviceModel {
    fn default() -> Self {
        DeviceModel::ideal()
    }
}

/// Standard normal sample via Box-Muller.
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn ideal_is_identity_within_bounds() {
        let d = DeviceModel::ideal();
        let mut r = rng();
        assert_eq!(d.program(0.5, &mut r), 0.5);
        assert_eq!(d.program(0.0, &mut r), 0.0);
        assert_eq!(d.program(1.0, &mut r), 1.0);
        assert!(d.is_ideal());
    }

    #[test]
    fn programming_clamps_to_bounds() {
        let d = DeviceModel::ideal();
        let mut r = rng();
        assert_eq!(d.program(2.0, &mut r), 1.0);
        assert_eq!(d.program(-1.0, &mut r), 0.0);
    }

    #[test]
    fn quantisation_snaps_to_levels() {
        let d = DeviceModel::ideal().with_levels(5); // steps of 0.25
        let mut r = rng();
        assert_eq!(d.program(0.3, &mut r), 0.25);
        assert_eq!(d.program(0.4, &mut r), 0.5);
        assert_eq!(d.program(0.99, &mut r), 1.0);
        assert!(!d.is_ideal());
    }

    #[test]
    fn two_levels_is_binary() {
        let d = DeviceModel::ideal().with_levels(2);
        let mut r = rng();
        assert_eq!(d.program(0.49, &mut r), 0.0);
        assert_eq!(d.program(0.51, &mut r), 1.0);
    }

    #[test]
    fn program_sigma_spreads_conductances() {
        let d = DeviceModel::ideal().with_program_sigma(0.1);
        let mut r = rng();
        let samples: Vec<f64> = (0..500).map(|_| d.program(0.5, &mut r)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / 500.0;
        let var: f64 = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / 500.0;
        assert!(var > 0.0005, "variation should spread: var {var}");
        assert!(
            (mean - 0.5).abs() < 0.02,
            "mean should stay near 0.5: {mean}"
        );
        assert!(samples.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn stuck_devices_land_on_rails() {
        let d = DeviceModel::ideal().with_stuck_rate(1.0);
        let mut r = rng();
        for _ in 0..50 {
            let g = d.program(0.5, &mut r);
            assert!(g == 0.0 || g == 1.0);
        }
        // Both rails occur.
        let hits: Vec<f64> = (0..100).map(|_| d.program(0.5, &mut r)).collect();
        assert!(hits.contains(&0.0));
        assert!(hits.contains(&1.0));
    }

    #[test]
    fn read_noise_is_zero_mean_and_clamped() {
        let d = DeviceModel::ideal().with_read_sigma(0.05);
        let mut r = rng();
        let reads: Vec<f64> = (0..2000).map(|_| d.read(0.5, &mut r)).collect();
        let mean: f64 = reads.iter().sum::<f64>() / reads.len() as f64;
        assert!((mean - 0.5).abs() < 0.01);
        assert!(reads.iter().all(|&g| g >= 0.0));
        // Noiseless read is exact.
        assert_eq!(DeviceModel::ideal().read(0.3, &mut r), 0.3);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let ok = DeviceModel::ideal();
        assert!(ok.validate().is_ok());
        let bad = [
            DeviceModel { g_min: -0.1, ..ok },
            DeviceModel { g_max: 0.0, ..ok },
            DeviceModel {
                levels: Some(1),
                ..ok
            },
            DeviceModel {
                program_sigma: -1.0,
                ..ok
            },
            DeviceModel {
                stuck_rate: 1.5,
                ..ok
            },
            DeviceModel {
                read_sigma: f64::NAN,
                ..ok
            },
        ];
        for d in bad {
            assert!(d.validate().is_err(), "{d:?} should be invalid");
        }
    }

    #[test]
    fn nonzero_gmin_offsets_program_floor() {
        let d = DeviceModel {
            g_min: 0.1,
            g_max: 1.0,
            ..DeviceModel::ideal()
        };
        let mut r = rng();
        assert_eq!(d.program(0.0, &mut r), 0.1);
        assert_eq!(d.program(0.05, &mut r), 0.1);
    }
}
