//! Physical energy accounting: converting the simulator's normalised
//! quantities into watts and joules.
//!
//! The rest of the crate works in the paper's normalised units (Eq. 4).
//! For power budgeting — e.g. sizing the dummy-conductance defense's
//! overhead, or reporting per-inference energy — this module applies a
//! physical scale: a unit conductance of `g_unit` siemens and a supply
//! of `v_dd` volts.

use crate::array::CrossbarArray;
use crate::{CrossbarError, Result};
use serde::{Deserialize, Serialize};

/// Physical scaling for energy reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Physical conductance of one normalised unit, in siemens. Typical
    /// ReRAM on-state conductances are in the 1–100 µS range.
    pub g_unit: f64,
    /// Supply voltage in volts (read voltages are typically 0.1–0.5 V).
    pub v_dd: f64,
    /// Read-pulse width in seconds (typically 1–100 ns).
    pub pulse_width: f64,
}

impl Default for EnergyModel {
    /// 10 µS unit conductance, 0.2 V reads, 10 ns pulses — mid-range
    /// figures for ReRAM inference arrays.
    fn default() -> Self {
        EnergyModel {
            g_unit: 10e-6,
            v_dd: 0.2,
            pulse_width: 10e-9,
        }
    }
}

impl EnergyModel {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("g_unit", self.g_unit),
            ("v_dd", self.v_dd),
            ("pulse_width", self.pulse_width),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(CrossbarError::InvalidConfig { name });
            }
        }
        Ok(())
    }

    /// Instantaneous power in watts for a normalised total current
    /// (`P = V_dd² · g_unit · i_norm`, since normalised current is
    /// conductance·voltage-fraction units).
    pub fn power_watts(&self, normalized_current: f64) -> f64 {
        self.v_dd * self.v_dd * self.g_unit * normalized_current
    }

    /// Energy in joules of one read pulse at the given normalised current.
    pub fn read_energy_joules(&self, normalized_current: f64) -> f64 {
        self.power_watts(normalized_current) * self.pulse_width
    }

    /// Per-inference energy of an array on one input, in joules.
    ///
    /// # Errors
    ///
    /// Propagates input-length mismatches and validation failures.
    pub fn inference_energy(&self, array: &CrossbarArray, input: &[f64]) -> Result<f64> {
        self.validate()?;
        Ok(self.read_energy_joules(array.total_current(input)?))
    }

    /// Static (input-independent) power floor of an array in watts: the
    /// current drawn if every input were held at `V_dd` — an upper bound
    /// used for defense-overhead budgeting.
    pub fn static_power_ceiling(&self, array: &CrossbarArray) -> f64 {
        let total_g: f64 = array.input_line_conductances().iter().sum();
        self.v_dd * self.v_dd * self.g_unit * total_g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xbar_linalg::Matrix;

    fn array() -> CrossbarArray {
        let w = Matrix::from_rows(&[&[1.0, -0.5], &[0.25, 0.75]]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).unwrap()
    }

    #[test]
    fn validation() {
        assert!(EnergyModel::default().validate().is_ok());
        for bad in [
            EnergyModel {
                g_unit: 0.0,
                ..EnergyModel::default()
            },
            EnergyModel {
                v_dd: -1.0,
                ..EnergyModel::default()
            },
            EnergyModel {
                pulse_width: f64::NAN,
                ..EnergyModel::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn power_scales_quadratically_with_vdd() {
        let base = EnergyModel::default();
        let double = EnergyModel {
            v_dd: 2.0 * base.v_dd,
            ..base
        };
        let i = 3.7;
        assert!((double.power_watts(i) - 4.0 * base.power_watts(i)).abs() < 1e-18);
    }

    #[test]
    fn energy_is_power_times_pulse() {
        let m = EnergyModel::default();
        let i = 2.0;
        assert!((m.read_energy_joules(i) - m.power_watts(i) * m.pulse_width).abs() < 1e-24);
    }

    #[test]
    fn inference_energy_in_plausible_range() {
        // 2x2 array, µS conductances, 0.2 V, 10 ns: femtojoule scale.
        let a = array();
        let e = EnergyModel::default()
            .inference_energy(&a, &[1.0, 1.0])
            .unwrap();
        assert!(
            e > 1e-18 && e < 1e-12,
            "energy {e} J out of plausible range"
        );
    }

    #[test]
    fn static_ceiling_bounds_any_input() {
        let a = array();
        let m = EnergyModel::default();
        let ceiling = m.static_power_ceiling(&a);
        for v in [[0.0, 0.0], [1.0, 0.0], [0.5, 0.5], [1.0, 1.0]] {
            let p = m.power_watts(a.total_current(&v).unwrap());
            assert!(p <= ceiling + 1e-18);
        }
    }

    #[test]
    fn bad_input_rejected() {
        let a = array();
        assert!(EnergyModel::default().inference_energy(&a, &[1.0]).is_err());
    }
}
