use std::fmt;

/// Errors produced by the crossbar simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CrossbarError {
    /// An input vector's length does not match the array width.
    InputLenMismatch {
        /// Expected length (number of crossbar input lines).
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// A device or power model parameter is outside its valid domain.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// The weight matrix cannot be mapped (e.g. empty, or all-zero with a
    /// zero max-weight normalisation).
    UnmappableWeights {
        /// Why the mapping failed.
        reason: &'static str,
    },
    /// A [`crate::backend::PreparedEval`] was used against an array whose
    /// conductance generation no longer matches the one it was prepared
    /// from — the array was re-programmed, fault-applied, drifted, or
    /// otherwise re-mapped since. The handle must be rebuilt with
    /// [`crate::backend::EvalBackend::prepare`]; evaluation never falls
    /// back to the stale weights.
    StalePrepared {
        /// Generation the handle was prepared from.
        prepared: u64,
        /// The array's current generation.
        current: u64,
    },
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossbarError::InputLenMismatch { expected, got } => {
                write!(f, "input length mismatch: expected {expected}, got {got}")
            }
            CrossbarError::InvalidConfig { name } => {
                write!(f, "invalid crossbar configuration parameter: {name}")
            }
            CrossbarError::UnmappableWeights { reason } => {
                write!(f, "weights cannot be mapped to conductances: {reason}")
            }
            CrossbarError::StalePrepared { prepared, current } => write!(
                f,
                "stale prepared evaluation: handle was prepared from array \
                 generation {prepared} but the array is now generation {current} \
                 (re-prepare after re-programming, fault application, or drift)"
            ),
        }
    }
}

impl std::error::Error for CrossbarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            CrossbarError::InputLenMismatch {
                expected: 4,
                got: 2,
            },
            CrossbarError::InvalidConfig { name: "g_max" },
            CrossbarError::UnmappableWeights { reason: "empty" },
            CrossbarError::StalePrepared {
                prepared: 1,
                current: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
