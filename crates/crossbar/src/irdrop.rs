//! IR-drop simulation: finite wire resistance in the crossbar.
//!
//! The paper's analysis assumes ideal wires ("no current sneak paths,
//! etc.") and defers non-ideal electrical behaviour to SPICE. This module
//! provides the standard intermediate-fidelity model between the ideal
//! analytical crossbar and a full SPICE netlist: every wire segment
//! between adjacent cells has resistance `r_wire`, input lines are driven
//! from one end, output lines are sensed at virtual ground from one end,
//! and the resulting 2-D resistive network is solved by Gauss–Seidel
//! relaxation of Kirchhoff's current law at every internal node.
//!
//! With `r_wire = 0` the solver reproduces the ideal crossbar exactly
//! (verified by test); with realistic wire resistance, cells far from the
//! drivers/sense amplifiers see degraded voltages, attenuating both the
//! MVM result and the total supply current — and, interestingly for the
//! attack, attenuating *far* columns' power signatures more than near
//! ones.

use crate::{CrossbarError, Result};
use serde::{Deserialize, Serialize};
use xbar_linalg::Matrix;

/// Configuration of the wire-resistance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IrDropConfig {
    /// Wire resistance per cell-to-cell segment, in units of
    /// `1 / g_max` (i.e. `r_wire = 0.01` means one segment has 1% of the
    /// resistance of a fully-on device).
    pub r_wire: f64,
    /// Convergence threshold on the maximum node-voltage update.
    pub tolerance: f64,
    /// Iteration cap for the relaxation.
    pub max_iterations: usize,
    /// Opt-in to combining the IR-drop solve with the fault layer's
    /// first-order `line_resistance` attenuation on the same array.
    /// Both model series wire resistance, so enabling both silently
    /// double-counts the physics; `xbar_faults::check_ir_drop_compose`
    /// rejects the combination unless this flag is set (deliberate
    /// worst-case studies only).
    pub allow_with_line_faults: bool,
}

impl Default for IrDropConfig {
    fn default() -> Self {
        IrDropConfig {
            r_wire: 0.01,
            tolerance: 1e-10,
            max_iterations: 20_000,
            allow_with_line_faults: false,
        }
    }
}

impl IrDropConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<()> {
        if !(self.r_wire.is_finite() && self.r_wire >= 0.0) {
            return Err(CrossbarError::InvalidConfig { name: "r_wire" });
        }
        if !(self.tolerance.is_finite() && self.tolerance > 0.0) {
            return Err(CrossbarError::InvalidConfig { name: "tolerance" });
        }
        if self.max_iterations == 0 {
            return Err(CrossbarError::InvalidConfig {
                name: "max_iterations",
            });
        }
        Ok(())
    }
}

/// The solved electrical state of one resistive crossbar plane.
#[derive(Debug, Clone, PartialEq)]
pub struct IrDropSolution {
    /// Per-output-row currents flowing into the sense amplifiers
    /// (normalised units).
    pub row_currents: Vec<f64>,
    /// Total current drawn from the input drivers — the observable power
    /// quantity under IR drop.
    pub total_current: f64,
    /// Relaxation iterations used.
    pub iterations: usize,
}

/// Solves one conductance plane (`g[i][j]`, an `M x N` matrix) with input
/// voltages `v_in[j]` applied at the row-0 end of each column wire and
/// all output (row) wires sensed at virtual ground from the column-0 end.
///
/// Node layout: `vc[i][j]` is the column-wire potential at cell `(i, j)`;
/// `vr[i][j]` is the row-wire potential at cell `(i, j)`. The device at
/// `(i, j)` conducts `g_ij (vc_ij − vr_ij)` from column wire to row wire.
///
/// # Errors
///
/// * [`CrossbarError::InvalidConfig`] for invalid solver parameters.
/// * [`CrossbarError::InputLenMismatch`] if `v_in.len() != g.cols()`.
///
/// Non-convergence is not an error: the solver returns the best
/// iterate with its iteration count, and callers can inspect
/// [`IrDropSolution::iterations`].
pub fn solve_plane(g: &Matrix, v_in: &[f64], cfg: &IrDropConfig) -> Result<IrDropSolution> {
    cfg.validate()?;
    let (m, n) = g.shape();
    if v_in.len() != n {
        return Err(CrossbarError::InputLenMismatch {
            expected: n,
            got: v_in.len(),
        });
    }
    if m == 0 || n == 0 {
        return Ok(IrDropSolution {
            row_currents: vec![0.0; m],
            total_current: 0.0,
            iterations: 0,
        });
    }

    // Ideal-wire shortcut (also the exact solution for r_wire = 0).
    if cfg.r_wire == 0.0 {
        let mut row_currents = vec![0.0; m];
        let mut total = 0.0;
        for i in 0..m {
            for j in 0..n {
                let c = g[(i, j)] * v_in[j];
                row_currents[i] += c;
                total += c;
            }
        }
        return Ok(IrDropSolution {
            row_currents,
            total_current: total,
            iterations: 0,
        });
    }

    let g_wire = 1.0 / cfg.r_wire;
    // Initialise column wires at their drive voltages, row wires at 0.
    let mut vc = Matrix::from_fn(m, n, |_, j| v_in[j]);
    let mut vr = Matrix::zeros(m, n);

    let mut iterations = 0;
    for it in 0..cfg.max_iterations {
        iterations = it + 1;
        let mut max_delta = 0.0_f64;
        for i in 0..m {
            for j in 0..n {
                let gd = g[(i, j)];
                // --- Column-wire node (i, j): neighbours along i ---
                // Row 0 connects through a segment to the driver v_in[j].
                let mut num = gd * vr[(i, j)];
                let mut den = gd;
                if i == 0 {
                    num += g_wire * v_in[j];
                    den += g_wire;
                } else {
                    num += g_wire * vc[(i - 1, j)];
                    den += g_wire;
                }
                if i + 1 < m {
                    num += g_wire * vc[(i + 1, j)];
                    den += g_wire;
                }
                let new_vc = num / den;
                max_delta = max_delta.max((new_vc - vc[(i, j)]).abs());
                vc[(i, j)] = new_vc;

                // --- Row-wire node (i, j): neighbours along j ---
                // Column 0 connects through a segment to virtual ground.
                let mut num = gd * vc[(i, j)];
                let mut den = gd;
                if j == 0 {
                    // Segment to the sense amplifier at 0 V.
                    den += g_wire;
                } else {
                    num += g_wire * vr[(i, j - 1)];
                    den += g_wire;
                }
                if j + 1 < n {
                    num += g_wire * vr[(i, j + 1)];
                    den += g_wire;
                }
                let new_vr = num / den;
                max_delta = max_delta.max((new_vr - vr[(i, j)]).abs());
                vr[(i, j)] = new_vr;
            }
        }
        if max_delta < cfg.tolerance {
            break;
        }
    }

    // Row currents: what flows into each sense amp through the first
    // row-wire segment.
    let row_currents: Vec<f64> = (0..m).map(|i| g_wire * vr[(i, 0)]).collect();
    // Total supply current: what the drivers push into each column wire.
    let total_current: f64 = (0..n).map(|j| g_wire * (v_in[j] - vc[(0, j)])).sum();

    Ok(IrDropSolution {
        row_currents,
        total_current,
        iterations,
    })
}

/// Differential IR-drop MVM over a `(G⁺, G⁻)` pair: solves each plane
/// and returns `(i⁺ − i⁻, i⁺_total + i⁻_total)` — the output currents in
/// conductance·voltage units and the (shared-rail) supply current.
///
/// # Errors
///
/// Propagates [`solve_plane`] errors; the planes must share a shape.
pub fn solve_differential(
    g_plus: &Matrix,
    g_minus: &Matrix,
    v_in: &[f64],
    cfg: &IrDropConfig,
) -> Result<(Vec<f64>, f64)> {
    if g_plus.shape() != g_minus.shape() {
        return Err(CrossbarError::InvalidConfig {
            name: "plane shapes",
        });
    }
    let p = solve_plane(g_plus, v_in, cfg)?;
    let q = solve_plane(g_minus, v_in, cfg)?;
    let out: Vec<f64> = p
        .row_currents
        .iter()
        .zip(&q.row_currents)
        .map(|(&a, &b)| a - b)
        .collect();
    Ok((out, p.total_current + q.total_current))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_g(m: usize, n: usize, g: f64) -> Matrix {
        Matrix::filled(m, n, g)
    }

    #[test]
    fn zero_wire_resistance_is_ideal() {
        let g = Matrix::from_rows(&[&[0.5, 0.2], &[0.1, 0.8]]);
        let v = [1.0, 0.5];
        let cfg = IrDropConfig {
            r_wire: 0.0,
            ..IrDropConfig::default()
        };
        let sol = solve_plane(&g, &v, &cfg).unwrap();
        assert!((sol.row_currents[0] - (0.5 + 0.1)).abs() < 1e-12);
        assert!((sol.row_currents[1] - (0.1 + 0.4)).abs() < 1e-12);
        assert!((sol.total_current - 1.1).abs() < 1e-12);
    }

    #[test]
    fn tiny_wire_resistance_approaches_ideal() {
        let g = Matrix::from_rows(&[&[0.5, 0.2], &[0.1, 0.8]]);
        let v = [1.0, 0.5];
        let cfg = IrDropConfig {
            r_wire: 1e-6,
            ..IrDropConfig::default()
        };
        let sol = solve_plane(&g, &v, &cfg).unwrap();
        assert!((sol.row_currents[0] - 0.6).abs() < 1e-3);
        assert!((sol.row_currents[1] - 0.5).abs() < 1e-3);
        assert!((sol.total_current - 1.1).abs() < 1e-3);
    }

    #[test]
    fn ir_drop_attenuates_currents() {
        let g = uniform_g(8, 8, 0.8);
        let v = vec![1.0; 8];
        let ideal = solve_plane(
            &g,
            &v,
            &IrDropConfig {
                r_wire: 0.0,
                ..IrDropConfig::default()
            },
        )
        .unwrap();
        let dropped = solve_plane(
            &g,
            &v,
            &IrDropConfig {
                r_wire: 0.05,
                ..IrDropConfig::default()
            },
        )
        .unwrap();
        assert!(dropped.total_current < ideal.total_current);
        for (a, b) in dropped.row_currents.iter().zip(&ideal.row_currents) {
            assert!(a < b, "every row current attenuates: {a} vs {b}");
            assert!(*a > 0.0);
        }
    }

    #[test]
    fn attenuation_grows_with_wire_resistance() {
        let g = uniform_g(6, 6, 0.5);
        let v = vec![1.0; 6];
        let current_at = |r: f64| {
            solve_plane(
                &g,
                &v,
                &IrDropConfig {
                    r_wire: r,
                    ..IrDropConfig::default()
                },
            )
            .unwrap()
            .total_current
        };
        let i1 = current_at(0.01);
        let i2 = current_at(0.05);
        let i3 = current_at(0.2);
        assert!(i1 > i2 && i2 > i3, "{i1} > {i2} > {i3} expected");
    }

    #[test]
    fn far_rows_attenuate_more() {
        // All devices equal: rows farther from the column drivers (larger
        // i) see lower column-wire voltage, hence less current.
        let g = uniform_g(6, 4, 0.9);
        let v = vec![1.0; 4];
        let sol = solve_plane(
            &g,
            &v,
            &IrDropConfig {
                r_wire: 0.1,
                ..IrDropConfig::default()
            },
        )
        .unwrap();
        for w in sol.row_currents.windows(2) {
            assert!(
                w[0] > w[1],
                "row currents should decay: {:?}",
                sol.row_currents
            );
        }
    }

    #[test]
    fn solution_is_linear_in_drive_voltage() {
        // The network is linear: scaling all drives scales all currents.
        let g = Matrix::from_rows(&[&[0.3, 0.6], &[0.9, 0.1]]);
        let cfg = IrDropConfig {
            r_wire: 0.05,
            ..IrDropConfig::default()
        };
        let a = solve_plane(&g, &[1.0, 0.4], &cfg).unwrap();
        let b = solve_plane(&g, &[0.5, 0.2], &cfg).unwrap();
        assert!((a.total_current - 2.0 * b.total_current).abs() < 1e-6);
        for (x, y) in a.row_currents.iter().zip(&b.row_currents) {
            assert!((x - 2.0 * y).abs() < 1e-6);
        }
    }

    #[test]
    fn differential_pair_solves_both_planes() {
        let gp = Matrix::from_rows(&[&[0.8, 0.0], &[0.0, 0.3]]);
        let gm = Matrix::from_rows(&[&[0.0, 0.5], &[0.2, 0.0]]);
        let cfg = IrDropConfig {
            r_wire: 0.0,
            ..IrDropConfig::default()
        };
        let (out, total) = solve_differential(&gp, &gm, &[1.0, 1.0], &cfg).unwrap();
        assert!((out[0] - (0.8 - 0.5)).abs() < 1e-12);
        assert!((out[1] - (0.3 - 0.2)).abs() < 1e-12);
        assert!((total - (0.8 + 0.3 + 0.5 + 0.2)).abs() < 1e-12);
        assert!(solve_differential(&gp, &Matrix::zeros(3, 2), &[1.0, 1.0], &cfg).is_err());
    }

    #[test]
    fn energy_conservation_under_ir_drop() {
        // Supply current equals the sum of sense currents (all injected
        // charge leaves through the amplifiers).
        let g = uniform_g(5, 5, 0.6);
        let v = vec![1.0, 0.8, 0.6, 0.4, 0.2];
        let sol = solve_plane(
            &g,
            &v,
            &IrDropConfig {
                r_wire: 0.05,
                tolerance: 1e-12,
                max_iterations: 100_000,
                ..IrDropConfig::default()
            },
        )
        .unwrap();
        let sensed: f64 = sol.row_currents.iter().sum();
        assert!(
            (sol.total_current - sensed).abs() < 1e-6,
            "KCL: supply {} vs sensed {}",
            sol.total_current,
            sensed
        );
    }

    #[test]
    fn validation_and_shapes() {
        let g = uniform_g(2, 2, 0.5);
        let bad = IrDropConfig {
            r_wire: -1.0,
            ..IrDropConfig::default()
        };
        assert!(solve_plane(&g, &[1.0, 1.0], &bad).is_err());
        assert!(solve_plane(&g, &[1.0], &IrDropConfig::default()).is_err());
        let empty = solve_plane(&Matrix::zeros(0, 0), &[], &IrDropConfig::default()).unwrap();
        assert_eq!(empty.total_current, 0.0);
    }

    #[test]
    fn power_leak_survives_moderate_ir_drop() {
        // The attack-relevant property: column norms still dominate the
        // per-column power signature under moderate wire resistance.
        let mut g = Matrix::zeros(4, 6);
        // Column norms increase with j.
        for i in 0..4 {
            for j in 0..6 {
                g[(i, j)] = 0.1 + 0.12 * j as f64;
            }
        }
        let cfg = IrDropConfig {
            r_wire: 0.02,
            ..IrDropConfig::default()
        };
        let mut probed = Vec::new();
        for j in 0..6 {
            let mut v = vec![0.0; 6];
            v[j] = 1.0;
            probed.push(solve_plane(&g, &v, &cfg).unwrap().total_current);
        }
        // Probed currents preserve the column ordering.
        for w in probed.windows(2) {
            assert!(w[0] < w[1], "ordering broken: {probed:?}");
        }
    }
}
