//! # xbar-crossbar
//!
//! A behavioural simulator of NVM crossbar arrays for neural-network
//! inference — the hardware substrate of the paper.
//!
//! The paper's model (Sec. II-B): a layer's weight matrix `W` is stored as
//! differential conductance pairs `G⁺, G⁻`; the crossbar computes
//! `i_s = G v_u` by Ohm's and Kirchhoff's laws (Eq. 3), and its total
//! steady-state current is
//!
//! ```text
//! i_total = Σ_j v_uj Σ_i (G⁺_ij + G⁻_ij)      (Eq. 5)
//! ```
//!
//! With the paper's one-sided mapping (positive weights use `G⁺` only,
//! negative weights `G⁻` only — the lowest-power implementation, Eq. 6),
//! the per-input total conductance `G_j` is an affine function of the
//! weight column's 1-norm. That is the side channel the attacks exploit.
//!
//! Modules:
//!
//! * [`device`] — NVM device models: conductance bounds, level
//!   quantisation, programming variation, stuck-at faults, read noise.
//! * [`mapping`] — weight ↔ conductance mapping (one-sided differential).
//! * [`array`](mod@array) — [`array::CrossbarArray`]: programming, MVM, total
//!   current.
//! * [`backend`] — batch-first evaluation: the [`backend::EvalBackend`]
//!   trait with naive and cache-blocked implementations.
//! * [`power`] — the power side channel: measurement noise, averaging,
//!   traces.
//! * [`adc`] — input DAC / output ADC quantisation.
//! * [`irdrop`] — finite-wire-resistance (IR-drop) solver, the paper's
//!   deferred electrical non-ideality.
//! * [`energy`] — physical power/energy accounting (watts, joules).
//! * [`tile`] — tiling large matrices onto fixed-size arrays.
//! * [`prelude`] — one-line import of the common types.
//!
//! # Example
//!
//! ```
//! use xbar_crossbar::array::CrossbarArray;
//! use xbar_crossbar::device::DeviceModel;
//! use xbar_linalg::Matrix;
//! use rand::SeedableRng;
//!
//! let w = Matrix::from_rows(&[&[0.5, -1.0], &[0.25, 0.75]]);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let xbar = CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng)?;
//! let i = xbar.mvm(&[1.0, 0.0]);
//! assert!((i[0] - 0.5).abs() < 1e-9);   // ideal crossbar == exact MVM
//! # Ok::<(), xbar_crossbar::CrossbarError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod adc;
pub mod array;
pub mod backend;
pub mod device;
pub mod energy;
mod error;
pub mod irdrop;
pub mod mapping;
pub mod power;
pub mod prelude;
pub mod tile;

pub use error::CrossbarError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CrossbarError>;
