//! Weight ↔ conductance mapping.
//!
//! The paper's one-sided differential mapping (after Eq. 5): a positive
//! weight is realised entirely on the `G⁺` device with `G⁻` at the off
//! state, and symmetrically for negative weights. This is the
//! lowest-power realisation of a given weight matrix and makes each
//! weight's conductance pair unique, so
//! `G⁺_ij + G⁻_ij = 2 g_min + k·|w_ij|` (Eq. 6's proportionality).

use crate::device::DeviceModel;
use crate::{CrossbarError, Result};
use serde::{Deserialize, Serialize};
use xbar_linalg::Matrix;

/// A linear weight→conductance scaling for a particular weight matrix.
///
/// The scale `k` maps the largest absolute weight onto the full
/// conductance span: `k = (g_max - g_min) / w_absmax`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightMapping {
    /// Conductance units per weight unit.
    pub scale: f64,
    /// Off-state conductance used as the baseline for both devices.
    pub g_min: f64,
}

impl WeightMapping {
    /// Derives the mapping for a weight matrix under a device model.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::UnmappableWeights`] if the matrix is empty or
    ///   all-zero (no scale can be derived).
    /// * Propagates [`DeviceModel::validate`] failures.
    pub fn for_weights(weights: &Matrix, device: &DeviceModel) -> Result<Self> {
        device.validate()?;
        if weights.is_empty() {
            return Err(CrossbarError::UnmappableWeights {
                reason: "empty weight matrix",
            });
        }
        let w_max = weights.max_abs();
        if w_max == 0.0 {
            return Err(CrossbarError::UnmappableWeights {
                reason: "all-zero weight matrix has no scale",
            });
        }
        Ok(WeightMapping {
            scale: (device.g_max - device.g_min) / w_max,
            g_min: device.g_min,
        })
    }

    /// Target conductance pair `(g_plus, g_minus)` for a weight.
    pub fn to_conductances(&self, w: f64) -> (f64, f64) {
        if w >= 0.0 {
            (self.g_min + self.scale * w, self.g_min)
        } else {
            (self.g_min, self.g_min - self.scale * w)
        }
    }

    /// Effective weight realised by a conductance pair (exact inverse for
    /// ideal devices; the best linear estimate otherwise).
    pub fn to_weight(&self, g_plus: f64, g_minus: f64) -> f64 {
        (g_plus - g_minus) / self.scale
    }

    /// Maps a full weight matrix to target `(G⁺, G⁻)` matrices (before
    /// device non-idealities are applied).
    pub fn map_matrix(&self, weights: &Matrix) -> (Matrix, Matrix) {
        let mut g_plus = Matrix::zeros(weights.rows(), weights.cols());
        let mut g_minus = Matrix::zeros(weights.rows(), weights.cols());
        for i in 0..weights.rows() {
            for j in 0..weights.cols() {
                let (p, m) = self.to_conductances(weights[(i, j)]);
                g_plus[(i, j)] = p;
                g_minus[(i, j)] = m;
            }
        }
        (g_plus, g_minus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_mapping_for(w: &Matrix) -> WeightMapping {
        WeightMapping::for_weights(w, &DeviceModel::ideal()).unwrap()
    }

    #[test]
    fn scale_uses_max_abs_weight() {
        let w = Matrix::from_rows(&[&[0.5, -2.0], &[1.0, 0.0]]);
        let m = ideal_mapping_for(&w);
        assert!((m.scale - 0.5).abs() < 1e-12); // (1-0)/2
    }

    #[test]
    fn one_sided_rule() {
        let w = Matrix::from_rows(&[&[1.0, -1.0]]);
        let m = ideal_mapping_for(&w);
        let (p, n) = m.to_conductances(0.6);
        assert!((p - 0.6).abs() < 1e-12);
        assert_eq!(n, 0.0);
        let (p, n) = m.to_conductances(-0.6);
        assert_eq!(p, 0.0);
        assert!((n - 0.6).abs() < 1e-12);
        // Zero weight: both at g_min.
        let (p, n) = m.to_conductances(0.0);
        assert_eq!((p, n), (0.0, 0.0));
    }

    #[test]
    fn weight_roundtrip() {
        let w = Matrix::from_rows(&[&[0.7, -0.3, 0.0, 1.0]]);
        let m = ideal_mapping_for(&w);
        for &wi in w.row(0) {
            let (p, n) = m.to_conductances(wi);
            assert!((m.to_weight(p, n) - wi).abs() < 1e-12);
        }
    }

    #[test]
    fn gmin_offset_cancels_in_differential() {
        let device = DeviceModel {
            g_min: 0.05,
            g_max: 1.0,
            ..DeviceModel::ideal()
        };
        let w = Matrix::from_rows(&[&[0.8, -0.4]]);
        let m = WeightMapping::for_weights(&w, &device).unwrap();
        for &wi in w.row(0) {
            let (p, n) = m.to_conductances(wi);
            assert!((m.to_weight(p, n) - wi).abs() < 1e-12);
            assert!(p >= 0.05 && n >= 0.05);
        }
    }

    #[test]
    fn map_matrix_sum_is_affine_in_column_l1_norm() {
        // The key identity behind the power side channel (Eq. 5-6):
        // Σ_i (G⁺+G⁻)_ij = 2 M g_min + k ‖W[:,j]‖₁.
        let device = DeviceModel {
            g_min: 0.02,
            g_max: 1.0,
            ..DeviceModel::ideal()
        };
        let w = Matrix::from_rows(&[&[0.5, -1.0, 0.0], &[-0.25, 0.75, 0.1]]);
        let m = WeightMapping::for_weights(&w, &device).unwrap();
        let (gp, gm) = m.map_matrix(&w);
        let norms = w.col_l1_norms();
        for j in 0..3 {
            let g_j: f64 = (0..2).map(|i| gp[(i, j)] + gm[(i, j)]).sum();
            let want = 2.0 * 2.0 * device.g_min + m.scale * norms[j];
            assert!((g_j - want).abs() < 1e-12, "column {j}");
        }
    }

    #[test]
    fn unmappable_weights_rejected() {
        assert!(matches!(
            WeightMapping::for_weights(&Matrix::default(), &DeviceModel::ideal()),
            Err(CrossbarError::UnmappableWeights { .. })
        ));
        assert!(matches!(
            WeightMapping::for_weights(&Matrix::zeros(2, 2), &DeviceModel::ideal()),
            Err(CrossbarError::UnmappableWeights { .. })
        ));
    }

    #[test]
    fn invalid_device_rejected() {
        let bad = DeviceModel {
            g_max: -1.0,
            ..DeviceModel::ideal()
        };
        assert!(WeightMapping::for_weights(&Matrix::ones(1, 1), &bad).is_err());
    }
}
