//! The power side channel: converting total current to measured power,
//! with measurement noise, averaging, and trace recording.
//!
//! The paper calls the crossbar's total steady-state current the "power
//! information". [`PowerModel`] turns [`crate::array::CrossbarArray`]'s
//! exact Eq. 5 current into what an attacker actually observes: a scaled
//! physical quantity corrupted by Gaussian measurement noise, optionally
//! averaged over repeated measurements.

use crate::array::CrossbarArray;
use crate::device::gaussian;
use crate::tile::TiledCrossbar;
use crate::{CrossbarError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A power measurement channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Supply voltage used to convert normalised current to power
    /// (`P = V_dd · i_total`); `1.0` keeps normalised units.
    pub v_dd: f64,
    /// Gaussian measurement-noise σ, in the same units as the measured
    /// power (absolute, not relative).
    pub noise_sigma: f64,
    /// Number of repeated measurements averaged per query (noise shrinks
    /// by `1/√n`).
    pub num_averages: usize,
}

impl Default for PowerModel {
    /// Noiseless single-shot measurement in normalised units — the paper's
    /// idealised setting.
    fn default() -> Self {
        PowerModel {
            v_dd: 1.0,
            noise_sigma: 0.0,
            num_averages: 1,
        }
    }
}

impl PowerModel {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<()> {
        if !(self.v_dd.is_finite() && self.v_dd > 0.0) {
            return Err(CrossbarError::InvalidConfig { name: "v_dd" });
        }
        if !(self.noise_sigma.is_finite() && self.noise_sigma >= 0.0) {
            return Err(CrossbarError::InvalidConfig {
                name: "noise_sigma",
            });
        }
        if self.num_averages == 0 {
            return Err(CrossbarError::InvalidConfig {
                name: "num_averages",
            });
        }
        Ok(())
    }

    /// Builder-style setter for the supply voltage.
    #[must_use]
    pub fn with_v_dd(mut self, v_dd: f64) -> Self {
        self.v_dd = v_dd;
        self
    }

    /// Builder-style setter for the measurement noise.
    #[must_use]
    pub fn with_noise(mut self, sigma: f64) -> Self {
        self.noise_sigma = sigma;
        self
    }

    /// Builder-style setter for the averaging count.
    #[must_use]
    pub fn with_averages(mut self, n: usize) -> Self {
        self.num_averages = n;
        self
    }

    /// The noiseless measured power for an input on a single array.
    ///
    /// # Errors
    ///
    /// Propagates input-length mismatches.
    pub fn exact(&self, array: &CrossbarArray, v: &[f64]) -> Result<f64> {
        xbar_obs::count(xbar_obs::names::XBAR_POWER_READ, 1);
        Ok(self.v_dd * array.total_current(v)?)
    }

    /// One (possibly averaged) noisy measurement for an input on a single
    /// array.
    ///
    /// # Errors
    ///
    /// Propagates input-length mismatches.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        array: &CrossbarArray,
        v: &[f64],
        rng: &mut R,
    ) -> Result<f64> {
        let exact = self.exact(array, v)?;
        Ok(self.corrupt(exact, rng))
    }

    /// The noiseless measured power for an input on a tiled crossbar
    /// (sum of per-tile currents — a shared supply rail).
    ///
    /// # Errors
    ///
    /// Propagates input-length mismatches.
    pub fn exact_tiled(&self, tiled: &TiledCrossbar, v: &[f64]) -> Result<f64> {
        xbar_obs::count(xbar_obs::names::XBAR_POWER_READ, 1);
        Ok(self.v_dd * tiled.total_current(v)?)
    }

    /// One noisy measurement on a tiled crossbar.
    ///
    /// # Errors
    ///
    /// Propagates input-length mismatches.
    pub fn measure_tiled<R: Rng + ?Sized>(
        &self,
        tiled: &TiledCrossbar,
        v: &[f64],
        rng: &mut R,
    ) -> Result<f64> {
        let exact = self.exact_tiled(tiled, v)?;
        Ok(self.corrupt(exact, rng))
    }

    /// Applies measurement noise (averaged over `num_averages` draws) to an
    /// exact power value.
    pub fn corrupt<R: Rng + ?Sized>(&self, exact: f64, rng: &mut R) -> f64 {
        if self.noise_sigma == 0.0 {
            return exact;
        }
        let n = self.num_averages.max(1);
        let mut acc = 0.0;
        for _ in 0..n {
            acc += exact + self.noise_sigma * gaussian(rng);
        }
        acc / n as f64
    }
}

/// A recorded sequence of (query, power) observations — the attacker's
/// side-channel log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    samples: Vec<f64>,
}

impl PowerTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        PowerTrace::default()
    }

    /// Appends one measurement.
    pub fn record(&mut self, power: f64) {
        self.samples.push(power);
    }

    /// Number of recorded measurements.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded measurements in query order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mean of the recorded measurements (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

impl Extend<f64> for PowerTrace {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

impl FromIterator<f64> for PowerTrace {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        PowerTrace {
            samples: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xbar_linalg::Matrix;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(5)
    }

    fn array() -> CrossbarArray {
        let w = Matrix::from_rows(&[&[0.5, -1.0], &[0.25, 0.5]]);
        CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng()).unwrap()
    }

    #[test]
    fn exact_scales_with_vdd() {
        let a = array();
        let v = [0.4, 0.6];
        let p1 = PowerModel::default().exact(&a, &v).unwrap();
        let p2 = PowerModel {
            v_dd: 2.0,
            ..PowerModel::default()
        }
        .exact(&a, &v)
        .unwrap();
        assert!((p2 - 2.0 * p1).abs() < 1e-12);
    }

    #[test]
    fn noiseless_measure_equals_exact() {
        let a = array();
        let pm = PowerModel::default();
        let v = [1.0, 0.5];
        assert_eq!(
            pm.measure(&a, &v, &mut rng()).unwrap(),
            pm.exact(&a, &v).unwrap()
        );
    }

    #[test]
    fn noise_is_zero_mean() {
        let a = array();
        let pm = PowerModel::default().with_noise(0.1);
        let v = [0.7, 0.2];
        let exact = pm.exact(&a, &v).unwrap();
        let mut r = rng();
        let n = 3000;
        let mean: f64 = (0..n)
            .map(|_| pm.measure(&a, &v, &mut r).unwrap())
            .sum::<f64>()
            / n as f64;
        assert!((mean - exact).abs() < 0.01, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn averaging_reduces_variance() {
        let a = array();
        let v = [0.7, 0.2];
        let var_of = |pm: PowerModel| -> f64 {
            let mut r = rng();
            let exact = pm.exact(&a, &v).unwrap();
            let n = 1000;
            let samples: Vec<f64> = (0..n)
                .map(|_| pm.measure(&a, &v, &mut r).unwrap() - exact)
                .collect();
            samples.iter().map(|s| s * s).sum::<f64>() / n as f64
        };
        let single = var_of(PowerModel::default().with_noise(0.2));
        let averaged = var_of(PowerModel::default().with_noise(0.2).with_averages(16));
        assert!(
            averaged < single / 8.0,
            "averaging should cut variance ~16x: {single} -> {averaged}"
        );
    }

    #[test]
    fn validation() {
        assert!(PowerModel::default().validate().is_ok());
        assert!(PowerModel {
            v_dd: 0.0,
            ..PowerModel::default()
        }
        .validate()
        .is_err());
        assert!(PowerModel::default().with_noise(-1.0).validate().is_err());
        assert!(PowerModel::default().with_averages(0).validate().is_err());
    }

    #[test]
    fn trace_bookkeeping() {
        let mut t = PowerTrace::new();
        assert!(t.is_empty());
        t.record(1.0);
        t.extend([2.0, 3.0]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.samples(), &[1.0, 2.0, 3.0]);
        assert!((t.mean() - 2.0).abs() < 1e-12);
        let collected: PowerTrace = [1.0, 1.0].into_iter().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(PowerTrace::new().mean(), 0.0);
    }
}
