//! One-line import of the types almost every crossbar consumer needs.
//!
//! ```
//! use xbar_crossbar::prelude::*;
//! use rand::SeedableRng;
//!
//! let w = xbar_linalg::Matrix::from_rows(&[&[0.5, -1.0]]);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let xbar = CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng)?;
//! let backend = BackendKind::Blocked.build();
//! let prepared = backend.prepare(&xbar)?;
//! let out = backend.mvm_prepared(&prepared, &xbar, &[&[1.0, 0.0]])?;
//! assert!((out[0][0] - 0.5).abs() < 1e-9);
//! # Ok::<(), CrossbarError>(())
//! ```

pub use crate::array::CrossbarArray;
pub use crate::backend::{
    BackendKind, BackendSpec, BatchConfig, BlockedBackend, EvalBackend, NaiveBackend,
    ParallelBackend, PreparedEval, RngStreams,
};
pub use crate::device::DeviceModel;
pub use crate::mapping::WeightMapping;
pub use crate::power::{PowerModel, PowerTrace};
pub use crate::tile::TiledCrossbar;
pub use crate::{CrossbarError, Result};
