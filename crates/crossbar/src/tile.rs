//! Tiling large weight matrices onto fixed-size crossbar arrays.
//!
//! Physical crossbars are bounded (typically 128x128 to 512x512 devices);
//! a 10x784 or 10x3072 layer therefore spans several arrays. Outputs of
//! row-tiles sharing the same input columns are produced by different
//! arrays; partial sums of column-tiles are accumulated digitally. The
//! total power on a shared supply rail is the *sum* of the per-tile Eq. 5
//! currents — which preserves the column-1-norm leak exactly, since each
//! input line's conductance just splits across tiles.

use crate::array::CrossbarArray;
use crate::device::DeviceModel;
use crate::{CrossbarError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use xbar_linalg::Matrix;

/// A logical crossbar built from a grid of physical tiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TiledCrossbar {
    /// Tile grid, row-major: `tiles[r][c]` covers output rows
    /// `r·tile_rows..` and input columns `c·tile_cols..`.
    tiles: Vec<Vec<CrossbarArray>>,
    tile_rows: usize,
    tile_cols: usize,
    num_outputs: usize,
    num_inputs: usize,
}

impl TiledCrossbar {
    /// Programs a weight matrix across tiles of at most
    /// `tile_rows x tile_cols` devices per polarity.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::InvalidConfig`] if either tile dimension is zero.
    /// * Propagates mapping/device errors. Note: each tile derives its
    ///   scale from the *global* weight maximum so partial sums compose,
    ///   which is achieved by seeding every tile with the same mapping via
    ///   a shared normalisation.
    pub fn program<R: Rng + ?Sized>(
        weights: &Matrix,
        tile_rows: usize,
        tile_cols: usize,
        device: &DeviceModel,
        rng: &mut R,
    ) -> Result<Self> {
        if tile_rows == 0 {
            return Err(CrossbarError::InvalidConfig { name: "tile_rows" });
        }
        if tile_cols == 0 {
            return Err(CrossbarError::InvalidConfig { name: "tile_cols" });
        }
        if weights.is_empty() {
            return Err(CrossbarError::UnmappableWeights {
                reason: "empty weight matrix",
            });
        }
        let w_max = weights.max_abs();
        if w_max == 0.0 {
            return Err(CrossbarError::UnmappableWeights {
                reason: "all-zero weight matrix has no scale",
            });
        }
        let (m, n) = weights.shape();
        let grid_rows = m.div_ceil(tile_rows);
        let grid_cols = n.div_ceil(tile_cols);
        let mut tiles = Vec::with_capacity(grid_rows);
        for tr in 0..grid_rows {
            let r0 = tr * tile_rows;
            let r1 = (r0 + tile_rows).min(m);
            let mut row_tiles = Vec::with_capacity(grid_cols);
            for tc in 0..grid_cols {
                let c0 = tc * tile_cols;
                let c1 = (c0 + tile_cols).min(n);
                // Normalise the sub-block by the *global* weight maximum so
                // every tile shares one scale and partial sums compose.
                let block =
                    Matrix::from_fn(r1 - r0, c1 - c0, |i, j| weights[(r0 + i, c0 + j)] / w_max);
                row_tiles.push(CrossbarArray::program_with_unit_scale(&block, device, rng)?);
            }
            tiles.push(row_tiles);
        }
        Ok(TiledCrossbar {
            tiles,
            tile_rows,
            tile_cols,
            num_outputs: m,
            num_inputs: n,
        })
    }

    /// Number of logical output rows.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of logical input columns.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of physical tiles.
    pub fn num_tiles(&self) -> usize {
        self.tiles.iter().map(Vec::len).sum()
    }

    /// The effective logical weight matrix realised across the tiles
    /// (de-normalised back to the original weight units).
    pub fn effective_weights(&self, global_w_max: f64) -> Matrix {
        let mut w = Matrix::zeros(self.num_outputs, self.num_inputs);
        for (tr, row_tiles) in self.tiles.iter().enumerate() {
            for (tc, tile) in row_tiles.iter().enumerate() {
                let eff = tile.effective_weights();
                for i in 0..eff.rows() {
                    for j in 0..eff.cols() {
                        w[(tr * self.tile_rows + i, tc * self.tile_cols + j)] =
                            eff[(i, j)] * global_w_max;
                    }
                }
            }
        }
        w
    }

    /// Logical MVM: per-tile MVMs with digital accumulation of column-tile
    /// partial sums, in *normalised* weight units (multiply by the global
    /// weight max to recover original units).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InputLenMismatch`] on a length mismatch.
    pub fn mvm(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.num_inputs {
            return Err(CrossbarError::InputLenMismatch {
                expected: self.num_inputs,
                got: v.len(),
            });
        }
        let mut out = vec![0.0; self.num_outputs];
        for (tr, row_tiles) in self.tiles.iter().enumerate() {
            for (tc, tile) in row_tiles.iter().enumerate() {
                let c0 = tc * self.tile_cols;
                let c1 = (c0 + self.tile_cols).min(self.num_inputs);
                let partial = tile.checked_mvm(&v[c0..c1])?;
                for (i, p) in partial.iter().enumerate() {
                    out[tr * self.tile_rows + i] += p;
                }
            }
        }
        Ok(out)
    }

    /// Total current over all tiles (shared supply rail) — the tiled
    /// Eq. 5.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InputLenMismatch`] on a length mismatch.
    pub fn total_current(&self, v: &[f64]) -> Result<f64> {
        if v.len() != self.num_inputs {
            return Err(CrossbarError::InputLenMismatch {
                expected: self.num_inputs,
                got: v.len(),
            });
        }
        let mut total = 0.0;
        for row_tiles in &self.tiles {
            for (tc, tile) in row_tiles.iter().enumerate() {
                let c0 = tc * self.tile_cols;
                let c1 = (c0 + self.tile_cols).min(self.num_inputs);
                total += tile.total_current(&v[c0..c1])?;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(9)
    }

    fn weights() -> Matrix {
        Matrix::from_fn(5, 7, |i, j| ((i * 7 + j) as f64 * 0.37).sin())
    }

    #[test]
    fn tiled_mvm_matches_monolithic() {
        let w = weights();
        let mono = CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng()).unwrap();
        let tiled = TiledCrossbar::program(&w, 2, 3, &DeviceModel::ideal(), &mut rng()).unwrap();
        let v: Vec<f64> = (0..7).map(|j| (j as f64 * 0.1) + 0.1).collect();
        let got = tiled.mvm(&v).unwrap();
        let want = mono.mvm(&v);
        let w_max = w.max_abs();
        for (g, e) in got.iter().zip(&want) {
            assert!((g * w_max - e).abs() < 1e-9, "tiled {g} vs mono {e}");
        }
    }

    #[test]
    fn tiled_power_matches_monolithic_for_gmin_zero() {
        // With g_min = 0 the supply current is scale-linear in the column
        // norms, and tiling splits each column's conductance without loss.
        let w = weights();
        let mono = CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng()).unwrap();
        let tiled = TiledCrossbar::program(&w, 2, 3, &DeviceModel::ideal(), &mut rng()).unwrap();
        let v: Vec<f64> = (0..7).map(|j| 0.05 * j as f64 + 0.2).collect();
        let mono_i = mono.total_current(&v).unwrap();
        let tiled_i = tiled.total_current(&v).unwrap();
        assert!((mono_i - tiled_i).abs() < 1e-9, "{mono_i} vs {tiled_i}");
    }

    #[test]
    fn tile_count_is_grid_size() {
        let w = weights(); // 5x7
        let tiled = TiledCrossbar::program(&w, 2, 3, &DeviceModel::ideal(), &mut rng()).unwrap();
        // ceil(5/2) * ceil(7/3) = 3 * 3.
        assert_eq!(tiled.num_tiles(), 9);
        assert_eq!(tiled.num_outputs(), 5);
        assert_eq!(tiled.num_inputs(), 7);
    }

    #[test]
    fn effective_weights_roundtrip() {
        let w = weights();
        let tiled = TiledCrossbar::program(&w, 3, 4, &DeviceModel::ideal(), &mut rng()).unwrap();
        let eff = tiled.effective_weights(w.max_abs());
        assert!(eff.approx_eq(&w, 1e-9));
    }

    #[test]
    fn single_tile_degenerates_to_monolithic() {
        let w = weights();
        let tiled = TiledCrossbar::program(&w, 10, 10, &DeviceModel::ideal(), &mut rng()).unwrap();
        assert_eq!(tiled.num_tiles(), 1);
    }

    #[test]
    fn zero_block_tile_handled() {
        // A block of zeros inside an otherwise nonzero matrix.
        let mut w = Matrix::zeros(4, 4);
        w[(0, 0)] = 1.0; // only the top-left tile has signal
        let tiled = TiledCrossbar::program(&w, 2, 2, &DeviceModel::ideal(), &mut rng()).unwrap();
        let eff = tiled.effective_weights(1.0);
        assert!(eff.approx_eq(&w, 1e-9));
        let out = tiled.mvm(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!((out[0] - 1.0).abs() < 1e-9);
        assert!(out[1].abs() < 1e-9);
    }

    #[test]
    fn validation_errors() {
        let w = weights();
        assert!(TiledCrossbar::program(&w, 0, 3, &DeviceModel::ideal(), &mut rng()).is_err());
        assert!(TiledCrossbar::program(&w, 3, 0, &DeviceModel::ideal(), &mut rng()).is_err());
        assert!(TiledCrossbar::program(
            &Matrix::zeros(2, 2),
            2,
            2,
            &DeviceModel::ideal(),
            &mut rng()
        )
        .is_err());
        let tiled = TiledCrossbar::program(&w, 2, 3, &DeviceModel::ideal(), &mut rng()).unwrap();
        assert!(tiled.mvm(&[0.0; 3]).is_err());
        assert!(tiled.total_current(&[0.0; 3]).is_err());
    }
}
