//! Property-based tests of the evaluation backends: the blocked kernel
//! must be *bit-identical* to the naive per-vector loop — not merely
//! close — for every crossbar shape, batch size, tile configuration,
//! seed, and noise stream. Exact `==` on the floats everywhere.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_crossbar::array::CrossbarArray;
use xbar_crossbar::backend::{BatchConfig, BlockedBackend, EvalBackend, NaiveBackend};
use xbar_crossbar::device::DeviceModel;
use xbar_crossbar::power::PowerModel;
use xbar_linalg::Matrix;

fn programmed(m: usize, n: usize, seed: u64, device: &DeviceModel) -> CrossbarArray {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut w = Matrix::random_uniform(m, n, -1.0, 1.0, &mut rng);
    if w.max_abs() == 0.0 {
        w[(0, 0)] = 0.5;
    }
    CrossbarArray::program(&w, device, &mut rng).unwrap()
}

fn sample_batch(batch: usize, n: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB0);
    Matrix::random_uniform(batch, n, -1.0, 1.0, &mut rng)
}

/// The oracle's per-query noise-stream scheme: one ChaCha stream per
/// batch index, so draws are independent of batching and backend.
fn streams(seed: u64) -> impl FnMut(usize) -> ChaCha8Rng {
    move |i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(i as u64 + 1);
        rng
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Noiseless MVM and power: blocked == naive, bit for bit, for any
    /// shape, batch size, and tile configuration (including tiles larger
    /// than the problem).
    #[test]
    fn blocked_matches_naive_bit_identically(
        m in 1usize..10,
        n in 1usize..12,
        batch in 1usize..9,
        block_outputs in 1usize..12,
        block_samples in 1usize..10,
        seed in any::<u64>(),
    ) {
        let array = programmed(m, n, seed, &DeviceModel::ideal());
        let inputs = sample_batch(batch, n, seed);
        let refs: Vec<&[f64]> = (0..batch).map(|b| inputs.row(b)).collect();

        let naive = NaiveBackend;
        let blocked = BlockedBackend::new(
            BatchConfig::default()
                .with_block_outputs(block_outputs)
                .with_block_samples(block_samples),
        )
        .unwrap();

        let out_naive = naive.mvm_batch(&array, &refs).unwrap();
        let out_blocked = blocked.mvm_batch(&array, &refs).unwrap();
        prop_assert_eq!(&out_naive, &out_blocked);

        let model = PowerModel::default();
        let p_naive = naive.power_batch(&model, &array, &refs).unwrap();
        let p_blocked = blocked.power_batch(&model, &array, &refs).unwrap();
        prop_assert_eq!(&p_naive, &p_blocked);

        // Every batch entry equals the sequential per-vector call
        // exactly — the contract that lets callers split or merge
        // batches (including the serve coalescer) without changing
        // results.
        for (b, &input) in refs.iter().enumerate() {
            prop_assert_eq!(&out_naive[b], &array.checked_mvm(input).unwrap());
            prop_assert_eq!(p_naive[b], model.exact(&array, input).unwrap());
        }
    }

    /// Noisy MVM and power: with the same per-sample stream factory the
    /// two backends draw identical noise, so outputs are bit-identical —
    /// and equal to the sequential loop seeded per sample the same way.
    #[test]
    fn noisy_blocked_matches_naive_bit_identically(
        m in 1usize..8,
        n in 1usize..10,
        batch in 1usize..7,
        block_samples in 1usize..8,
        seed in any::<u64>(),
    ) {
        let device = DeviceModel::ideal().with_read_sigma(0.05);
        let array = programmed(m, n, seed, &device);
        let inputs = sample_batch(batch, n, seed);
        let refs: Vec<&[f64]> = (0..batch).map(|b| inputs.row(b)).collect();

        let naive = NaiveBackend;
        let blocked = BlockedBackend::new(
            BatchConfig::default().with_block_samples(block_samples),
        )
        .unwrap();

        let nv = naive.noisy_mvm_batch(&array, &refs, &mut streams(seed)).unwrap();
        let bv = blocked.noisy_mvm_batch(&array, &refs, &mut streams(seed)).unwrap();
        prop_assert_eq!(&nv, &bv);

        let model = PowerModel::default().with_noise(0.02).with_averages(2);
        let np = naive
            .noisy_power_batch(&model, &array, &refs, &mut streams(seed ^ 0x5))
            .unwrap();
        let bp = blocked
            .noisy_power_batch(&model, &array, &refs, &mut streams(seed ^ 0x5))
            .unwrap();
        prop_assert_eq!(&np, &bp);

        let mut make = streams(seed);
        for (b, &input) in refs.iter().enumerate() {
            let sequential = array.noisy_mvm(input, &mut make(b)).unwrap();
            prop_assert_eq!(&nv[b], &sequential);
        }
    }

    /// Malformed batches fail identically on both backends: a single
    /// wrong-length row rejects the whole batch, on every backend, with
    /// no partial work.
    #[test]
    fn length_errors_reject_whole_batch_on_both_backends(
        m in 1usize..5,
        n in 2usize..8,
        batch in 1usize..5,
        seed in any::<u64>(),
    ) {
        let array = programmed(m, n, seed, &DeviceModel::ideal());
        let inputs = sample_batch(batch, n, seed);
        let short: Vec<f64> = vec![0.0; n - 1];
        let mut refs: Vec<&[f64]> = (0..batch).map(|b| inputs.row(b)).collect();
        refs.push(&short);

        for backend in [
            Box::new(NaiveBackend) as Box<dyn EvalBackend>,
            Box::new(BlockedBackend::default()),
        ] {
            prop_assert!(backend.mvm_batch(&array, &refs).is_err());
            prop_assert!(backend
                .power_batch(&PowerModel::default(), &array, &refs)
                .is_err());
        }
    }
}
