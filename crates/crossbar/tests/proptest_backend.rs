//! Property-based tests of the evaluation backends: the blocked and
//! parallel kernels must be *bit-identical* to the naive per-vector
//! loop — not merely close — for every crossbar shape, batch size, tile
//! configuration, thread count, batch split, seed, and noise stream.
//! Exact `==` on the floats everywhere. Plus the prepared-handle
//! staleness contract: reuse across `map_conductances` (the primitive
//! under re-programming, fault application, and drift redeployment) is
//! an error, never silently wrong numbers.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_crossbar::array::CrossbarArray;
use xbar_crossbar::backend::{
    BatchConfig, BlockedBackend, EvalBackend, NaiveBackend, ParallelBackend,
};
use xbar_crossbar::device::DeviceModel;
use xbar_crossbar::power::PowerModel;
use xbar_crossbar::CrossbarError;
use xbar_linalg::Matrix;

fn programmed(m: usize, n: usize, seed: u64, device: &DeviceModel) -> CrossbarArray {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut w = Matrix::random_uniform(m, n, -1.0, 1.0, &mut rng);
    if w.max_abs() == 0.0 {
        w[(0, 0)] = 0.5;
    }
    CrossbarArray::program(&w, device, &mut rng).unwrap()
}

fn sample_batch(batch: usize, n: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB0);
    Matrix::random_uniform(batch, n, -1.0, 1.0, &mut rng)
}

/// The oracle's per-query noise-stream scheme: one ChaCha stream per
/// batch index, so draws are independent of batching and backend.
fn streams(seed: u64) -> impl FnMut(usize) -> ChaCha8Rng {
    move |i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(i as u64 + 1);
        rng
    }
}

/// Prepare-once shorthand: the equivalence properties compare backends
/// on single batches, where "prepare, evaluate, drop" is the lifecycle.
fn mvm<B: EvalBackend + ?Sized>(
    backend: &B,
    array: &CrossbarArray,
    inputs: &[&[f64]],
) -> Result<Vec<Vec<f64>>, CrossbarError> {
    let prepared = backend.prepare(array)?;
    backend.mvm_prepared(&prepared, array, inputs)
}

fn power<B: EvalBackend + ?Sized>(
    backend: &B,
    model: &PowerModel,
    array: &CrossbarArray,
    inputs: &[&[f64]],
) -> Result<Vec<f64>, CrossbarError> {
    let prepared = backend.prepare(array)?;
    backend.power_prepared(model, &prepared, array, inputs)
}

fn noisy_mvm<B: EvalBackend + ?Sized>(
    backend: &B,
    array: &CrossbarArray,
    inputs: &[&[f64]],
    mut streams: impl FnMut(usize) -> ChaCha8Rng,
) -> Result<Vec<Vec<f64>>, CrossbarError> {
    let prepared = backend.prepare(array)?;
    backend.noisy_mvm_prepared(&prepared, array, inputs, &mut streams)
}

fn noisy_power<B: EvalBackend + ?Sized>(
    backend: &B,
    model: &PowerModel,
    array: &CrossbarArray,
    inputs: &[&[f64]],
    mut streams: impl FnMut(usize) -> ChaCha8Rng,
) -> Result<Vec<f64>, CrossbarError> {
    let prepared = backend.prepare(array)?;
    backend.noisy_power_prepared(model, &prepared, array, inputs, &mut streams)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Noiseless MVM and power: blocked == naive, bit for bit, for any
    /// shape, batch size, and tile configuration (including tiles larger
    /// than the problem).
    #[test]
    fn blocked_matches_naive_bit_identically(
        m in 1usize..10,
        n in 1usize..12,
        batch in 1usize..9,
        block_outputs in 1usize..12,
        block_samples in 1usize..10,
        seed in any::<u64>(),
    ) {
        let array = programmed(m, n, seed, &DeviceModel::ideal());
        let inputs = sample_batch(batch, n, seed);
        let refs: Vec<&[f64]> = (0..batch).map(|b| inputs.row(b)).collect();

        let naive = NaiveBackend;
        let blocked = BlockedBackend::new(
            BatchConfig::default()
                .with_block_outputs(block_outputs)
                .with_block_samples(block_samples),
        )
        .unwrap();

        let out_naive = mvm(&naive, &array, &refs).unwrap();
        let out_blocked = mvm(&blocked, &array, &refs).unwrap();
        prop_assert_eq!(&out_naive, &out_blocked);

        let model = PowerModel::default();
        let p_naive = power(&naive, &model, &array, &refs).unwrap();
        let p_blocked = power(&blocked, &model, &array, &refs).unwrap();
        prop_assert_eq!(&p_naive, &p_blocked);

        // Every batch entry equals the sequential per-vector call
        // exactly — the contract that lets callers split or merge
        // batches (including the serve coalescer) without changing
        // results.
        for (b, &input) in refs.iter().enumerate() {
            prop_assert_eq!(&out_naive[b], &array.checked_mvm(input).unwrap());
            prop_assert_eq!(p_naive[b], model.exact(&array, input).unwrap());
        }
    }

    /// Noisy MVM and power: with the same per-sample stream factory the
    /// two backends draw identical noise, so outputs are bit-identical —
    /// and equal to the sequential loop seeded per sample the same way.
    #[test]
    fn noisy_blocked_matches_naive_bit_identically(
        m in 1usize..8,
        n in 1usize..10,
        batch in 1usize..7,
        block_samples in 1usize..8,
        seed in any::<u64>(),
    ) {
        let device = DeviceModel::ideal().with_read_sigma(0.05);
        let array = programmed(m, n, seed, &device);
        let inputs = sample_batch(batch, n, seed);
        let refs: Vec<&[f64]> = (0..batch).map(|b| inputs.row(b)).collect();

        let naive = NaiveBackend;
        let blocked = BlockedBackend::new(
            BatchConfig::default().with_block_samples(block_samples),
        )
        .unwrap();

        let nv = noisy_mvm(&naive, &array, &refs, streams(seed)).unwrap();
        let bv = noisy_mvm(&blocked, &array, &refs, streams(seed)).unwrap();
        prop_assert_eq!(&nv, &bv);

        let model = PowerModel::default().with_noise(0.02).with_averages(2);
        let np = noisy_power(&naive, &model, &array, &refs, streams(seed ^ 0x5)).unwrap();
        let bp = noisy_power(&blocked, &model, &array, &refs, streams(seed ^ 0x5)).unwrap();
        prop_assert_eq!(&np, &bp);

        let mut make = streams(seed);
        for (b, &input) in refs.iter().enumerate() {
            let sequential = array.noisy_mvm(input, &mut make(b)).unwrap();
            prop_assert_eq!(&nv[b], &sequential);
        }
    }

    /// The parallel kernel == naive, bit for bit, at any thread count
    /// (including auto and heavy oversubscription), any tile
    /// configuration, and any split of the batch — both the sample-chunk
    /// path (wide batches) and the row-block path (narrow batches) are
    /// crossed as `batch` and `threads` vary.
    #[test]
    fn parallel_matches_naive_across_thread_counts_and_splits(
        m in 1usize..12,
        n in 1usize..12,
        batch in 1usize..10,
        threads in 0usize..9,
        block_outputs in 1usize..8,
        split_at in 0usize..10,
        seed in any::<u64>(),
    ) {
        let array = programmed(m, n, seed, &DeviceModel::ideal());
        let inputs = sample_batch(batch, n, seed);
        let refs: Vec<&[f64]> = (0..batch).map(|b| inputs.row(b)).collect();

        let naive = NaiveBackend;
        let parallel = ParallelBackend::new(
            BatchConfig::default().with_block_outputs(block_outputs),
            threads,
        )
        .unwrap();

        let out_naive = mvm(&naive, &array, &refs).unwrap();
        let whole = mvm(&parallel, &array, &refs).unwrap();
        prop_assert_eq!(&out_naive, &whole);

        let model = PowerModel::default();
        prop_assert_eq!(
            power(&naive, &model, &array, &refs).unwrap(),
            power(&parallel, &model, &array, &refs).unwrap()
        );

        // Splitting the batch at an arbitrary point and evaluating the
        // halves separately (reusing one prepared handle) changes
        // nothing.
        let cut = split_at % (batch + 1);
        let prepared = parallel.prepare(&array).unwrap();
        let mut halves = parallel.mvm_prepared(&prepared, &array, &refs[..cut]).unwrap();
        halves.extend(parallel.mvm_prepared(&prepared, &array, &refs[cut..]).unwrap());
        prop_assert_eq!(&out_naive, &halves);
    }

    /// The staleness contract: once the array's conductances change —
    /// `map_conductances` is the primitive beneath re-programming,
    /// `FaultPlan::apply`, transient perturbation, and drift
    /// redeployment — every prepared handle taken before the change is
    /// rejected with `StalePrepared` on all four entry points. Never
    /// silently wrong numbers: the error is returned before any
    /// evaluation work.
    #[test]
    fn stale_prepared_reuse_is_impossible(
        m in 1usize..8,
        n in 1usize..10,
        batch in 1usize..6,
        backend_pick in 0usize..3,
        identity_map in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let device = DeviceModel::ideal().with_read_sigma(0.01);
        let array = programmed(m, n, seed, &device);
        let inputs = sample_batch(batch, n, seed);
        let refs: Vec<&[f64]> = (0..batch).map(|b| inputs.row(b)).collect();
        let backend: Box<dyn EvalBackend> = match backend_pick {
            0 => Box::new(NaiveBackend),
            1 => Box::new(BlockedBackend::default()),
            _ => Box::new(ParallelBackend::new(BatchConfig::default(), 2).unwrap()),
        };

        let prepared = backend.prepare(&array).unwrap();
        prop_assert_eq!(prepared.generation(), array.generation());

        // Even an identity remap is a new generation: a false hit would
        // silently reuse stale weights, a false miss only costs one
        // re-prepare.
        let changed = if identity_map {
            array.map_conductances(|_, g| g)
        } else {
            array.map_conductances(|_, g| g * 0.9)
        };
        let model = PowerModel::default();
        let err = backend.mvm_prepared(&prepared, &changed, &refs);
        prop_assert!(matches!(err, Err(CrossbarError::StalePrepared { .. })), "{:?}", err);
        prop_assert!(backend.power_prepared(&model, &prepared, &changed, &refs).is_err());
        prop_assert!(backend
            .noisy_mvm_prepared(&prepared, &changed, &refs, &mut streams(seed))
            .is_err());
        prop_assert!(backend
            .noisy_power_prepared(&model, &prepared, &changed, &refs, &mut streams(seed))
            .is_err());

        // A fresh handle for the new generation works, and the old
        // handle still serves its own generation.
        let refreshed = backend.prepare(&changed).unwrap();
        prop_assert!(backend.mvm_prepared(&refreshed, &changed, &refs).is_ok());
        prop_assert!(backend.mvm_prepared(&prepared, &array, &refs).is_ok());
    }

    /// Malformed batches fail identically on every backend: a single
    /// wrong-length row rejects the whole batch with no partial work.
    #[test]
    fn length_errors_reject_whole_batch_on_all_backends(
        m in 1usize..5,
        n in 2usize..8,
        batch in 1usize..5,
        seed in any::<u64>(),
    ) {
        let array = programmed(m, n, seed, &DeviceModel::ideal());
        let inputs = sample_batch(batch, n, seed);
        let short: Vec<f64> = vec![0.0; n - 1];
        let mut refs: Vec<&[f64]> = (0..batch).map(|b| inputs.row(b)).collect();
        refs.push(&short);

        for backend in [
            Box::new(NaiveBackend) as Box<dyn EvalBackend>,
            Box::new(BlockedBackend::default()),
            Box::new(ParallelBackend::new(BatchConfig::default(), 2).unwrap()),
        ] {
            prop_assert!(mvm(backend.as_ref(), &array, &refs).is_err());
            prop_assert!(power(backend.as_ref(), &PowerModel::default(), &array, &refs)
                .is_err());
        }
    }
}
