//! Property-based tests of the crossbar simulator's physical invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_crossbar::adc::Quantizer;
use xbar_crossbar::array::CrossbarArray;
use xbar_crossbar::device::DeviceModel;
use xbar_crossbar::mapping::WeightMapping;
use xbar_crossbar::tile::TiledCrossbar;
use xbar_linalg::Matrix;

fn seeded_weights(m: usize, n: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut w = Matrix::random_uniform(m, n, -1.0, 1.0, &mut rng);
    if w.max_abs() == 0.0 {
        w[(0, 0)] = 0.5;
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conductances are always within the device's physical bounds, for
    /// any device configuration and any weights.
    #[test]
    fn conductances_stay_physical(
        m in 1usize..6,
        n in 1usize..8,
        seed in any::<u64>(),
        levels in prop::option::of(2u32..16),
        stuck in prop::sample::select(vec![0.0, 0.1, 0.5]),
    ) {
        let w = seeded_weights(m, n, seed);
        let device = DeviceModel {
            levels,
            stuck_rate: stuck,
            ..DeviceModel::ideal()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF0);
        let xbar = CrossbarArray::program(&w, &device, &mut rng).unwrap();
        for &g in xbar.g_plus().as_slice().iter().chain(xbar.g_minus().as_slice()) {
            prop_assert!((0.0..=1.0).contains(&g), "conductance {g} out of bounds");
        }
    }

    /// The mapping round-trips any weight exactly (ideal device).
    #[test]
    fn mapping_roundtrip(
        m in 1usize..5,
        n in 1usize..8,
        seed in any::<u64>(),
        g_min in prop::sample::select(vec![0.0, 0.05, 0.2]),
    ) {
        let w = seeded_weights(m, n, seed);
        let device = DeviceModel { g_min, g_max: 1.0, ..DeviceModel::ideal() };
        let mapping = WeightMapping::for_weights(&w, &device).unwrap();
        for &wi in w.as_slice() {
            let (p, q) = mapping.to_conductances(wi);
            prop_assert!((mapping.to_weight(p, q) - wi).abs() < 1e-10);
            // One-sided rule: at most one side carries signal.
            prop_assert!(p >= g_min - 1e-15 && q >= g_min - 1e-15);
            prop_assert!((p - g_min).abs() < 1e-15 || (q - g_min).abs() < 1e-15);
        }
    }

    /// Total current is linear in the input (superposition — Kirchhoff).
    #[test]
    fn total_current_superposition(
        m in 1usize..5,
        n in 2usize..8,
        seed in any::<u64>(),
        alpha in 0.0f64..2.0,
    ) {
        let w = seeded_weights(m, n, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF1);
        let xbar = CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).unwrap();
        let mut rng2 = ChaCha8Rng::seed_from_u64(seed ^ 0xF2);
        let a = Matrix::random_uniform(1, n, 0.0, 1.0, &mut rng2).into_vec();
        let b = Matrix::random_uniform(1, n, 0.0, 1.0, &mut rng2).into_vec();
        let ia = xbar.total_current(&a).unwrap();
        let ib = xbar.total_current(&b).unwrap();
        let combined: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| alpha * x + y).collect();
        let ic = xbar.total_current(&combined).unwrap();
        prop_assert!((ic - (alpha * ia + ib)).abs() < 1e-9);
    }

    /// Tiling is exact for ideal devices: MVM and total current agree with
    /// the monolithic array for every tile shape.
    #[test]
    fn tiling_is_exact(
        m in 1usize..7,
        n in 1usize..12,
        tile_r in 1usize..5,
        tile_c in 1usize..6,
        seed in any::<u64>(),
    ) {
        let w = seeded_weights(m, n, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF3);
        let mono = CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).unwrap();
        let tiled = TiledCrossbar::program(&w, tile_r, tile_c, &DeviceModel::ideal(), &mut rng)
            .unwrap();
        let v: Vec<f64> = (0..n).map(|j| ((j + 1) as f64 * 0.173).fract()).collect();
        let mono_out = mono.mvm(&v);
        let tiled_out = tiled.mvm(&v).unwrap();
        let w_max = w.max_abs();
        for (a, b) in mono_out.iter().zip(&tiled_out) {
            prop_assert!((a - b * w_max).abs() < 1e-9);
        }
        let ia = mono.total_current(&v).unwrap();
        let ib = tiled.total_current(&v).unwrap();
        prop_assert!((ia - ib).abs() < 1e-9);
    }

    /// Quantisation error is bounded by half a step, and quantisation is
    /// idempotent.
    #[test]
    fn quantizer_bounded_and_idempotent(
        bits in 1u32..12,
        x in -2.0f64..2.0,
    ) {
        let q = Quantizer::new(bits, -1.0, 1.0).unwrap();
        let once = q.quantize(x);
        prop_assert!((q.quantize(once) - once).abs() < 1e-15);
        let clamped = x.clamp(-1.0, 1.0);
        prop_assert!((once - clamped).abs() <= q.step() / 2.0 + 1e-12);
    }

    /// Effective weights of a quantised array deviate from the targets by
    /// at most half a conductance step (in weight units).
    #[test]
    fn quantised_weight_error_bounded(
        m in 1usize..4,
        n in 1usize..6,
        levels in 2u32..16,
        seed in any::<u64>(),
    ) {
        let w = seeded_weights(m, n, seed);
        let device = DeviceModel::ideal().with_levels(levels);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF4);
        let xbar = CrossbarArray::program(&w, &device, &mut rng).unwrap();
        let eff = xbar.effective_weights();
        let step_w = (1.0 / xbar.mapping().scale) / (levels - 1) as f64;
        for (a, b) in eff.as_slice().iter().zip(w.as_slice()) {
            prop_assert!((a - b).abs() <= step_w / 2.0 + 1e-12);
        }
    }
}
