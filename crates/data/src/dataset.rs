use crate::{DataError, ImageShape, Result};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use xbar_linalg::Matrix;

/// A labelled dataset: a `samples x features` input matrix plus one integer
/// class label per sample, with an optional spatial [`ImageShape`].
///
/// # Example
///
/// ```
/// use xbar_data::Dataset;
/// use xbar_linalg::Matrix;
///
/// let inputs = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// let ds = Dataset::new(inputs, vec![0, 1], 2)?;
/// assert_eq!(ds.len(), 2);
/// let one_hot = ds.one_hot_targets();
/// assert_eq!(one_hot.row(0), &[1.0, 0.0]);
/// # Ok::<(), xbar_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    inputs: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
    image_shape: Option<ImageShape>,
}

impl Dataset {
    /// Creates a dataset, validating that labels match the inputs.
    ///
    /// # Errors
    ///
    /// * [`DataError::SampleCountMismatch`] if `labels.len()` differs from
    ///   the number of input rows.
    /// * [`DataError::LabelOutOfRange`] if any label is `>= num_classes`.
    pub fn new(inputs: Matrix, labels: Vec<usize>, num_classes: usize) -> Result<Self> {
        if inputs.rows() != labels.len() {
            return Err(DataError::SampleCountMismatch {
                inputs: inputs.rows(),
                labels: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::LabelOutOfRange {
                label: bad,
                num_classes,
            });
        }
        Ok(Dataset {
            inputs,
            labels,
            num_classes,
            image_shape: None,
        })
    }

    /// Attaches a spatial shape to the feature dimension.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ShapeMismatch`] if `shape.len()` differs from
    /// the number of features.
    pub fn with_image_shape(mut self, shape: ImageShape) -> Result<Self> {
        if shape.len() != self.inputs.cols() {
            return Err(DataError::ShapeMismatch {
                features: self.inputs.cols(),
                shape_len: shape.len(),
            });
        }
        self.image_shape = Some(shape);
        Ok(self)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has zero samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of input features per sample.
    pub fn num_features(&self) -> usize {
        self.inputs.cols()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The input matrix (`samples x features`).
    pub fn inputs(&self) -> &Matrix {
        &self.inputs
    }

    /// The labels, one per sample.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The attached spatial shape, if any.
    pub fn image_shape(&self) -> Option<ImageShape> {
        self.image_shape
    }

    /// One sample's feature row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn input(&self, i: usize) -> &[f64] {
        self.inputs.row(i)
    }

    /// One sample's label.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// One-hot target matrix (`samples x classes`).
    pub fn one_hot_targets(&self) -> Matrix {
        let mut t = Matrix::zeros(self.len(), self.num_classes);
        for (i, &l) in self.labels.iter().enumerate() {
            t[(i, l)] = 1.0;
        }
        t
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// A new dataset holding the given sample indices (repeats allowed).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            inputs: self.inputs.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
            image_shape: self.image_shape,
        }
    }

    /// Shuffles the samples in place with the supplied RNG.
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let shuffled = self.subset(&order);
        *self = shuffled;
    }

    /// Splits into `(first, second)` at sample index `at`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSplit`] if `at > self.len()`.
    pub fn split_at(&self, at: usize) -> Result<TrainTestSplit> {
        if at > self.len() {
            return Err(DataError::InvalidSplit {
                at,
                len: self.len(),
            });
        }
        let train_idx: Vec<usize> = (0..at).collect();
        let test_idx: Vec<usize> = (at..self.len()).collect();
        Ok(TrainTestSplit {
            train: self.subset(&train_idx),
            test: self.subset(&test_idx),
        })
    }

    /// Splits into train/test with the given train fraction in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSplit`] if `frac` is not a finite value
    /// in `[0, 1]`.
    pub fn split_frac(&self, frac: f64) -> Result<TrainTestSplit> {
        if !(0.0..=1.0).contains(&frac) {
            return Err(DataError::InvalidSplit {
                at: usize::MAX,
                len: self.len(),
            });
        }
        self.split_at((self.len() as f64 * frac).round() as usize)
    }

    /// Iterator over `(inputs, labels)` minibatches of at most
    /// `batch_size` samples, in order.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = (Matrix, &[usize])> + '_ {
        assert!(batch_size > 0, "batch_size must be positive");
        (0..self.len()).step_by(batch_size).map(move |start| {
            let end = (start + batch_size).min(self.len());
            (self.inputs.slice_rows(start, end), &self.labels[start..end])
        })
    }
}

/// The result of splitting a [`Dataset`] into train and test portions.
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// The training portion.
    pub train: Dataset,
    /// The held-out test portion.
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy() -> Dataset {
        let inputs = Matrix::from_rows(&[
            &[0.0, 0.1],
            &[1.0, 1.1],
            &[2.0, 2.1],
            &[3.0, 3.1],
            &[4.0, 4.1],
        ]);
        Dataset::new(inputs, vec![0, 1, 2, 0, 1], 3).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 5);
        assert!(!ds.is_empty());
        assert_eq!(ds.num_features(), 2);
        assert_eq!(ds.num_classes(), 3);
        assert_eq!(ds.input(2), &[2.0, 2.1]);
        assert_eq!(ds.label(2), 2);
    }

    #[test]
    fn validation_errors() {
        let inputs = Matrix::zeros(2, 2);
        assert!(matches!(
            Dataset::new(inputs.clone(), vec![0], 2),
            Err(DataError::SampleCountMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(inputs, vec![0, 5], 2),
            Err(DataError::LabelOutOfRange { label: 5, .. })
        ));
    }

    #[test]
    fn one_hot_targets_rows_sum_to_one() {
        let t = toy().one_hot_targets();
        assert_eq!(t.shape(), (5, 3));
        for i in 0..5 {
            assert_eq!(t.row(i).iter().sum::<f64>(), 1.0);
        }
        assert_eq!(t[(2, 2)], 1.0);
        assert_eq!(t[(2, 0)], 0.0);
    }

    #[test]
    fn class_counts_known() {
        assert_eq!(toy().class_counts(), vec![2, 2, 1]);
    }

    #[test]
    fn subset_selects() {
        let s = toy().subset(&[4, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.input(0), &[4.0, 4.1]);
        assert_eq!(s.label(1), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut ds = toy();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        ds.shuffle(&mut rng);
        assert_eq!(ds.len(), 5);
        let mut counts = ds.class_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2, 2]);
        // Inputs still pair with their labels: feature value encodes origin.
        for i in 0..ds.len() {
            let idx = ds.input(i)[0] as usize;
            assert_eq!(ds.label(i), [0, 1, 2, 0, 1][idx]);
        }
    }

    #[test]
    fn split_at_partitions() {
        let split = toy().split_at(3).unwrap();
        assert_eq!(split.train.len(), 3);
        assert_eq!(split.test.len(), 2);
        assert_eq!(split.test.input(0), &[3.0, 3.1]);
        assert!(toy().split_at(6).is_err());
    }

    #[test]
    fn split_frac_rounds() {
        let split = toy().split_frac(0.8).unwrap();
        assert_eq!(split.train.len(), 4);
        assert_eq!(split.test.len(), 1);
        assert!(toy().split_frac(1.5).is_err());
        assert!(toy().split_frac(f64::NAN).is_err());
    }

    #[test]
    fn batches_cover_everything_in_order() {
        let ds = toy();
        let batches: Vec<_> = ds.batches(2).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0.rows(), 2);
        assert_eq!(batches[2].0.rows(), 1);
        assert_eq!(batches[2].1, &[1]);
        let total: usize = batches.iter().map(|(m, _)| m.rows()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn image_shape_attachment() {
        let inputs = Matrix::zeros(2, 4);
        let ds = Dataset::new(inputs, vec![0, 1], 2)
            .unwrap()
            .with_image_shape(ImageShape::new(2, 2, 1))
            .unwrap();
        assert_eq!(ds.image_shape().unwrap().len(), 4);
        let bad = Dataset::new(Matrix::zeros(2, 4), vec![0, 1], 2)
            .unwrap()
            .with_image_shape(ImageShape::new(3, 3, 1));
        assert!(matches!(bad, Err(DataError::ShapeMismatch { .. })));
    }

    #[test]
    fn subset_preserves_image_shape() {
        let ds = Dataset::new(Matrix::zeros(3, 4), vec![0, 1, 0], 2)
            .unwrap()
            .with_image_shape(ImageShape::new(2, 2, 1))
            .unwrap();
        assert!(ds.subset(&[1]).image_shape().is_some());
    }
}
