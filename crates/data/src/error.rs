use std::fmt;

/// Errors produced by dataset construction and I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// Labels and inputs disagree about the number of samples.
    SampleCountMismatch {
        /// Rows in the input matrix.
        inputs: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A label value is out of range for the declared number of classes.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes declared.
        num_classes: usize,
    },
    /// The declared image shape does not match the feature dimension.
    ShapeMismatch {
        /// Features per sample in the input matrix.
        features: usize,
        /// `height * width * channels` of the declared shape.
        shape_len: usize,
    },
    /// An I/O failure while reading or writing a dataset file.
    Io(std::io::Error),
    /// A malformed IDX file.
    InvalidIdx {
        /// What was wrong with it.
        reason: String,
    },
    /// A split fraction or index was out of range.
    InvalidSplit {
        /// The offending boundary.
        at: usize,
        /// The dataset size.
        len: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::SampleCountMismatch { inputs, labels } => {
                write!(f, "input rows ({inputs}) and labels ({labels}) disagree")
            }
            DataError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            DataError::ShapeMismatch {
                features,
                shape_len,
            } => write!(
                f,
                "feature dimension {features} does not match image shape length {shape_len}"
            ),
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::InvalidIdx { reason } => write!(f, "invalid idx file: {reason}"),
            DataError::InvalidSplit { at, len } => {
                write!(f, "split boundary {at} out of range for {len} samples")
            }
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = DataError::SampleCountMismatch {
            inputs: 3,
            labels: 4,
        };
        assert!(e.to_string().contains('3'));
        let e = DataError::InvalidIdx {
            reason: "bad magic".into(),
        };
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = DataError::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
    }
}
