//! The IDX binary container format (the format MNIST ships in).
//!
//! The procedural generators in [`crate::synth`] are the default data
//! source in this reproduction, but if real MNIST files are available they
//! can be loaded with [`load_images`]/[`load_labels`] and used unchanged —
//! the substitution is then a drop-in swap.
//!
//! Format: `[0x00, 0x00, dtype, ndims]` magic, then `ndims` big-endian
//! `u32` dimension sizes, then the data. Only `dtype = 0x08` (unsigned
//! byte) is supported, which is what MNIST uses.

use crate::{DataError, Dataset, ImageShape, Result};
use std::io::{Read, Write};
use xbar_linalg::Matrix;

/// Data type code for unsigned bytes in the IDX magic number.
const DTYPE_U8: u8 = 0x08;

/// A parsed IDX tensor of unsigned bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdxTensor {
    /// Dimension sizes, outermost first.
    pub dims: Vec<usize>,
    /// Flat data in row-major order.
    pub data: Vec<u8>,
}

impl IdxTensor {
    /// Total number of elements implied by `dims`.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Reads an IDX tensor of unsigned bytes from a reader.
///
/// # Errors
///
/// * [`DataError::Io`] on read failures.
/// * [`DataError::InvalidIdx`] on a malformed header or truncated data.
pub fn read_idx<R: Read>(mut reader: R) -> Result<IdxTensor> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic[0] != 0 || magic[1] != 0 {
        return Err(DataError::InvalidIdx {
            reason: format!("bad magic prefix {:02x}{:02x}", magic[0], magic[1]),
        });
    }
    if magic[2] != DTYPE_U8 {
        return Err(DataError::InvalidIdx {
            reason: format!("unsupported dtype 0x{:02x} (only u8 supported)", magic[2]),
        });
    }
    let ndims = magic[3] as usize;
    if ndims == 0 || ndims > 4 {
        return Err(DataError::InvalidIdx {
            reason: format!("unsupported dimensionality {ndims}"),
        });
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let mut b = [0u8; 4];
        reader.read_exact(&mut b)?;
        dims.push(u32::from_be_bytes(b) as usize);
    }
    let total: usize = dims.iter().product();
    let mut data = vec![0u8; total];
    reader.read_exact(&mut data)?;
    Ok(IdxTensor { dims, data })
}

/// Writes an IDX tensor of unsigned bytes.
///
/// # Errors
///
/// * [`DataError::InvalidIdx`] if `dims` is empty, has more than four
///   entries, or disagrees with `data.len()`.
/// * [`DataError::Io`] on write failures.
pub fn write_idx<W: Write>(mut writer: W, dims: &[usize], data: &[u8]) -> Result<()> {
    if dims.is_empty() || dims.len() > 4 {
        return Err(DataError::InvalidIdx {
            reason: format!("unsupported dimensionality {}", dims.len()),
        });
    }
    let total: usize = dims.iter().product();
    if total != data.len() {
        return Err(DataError::InvalidIdx {
            reason: format!("dims imply {total} elements but data has {}", data.len()),
        });
    }
    writer.write_all(&[0, 0, DTYPE_U8, dims.len() as u8])?;
    for &d in dims {
        writer.write_all(&(d as u32).to_be_bytes())?;
    }
    writer.write_all(data)?;
    Ok(())
}

/// Reads an MNIST-style image file (3-D tensor `count x height x width`)
/// into a `samples x (height*width)` matrix with pixels scaled to `[0, 1]`.
///
/// # Errors
///
/// Propagates [`read_idx`] errors; additionally rejects tensors that are
/// not 3-dimensional.
pub fn load_images<R: Read>(reader: R) -> Result<(Matrix, ImageShape)> {
    let t = read_idx(reader)?;
    if t.dims.len() != 3 {
        return Err(DataError::InvalidIdx {
            reason: format!("image file must be 3-d, got {}-d", t.dims.len()),
        });
    }
    let (count, h, w) = (t.dims[0], t.dims[1], t.dims[2]);
    let data: Vec<f64> = t.data.iter().map(|&b| b as f64 / 255.0).collect();
    Ok((
        Matrix::from_vec(count, h * w, data),
        ImageShape::new(h, w, 1),
    ))
}

/// Reads an MNIST-style label file (1-D tensor) into a label vector.
///
/// # Errors
///
/// Propagates [`read_idx`] errors; additionally rejects tensors that are
/// not 1-dimensional.
pub fn load_labels<R: Read>(reader: R) -> Result<Vec<usize>> {
    let t = read_idx(reader)?;
    if t.dims.len() != 1 {
        return Err(DataError::InvalidIdx {
            reason: format!("label file must be 1-d, got {}-d", t.dims.len()),
        });
    }
    Ok(t.data.iter().map(|&b| b as usize).collect())
}

/// Combines IDX image and label readers into a [`Dataset`].
///
/// # Errors
///
/// Propagates loader errors plus [`Dataset::new`] validation.
pub fn load_dataset<R1: Read, R2: Read>(
    images: R1,
    labels: R2,
    num_classes: usize,
) -> Result<Dataset> {
    let (inputs, shape) = load_images(images)?;
    let labels = load_labels(labels)?;
    Dataset::new(inputs, labels, num_classes)?.with_image_shape(shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_3d() {
        let dims = [2usize, 2, 3];
        let data: Vec<u8> = (0..12).collect();
        let mut buf = Vec::new();
        write_idx(&mut buf, &dims, &data).unwrap();
        let t = read_idx(buf.as_slice()).unwrap();
        assert_eq!(t.dims, dims);
        assert_eq!(t.data, data);
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn roundtrip_1d() {
        let mut buf = Vec::new();
        write_idx(&mut buf, &[3], &[7, 8, 9]).unwrap();
        let t = read_idx(buf.as_slice()).unwrap();
        assert_eq!(t.dims, vec![3]);
        assert_eq!(t.data, vec![7, 8, 9]);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [1u8, 0, 8, 1, 0, 0, 0, 0];
        assert!(matches!(
            read_idx(buf.as_slice()),
            Err(DataError::InvalidIdx { .. })
        ));
    }

    #[test]
    fn unsupported_dtype_rejected() {
        let buf = [0u8, 0, 0x0D, 1, 0, 0, 0, 0];
        assert!(matches!(
            read_idx(buf.as_slice()),
            Err(DataError::InvalidIdx { .. })
        ));
    }

    #[test]
    fn truncated_data_rejected() {
        let mut buf = Vec::new();
        write_idx(&mut buf, &[4], &[1, 2, 3, 4]).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_idx(buf.as_slice()).is_err());
    }

    #[test]
    fn write_validates_dims() {
        let mut buf = Vec::new();
        assert!(write_idx(&mut buf, &[], &[]).is_err());
        assert!(write_idx(&mut buf, &[2], &[1]).is_err());
        assert!(write_idx(&mut buf, &[1, 1, 1, 1, 1], &[1]).is_err());
    }

    #[test]
    fn load_images_scales_to_unit_interval() {
        let mut buf = Vec::new();
        write_idx(&mut buf, &[1, 2, 2], &[0, 128, 255, 64]).unwrap();
        let (m, shape) = load_images(buf.as_slice()).unwrap();
        assert_eq!(m.shape(), (1, 4));
        assert_eq!(shape, ImageShape::new(2, 2, 1));
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(0, 2)], 1.0);
        assert!((m[(0, 1)] - 128.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn load_dataset_end_to_end() {
        let mut img_buf = Vec::new();
        write_idx(&mut img_buf, &[2, 2, 2], &[0, 255, 0, 255, 255, 0, 255, 0]).unwrap();
        let mut lbl_buf = Vec::new();
        write_idx(&mut lbl_buf, &[2], &[0, 1]).unwrap();
        let ds = load_dataset(img_buf.as_slice(), lbl_buf.as_slice(), 2).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.num_features(), 4);
        assert_eq!(ds.labels(), &[0, 1]);
        assert!(ds.image_shape().is_some());
    }

    #[test]
    fn wrong_rank_rejected_by_loaders() {
        let mut buf = Vec::new();
        write_idx(&mut buf, &[4], &[1, 2, 3, 4]).unwrap();
        assert!(load_images(buf.as_slice()).is_err());
        let mut buf3 = Vec::new();
        write_idx(&mut buf3, &[1, 2, 2], &[1, 2, 3, 4]).unwrap();
        assert!(load_labels(buf3.as_slice()).is_err());
    }
}
