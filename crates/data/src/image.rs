use serde::{Deserialize, Serialize};

/// The spatial shape of image-like samples: `height x width x channels`,
/// stored channel-last in row-major order (HWC), matching how the flat
/// feature rows of a [`crate::Dataset`] are laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ImageShape {
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Number of colour channels (1 for grayscale, 3 for RGB).
    pub channels: usize,
}

impl ImageShape {
    /// Creates a new shape.
    pub fn new(height: usize, width: usize, channels: usize) -> Self {
        ImageShape {
            height,
            width,
            channels,
        }
    }

    /// Total number of scalar features (`height * width * channels`).
    pub fn len(&self) -> usize {
        self.height * self.width * self.channels
    }

    /// Whether the shape has zero features.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of pixel `(row, col)` in channel `ch` (HWC layout).
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    #[inline]
    pub fn index(&self, row: usize, col: usize, ch: usize) -> usize {
        assert!(
            row < self.height && col < self.width && ch < self.channels,
            "pixel ({row},{col},{ch}) out of range for {self:?}"
        );
        (row * self.width + col) * self.channels + ch
    }

    /// Inverse of [`ImageShape::index`]: `(row, col, channel)` of a flat
    /// feature index.
    ///
    /// # Panics
    ///
    /// Panics if `flat >= self.len()`.
    #[inline]
    pub fn coords(&self, flat: usize) -> (usize, usize, usize) {
        assert!(flat < self.len(), "flat index {flat} out of range");
        let ch = flat % self.channels;
        let pix = flat / self.channels;
        (pix / self.width, pix % self.width, ch)
    }
}

/// A single owned image with an explicit [`ImageShape`].
///
/// Used primarily by the procedural generators while rendering; training
/// code works on the flat rows of a [`crate::Dataset`] instead.
///
/// # Example
///
/// ```
/// use xbar_data::{Image, ImageShape};
///
/// let mut img = Image::zeros(ImageShape::new(2, 2, 1));
/// img.set(0, 1, 0, 0.5);
/// assert_eq!(img.get(0, 1, 0), 0.5);
/// assert_eq!(img.as_slice(), &[0.0, 0.5, 0.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    shape: ImageShape,
    data: Vec<f64>,
}

impl Image {
    /// Creates an all-zero image.
    pub fn zeros(shape: ImageShape) -> Self {
        Image {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Wraps existing flat data (HWC order).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: ImageShape, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), shape.len(), "image data length mismatch");
        Image { shape, data }
    }

    /// The image's shape.
    pub fn shape(&self) -> ImageShape {
        self.shape
    }

    /// Pixel value at `(row, col, ch)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize, ch: usize) -> f64 {
        self.data[self.shape.index(row, col, ch)]
    }

    /// Sets the pixel at `(row, col, ch)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, ch: usize, v: f64) {
        let i = self.shape.index(row, col, ch);
        self.data[i] = v;
    }

    /// Takes the elementwise maximum with `v` at the pixel (used for
    /// max-splat stroke rendering).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn splat_max(&mut self, row: usize, col: usize, ch: usize, v: f64) {
        let i = self.shape.index(row, col, ch);
        if v > self.data[i] {
            self.data[i] = v;
        }
    }

    /// The flat HWC data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat HWC data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the image and returns the flat data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Clamps all pixels into `[lo, hi]`.
    pub fn clamp(&mut self, lo: f64, hi: f64) {
        for v in &mut self.data {
            *v = v.clamp(lo, hi);
        }
    }

    /// Mean pixel value (`0.0` for an empty image).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_len_and_index() {
        let s = ImageShape::new(4, 3, 2);
        assert_eq!(s.len(), 24);
        assert!(!s.is_empty());
        assert_eq!(s.index(0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 1), 1);
        assert_eq!(s.index(0, 1, 0), 2);
        assert_eq!(s.index(1, 0, 0), 6);
        assert_eq!(s.index(3, 2, 1), 23);
    }

    #[test]
    fn coords_inverts_index() {
        let s = ImageShape::new(5, 7, 3);
        for flat in 0..s.len() {
            let (r, c, ch) = s.coords(flat);
            assert_eq!(s.index(r, c, ch), flat);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_bounds_checked() {
        let s = ImageShape::new(2, 2, 1);
        let _ = s.index(2, 0, 0);
    }

    #[test]
    fn image_get_set() {
        let mut img = Image::zeros(ImageShape::new(3, 3, 1));
        img.set(1, 2, 0, 0.7);
        assert_eq!(img.get(1, 2, 0), 0.7);
        assert_eq!(img.get(0, 0, 0), 0.0);
    }

    #[test]
    fn splat_max_keeps_larger() {
        let mut img = Image::zeros(ImageShape::new(1, 1, 1));
        img.splat_max(0, 0, 0, 0.4);
        img.splat_max(0, 0, 0, 0.2);
        assert_eq!(img.get(0, 0, 0), 0.4);
        img.splat_max(0, 0, 0, 0.9);
        assert_eq!(img.get(0, 0, 0), 0.9);
    }

    #[test]
    fn clamp_and_mean() {
        let mut img = Image::from_vec(ImageShape::new(1, 4, 1), vec![-1.0, 0.5, 2.0, 1.0]);
        img.clamp(0.0, 1.0);
        assert_eq!(img.as_slice(), &[0.0, 0.5, 1.0, 1.0]);
        assert!((img.mean() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn from_vec_roundtrip() {
        let data = vec![1.0, 2.0, 3.0, 4.0];
        let img = Image::from_vec(ImageShape::new(2, 2, 1), data.clone());
        assert_eq!(img.into_vec(), data);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_validates() {
        let _ = Image::from_vec(ImageShape::new(2, 2, 1), vec![0.0; 3]);
    }
}
