//! # xbar-data
//!
//! Dataset substrate for the `xbar-power-attacks` workspace.
//!
//! The paper evaluates on MNIST and CIFAR-10. This environment has no
//! dataset downloads, so this crate ships **procedural stand-ins** that
//! preserve the statistics the paper's conclusions rest on (see DESIGN.md
//! for the substitution argument):
//!
//! * [`synth::digits`] — stroke-rendered 28x28 grayscale digit glyphs with
//!   per-sample affine jitter: high linear separability, an uninformative
//!   border, and a smooth spatial 1-norm landscape (MNIST-like).
//! * [`synth::objects`] — 32x32x3 colour-texture classes with heavy
//!   intra-class variance: low linear separability and rapidly varying
//!   pixel statistics (CIFAR-10-like).
//! * [`synth::blobs`] — Gaussian clusters for fast unit tests.
//!
//! It also provides the plumbing around them:
//!
//! * [`Dataset`] — samples-by-features matrix plus integer labels, with
//!   one-hot targets, splits, shuffles and batching.
//! * [`Image`] and [`ImageShape`] — spatial views over flat feature rows.
//! * [`idx`] — the IDX binary format (MNIST's container), so real data can
//!   drop in where available.
//! * [`normalize`] — input scaling utilities.
//!
//! # Example
//!
//! ```
//! use xbar_data::synth::digits::DigitsConfig;
//!
//! let ds = DigitsConfig::default().num_samples(100).seed(1).generate();
//! assert_eq!(ds.len(), 100);
//! assert_eq!(ds.num_features(), 28 * 28);
//! assert_eq!(ds.num_classes(), 10);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod dataset;
mod error;
pub mod idx;
mod image;
pub mod normalize;
pub mod synth;

pub use dataset::{Dataset, TrainTestSplit};
pub use error::DataError;
pub use image::{Image, ImageShape};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
