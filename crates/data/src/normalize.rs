//! Input normalisation utilities.
//!
//! The crossbar maps inputs to voltages, so the attack pipeline assumes
//! features in `[0, 1]` (normalised voltage units, Eq. 4 of the paper).

use xbar_linalg::Matrix;

/// Rescales every entry linearly so the global minimum maps to 0 and the
/// global maximum maps to 1. A constant matrix maps to all zeros.
pub fn min_max_scale(m: &Matrix) -> Matrix {
    let lo = m.as_slice().iter().copied().fold(f64::INFINITY, f64::min);
    let hi = m
        .as_slice()
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let range = hi - lo;
    if !range.is_finite() || range == 0.0 {
        return Matrix::zeros(m.rows(), m.cols());
    }
    m.map(|x| (x - lo) / range)
}

/// Standardises each column to zero mean and unit (population) variance.
/// Constant columns become all zeros.
pub fn standardize_columns(m: &Matrix) -> Matrix {
    let means = m.col_means();
    let mut vars = vec![0.0; m.cols()];
    for row in m.rows_iter() {
        for (v, (&x, &mu)) in vars.iter_mut().zip(row.iter().zip(&means)) {
            let d = x - mu;
            *v += d * d;
        }
    }
    let n = m.rows().max(1) as f64;
    let stds: Vec<f64> = vars.iter().map(|v| (v / n).sqrt()).collect();
    Matrix::from_fn(m.rows(), m.cols(), |i, j| {
        if stds[j] == 0.0 {
            0.0
        } else {
            (m[(i, j)] - means[j]) / stds[j]
        }
    })
}

/// Clamps every entry into `[lo, hi]`.
pub fn clamp(m: &Matrix, lo: f64, hi: f64) -> Matrix {
    m.map(|x| x.clamp(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_scale_hits_bounds() {
        let m = Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 10.0]]);
        let s = min_max_scale(&m);
        assert_eq!(s[(0, 0)], 0.0);
        assert_eq!(s[(1, 1)], 1.0);
        assert!((s[(0, 1)] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn min_max_scale_constant_is_zero() {
        let m = Matrix::filled(2, 2, 5.0);
        assert_eq!(min_max_scale(&m), Matrix::zeros(2, 2));
    }

    #[test]
    fn standardize_columns_moments() {
        let m = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 10.0], &[5.0, 10.0]]);
        let s = standardize_columns(&m);
        // Column 0: mean 0, unit variance.
        let col: Vec<f64> = s.col(0);
        let mean: f64 = col.iter().sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        let var: f64 = col.iter().map(|x| x * x).sum::<f64>() / 3.0;
        assert!((var - 1.0).abs() < 1e-12);
        // Constant column 1 becomes zeros.
        assert!(s.col(1).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn clamp_bounds() {
        let m = Matrix::from_rows(&[&[-1.0, 0.5, 2.0]]);
        assert_eq!(clamp(&m, 0.0, 1.0), Matrix::from_rows(&[&[0.0, 0.5, 1.0]]));
    }
}
