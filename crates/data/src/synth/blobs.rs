//! Gaussian-blob toy dataset for fast unit and integration tests.

use crate::Dataset;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_linalg::Matrix;

/// Builder for an isotropic Gaussian-blob classification dataset with
/// features squashed into `[0, 1]` (so it can stand in for image-like
/// crossbar inputs in tests).
///
/// # Example
///
/// ```
/// use xbar_data::synth::blobs::BlobsConfig;
///
/// let ds = BlobsConfig::new(3, 5).num_samples(30).seed(1).generate();
/// assert_eq!(ds.num_classes(), 3);
/// assert_eq!(ds.num_features(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlobsConfig {
    num_classes: usize,
    num_features: usize,
    num_samples: usize,
    seed: u64,
    /// Standard deviation of each blob around its centre.
    spread: f64,
}

impl BlobsConfig {
    /// Creates a config for `num_classes` blobs in `num_features`
    /// dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0` or `num_features == 0`.
    pub fn new(num_classes: usize, num_features: usize) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(num_features > 0, "need at least one feature");
        BlobsConfig {
            num_classes,
            num_features,
            num_samples: 100,
            seed: 0,
            spread: 0.08,
        }
    }

    /// Sets the number of samples.
    pub fn num_samples(mut self, n: usize) -> Self {
        self.num_samples = n;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-blob standard deviation (larger = harder problem).
    pub fn spread(mut self, s: f64) -> Self {
        self.spread = s;
        self
    }

    /// Generates the dataset (balanced classes, shuffled).
    pub fn generate(&self) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        // Class centres drawn once, away from the clamp boundary.
        let centers =
            Matrix::random_uniform(self.num_classes, self.num_features, 0.25, 0.75, &mut rng);
        let mut inputs = Matrix::zeros(self.num_samples, self.num_features);
        let mut labels = Vec::with_capacity(self.num_samples);
        for i in 0..self.num_samples {
            let class = i % self.num_classes;
            labels.push(class);
            let row = inputs.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                *v = (centers[(class, j)] + self.spread * n).clamp(0.0, 1.0);
            }
        }
        let mut ds = Dataset::new(inputs, labels, self.num_classes)
            .expect("generator produces consistent samples");
        ds.shuffle(&mut rng);
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = BlobsConfig::new(3, 4).num_samples(12).seed(2).generate();
        let b = BlobsConfig::new(3, 4).num_samples(12).seed(2).generate();
        assert_eq!(a.inputs(), b.inputs());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn balanced_and_bounded() {
        let ds = BlobsConfig::new(4, 3).num_samples(40).seed(1).generate();
        assert_eq!(ds.class_counts(), vec![10; 4]);
        assert!(ds
            .inputs()
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn tight_spread_clusters_separate() {
        let ds = BlobsConfig::new(2, 8)
            .num_samples(60)
            .seed(3)
            .spread(0.01)
            .generate();
        // Nearest-centroid classification should be perfect.
        let mean_of = |class: usize| -> Vec<f64> {
            let idx: Vec<usize> = (0..ds.len()).filter(|&i| ds.label(i) == class).collect();
            ds.subset(&idx).inputs().col_means()
        };
        let m: Vec<Vec<f64>> = (0..2).map(mean_of).collect();
        for i in 0..ds.len() {
            let d = |c: usize| -> f64 {
                ds.input(i)
                    .iter()
                    .zip(&m[c])
                    .map(|(&x, &y)| (x - y) * (x - y))
                    .sum()
            };
            let pred = if d(0) < d(1) { 0 } else { 1 };
            assert_eq!(pred, ds.label(i));
        }
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_rejected() {
        let _ = BlobsConfig::new(0, 3);
    }
}
