//! Procedural MNIST stand-in: stroke-rendered digit glyphs.
//!
//! Each class is a hand-designed glyph (segments and elliptical arcs)
//! rendered at 28x28 with per-sample affine jitter (rotation, scale,
//! translation), stroke-thickness variation and additive pixel noise.
//!
//! Why this preserves the paper's MNIST behaviour:
//!
//! * glyphs occupy the canvas centre, so border pixels carry no class
//!   signal — exactly like MNIST, the trained weight columns (and hence
//!   the power-leaked 1-norms) are near zero at the border;
//! * the jitter blurs class evidence over neighbouring pixels, producing
//!   the *smooth, slowly varying* spatial 1-norm landscape the paper
//!   remarks on (Sec. III's search-feasibility discussion);
//! * classes are linearly separable to roughly single-layer-MNIST levels
//!   (~90% test accuracy), so attack-strength sweeps land in the same
//!   regime as the paper's Fig. 4.

use super::strokes::{render_strokes, GlyphTransform, Stroke};
use crate::{Dataset, Image, ImageShape};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Canvas side length (matches MNIST).
pub const SIDE: usize = 28;

/// Number of digit classes.
pub const NUM_CLASSES: usize = 10;

/// The stroke program for one digit glyph, in unit coordinates
/// (x right, y down).
pub fn glyph(digit: usize) -> Vec<Stroke> {
    use Stroke::{Arc, Line};
    match digit {
        0 => vec![Arc {
            center: (0.5, 0.5),
            rx: 0.18,
            ry: 0.28,
            start_deg: 0.0,
            end_deg: 360.0,
        }],
        1 => vec![
            Line {
                a: (0.5, 0.22),
                b: (0.5, 0.78),
            },
            Line {
                a: (0.42, 0.32),
                b: (0.5, 0.22),
            },
        ],
        2 => vec![
            Arc {
                center: (0.5, 0.38),
                rx: 0.17,
                ry: 0.16,
                start_deg: 180.0,
                end_deg: 390.0,
            },
            Line {
                a: (0.647, 0.46),
                b: (0.33, 0.78),
            },
            Line {
                a: (0.33, 0.78),
                b: (0.7, 0.78),
            },
        ],
        3 => vec![
            Arc {
                center: (0.48, 0.36),
                rx: 0.16,
                ry: 0.145,
                start_deg: 210.0,
                end_deg: 450.0,
            },
            Arc {
                center: (0.48, 0.645),
                rx: 0.17,
                ry: 0.15,
                start_deg: 270.0,
                end_deg: 510.0,
            },
        ],
        4 => vec![
            Line {
                a: (0.62, 0.22),
                b: (0.3, 0.58),
            },
            Line {
                a: (0.3, 0.58),
                b: (0.72, 0.58),
            },
            Line {
                a: (0.62, 0.22),
                b: (0.62, 0.78),
            },
        ],
        5 => vec![
            Line {
                a: (0.66, 0.22),
                b: (0.36, 0.22),
            },
            Line {
                a: (0.36, 0.22),
                b: (0.34, 0.48),
            },
            Arc {
                center: (0.48, 0.6),
                rx: 0.18,
                ry: 0.17,
                start_deg: 250.0,
                end_deg: 510.0,
            },
        ],
        6 => vec![
            Arc {
                center: (0.52, 0.42),
                rx: 0.2,
                ry: 0.24,
                start_deg: 300.0,
                end_deg: 180.0,
            },
            Line {
                a: (0.32, 0.42),
                b: (0.32, 0.62),
            },
            Arc {
                center: (0.48, 0.62),
                rx: 0.16,
                ry: 0.15,
                start_deg: 0.0,
                end_deg: 360.0,
            },
        ],
        7 => vec![
            Line {
                a: (0.32, 0.24),
                b: (0.68, 0.24),
            },
            Line {
                a: (0.68, 0.24),
                b: (0.44, 0.78),
            },
        ],
        8 => vec![
            Arc {
                center: (0.5, 0.36),
                rx: 0.15,
                ry: 0.14,
                start_deg: 0.0,
                end_deg: 360.0,
            },
            Arc {
                center: (0.5, 0.64),
                rx: 0.17,
                ry: 0.15,
                start_deg: 0.0,
                end_deg: 360.0,
            },
        ],
        9 => vec![
            Arc {
                center: (0.52, 0.38),
                rx: 0.16,
                ry: 0.15,
                start_deg: 0.0,
                end_deg: 360.0,
            },
            Line {
                a: (0.68, 0.38),
                b: (0.6, 0.78),
            },
        ],
        _ => panic!("digit {digit} out of range 0..{NUM_CLASSES}"),
    }
}

/// Builder for the procedural digits dataset.
///
/// # Example
///
/// ```
/// use xbar_data::synth::digits::DigitsConfig;
///
/// let ds = DigitsConfig::default().num_samples(50).seed(7).generate();
/// assert_eq!(ds.len(), 50);
/// assert!(ds.inputs().as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitsConfig {
    num_samples: usize,
    seed: u64,
    /// Standard deviation of additive Gaussian pixel noise.
    noise_std: f64,
    /// Maximum absolute rotation jitter in radians.
    max_rotation: f64,
    /// Scale jitter range around 1.0.
    scale_jitter: f64,
    /// Maximum absolute translation jitter in pixels.
    max_shift_px: f64,
    /// Stroke thickness range (Gaussian sigma, pixels).
    sigma_range: (f64, f64),
}

impl Default for DigitsConfig {
    fn default() -> Self {
        DigitsConfig {
            num_samples: 1000,
            seed: 0,
            noise_std: 0.10,
            max_rotation: 0.20,
            scale_jitter: 0.14,
            max_shift_px: 2.0,
            sigma_range: (0.8, 1.35),
        }
    }
}

impl DigitsConfig {
    /// Sets the number of samples to generate.
    pub fn num_samples(mut self, n: usize) -> Self {
        self.num_samples = n;
        self
    }

    /// Sets the RNG seed (the dataset is fully determined by the config).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the additive pixel-noise standard deviation.
    pub fn noise_std(mut self, std: f64) -> Self {
        self.noise_std = std;
        self
    }

    /// Sets the maximum rotation jitter in radians.
    pub fn max_rotation(mut self, r: f64) -> Self {
        self.max_rotation = r;
        self
    }

    /// Renders a single sample of the given class with the given RNG.
    fn render_sample<R: Rng + ?Sized>(&self, digit: usize, rng: &mut R) -> Image {
        let shape = ImageShape::new(SIDE, SIDE, 1);
        let mut img = Image::zeros(shape);
        let transform = GlyphTransform {
            rotation: rng.gen_range(-self.max_rotation..=self.max_rotation),
            scale: rng.gen_range(1.0 - self.scale_jitter..=1.0 + self.scale_jitter),
            translate: (
                rng.gen_range(-self.max_shift_px..=self.max_shift_px) / SIDE as f64,
                rng.gen_range(-self.max_shift_px..=self.max_shift_px) / SIDE as f64,
            ),
        };
        let sigma = rng.gen_range(self.sigma_range.0..=self.sigma_range.1);
        render_strokes(&mut img, &glyph(digit), &transform, sigma);
        if self.noise_std > 0.0 {
            for v in img.as_mut_slice() {
                // Box-Muller pair, using one value.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                *v += self.noise_std * n;
            }
        }
        img.clamp(0.0, 1.0);
        img
    }

    /// Generates the dataset: labels cycle through the classes so counts
    /// are balanced, and sample order is shuffled.
    pub fn generate(&self) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let shape = ImageShape::new(SIDE, SIDE, 1);
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(self.num_samples);
        let mut labels = Vec::with_capacity(self.num_samples);
        for i in 0..self.num_samples {
            let digit = i % NUM_CLASSES;
            rows.push(self.render_sample(digit, &mut rng).into_vec());
            labels.push(digit);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let inputs = if row_refs.is_empty() {
            xbar_linalg::Matrix::zeros(0, shape.len())
        } else {
            xbar_linalg::Matrix::from_rows(&row_refs)
        };
        let mut ds = Dataset::new(inputs, labels, NUM_CLASSES)
            .expect("generator produces consistent samples")
            .with_image_shape(shape)
            .expect("generator uses a fixed shape");
        ds.shuffle(&mut rng);
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_glyphs_defined_and_nonempty() {
        for d in 0..NUM_CLASSES {
            assert!(!glyph(d).is_empty(), "digit {d} has no strokes");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn glyph_rejects_out_of_range() {
        let _ = glyph(10);
    }

    #[test]
    fn generate_is_deterministic() {
        let a = DigitsConfig::default().num_samples(20).seed(5).generate();
        let b = DigitsConfig::default().num_samples(20).seed(5).generate();
        assert_eq!(a.inputs(), b.inputs());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let a = DigitsConfig::default().num_samples(20).seed(5).generate();
        let b = DigitsConfig::default().num_samples(20).seed(6).generate();
        assert_ne!(a.inputs(), b.inputs());
    }

    #[test]
    fn labels_balanced() {
        let ds = DigitsConfig::default().num_samples(100).seed(1).generate();
        assert_eq!(ds.class_counts(), vec![10; 10]);
    }

    #[test]
    fn pixels_in_unit_interval() {
        let ds = DigitsConfig::default().num_samples(30).seed(2).generate();
        assert!(ds
            .inputs()
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn border_is_mostly_dark_center_is_bright() {
        // The MNIST-like property the paper's 1-norm maps rely on.
        let ds = DigitsConfig::default().num_samples(100).seed(3).generate();
        let shape = ds.image_shape().unwrap();
        let means = ds.inputs().col_means();
        let mut border = 0.0;
        let mut border_n = 0;
        let mut center = 0.0;
        let mut center_n = 0;
        for r in 0..SIDE {
            for c in 0..SIDE {
                let v = means[shape.index(r, c, 0)];
                if !(2..SIDE - 2).contains(&r) || !(2..SIDE - 2).contains(&c) {
                    border += v;
                    border_n += 1;
                } else if (10..18).contains(&r) && (10..18).contains(&c) {
                    center += v;
                    center_n += 1;
                }
            }
        }
        let border_mean = border / border_n as f64;
        let center_mean = center / center_n as f64;
        assert!(
            center_mean > 4.0 * border_mean,
            "center {center_mean} should dominate border {border_mean}"
        );
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Noise-free renders of different digits must differ substantially.
        let cfg = DigitsConfig::default().noise_std(0.0).max_rotation(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let imgs: Vec<Image> = (0..NUM_CLASSES)
            .map(|d| {
                let mut c = cfg;
                c.scale_jitter = 0.0;
                c.max_shift_px = 0.0;
                c.sigma_range = (1.0, 1.0);
                c.render_sample(d, &mut rng)
            })
            .collect();
        for a in 0..NUM_CLASSES {
            for b in (a + 1)..NUM_CLASSES {
                let diff: f64 = imgs[a]
                    .as_slice()
                    .iter()
                    .zip(imgs[b].as_slice())
                    .map(|(&x, &y)| (x - y).abs())
                    .sum();
                assert!(diff > 5.0, "digits {a} and {b} look identical ({diff})");
            }
        }
    }

    #[test]
    fn empty_config_generates_empty_dataset() {
        let ds = DigitsConfig::default().num_samples(0).generate();
        assert!(ds.is_empty());
        assert_eq!(ds.num_features(), SIDE * SIDE);
    }
}
