//! Procedural dataset generators.
//!
//! These are the reproduction's stand-ins for the paper's MNIST and
//! CIFAR-10 (no dataset downloads in this environment). Each generator is
//! fully deterministic given its seed and is built so that the *statistics
//! the paper's conclusions depend on* are preserved — see DESIGN.md for
//! the substitution table.

pub mod blobs;
pub mod digits;
pub mod objects;

mod strokes;

pub use strokes::Stroke;
