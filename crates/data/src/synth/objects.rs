//! Procedural CIFAR-10 stand-in: colour-texture classes.
//!
//! Each class is a low-frequency colour-texture *prototype* (a mixture of
//! 2-D cosine components with class-specific frequencies, phases and
//! colour balance). A sample mixes its class prototype with a strong
//! per-sample random texture field plus i.i.d. pixel noise.
//!
//! Why this preserves the paper's CIFAR-10 behaviour:
//!
//! * classes overlap heavily, so a single-layer network only reaches
//!   ~30–50% test accuracy — the "low initial accuracy" regime the paper
//!   blames for CIFAR-10's weaker power-information gains;
//! * the class signal is spread over *every* pixel with rapidly varying
//!   sign and magnitude, giving the jagged spatial 1-norm landscape the
//!   paper contrasts with MNIST's smooth one;
//! * three colour channels per pixel, matching the paper's
//!   `10 x 1024`-per-channel weight-matrix analysis of Fig. 3.

use crate::{Dataset, ImageShape};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_linalg::Matrix;

/// Canvas side length (matches CIFAR-10).
pub const SIDE: usize = 32;

/// Number of colour channels.
pub const CHANNELS: usize = 3;

/// Number of classes.
pub const NUM_CLASSES: usize = 10;

/// Number of cosine components per channel in a class prototype.
const PROTO_COMPONENTS: usize = 6;

/// Number of cosine components in the per-sample texture field.
const TEXTURE_COMPONENTS: usize = 3;

/// One cosine component of a texture field.
#[derive(Debug, Clone, Copy)]
struct Wave {
    fx: f64,
    fy: f64,
    phase: f64,
    amp: f64,
}

impl Wave {
    fn eval(&self, x: f64, y: f64) -> f64 {
        self.amp * (2.0 * std::f64::consts::PI * (self.fx * x + self.fy * y) + self.phase).cos()
    }
}

/// A class prototype: per-channel wave mixtures plus a colour bias.
#[derive(Debug, Clone)]
struct Prototype {
    waves: [Vec<Wave>; CHANNELS],
    color_bias: [f64; CHANNELS],
}

impl Prototype {
    /// Builds the prototype for `class` under `seed` (class-deterministic).
    fn new(class: usize, seed: u64) -> Self {
        // Class prototypes depend only on (seed, class) so train and test
        // sets generated with the same seed share class structure.
        let mut rng = ChaCha8Rng::seed_from_u64(
            seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(class as u64 + 1)),
        );
        let mut waves: [Vec<Wave>; CHANNELS] = Default::default();
        for ch_waves in &mut waves {
            *ch_waves = (0..PROTO_COMPONENTS)
                .map(|_| Wave {
                    fx: rng.gen_range(0.5..4.0) * [-1.0, 1.0][rng.gen_range(0..2)],
                    fy: rng.gen_range(0.5..4.0) * [-1.0, 1.0][rng.gen_range(0..2)],
                    phase: rng.gen_range(0.0..std::f64::consts::TAU),
                    amp: rng.gen_range(0.3..1.0),
                })
                .collect();
        }
        let color_bias = [
            rng.gen_range(-0.5..0.5),
            rng.gen_range(-0.5..0.5),
            rng.gen_range(-0.5..0.5),
        ];
        Prototype { waves, color_bias }
    }

    /// Evaluates the prototype with per-wave phase offsets (one offset per
    /// `(channel, component)`, laid out channel-major).
    fn eval_jittered(&self, ch: usize, x: f64, y: f64, phase_offsets: &[f64]) -> f64 {
        let base = ch * PROTO_COMPONENTS;
        self.color_bias[ch]
            + self.waves[ch]
                .iter()
                .enumerate()
                .map(|(k, w)| {
                    let shifted = Wave {
                        phase: w.phase + phase_offsets[base + k],
                        ..*w
                    };
                    shifted.eval(x, y)
                })
                .sum::<f64>()
    }
}

/// Builder for the procedural objects dataset.
///
/// # Example
///
/// ```
/// use xbar_data::synth::objects::{ObjectsConfig, SIDE, CHANNELS};
///
/// let ds = ObjectsConfig::default().num_samples(20).seed(3).generate();
/// assert_eq!(ds.num_features(), SIDE * SIDE * CHANNELS);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectsConfig {
    num_samples: usize,
    seed: u64,
    /// Weight of the class prototype in the mix (the rest is per-sample
    /// texture and noise); controls linear separability.
    class_signal: f64,
    /// Standard deviation of i.i.d. pixel noise.
    noise_std: f64,
    /// Standard deviation (radians) of the per-sample phase perturbation
    /// applied to each prototype wave. Phase jitter shrinks the *mean*
    /// class signal by `exp(-σ²/2)` while keeping strong per-sample class
    /// structure, which is what caps linear-model accuracy the way real
    /// CIFAR-10 does.
    phase_jitter: f64,
}

impl Default for ObjectsConfig {
    fn default() -> Self {
        ObjectsConfig {
            num_samples: 1000,
            seed: 0,
            class_signal: 0.25,
            noise_std: 0.20,
            phase_jitter: 3.0,
        }
    }
}

impl ObjectsConfig {
    /// Sets the number of samples to generate.
    pub fn num_samples(mut self, n: usize) -> Self {
        self.num_samples = n;
        self
    }

    /// Sets the RNG seed. Class prototypes are derived from the same seed,
    /// so datasets generated with equal seeds share class structure (use
    /// one seed, then [`Dataset::split_at`](crate::Dataset::split_at) for
    /// train/test).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the class-signal mixing weight in `[0, 1]`.
    pub fn class_signal(mut self, w: f64) -> Self {
        self.class_signal = w;
        self
    }

    /// Sets the i.i.d. pixel-noise standard deviation.
    pub fn noise_std(mut self, std: f64) -> Self {
        self.noise_std = std;
        self
    }

    /// Sets the per-sample prototype phase-jitter standard deviation
    /// (radians); larger values make the classes harder to separate
    /// linearly.
    pub fn phase_jitter(mut self, sigma: f64) -> Self {
        self.phase_jitter = sigma;
        self
    }

    /// Generates the dataset (balanced classes, shuffled order).
    pub fn generate(&self) -> Dataset {
        let shape = ImageShape::new(SIDE, SIDE, CHANNELS);
        let prototypes: Vec<Prototype> = (0..NUM_CLASSES)
            .map(|c| Prototype::new(c, self.seed))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(0xA5A5_5A5A));
        let mut inputs = Matrix::zeros(self.num_samples, shape.len());
        let mut labels = Vec::with_capacity(self.num_samples);
        for i in 0..self.num_samples {
            let class = i % NUM_CLASSES;
            labels.push(class);
            // Per-sample texture field, shared across channels with a
            // per-channel amplitude jitter.
            let texture: Vec<Wave> = (0..TEXTURE_COMPONENTS)
                .map(|_| Wave {
                    fx: rng.gen_range(0.5..3.0),
                    fy: rng.gen_range(0.5..3.0),
                    phase: rng.gen_range(0.0..std::f64::consts::TAU),
                    amp: rng.gen_range(0.5..1.2),
                })
                .collect();
            let chan_gain = [
                rng.gen_range(0.7..1.3),
                rng.gen_range(0.7..1.3),
                rng.gen_range(0.7..1.3),
            ];
            let brightness = rng.gen_range(-0.15..0.15);
            // Per-sample phase perturbation of every prototype wave.
            let phase_offsets: Vec<f64> = (0..CHANNELS * PROTO_COMPONENTS)
                .map(|_| {
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    self.phase_jitter
                        * (-2.0 * u1.ln()).sqrt()
                        * (2.0 * std::f64::consts::PI * u2).cos()
                })
                .collect();
            let row = inputs.row_mut(i);
            for r in 0..SIDE {
                for c in 0..SIDE {
                    let x = c as f64 / SIDE as f64;
                    let y = r as f64 / SIDE as f64;
                    let tex: f64 = texture.iter().map(|w| w.eval(x, y)).sum();
                    for ch in 0..CHANNELS {
                        let proto = prototypes[class].eval_jittered(ch, x, y, &phase_offsets);
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        let noise =
                            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        // Mix, squash into [0,1].
                        let v = self.class_signal * proto * 0.35
                            + (1.0 - self.class_signal) * tex * chan_gain[ch] * 0.25
                            + self.noise_std * noise
                            + brightness;
                        row[shape.index(r, c, ch)] = (0.5 + v).clamp(0.0, 1.0);
                    }
                }
            }
        }
        let mut ds = Dataset::new(inputs, labels, NUM_CLASSES)
            .expect("generator produces consistent samples")
            .with_image_shape(shape)
            .expect("generator uses a fixed shape");
        ds.shuffle(&mut rng);
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = ObjectsConfig::default().num_samples(10).seed(9).generate();
        let b = ObjectsConfig::default().num_samples(10).seed(9).generate();
        assert_eq!(a.inputs(), b.inputs());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn shape_and_bounds() {
        let ds = ObjectsConfig::default().num_samples(10).seed(1).generate();
        assert_eq!(ds.num_features(), SIDE * SIDE * CHANNELS);
        assert_eq!(ds.num_classes(), NUM_CLASSES);
        assert!(ds
            .inputs()
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn labels_balanced() {
        let ds = ObjectsConfig::default().num_samples(50).seed(2).generate();
        assert_eq!(ds.class_counts(), vec![5; 10]);
    }

    #[test]
    fn same_seed_shares_class_structure() {
        // Mean image per class should correlate across two datasets drawn
        // with the same seed (the class prototypes are seed-derived).
        let a = ObjectsConfig::default().num_samples(200).seed(4).generate();
        let b = ObjectsConfig::default().num_samples(200).seed(4).generate();
        let mean_class0 = |ds: &Dataset| -> Vec<f64> {
            let idx: Vec<usize> = (0..ds.len()).filter(|&i| ds.label(i) == 0).collect();
            ds.subset(&idx).inputs().col_means()
        };
        let ma = mean_class0(&a);
        let mb = mean_class0(&b);
        // Same prototypes + same sampling → identical datasets, so equality
        // is expected; the stronger claim (prototype sharing under different
        // sample noise) is covered by the classes_differ test below.
        for (x, y) in ma.iter().zip(&mb) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn classes_differ_in_mean_image() {
        let ds = ObjectsConfig::default().num_samples(400).seed(5).generate();
        let mean_of = |class: usize| -> Vec<f64> {
            let idx: Vec<usize> = (0..ds.len()).filter(|&i| ds.label(i) == class).collect();
            ds.subset(&idx).inputs().col_means()
        };
        let m0 = mean_of(0);
        let m1 = mean_of(1);
        let dist: f64 = m0
            .iter()
            .zip(&m1)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.5, "class means too close: {dist}");
    }

    #[test]
    fn heavy_intra_class_variance() {
        // Two samples of the same class should still differ a lot — the
        // low-separability property.
        let ds = ObjectsConfig::default().num_samples(40).seed(6).generate();
        let idx: Vec<usize> = (0..ds.len()).filter(|&i| ds.label(i) == 3).collect();
        assert!(idx.len() >= 2);
        let a = ds.input(idx[0]);
        let b = ds.input(idx[1]);
        let dist: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 2.0, "intra-class distance too small: {dist}");
    }

    #[test]
    fn class_signal_zero_weakens_class_structure() {
        // With finite samples the class means never collapse exactly (the
        // per-sample texture noise survives averaging at ~σ/√n per pixel),
        // so compare against the default signal level instead.
        let dist_for = |signal: f64| -> f64 {
            let ds = ObjectsConfig::default()
                .num_samples(300)
                .seed(7)
                .class_signal(signal)
                .phase_jitter(0.0) // isolate the class_signal effect
                .generate();
            let mean_of = |class: usize| -> Vec<f64> {
                let idx: Vec<usize> = (0..ds.len()).filter(|&i| ds.label(i) == class).collect();
                ds.subset(&idx).inputs().col_means()
            };
            let m0 = mean_of(0);
            let m1 = mean_of(1);
            m0.iter()
                .zip(&m1)
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        let no_signal = dist_for(0.0);
        let with_signal = dist_for(0.8);
        assert!(
            with_signal > 1.5 * no_signal,
            "signal {with_signal} should beat noise floor {no_signal}"
        );
    }
}
