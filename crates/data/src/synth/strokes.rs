//! Stroke primitives for procedural glyph rendering.

use crate::Image;

/// A renderable stroke in the unit square `[0, 1]²` (x right, y down).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stroke {
    /// A straight segment from `a` to `b`.
    Line {
        /// Start point `(x, y)`.
        a: (f64, f64),
        /// End point `(x, y)`.
        b: (f64, f64),
    },
    /// An elliptical arc, parameterised counter-clockwise in degrees
    /// (`0°` points along +x; y grows downward, so visually the sweep is
    /// clockwise).
    Arc {
        /// Ellipse centre `(x, y)`.
        center: (f64, f64),
        /// Horizontal radius.
        rx: f64,
        /// Vertical radius.
        ry: f64,
        /// Sweep start angle in degrees.
        start_deg: f64,
        /// Sweep end angle in degrees.
        end_deg: f64,
    },
}

impl Stroke {
    /// Approximate arc length (used to pick sampling density).
    pub fn length(&self) -> f64 {
        match *self {
            Stroke::Line { a, b } => ((b.0 - a.0).powi(2) + (b.1 - a.1).powi(2)).sqrt(),
            Stroke::Arc {
                rx,
                ry,
                start_deg,
                end_deg,
                ..
            } => {
                // Ramanujan-style bound scaled by sweep fraction.
                let sweep = (end_deg - start_deg).abs().to_radians();
                sweep * 0.5 * (rx + ry)
            }
        }
    }

    /// Point at parameter `t` in `[0, 1]` along the stroke.
    pub fn point_at(&self, t: f64) -> (f64, f64) {
        match *self {
            Stroke::Line { a, b } => (a.0 + t * (b.0 - a.0), a.1 + t * (b.1 - a.1)),
            Stroke::Arc {
                center,
                rx,
                ry,
                start_deg,
                end_deg,
            } => {
                let ang = (start_deg + t * (end_deg - start_deg)).to_radians();
                (center.0 + rx * ang.cos(), center.1 + ry * ang.sin())
            }
        }
    }
}

/// An affine transform of unit-square glyph coordinates: rotate about the
/// glyph centre, scale, then translate (all before pixel mapping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlyphTransform {
    /// Rotation angle in radians about (0.5, 0.5).
    pub rotation: f64,
    /// Isotropic scale about (0.5, 0.5).
    pub scale: f64,
    /// Translation in unit coordinates.
    pub translate: (f64, f64),
}

impl Default for GlyphTransform {
    fn default() -> Self {
        GlyphTransform {
            rotation: 0.0,
            scale: 1.0,
            translate: (0.0, 0.0),
        }
    }
}

impl GlyphTransform {
    /// Applies the transform to a unit-square point.
    pub fn apply(&self, (x, y): (f64, f64)) -> (f64, f64) {
        let (cx, cy) = (0.5, 0.5);
        let (dx, dy) = (x - cx, y - cy);
        let (s, c) = self.rotation.sin_cos();
        let xr = self.scale * (c * dx - s * dy) + cx + self.translate.0;
        let yr = self.scale * (s * dx + c * dy) + cy + self.translate.1;
        (xr, yr)
    }
}

/// Renders strokes into channel 0 of `img` using Gaussian max-splatting:
/// each sampled stroke point deposits `exp(-d² / 2σ²)` into nearby pixels,
/// keeping the per-pixel maximum, which yields clean anti-aliased strokes
/// with peak intensity 1.
pub fn render_strokes(
    img: &mut Image,
    strokes: &[Stroke],
    transform: &GlyphTransform,
    sigma_px: f64,
) {
    let shape = img.shape();
    let (h, w) = (shape.height as f64, shape.width as f64);
    let radius = (3.0 * sigma_px).ceil() as isize;
    for stroke in strokes {
        // Sample densely relative to pixel size.
        let len_px = stroke.length() * w.max(h);
        let steps = (len_px * 3.0).ceil().max(2.0) as usize;
        for step in 0..=steps {
            let t = step as f64 / steps as f64;
            let p = transform.apply(stroke.point_at(t));
            // Unit coords -> pixel coords (pixel centres at +0.5).
            let px = p.0 * w - 0.5;
            let py = p.1 * h - 0.5;
            let ci = px.round() as isize;
            let ri = py.round() as isize;
            for r in (ri - radius)..=(ri + radius) {
                if r < 0 || r >= shape.height as isize {
                    continue;
                }
                for c in (ci - radius)..=(ci + radius) {
                    if c < 0 || c >= shape.width as isize {
                        continue;
                    }
                    let d2 = (c as f64 - px).powi(2) + (r as f64 - py).powi(2);
                    let v = (-d2 / (2.0 * sigma_px * sigma_px)).exp();
                    if v > 1e-4 {
                        img.splat_max(r as usize, c as usize, 0, v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ImageShape;

    #[test]
    fn line_endpoints() {
        let s = Stroke::Line {
            a: (0.0, 0.0),
            b: (1.0, 0.5),
        };
        assert_eq!(s.point_at(0.0), (0.0, 0.0));
        assert_eq!(s.point_at(1.0), (1.0, 0.5));
        let (x, y) = s.point_at(0.5);
        assert!((x - 0.5).abs() < 1e-12 && (y - 0.25).abs() < 1e-12);
        assert!((s.length() - (1.25_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn arc_points_lie_on_ellipse() {
        let s = Stroke::Arc {
            center: (0.5, 0.5),
            rx: 0.2,
            ry: 0.3,
            start_deg: 0.0,
            end_deg: 360.0,
        };
        for i in 0..10 {
            let (x, y) = s.point_at(i as f64 / 10.0);
            let e = ((x - 0.5) / 0.2).powi(2) + ((y - 0.5) / 0.3).powi(2);
            assert!((e - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_transform_is_noop() {
        let t = GlyphTransform::default();
        let p = (0.3, 0.8);
        let q = t.apply(p);
        assert!((p.0 - q.0).abs() < 1e-12 && (p.1 - q.1).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_distance_from_center() {
        let t = GlyphTransform {
            rotation: 1.0,
            scale: 1.0,
            translate: (0.0, 0.0),
        };
        let p = (0.8, 0.6);
        let q = t.apply(p);
        let d0 = ((p.0 - 0.5_f64).powi(2) + (p.1 - 0.5_f64).powi(2)).sqrt();
        let d1 = ((q.0 - 0.5_f64).powi(2) + (q.1 - 0.5_f64).powi(2)).sqrt();
        assert!((d0 - d1).abs() < 1e-12);
    }

    #[test]
    fn scale_and_translate_compose() {
        let t = GlyphTransform {
            rotation: 0.0,
            scale: 2.0,
            translate: (0.1, -0.1),
        };
        let q = t.apply((0.75, 0.5));
        assert!((q.0 - (0.5 + 2.0 * 0.25 + 0.1)).abs() < 1e-12);
        assert!((q.1 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn render_marks_stroke_pixels() {
        let mut img = Image::zeros(ImageShape::new(16, 16, 1));
        render_strokes(
            &mut img,
            &[Stroke::Line {
                a: (0.2, 0.5),
                b: (0.8, 0.5),
            }],
            &GlyphTransform::default(),
            1.0,
        );
        // The stroke row should be bright, the far corner dark.
        let mid = img.get(7, 8, 0).max(img.get(8, 8, 0));
        assert!(mid > 0.8, "stroke centre should be bright, got {mid}");
        assert!(img.get(0, 0, 0) < 0.05);
        // Max-splat never exceeds 1.
        assert!(img.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn render_stays_in_bounds_when_stroke_exits_canvas() {
        let mut img = Image::zeros(ImageShape::new(8, 8, 1));
        render_strokes(
            &mut img,
            &[Stroke::Line {
                a: (-0.5, 0.5),
                b: (1.5, 0.5),
            }],
            &GlyphTransform::default(),
            1.5,
        );
        // Must not panic; edge pixels get painted.
        assert!(img.get(4, 0, 0) > 0.5);
    }
}
