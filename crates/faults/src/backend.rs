//! [`FaultyBackend`]: fault injection as an [`EvalBackend`] wrapper.

use xbar_crossbar::array::CrossbarArray;
use xbar_crossbar::backend::{BackendKind, EvalBackend, PreparedEval, RngStreams};
use xbar_crossbar::power::PowerModel;
use xbar_crossbar::CrossbarError;

use crate::plan::FaultPlan;

/// An [`EvalBackend`] decorator that applies a [`FaultPlan`] to the
/// array at [`EvalBackend::prepare`] time and evaluates every batch
/// against the faulted copy.
///
/// With a no-op plan (compiled from an empty [`crate::FaultSpec`]) the
/// wrapper delegates directly — no copy, no fault events — so outputs
/// *and* traces are bit-identical to the bare backend; the property
/// tests in `tests/proptest_faults.rs` pin that contract. With a real
/// plan, `prepare` pays one `O(M·N)` faulted-copy materialisation
/// (measured by `xbar bench mvm` as the fault-injection overhead row)
/// and re-keys the handle to the *source* array's generation
/// ([`PreparedEval::rekey`]), so callers keep driving evaluation with
/// the array they hold while every number comes from the faulted
/// snapshot inside the handle. Staleness tracks the source array: if it
/// is re-programmed or re-mapped, the handle is rejected and the plan
/// is re-applied on the next `prepare`.
#[derive(Debug)]
pub struct FaultyBackend {
    inner: Box<dyn EvalBackend>,
    plan: FaultPlan,
}

impl FaultyBackend {
    /// Wraps a backend with a compiled plan.
    pub fn new(inner: Box<dyn EvalBackend>, plan: FaultPlan) -> Self {
        FaultyBackend { inner, plan }
    }

    /// Convenience constructor from a [`BackendKind`].
    pub fn from_kind(kind: BackendKind, plan: FaultPlan) -> Self {
        FaultyBackend::new(kind.build(), plan)
    }

    /// The plan in effect.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The faulted array for this call, or `None` when the plan is a
    /// no-op and the original array must be used untouched.
    fn faulted(&self, array: &CrossbarArray) -> xbar_crossbar::Result<Option<CrossbarArray>> {
        if self.plan.is_noop() {
            return Ok(None);
        }
        self.plan
            .apply(array)
            .map(Some)
            // The only fallible path is a shape mismatch, which at this
            // layer is a configuration error.
            .map_err(|_| CrossbarError::InvalidConfig {
                name: "fault_plan_shape",
            })
    }
}

impl EvalBackend for FaultyBackend {
    fn kind(&self) -> BackendKind {
        self.inner.kind()
    }

    fn prepare(&self, array: &CrossbarArray) -> xbar_crossbar::Result<PreparedEval> {
        match self.faulted(array)? {
            None => self.inner.prepare(array),
            Some(faulted) => {
                let mut prepared = self.inner.prepare(&faulted)?;
                // Staleness tracks the array callers actually hold, not
                // the derived faulted copy inside the handle.
                prepared.rekey(array.generation());
                Ok(prepared)
            }
        }
    }

    fn mvm_prepared(
        &self,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> xbar_crossbar::Result<Vec<Vec<f64>>> {
        // The handle already holds the faulted snapshot; the inner
        // backend checks staleness against the (rekeyed) generation.
        self.inner.mvm_prepared(prepared, array, inputs)
    }

    fn power_prepared(
        &self,
        model: &PowerModel,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> xbar_crossbar::Result<Vec<f64>> {
        self.inner.power_prepared(model, prepared, array, inputs)
    }

    fn noisy_mvm_prepared(
        &self,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> xbar_crossbar::Result<Vec<Vec<f64>>> {
        self.inner
            .noisy_mvm_prepared(prepared, array, inputs, streams)
    }

    fn noisy_power_prepared(
        &self,
        model: &PowerModel,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> xbar_crossbar::Result<Vec<f64>> {
        self.inner
            .noisy_power_prepared(model, prepared, array, inputs, streams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultKey, FaultSpec};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use xbar_crossbar::device::DeviceModel;
    use xbar_linalg::Matrix;

    // Prepare-once shorthands for single-batch equivalence checks.
    fn mvm<B: EvalBackend + ?Sized>(
        backend: &B,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> xbar_crossbar::Result<Vec<Vec<f64>>> {
        let prepared = backend.prepare(array)?;
        backend.mvm_prepared(&prepared, array, inputs)
    }

    fn power<B: EvalBackend + ?Sized>(
        backend: &B,
        model: &PowerModel,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> xbar_crossbar::Result<Vec<f64>> {
        let prepared = backend.prepare(array)?;
        backend.power_prepared(model, &prepared, array, inputs)
    }

    fn noisy_mvm<B: EvalBackend + ?Sized>(
        backend: &B,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        mut streams: impl FnMut(usize) -> ChaCha8Rng,
    ) -> xbar_crossbar::Result<Vec<Vec<f64>>> {
        let prepared = backend.prepare(array)?;
        backend.noisy_mvm_prepared(&prepared, array, inputs, &mut streams)
    }

    fn noisy_power<B: EvalBackend + ?Sized>(
        backend: &B,
        model: &PowerModel,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        mut streams: impl FnMut(usize) -> ChaCha8Rng,
    ) -> xbar_crossbar::Result<Vec<f64>> {
        let prepared = backend.prepare(array)?;
        backend.noisy_power_prepared(model, &prepared, array, inputs, &mut streams)
    }

    fn programmed(m: usize, n: usize, seed: u64) -> CrossbarArray {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = Matrix::random_uniform(m, n, -1.0, 1.0, &mut rng);
        CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).unwrap()
    }

    fn batch(n: usize, b: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..b)
            .map(|_| {
                (0..n)
                    .map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn noop_plan_is_bit_identical_to_inner() {
        let xbar = programmed(6, 8, 1);
        let inputs = batch(8, 5, 2);
        let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let plan = FaultSpec::none()
            .compile(6, 8, FaultKey::new(0, 0))
            .unwrap();
        for kind in [BackendKind::Naive, BackendKind::Blocked] {
            let bare = kind.build();
            let faulty = FaultyBackend::from_kind(kind, plan.clone());
            assert_eq!(faulty.kind(), kind);
            assert_eq!(
                mvm(&faulty, &xbar, &refs).unwrap(),
                mvm(bare.as_ref(), &xbar, &refs).unwrap()
            );
            let model = PowerModel::default();
            assert_eq!(
                power(&faulty, &model, &xbar, &refs).unwrap(),
                power(bare.as_ref(), &model, &xbar, &refs).unwrap()
            );
        }
    }

    #[test]
    fn faulty_outputs_equal_applying_plan_manually() {
        let xbar = programmed(5, 7, 3);
        let inputs = batch(7, 4, 4);
        let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let spec = FaultSpec::none()
            .with_stuck_off_rate(0.3)
            .with_variation_sigma(0.2);
        let plan = spec.compile(5, 7, FaultKey::new(9, 2)).unwrap();
        let faulted = plan.apply(&xbar).unwrap();
        let faulty = FaultyBackend::from_kind(BackendKind::Blocked, plan);
        let bare = BackendKind::Blocked.build();
        assert_eq!(
            mvm(&faulty, &xbar, &refs).unwrap(),
            mvm(bare.as_ref(), &faulted, &refs).unwrap()
        );
        let model = PowerModel::default();
        assert_eq!(
            power(&faulty, &model, &xbar, &refs).unwrap(),
            power(bare.as_ref(), &model, &faulted, &refs).unwrap()
        );
        // And the faulted array really differs from the pristine one.
        assert_ne!(
            mvm(&faulty, &xbar, &refs).unwrap(),
            mvm(bare.as_ref(), &xbar, &refs).unwrap()
        );
    }

    #[test]
    fn noisy_paths_use_the_faulted_array_and_given_streams() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let w = Matrix::random_uniform(4, 6, -1.0, 1.0, &mut rng);
        let device = DeviceModel::ideal().with_read_sigma(0.02);
        let xbar = CrossbarArray::program(&w, &device, &mut rng).unwrap();
        let inputs = batch(6, 3, 6);
        let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let stream = |i: usize| {
            let mut r = ChaCha8Rng::seed_from_u64(77);
            r.set_stream(i as u64);
            r
        };
        let spec = FaultSpec::none().with_variation_sigma(0.1);
        let plan = spec.compile(4, 6, FaultKey::new(1, 1)).unwrap();
        let faulted = plan.apply(&xbar).unwrap();
        let faulty = FaultyBackend::from_kind(BackendKind::Naive, plan);
        let bare = BackendKind::Naive.build();
        assert_eq!(
            noisy_mvm(&faulty, &xbar, &refs, stream).unwrap(),
            noisy_mvm(bare.as_ref(), &faulted, &refs, stream).unwrap()
        );
        let model = PowerModel::default().with_noise(0.05);
        assert_eq!(
            noisy_power(&faulty, &model, &xbar, &refs, stream).unwrap(),
            noisy_power(bare.as_ref(), &model, &faulted, &refs, stream).unwrap()
        );
    }

    #[test]
    fn prepared_handles_carry_the_faulted_snapshot() {
        let xbar = programmed(5, 7, 13);
        let inputs = batch(7, 4, 14);
        let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let spec = FaultSpec::none().with_variation_sigma(0.25);
        let plan = spec.compile(5, 7, FaultKey::new(3, 4)).unwrap();
        let faulted = plan.apply(&xbar).unwrap();
        let faulty = FaultyBackend::from_kind(BackendKind::Blocked, plan);

        // The handle is keyed to the *source* array it was prepared
        // from, yet evaluates the faulted snapshot.
        let prepared = faulty.prepare(&xbar).unwrap();
        assert_eq!(prepared.generation(), xbar.generation());
        let warm = faulty.mvm_prepared(&prepared, &xbar, &refs).unwrap();
        let bare = BackendKind::Blocked.build();
        assert_eq!(warm, mvm(bare.as_ref(), &faulted, &refs).unwrap());

        // Re-mapping the source array stales the handle.
        let remapped = xbar.map_conductances(|_, g| g);
        assert!(matches!(
            faulty.mvm_prepared(&prepared, &remapped, &refs),
            Err(CrossbarError::StalePrepared { .. })
        ));
    }

    #[test]
    fn shape_mismatch_surfaces_as_invalid_config() {
        let plan = FaultSpec::none()
            .with_stuck_on_rate(0.1)
            .compile(3, 3, FaultKey::new(0, 0))
            .unwrap();
        let faulty = FaultyBackend::from_kind(BackendKind::Naive, plan);
        let xbar = programmed(4, 4, 7);
        let inputs = batch(4, 2, 8);
        let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        assert!(matches!(
            mvm(&faulty, &xbar, &refs),
            Err(CrossbarError::InvalidConfig {
                name: "fault_plan_shape"
            })
        ));
    }
}
