//! # xbar-faults
//!
//! Deterministic device fault injection for NVM crossbar arrays.
//!
//! The attack pipeline elsewhere in this workspace assumes an ideal
//! crossbar; real arrays have stuck-at devices, lognormal programming
//! variation, conductance drift, and wire resistance. This crate models
//! those non-idealities as a *deployment-time* transform of a programmed
//! [`CrossbarArray`](xbar_crossbar::array::CrossbarArray), so robustness
//! sweeps can ask how attack success degrades as hardware degrades.
//!
//! The pipeline is spec → plan → apply:
//!
//! 1. [`FaultSpec`] — a serializable description of fault *rates*
//!    (stuck-at-on/off probabilities, variation sigma, drift
//!    parameters, per-line resistance). No randomness yet.
//! 2. [`FaultPlan`] — the spec compiled for one array shape under one
//!    [`FaultKey`]. Every per-device draw comes from its own
//!    counter-mode RNG stream keyed by
//!    `(campaign_seed, trial_index, device_index)`, so plans are
//!    bit-identical at any thread count and independent of compilation
//!    order — the same discipline `xbar-runtime` uses for trial RNGs.
//! 3. [`FaultPlan::apply`] — materialises a faulted copy of a
//!    programmed array. A [`FaultyBackend`] wraps any
//!    [`EvalBackend`](xbar_crossbar::backend::EvalBackend) and applies
//!    the plan before delegating; a no-op plan delegates directly and
//!    is bit-identical to the bare backend.
//!
//! Observability: compilation counts
//! [`xbar_obs::names::XBAR_FAULT_PLAN_COMPILE`] and observes the stuck
//! fraction; application counts [`xbar_obs::names::XBAR_FAULT_APPLY`]
//! and [`xbar_obs::names::XBAR_FAULT_STUCK_DEVICES`] under the
//! [`xbar_obs::names::SPAN_FAULT_APPLY`] span.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use xbar_crossbar::array::CrossbarArray;
//! use xbar_crossbar::device::DeviceModel;
//! use xbar_faults::{FaultKey, FaultSpec};
//! use xbar_linalg::Matrix;
//!
//! let w = Matrix::from_rows(&[&[0.5, -1.0], &[0.25, 0.75]]);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let xbar = CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng)?;
//!
//! let spec = FaultSpec::none().with_stuck_off_rate(0.25);
//! let plan = spec.compile(xbar.num_outputs(), xbar.num_inputs(), FaultKey::new(42, 0))?;
//! let faulted = plan.apply(&xbar)?;
//! assert_eq!(faulted.num_devices(), xbar.num_devices());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;

pub mod backend;
pub mod plan;
pub mod spec;
pub mod transient;

pub use backend::FaultyBackend;
pub use plan::{FaultInjection, FaultKey, FaultPlan, StuckKind};
pub use spec::FaultSpec;
pub use transient::{TransientBackend, TransientInjection, TransientSpec};

/// Guards against double-counting wire resistance: the iterative
/// IR-drop solver (`ir_drop_mvm` with `r_wire > 0`) and the fault
/// layer's first-order `line_resistance` scaling model the *same*
/// physics, so enabling both on one array silently compounds the
/// effect. This check rejects that combination unless the IR-drop
/// config opts in explicitly via
/// [`allow_with_line_faults`](xbar_crossbar::irdrop::IrDropConfig::allow_with_line_faults)
/// (for deliberate worst-case studies). See DESIGN.md "IR drop vs.
/// fault-layer line resistance" for when each model applies.
///
/// # Errors
///
/// Returns [`FaultsError::InvalidSpec`] naming `line_resistance` when
/// both models are active and the opt-in flag is unset.
pub fn check_ir_drop_compose(
    spec: &FaultSpec,
    ir: &xbar_crossbar::irdrop::IrDropConfig,
) -> Result<()> {
    if spec.line_resistance > 0.0 && ir.r_wire > 0.0 && !ir.allow_with_line_faults {
        return Err(FaultsError::InvalidSpec {
            name: "line_resistance",
        });
    }
    Ok(())
}

/// Errors produced by the fault-injection subsystem.
#[derive(Debug)]
#[non_exhaustive]
pub enum FaultsError {
    /// A [`FaultSpec`] parameter is outside its valid domain.
    InvalidSpec {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// A [`FaultPlan`] was applied to an array of a different shape.
    ShapeMismatch {
        /// The `(outputs, inputs)` shape the plan was compiled for.
        expected: (usize, usize),
        /// The shape of the array it was applied to.
        got: (usize, usize),
    },
    /// A JSON fault-spec document could not be interpreted.
    BadSpecFile {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for FaultsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultsError::InvalidSpec { name } => {
                write!(f, "fault-spec parameter {name} is outside its valid domain")
            }
            FaultsError::ShapeMismatch { expected, got } => write!(
                f,
                "fault plan compiled for {}x{} applied to {}x{} array",
                expected.0, expected.1, got.0, got.1
            ),
            FaultsError::BadSpecFile { reason } => {
                write!(f, "bad fault-spec document: {reason}")
            }
        }
    }
}

impl std::error::Error for FaultsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FaultsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FaultsError>();
        let e = FaultsError::InvalidSpec {
            name: "stuck_on_rate",
        };
        assert!(e.to_string().contains("stuck_on_rate"));
        let e = FaultsError::ShapeMismatch {
            expected: (2, 3),
            got: (4, 5),
        };
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains("4x5"));
        let e = FaultsError::BadSpecFile {
            reason: "not an object".into(),
        };
        assert!(e.to_string().contains("not an object"));
    }

    #[test]
    fn ir_drop_and_line_resistance_do_not_silently_compose() {
        use xbar_crossbar::irdrop::IrDropConfig;

        let both = FaultSpec::none().with_line_resistance(0.5);
        let ir = IrDropConfig {
            r_wire: 0.1,
            ..IrDropConfig::default()
        };
        // Double-counted wire physics is rejected at validate time ...
        assert!(matches!(
            check_ir_drop_compose(&both, &ir),
            Err(FaultsError::InvalidSpec {
                name: "line_resistance"
            })
        ));
        // ... unless the IR-drop config opts in explicitly ...
        let opted_in = IrDropConfig {
            allow_with_line_faults: true,
            ..ir
        };
        assert!(check_ir_drop_compose(&both, &opted_in).is_ok());
        // ... and either model alone is always fine.
        assert!(check_ir_drop_compose(&FaultSpec::none(), &ir).is_ok());
        let no_wire = IrDropConfig {
            r_wire: 0.0,
            ..IrDropConfig::default()
        };
        assert!(check_ir_drop_compose(&both, &no_wire).is_ok());
    }
}
