//! Compiled fault plans: per-device draws keyed by
//! `(campaign_seed, trial_index, device_index)`.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use xbar_crossbar::array::CrossbarArray;

use crate::spec::FaultSpec;
use crate::{FaultsError, Result};

/// Domain-separation constant mixed into every fault seed so fault
/// draws can never collide with the runtime's per-trial RNG streams or
/// the oracle's noise streams, which use the raw campaign seed.
const FAULT_DOMAIN: u64 = 0xFA17_5EED_D00D_0001;

/// SplitMix64 — the standard 64-bit finalising mixer. Used to derive
/// one well-mixed base seed per `(campaign_seed, trial_index)` pair.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Same Box–Muller transform the crossbar device model uses for its
/// programming noise, reproduced here so fault draws stay self-contained.
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The deterministic keying for one trial's fault draws.
///
/// The contract (documented in DESIGN.md and relied on by the property
/// tests): device `d`'s draws come from
/// `ChaCha8Rng::seed_from_u64(splitmix64(campaign_seed ^ splitmix64(trial_index ^ DOMAIN)))`
/// with `set_stream(d)`. Each device owns a whole counter-mode stream,
/// so draws are independent of compilation order, thread count, and of
/// every other RNG consumer in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultKey {
    /// The campaign-level seed (shared by every trial of a campaign).
    pub campaign_seed: u64,
    /// The trial index within the campaign.
    pub trial_index: u64,
}

impl FaultKey {
    /// A key for the given campaign seed and trial index.
    pub const fn new(campaign_seed: u64, trial_index: u64) -> Self {
        FaultKey {
            campaign_seed,
            trial_index,
        }
    }

    /// The RNG owning device `device_index`'s draws under this key.
    fn device_rng(&self, device_index: u64) -> ChaCha8Rng {
        let base = splitmix64(self.campaign_seed ^ splitmix64(self.trial_index ^ FAULT_DOMAIN));
        let mut rng = ChaCha8Rng::seed_from_u64(base);
        rng.set_stream(device_index);
        rng
    }
}

/// A spec/key pair — the serializable "inject these faults for this
/// trial" value that configs (e.g. `OracleConfig`) carry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultInjection {
    /// What to inject.
    pub spec: FaultSpec,
    /// The deterministic keying of the per-device draws.
    pub key: FaultKey,
}

impl FaultInjection {
    /// Pairs a spec with a key.
    pub const fn new(spec: FaultSpec, key: FaultKey) -> Self {
        FaultInjection { spec, key }
    }

    /// Compiles the pair for an `outputs x inputs` array — shorthand
    /// for [`FaultSpec::compile`].
    ///
    /// # Errors
    ///
    /// Propagates [`FaultSpec::compile`].
    pub fn compile(&self, outputs: usize, inputs: usize) -> Result<FaultPlan> {
        self.spec.compile(outputs, inputs, self.key)
    }
}

/// The stuck-at decision for one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StuckKind {
    /// Not stuck; variation and drift apply.
    Free,
    /// Pinned to `g_max`.
    On,
    /// Pinned to `g_min`.
    Off,
}

/// A [`FaultSpec`] compiled for one array shape under one [`FaultKey`]:
/// every per-device decision is drawn and frozen, so applying the plan
/// is a deterministic, RNG-free transform.
///
/// Plans compare equal iff all decisions are equal ([`PartialEq`]),
/// which the thread-invariance tests use directly.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    spec: FaultSpec,
    key: FaultKey,
    outputs: usize,
    inputs: usize,
    /// Per-device stuck decisions (`2·M·N`, G⁺ then G⁻ row-major).
    /// Empty for a no-op plan.
    stuck: Vec<StuckKind>,
    /// Per-device lognormal variation factors (1.0 = untouched).
    scale: Vec<f64>,
    /// Per-device drift factors in `(0, 1]` (1.0 = untouched).
    drift: Vec<f64>,
    /// Per-input-line attenuation factors (length `N`).
    line_scale: Vec<f64>,
    stuck_on: usize,
    stuck_off: usize,
}

impl FaultSpec {
    /// Compiles this spec for an `outputs x inputs` array under `key`,
    /// drawing every per-device decision from its own
    /// `(campaign_seed, trial_index, device_index)` RNG stream.
    ///
    /// Every device consumes the same fixed draw sequence (stuck
    /// uniform, variation gaussian, drift gaussian) regardless of which
    /// effects are enabled, so enabling one fault model never reshuffles
    /// another's draws.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultSpec::validate`].
    pub fn compile(&self, outputs: usize, inputs: usize, key: FaultKey) -> Result<FaultPlan> {
        self.validate()?;
        xbar_obs::count(xbar_obs::names::XBAR_FAULT_PLAN_COMPILE, 1);
        if self.is_empty() {
            xbar_obs::observe(xbar_obs::names::XBAR_FAULT_STUCK_FRACTION, 0.0);
            return Ok(FaultPlan {
                spec: *self,
                key,
                outputs,
                inputs,
                stuck: Vec::new(),
                scale: Vec::new(),
                drift: Vec::new(),
                line_scale: Vec::new(),
                stuck_on: 0,
                stuck_off: 0,
            });
        }
        let num_devices = 2 * outputs * inputs;
        let mut stuck = Vec::with_capacity(num_devices);
        let mut scale = Vec::with_capacity(num_devices);
        let mut drift = Vec::with_capacity(num_devices);
        let (mut stuck_on, mut stuck_off) = (0usize, 0usize);
        let variation = self.variation_sigma > 0.0;
        let drifting = self.drift_active();
        for d in 0..num_devices {
            let mut rng = key.device_rng(d as u64);
            // Fixed draw order per device; all three always consumed.
            let u: f64 = rng.gen_range(0.0..1.0);
            let z_var = gaussian(&mut rng);
            let z_drift = gaussian(&mut rng);
            let kind = if u < self.stuck_on_rate {
                stuck_on += 1;
                StuckKind::On
            } else if u < self.stuck_on_rate + self.stuck_off_rate {
                stuck_off += 1;
                StuckKind::Off
            } else {
                StuckKind::Free
            };
            stuck.push(kind);
            scale.push(if variation {
                (self.variation_sigma * z_var).exp()
            } else {
                1.0
            });
            drift.push(if drifting {
                let nu_d = self.drift_nu * (self.drift_sigma * z_drift).exp();
                (1.0 + self.drift_time).powf(-nu_d)
            } else {
                1.0
            });
        }
        let line_scale = (0..inputs)
            .map(|j| {
                if self.line_resistance > 0.0 {
                    1.0 / (1.0 + self.line_resistance * j as f64)
                } else {
                    1.0
                }
            })
            .collect();
        if num_devices > 0 {
            xbar_obs::observe(
                xbar_obs::names::XBAR_FAULT_STUCK_FRACTION,
                (stuck_on + stuck_off) as f64 / num_devices as f64,
            );
        }
        Ok(FaultPlan {
            spec: *self,
            key,
            outputs,
            inputs,
            stuck,
            scale,
            drift,
            line_scale,
            stuck_on,
            stuck_off,
        })
    }
}

impl FaultPlan {
    /// The spec this plan was compiled from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The key the per-device draws were taken under.
    pub fn key(&self) -> FaultKey {
        self.key
    }

    /// The `(outputs, inputs)` array shape this plan targets.
    pub fn shape(&self) -> (usize, usize) {
        (self.outputs, self.inputs)
    }

    /// Whether applying this plan is guaranteed to return a
    /// bit-identical copy (compiled from an empty spec).
    pub fn is_noop(&self) -> bool {
        self.spec.is_empty()
    }

    /// Devices pinned to `g_max`.
    pub fn stuck_on(&self) -> usize {
        self.stuck_on
    }

    /// Devices pinned to `g_min`.
    pub fn stuck_off(&self) -> usize {
        self.stuck_off
    }

    /// Total stuck devices (on + off).
    pub fn stuck_devices(&self) -> usize {
        self.stuck_on + self.stuck_off
    }

    /// Total devices covered by the plan, `2·M·N`.
    pub fn num_devices(&self) -> usize {
        2 * self.outputs * self.inputs
    }

    /// Per-device drift factors in `(0, 1]` (1.0 = untouched), in the
    /// canonical device order (G⁺ row-major then G⁻). Empty for a no-op
    /// plan. Exposed so lifetime tests can check the monotone-decay
    /// contract: at a fixed key, each device's factor is non-increasing
    /// in [`FaultSpec::drift_time`].
    pub fn drift_factors(&self) -> &[f64] {
        &self.drift
    }

    /// Materialises a faulted copy of a programmed array.
    ///
    /// Per free device: the variation factor is applied and clamped to
    /// the device's conductance range (mirroring programming), then the
    /// drift factor relaxes the value toward `g_min`. Stuck devices are
    /// pinned to their rail. Finally the per-line attenuation scales
    /// every device on its input line, stuck or not — wire resistance
    /// is downstream of the device.
    ///
    /// A no-op plan returns an exact clone; untouched effects never
    /// perturb bits (factors of exactly 1.0 skip the arithmetic).
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::ShapeMismatch`] if the array's shape is
    /// not the one the plan was compiled for.
    pub fn apply(&self, array: &CrossbarArray) -> Result<CrossbarArray> {
        let got = (array.num_outputs(), array.num_inputs());
        if got != (self.outputs, self.inputs) {
            return Err(FaultsError::ShapeMismatch {
                expected: (self.outputs, self.inputs),
                got,
            });
        }
        let _span = xbar_obs::span(xbar_obs::names::SPAN_FAULT_APPLY);
        xbar_obs::count(xbar_obs::names::XBAR_FAULT_APPLY, 1);
        xbar_obs::count(
            xbar_obs::names::XBAR_FAULT_STUCK_DEVICES,
            self.stuck_devices() as u64,
        );
        if self.is_noop() {
            return Ok(array.clone());
        }
        let device = *array.device();
        let plane = self.outputs * self.inputs;
        Ok(array.map_conductances(|idx, g| {
            let j = (idx % plane) % self.inputs;
            let mut out = match self.stuck[idx] {
                StuckKind::On => device.g_max,
                StuckKind::Off => device.g_min,
                StuckKind::Free => {
                    let mut out = g;
                    let s = self.scale[idx];
                    if s != 1.0 {
                        out = (out * s).clamp(device.g_min, device.g_max);
                    }
                    let d = self.drift[idx];
                    if d != 1.0 {
                        out = device.g_min + (out - device.g_min) * d;
                    }
                    out
                }
            };
            let ls = self.line_scale[j];
            if ls != 1.0 {
                out *= ls;
            }
            out
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_crossbar::device::DeviceModel;
    use xbar_linalg::Matrix;

    fn programmed(m: usize, n: usize, seed: u64) -> CrossbarArray {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = Matrix::random_uniform(m, n, -1.0, 1.0, &mut rng);
        CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).unwrap()
    }

    #[test]
    fn empty_spec_compiles_to_noop_and_applies_bit_identically() {
        let plan = FaultSpec::none()
            .compile(5, 7, FaultKey::new(1, 2))
            .unwrap();
        assert!(plan.is_noop());
        assert_eq!(plan.stuck_devices(), 0);
        let xbar = programmed(5, 7, 3);
        assert_eq!(plan.apply(&xbar).unwrap(), xbar);
    }

    #[test]
    fn same_key_same_plan_different_key_different_plan() {
        let spec = FaultSpec::none()
            .with_stuck_off_rate(0.2)
            .with_variation_sigma(0.1);
        let a = spec.compile(6, 9, FaultKey::new(42, 3)).unwrap();
        let b = spec.compile(6, 9, FaultKey::new(42, 3)).unwrap();
        assert_eq!(a, b);
        let other_trial = spec.compile(6, 9, FaultKey::new(42, 4)).unwrap();
        let other_seed = spec.compile(6, 9, FaultKey::new(43, 3)).unwrap();
        assert_ne!(a, other_trial);
        assert_ne!(a, other_seed);
    }

    #[test]
    fn stuck_devices_land_on_their_rails() {
        let device = DeviceModel {
            g_min: 0.05,
            g_max: 1.0,
            ..DeviceModel::ideal()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let w = Matrix::random_uniform(8, 8, -1.0, 1.0, &mut rng);
        let xbar = CrossbarArray::program(&w, &device, &mut rng).unwrap();
        let spec = FaultSpec::none()
            .with_stuck_on_rate(0.25)
            .with_stuck_off_rate(0.25);
        let plan = spec.compile(8, 8, FaultKey::new(7, 0)).unwrap();
        assert!(plan.stuck_on() > 0 && plan.stuck_off() > 0);
        let faulted = plan.apply(&xbar).unwrap();
        let flat = |a: &CrossbarArray, idx: usize| {
            let plane = 64;
            let (mat, k) = if idx < plane {
                (a.g_plus().clone(), idx)
            } else {
                (a.g_minus().clone(), idx - plane)
            };
            mat[(k / 8, k % 8)]
        };
        for idx in 0..plan.num_devices() {
            match plan.stuck[idx] {
                StuckKind::On => assert_eq!(flat(&faulted, idx), device.g_max),
                StuckKind::Off => assert_eq!(flat(&faulted, idx), device.g_min),
                StuckKind::Free => assert_eq!(flat(&faulted, idx), flat(&xbar, idx)),
            }
        }
    }

    #[test]
    fn drift_relaxes_conductances_toward_g_min() {
        let device = DeviceModel {
            g_min: 0.1,
            g_max: 1.0,
            ..DeviceModel::ideal()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let w = Matrix::random_uniform(6, 6, -1.0, 1.0, &mut rng);
        let xbar = CrossbarArray::program(&w, &device, &mut rng).unwrap();
        let spec = FaultSpec::none().with_drift(0.1, 0.3, 1000.0);
        let plan = spec.compile(6, 6, FaultKey::new(5, 1)).unwrap();
        let faulted = plan.apply(&xbar).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                assert!(faulted.g_plus()[(i, j)] <= xbar.g_plus()[(i, j)] + 1e-15);
                assert!(faulted.g_plus()[(i, j)] >= device.g_min - 1e-15);
            }
        }
        // Longer drift times relax further (per-device exponents match).
        let longer = FaultSpec::none()
            .with_drift(0.1, 0.3, 10_000.0)
            .compile(6, 6, FaultKey::new(5, 1))
            .unwrap()
            .apply(&xbar)
            .unwrap();
        let sum = |a: &CrossbarArray| a.input_line_conductances().iter().sum::<f64>();
        assert!(sum(&longer) < sum(&faulted));
    }

    #[test]
    fn line_resistance_attenuates_far_lines_only() {
        let xbar = programmed(4, 5, 13);
        let spec = FaultSpec::none().with_line_resistance(0.01);
        let plan = spec.compile(4, 5, FaultKey::new(1, 0)).unwrap();
        let faulted = plan.apply(&xbar).unwrap();
        let before = xbar.input_line_conductances();
        let after = faulted.input_line_conductances();
        // Line 0 sits at the driver: untouched, bit for bit.
        assert_eq!(after[0], before[0]);
        for j in 1..5 {
            let want = before[j] / (1.0 + 0.01 * j as f64);
            assert!((after[j] - want).abs() < 1e-12, "line {j}");
        }
    }

    #[test]
    fn apply_rejects_shape_mismatch() {
        let plan = FaultSpec::none()
            .with_stuck_off_rate(0.1)
            .compile(3, 4, FaultKey::new(0, 0))
            .unwrap();
        let xbar = programmed(4, 3, 1);
        assert!(matches!(
            plan.apply(&xbar),
            Err(FaultsError::ShapeMismatch {
                expected: (3, 4),
                got: (4, 3)
            })
        ));
    }

    #[test]
    fn injection_roundtrips_through_json() {
        let inj = FaultInjection::new(
            FaultSpec::none().with_stuck_on_rate(0.05),
            FaultKey::new(42, 7),
        );
        let text = serde_json::to_string(&inj).unwrap();
        let back: FaultInjection = serde_json::from_str(&text).unwrap();
        assert_eq!(back, inj);
        assert_eq!(
            inj.compile(4, 4).unwrap(),
            inj.spec.compile(4, 4, inj.key).unwrap()
        );
    }
}
