//! Serializable fault specifications.

use serde::{Deserialize, Serialize, Value};

use crate::{FaultsError, Result};

/// A serializable description of device fault *rates* and magnitudes —
/// no randomness, no array shape. Compile it with [`FaultSpec::compile`]
/// to get a deterministic per-device [`crate::FaultPlan`].
///
/// The default ([`FaultSpec::none`]) injects nothing: every field is
/// zero, [`FaultSpec::is_empty`] is true, and the compiled plan is a
/// no-op that leaves arrays bit-identical.
///
/// Fault models, applied per device in this order (stuck-at wins):
///
/// * **Stuck-at**: with probability `stuck_on_rate` a device is pinned
///   to `g_max`, with probability `stuck_off_rate` to `g_min`
///   (mutually exclusive; the rates must sum to at most 1).
/// * **Programming variation**: free devices are scaled by a lognormal
///   factor `exp(variation_sigma · z)`, `z ~ N(0,1)`, then clamped to
///   the device's conductance range.
/// * **Conductance drift**: free devices relax toward `g_min` by the
///   time-indexed factor `(1 + drift_time)^(-ν_d)` with a per-device
///   exponent `ν_d = drift_nu · exp(drift_sigma · z)` — the standard
///   PCM power-law drift with lognormal exponent dispersion. Drift is
///   inert when `drift_nu` or `drift_time` is zero.
/// * **Line resistance**: every device on input line `j` (both planes)
///   is attenuated by `1 / (1 + line_resistance · j)`, a lumped model
///   of the series wire resistance between the line driver and column
///   `j`. Line 0 sits at the driver and is never attenuated.
///
/// When serialised as a JSON document for `--faults`, all seven fields
/// must be present (see [`FaultSpec::from_json_value`] for the lenient
/// loader that fills omitted fields with zero).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability that a device is stuck at `g_max`.
    pub stuck_on_rate: f64,
    /// Probability that a device is stuck at `g_min`.
    pub stuck_off_rate: f64,
    /// Sigma of the lognormal programming-variation factor.
    pub variation_sigma: f64,
    /// Nominal drift exponent `ν` (PCM-like power-law drift).
    pub drift_nu: f64,
    /// Lognormal dispersion of the per-device drift exponent.
    pub drift_sigma: f64,
    /// Time index `t` of the drift model, in arbitrary units since
    /// programming.
    pub drift_time: f64,
    /// Per-line series-resistance coefficient (attenuation
    /// `1 / (1 + r·j)` for input line `j`).
    pub line_resistance: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

impl FaultSpec {
    /// The empty spec: injects nothing.
    pub const fn none() -> Self {
        FaultSpec {
            stuck_on_rate: 0.0,
            stuck_off_rate: 0.0,
            variation_sigma: 0.0,
            drift_nu: 0.0,
            drift_sigma: 0.0,
            drift_time: 0.0,
            line_resistance: 0.0,
        }
    }

    /// Builder-style setter for [`FaultSpec::stuck_on_rate`].
    #[must_use]
    pub fn with_stuck_on_rate(mut self, rate: f64) -> Self {
        self.stuck_on_rate = rate;
        self
    }

    /// Builder-style setter for [`FaultSpec::stuck_off_rate`].
    #[must_use]
    pub fn with_stuck_off_rate(mut self, rate: f64) -> Self {
        self.stuck_off_rate = rate;
        self
    }

    /// Builder-style setter for [`FaultSpec::variation_sigma`].
    #[must_use]
    pub fn with_variation_sigma(mut self, sigma: f64) -> Self {
        self.variation_sigma = sigma;
        self
    }

    /// Builder-style setter for the drift model: nominal exponent,
    /// exponent dispersion, and time index.
    #[must_use]
    pub fn with_drift(mut self, nu: f64, sigma: f64, time: f64) -> Self {
        self.drift_nu = nu;
        self.drift_sigma = sigma;
        self.drift_time = time;
        self
    }

    /// Builder-style setter for [`FaultSpec::line_resistance`].
    #[must_use]
    pub fn with_line_resistance(mut self, r: f64) -> Self {
        self.line_resistance = r;
        self
    }

    /// Whether this spec injects nothing at all (the compiled plan is a
    /// guaranteed-bit-identical no-op).
    pub fn is_empty(&self) -> bool {
        self.stuck_on_rate == 0.0
            && self.stuck_off_rate == 0.0
            && self.variation_sigma == 0.0
            && self.line_resistance == 0.0
            && !self.drift_active()
    }

    /// Whether the drift model perturbs anything: a zero time index or
    /// a zero nominal exponent makes the drift factor exactly 1.
    pub(crate) fn drift_active(&self) -> bool {
        self.drift_time > 0.0 && self.drift_nu > 0.0
    }

    /// Validates every parameter's domain.
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::InvalidSpec`] naming the first offending
    /// parameter: rates must lie in `[0, 1]` and sum to at most 1,
    /// sigmas / drift parameters / line resistance must be finite and
    /// non-negative.
    pub fn validate(&self) -> Result<()> {
        let unit = |v: f64| (0.0..=1.0).contains(&v);
        if !unit(self.stuck_on_rate) {
            return Err(FaultsError::InvalidSpec {
                name: "stuck_on_rate",
            });
        }
        if !unit(self.stuck_off_rate) {
            return Err(FaultsError::InvalidSpec {
                name: "stuck_off_rate",
            });
        }
        if self.stuck_on_rate + self.stuck_off_rate > 1.0 {
            return Err(FaultsError::InvalidSpec {
                name: "stuck_on_rate + stuck_off_rate",
            });
        }
        let nonneg = |v: f64| v.is_finite() && v >= 0.0;
        if !nonneg(self.variation_sigma) {
            return Err(FaultsError::InvalidSpec {
                name: "variation_sigma",
            });
        }
        if !nonneg(self.drift_nu) {
            return Err(FaultsError::InvalidSpec { name: "drift_nu" });
        }
        if !nonneg(self.drift_sigma) {
            return Err(FaultsError::InvalidSpec {
                name: "drift_sigma",
            });
        }
        if !nonneg(self.drift_time) {
            return Err(FaultsError::InvalidSpec { name: "drift_time" });
        }
        if !nonneg(self.line_resistance) {
            return Err(FaultsError::InvalidSpec {
                name: "line_resistance",
            });
        }
        Ok(())
    }

    /// Loads a spec from a parsed JSON document, treating omitted
    /// fields as zero and rejecting unknown keys (the strict derive
    /// requires every field; config files get this lenient loader so
    /// `{"stuck_off_rate": 0.05}` is a valid spec).
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::BadSpecFile`] for non-objects, unknown
    /// keys, or non-numeric values, and propagates
    /// [`FaultSpec::validate`].
    pub fn from_json_value(value: &Value) -> Result<FaultSpec> {
        FaultSpec::load_fields(value, &|_key| String::new())
    }

    /// Parses a JSON string via [`FaultSpec::from_json_value`].
    ///
    /// Errors carry source locations: malformed JSON reports the line
    /// and column of the parse failure, and unknown or non-numeric
    /// fields report the line their key appears on — so a typo in a
    /// sweep spec points at the offending line, not at "bad file".
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::BadSpecFile`] on malformed JSON and
    /// everything [`FaultSpec::from_json_value`] rejects.
    pub fn from_json_str(text: &str) -> Result<FaultSpec> {
        let value = serde_json::parse_value(text).map_err(|e| FaultsError::BadSpecFile {
            reason: describe_parse_error(text, &e.to_string()),
        })?;
        FaultSpec::load_fields(&value, &|key| match key_line(text, key) {
            Some(line) => format!(" (line {line})"),
            None => String::new(),
        })
    }

    /// Shared lenient-loader body. `locate` renders a source-location
    /// suffix for a key (empty when no source text is available).
    fn load_fields(value: &Value, locate: &dyn Fn(&str) -> String) -> Result<FaultSpec> {
        let fields = value.as_object().ok_or_else(|| FaultsError::BadSpecFile {
            reason: format!("expected an object, got {}", value.type_name()),
        })?;
        let mut spec = FaultSpec::none();
        for (key, v) in fields {
            let num = as_f64(v).ok_or_else(|| FaultsError::BadSpecFile {
                reason: format!(
                    "field {key:?} must be a number, got {}{}",
                    v.type_name(),
                    locate(key)
                ),
            })?;
            match key.as_str() {
                "stuck_on_rate" => spec.stuck_on_rate = num,
                "stuck_off_rate" => spec.stuck_off_rate = num,
                "variation_sigma" => spec.variation_sigma = num,
                "drift_nu" => spec.drift_nu = num,
                "drift_sigma" => spec.drift_sigma = num,
                "drift_time" => spec.drift_time = num,
                "line_resistance" => spec.line_resistance = num,
                other => {
                    return Err(FaultsError::BadSpecFile {
                        reason: format!(
                            "unknown field {other:?}{}; expected one of stuck_on_rate, \
                             stuck_off_rate, variation_sigma, drift_nu, drift_sigma, \
                             drift_time, line_resistance",
                            locate(other)
                        ),
                    })
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

fn as_f64(value: &Value) -> Option<f64> {
    match value {
        Value::F64(x) => Some(*x),
        Value::U64(x) => Some(*x as f64),
        Value::I64(x) => Some(*x as f64),
        _ => None,
    }
}

/// 1-based line number of the byte offset `byte` in `text`.
fn line_of_byte(text: &str, byte: usize) -> usize {
    let byte = byte.min(text.len());
    1 + text.as_bytes()[..byte]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

/// 1-based line number of the first occurrence of `"key"` in `text`.
fn key_line(text: &str, key: &str) -> Option<usize> {
    let needle = format!("{key:?}");
    text.find(&needle).map(|pos| line_of_byte(text, pos))
}

/// Rewrites the parser's `... at byte N` suffix into a line/column
/// location, which is what a human editing a sweep spec actually needs.
fn describe_parse_error(text: &str, message: &str) -> String {
    let message = message.strip_prefix("JSON error: ").unwrap_or(message);
    if let Some((head, tail)) = message.rsplit_once(" at byte ") {
        if let Ok(byte) = tail.trim().parse::<usize>() {
            let clamped = byte.min(text.len());
            let line_start = text.as_bytes()[..clamped]
                .iter()
                .rposition(|&b| b == b'\n')
                .map(|p| p + 1)
                .unwrap_or(0);
            let line = line_of_byte(text, clamped);
            let column = clamped - line_start + 1;
            return format!("{head} at line {line} column {column} (byte {byte})");
        }
    }
    message.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty_and_valid() {
        let spec = FaultSpec::default();
        assert_eq!(spec, FaultSpec::none());
        assert!(spec.is_empty());
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn builders_flip_emptiness() {
        assert!(!FaultSpec::none().with_stuck_on_rate(0.1).is_empty());
        assert!(!FaultSpec::none().with_stuck_off_rate(0.1).is_empty());
        assert!(!FaultSpec::none().with_variation_sigma(0.2).is_empty());
        assert!(!FaultSpec::none().with_line_resistance(1e-3).is_empty());
        assert!(!FaultSpec::none().with_drift(0.1, 0.0, 100.0).is_empty());
        // Drift with zero time or zero nominal exponent is inert.
        assert!(FaultSpec::none().with_drift(0.1, 0.1, 0.0).is_empty());
        assert!(FaultSpec::none().with_drift(0.0, 0.1, 100.0).is_empty());
    }

    #[test]
    fn validate_rejects_out_of_domain() {
        assert!(FaultSpec::none()
            .with_stuck_on_rate(-0.1)
            .validate()
            .is_err());
        assert!(FaultSpec::none()
            .with_stuck_on_rate(1.1)
            .validate()
            .is_err());
        assert!(FaultSpec::none()
            .with_stuck_on_rate(0.6)
            .with_stuck_off_rate(0.6)
            .validate()
            .is_err());
        assert!(FaultSpec::none()
            .with_variation_sigma(f64::NAN)
            .validate()
            .is_err());
        assert!(FaultSpec::none()
            .with_drift(-1.0, 0.0, 1.0)
            .validate()
            .is_err());
        assert!(FaultSpec::none()
            .with_line_resistance(-1.0)
            .validate()
            .is_err());
        assert!(FaultSpec::none()
            .with_stuck_on_rate(0.5)
            .with_stuck_off_rate(0.5)
            .validate()
            .is_ok());
    }

    #[test]
    fn json_roundtrip_via_derive() {
        let spec = FaultSpec::none()
            .with_stuck_off_rate(0.05)
            .with_variation_sigma(0.1)
            .with_drift(0.05, 0.2, 1000.0)
            .with_line_resistance(1e-4);
        let text = serde_json::to_string(&spec).unwrap();
        let back: FaultSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
        // The strict derive output is also accepted by the lenient loader.
        assert_eq!(FaultSpec::from_json_str(&text).unwrap(), spec);
    }

    #[test]
    fn lenient_loader_fills_missing_fields() {
        let spec = FaultSpec::from_json_str(r#"{"stuck_off_rate": 0.05}"#).unwrap();
        assert_eq!(spec, FaultSpec::none().with_stuck_off_rate(0.05));
        assert_eq!(FaultSpec::from_json_str("{}").unwrap(), FaultSpec::none());
        // Integers are accepted where floats are expected.
        let spec = FaultSpec::from_json_str(r#"{"drift_nu": 1, "drift_time": 100}"#).unwrap();
        assert_eq!(spec.drift_nu, 1.0);
        assert_eq!(spec.drift_time, 100.0);
    }

    #[test]
    fn lenient_loader_rejects_garbage() {
        assert!(FaultSpec::from_json_str("[]").is_err());
        assert!(FaultSpec::from_json_str("not json").is_err());
        assert!(FaultSpec::from_json_str(r#"{"stuck_off_rat": 0.05}"#).is_err());
        assert!(FaultSpec::from_json_str(r#"{"stuck_off_rate": "high"}"#).is_err());
        assert!(FaultSpec::from_json_str(r#"{"stuck_off_rate": 2.0}"#).is_err());
    }

    #[test]
    fn loader_errors_carry_key_and_line() {
        // The typo'd key is named, with the line it appears on and the
        // accepted field names.
        let text = "{\n  \"stuck_off_rate\": 0.05,\n  \"stuck_off_rat\": 0.1\n}";
        let err = FaultSpec::from_json_str(text).unwrap_err().to_string();
        assert!(err.contains("\"stuck_off_rat\""), "{err}");
        assert!(err.contains("(line 3)"), "{err}");
        assert!(err.contains("expected one of"), "{err}");

        // Non-numeric values are located too.
        let text = "{\n  \"drift_nu\": \"fast\"\n}";
        let err = FaultSpec::from_json_str(text).unwrap_err().to_string();
        assert!(err.contains("\"drift_nu\""), "{err}");
        assert!(err.contains("(line 2)"), "{err}");

        // Parse failures report line and column instead of a raw byte
        // offset.
        let text = "{\n  \"drift_nu\": 0.1,\n  oops\n}";
        let err = FaultSpec::from_json_str(text).unwrap_err().to_string();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("column"), "{err}");
    }
}
