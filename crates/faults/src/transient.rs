//! Per-query transient faults: read-disturb flips and conductance
//! jitter that exist only for the duration of one query.
//!
//! Permanent faults ([`crate::FaultPlan`]) are compiled once per trial
//! and frozen; transients are redrawn for *every query* from a
//! domain-separated ChaCha8 stream keyed by
//! `(campaign_seed, trial_index, global query index, device_index)`.
//! Because the draws depend only on a query's global index — never on
//! how queries are grouped into batches, which backend evaluates them,
//! or which thread runs the trial — transient-fault campaigns stay
//! bit-identical across threads, backends, and batch splits, exactly
//! like the oracle's own noise streams.
//!
//! [`TransientBackend`] is an [`EvalBackend`] decorator: wrap any
//! backend (including a [`crate::FaultyBackend`]'s inner backend) and
//! every sample of every batch is evaluated against a transiently
//! perturbed copy of the array. An empty [`TransientSpec`] delegates
//! directly — bit-identical outputs *and* identical traces.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use xbar_crossbar::array::CrossbarArray;
use xbar_crossbar::backend::{BackendKind, EvalBackend, PreparedEval, RngStreams};
use xbar_crossbar::power::PowerModel;

use crate::plan::{gaussian, splitmix64, FaultKey};
use crate::{FaultsError, Result};

/// Domain-separation constant for transient draws. Distinct from the
/// permanent-fault domain so a query's transient draws can never
/// collide with the trial's compiled fault plan, the runtime's trial
/// streams, or the oracle's noise streams.
const TRANSIENT_DOMAIN: u64 = 0xFA17_5EED_D00D_0002;

/// A serializable description of per-query transient fault rates.
///
/// Two effects, applied per device in this order (flip wins):
///
/// * **Read-disturb flip**: with probability `flip_rate` the device
///   reads out at a rail for this query only — half of the flips land
///   on `g_min`, half on `g_max`.
/// * **Transient jitter**: surviving devices are perturbed by a
///   lognormal factor about their programmed value,
///   `g ← g_min + (g − g_min) · exp(jitter_sigma · z)`, clamped to the
///   device's conductance range.
///
/// The default ([`TransientSpec::none`]) injects nothing and is the
/// property-tested bit-identity case.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientSpec {
    /// Per-device, per-query probability of a read-disturb rail flip.
    pub flip_rate: f64,
    /// Sigma of the per-device, per-query lognormal conductance jitter.
    pub jitter_sigma: f64,
}

impl Default for TransientSpec {
    fn default() -> Self {
        TransientSpec::none()
    }
}

impl TransientSpec {
    /// The empty spec: injects nothing.
    pub const fn none() -> Self {
        TransientSpec {
            flip_rate: 0.0,
            jitter_sigma: 0.0,
        }
    }

    /// Builder-style setter for [`TransientSpec::flip_rate`].
    #[must_use]
    pub fn with_flip_rate(mut self, rate: f64) -> Self {
        self.flip_rate = rate;
        self
    }

    /// Builder-style setter for [`TransientSpec::jitter_sigma`].
    #[must_use]
    pub fn with_jitter_sigma(mut self, sigma: f64) -> Self {
        self.jitter_sigma = sigma;
        self
    }

    /// Whether this spec injects nothing (the decorator delegates
    /// directly and is bit-identical to the wrapped backend).
    pub fn is_empty(&self) -> bool {
        self.flip_rate == 0.0 && self.jitter_sigma == 0.0
    }

    /// Validates every parameter's domain.
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::InvalidSpec`] naming the first offending
    /// parameter: `flip_rate` must lie in `[0, 1]`, `jitter_sigma` must
    /// be finite and non-negative.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.flip_rate) {
            return Err(FaultsError::InvalidSpec { name: "flip_rate" });
        }
        if !(self.jitter_sigma.is_finite() && self.jitter_sigma >= 0.0) {
            return Err(FaultsError::InvalidSpec {
                name: "jitter_sigma",
            });
        }
        Ok(())
    }

    /// Materialises the transiently perturbed copy of `array` that
    /// query `query_index` reads, plus the number of rail flips drawn.
    ///
    /// Device `d`'s draws come from
    /// `ChaCha8Rng::seed_from_u64(splitmix64(seed ^ splitmix64(trial ^ splitmix64(query ^ DOMAIN))))`
    /// with `set_stream(d)` — the permanent-fault keying extended by
    /// the global query index under its own domain constant. Every
    /// device always consumes the same fixed draw sequence (flip
    /// uniform, jitter gaussian), so enabling one effect never
    /// reshuffles the other's draws.
    pub fn perturb(
        &self,
        array: &CrossbarArray,
        key: FaultKey,
        query_index: u64,
    ) -> (CrossbarArray, u64) {
        let base = splitmix64(
            key.campaign_seed
                ^ splitmix64(key.trial_index ^ splitmix64(query_index ^ TRANSIENT_DOMAIN)),
        );
        let device = *array.device();
        let jittering = self.jitter_sigma > 0.0;
        let mut flips = 0u64;
        let perturbed = array.map_conductances(|idx, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(base);
            rng.set_stream(idx as u64);
            // Fixed draw order per device; both always consumed.
            let u: f64 = rng.gen_range(0.0..1.0);
            let z = gaussian(&mut rng);
            if u < self.flip_rate {
                flips += 1;
                return if u < self.flip_rate / 2.0 {
                    device.g_min
                } else {
                    device.g_max
                };
            }
            if jittering {
                let scaled = device.g_min + (g - device.g_min) * (self.jitter_sigma * z).exp();
                scaled.clamp(device.g_min, device.g_max)
            } else {
                g
            }
        });
        (perturbed, flips)
    }
}

/// A spec/key pair — the serializable "inject these transients for this
/// trial" value that configs (e.g. `OracleConfig`) carry. The global
/// query index completes the keying at evaluation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientInjection {
    /// What to inject on every query.
    pub spec: TransientSpec,
    /// The `(campaign_seed, trial_index)` half of the keying.
    pub key: FaultKey,
}

impl TransientInjection {
    /// Pairs a spec with a key.
    pub const fn new(spec: TransientSpec, key: FaultKey) -> Self {
        TransientInjection { spec, key }
    }

    /// The perturbed copy of `array` that global query `query_index`
    /// reads, with observability counters
    /// ([`xbar_obs::names::XBAR_TRANSIENT_APPLY`] and
    /// [`xbar_obs::names::XBAR_TRANSIENT_FLIPS`]).
    pub fn perturbed(&self, array: &CrossbarArray, query_index: u64) -> CrossbarArray {
        let (perturbed, flips) = self.spec.perturb(array, self.key, query_index);
        xbar_obs::count(xbar_obs::names::XBAR_TRANSIENT_APPLY, 1);
        xbar_obs::count(xbar_obs::names::XBAR_TRANSIENT_FLIPS, flips);
        perturbed
    }
}

/// An [`EvalBackend`] decorator that evaluates every sample against a
/// transiently perturbed copy of the array.
///
/// `base_query` is the global index of the batch's first sample; sample
/// `i` is perturbed under query index `base_query + i`. Callers that
/// number their queries globally (the oracle) construct one decorator
/// per batch with the batch's base offset — the same discipline as the
/// oracle's [`RngStreams`] noise streams, and the reason results cannot
/// depend on batch splits.
///
/// With a non-empty spec each sample is delegated to the inner backend
/// as its own single-sample batch (its perturbed array is unique), so
/// per-batch trace events become per-query events — deterministically,
/// independent of how callers split batches. With an empty spec every
/// call delegates directly: bit-identical outputs and traces.
#[derive(Debug)]
pub struct TransientBackend {
    inner: Box<dyn EvalBackend>,
    injection: TransientInjection,
    base_query: u64,
}

impl TransientBackend {
    /// Wraps `inner`, perturbing sample `i` of every batch under global
    /// query index `base_query + i`.
    pub fn new(
        inner: Box<dyn EvalBackend>,
        injection: TransientInjection,
        base_query: u64,
    ) -> Self {
        TransientBackend {
            inner,
            injection,
            base_query,
        }
    }

    /// Convenience constructor from a [`BackendKind`].
    pub fn from_kind(kind: BackendKind, injection: TransientInjection, base_query: u64) -> Self {
        TransientBackend::new(kind.build(), injection, base_query)
    }

    /// The injection in effect.
    pub fn injection(&self) -> TransientInjection {
        self.injection
    }

    /// The perturbed array sample `i` reads, with observability.
    fn perturbed(&self, array: &CrossbarArray, i: usize) -> CrossbarArray {
        self.injection.perturbed(array, self.base_query + i as u64)
    }
}

impl EvalBackend for TransientBackend {
    fn kind(&self) -> BackendKind {
        self.inner.kind()
    }

    fn prepare(&self, array: &CrossbarArray) -> xbar_crossbar::Result<PreparedEval> {
        // The handle snapshots the *unperturbed* array; per-sample
        // perturbed copies are materialised (and prepared) per query at
        // evaluation time — they are unique to one query by design and
        // can never be cached across batches.
        self.inner.prepare(array)
    }

    fn mvm_prepared(
        &self,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> xbar_crossbar::Result<Vec<Vec<f64>>> {
        if self.injection.spec.is_empty() {
            return self.inner.mvm_prepared(prepared, array, inputs);
        }
        prepared.ensure_current(array)?;
        let mut out = Vec::with_capacity(inputs.len());
        for (i, input) in inputs.iter().enumerate() {
            let perturbed = self.perturbed(prepared.array(), i);
            let p = self.inner.prepare(&perturbed)?;
            out.extend(self.inner.mvm_prepared(&p, &perturbed, &[input])?);
        }
        Ok(out)
    }

    fn power_prepared(
        &self,
        model: &PowerModel,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
    ) -> xbar_crossbar::Result<Vec<f64>> {
        if self.injection.spec.is_empty() {
            return self.inner.power_prepared(model, prepared, array, inputs);
        }
        prepared.ensure_current(array)?;
        let mut out = Vec::with_capacity(inputs.len());
        for (i, input) in inputs.iter().enumerate() {
            let perturbed = self.perturbed(prepared.array(), i);
            let p = self.inner.prepare(&perturbed)?;
            out.extend(self.inner.power_prepared(model, &p, &perturbed, &[input])?);
        }
        Ok(out)
    }

    fn noisy_mvm_prepared(
        &self,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> xbar_crossbar::Result<Vec<Vec<f64>>> {
        if self.injection.spec.is_empty() {
            return self
                .inner
                .noisy_mvm_prepared(prepared, array, inputs, streams);
        }
        prepared.ensure_current(array)?;
        let mut out = Vec::with_capacity(inputs.len());
        for (i, input) in inputs.iter().enumerate() {
            let perturbed = self.perturbed(prepared.array(), i);
            let p = self.inner.prepare(&perturbed)?;
            // Sample i keeps its own noise stream regardless of the
            // per-sample delegation.
            out.extend(
                self.inner
                    .noisy_mvm_prepared(&p, &perturbed, &[input], &mut |_| streams(i))?,
            );
        }
        Ok(out)
    }

    fn noisy_power_prepared(
        &self,
        model: &PowerModel,
        prepared: &PreparedEval,
        array: &CrossbarArray,
        inputs: &[&[f64]],
        streams: RngStreams<'_>,
    ) -> xbar_crossbar::Result<Vec<f64>> {
        if self.injection.spec.is_empty() {
            return self
                .inner
                .noisy_power_prepared(model, prepared, array, inputs, streams);
        }
        prepared.ensure_current(array)?;
        let mut out = Vec::with_capacity(inputs.len());
        for (i, input) in inputs.iter().enumerate() {
            let perturbed = self.perturbed(prepared.array(), i);
            let p = self.inner.prepare(&perturbed)?;
            out.extend(self.inner.noisy_power_prepared(
                model,
                &p,
                &perturbed,
                &[input],
                &mut |_| streams(i),
            )?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_crossbar::device::DeviceModel;
    use xbar_linalg::Matrix;

    fn programmed(m: usize, n: usize, seed: u64) -> CrossbarArray {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = Matrix::random_uniform(m, n, -1.0, 1.0, &mut rng);
        CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).unwrap()
    }

    #[test]
    fn spec_validation_and_emptiness() {
        assert!(TransientSpec::none().is_empty());
        assert!(TransientSpec::default().validate().is_ok());
        assert!(!TransientSpec::none().with_flip_rate(0.01).is_empty());
        assert!(!TransientSpec::none().with_jitter_sigma(0.1).is_empty());
        assert!(TransientSpec::none()
            .with_flip_rate(1.5)
            .validate()
            .is_err());
        assert!(TransientSpec::none()
            .with_flip_rate(-0.1)
            .validate()
            .is_err());
        assert!(TransientSpec::none()
            .with_jitter_sigma(f64::NAN)
            .validate()
            .is_err());
        assert!(TransientSpec::none()
            .with_jitter_sigma(-1.0)
            .validate()
            .is_err());
    }

    #[test]
    fn perturbation_is_deterministic_in_its_key_and_query() {
        let array = programmed(6, 8, 3);
        let spec = TransientSpec::none()
            .with_flip_rate(0.1)
            .with_jitter_sigma(0.2);
        let key = FaultKey::new(42, 7);
        let (a, fa) = spec.perturb(&array, key, 11);
        let (b, fb) = spec.perturb(&array, key, 11);
        assert_eq!(a, b);
        assert_eq!(fa, fb);
        // Query index, trial index, and campaign seed all separate draws.
        let (other_query, _) = spec.perturb(&array, key, 12);
        let (other_trial, _) = spec.perturb(&array, FaultKey::new(42, 8), 11);
        let (other_seed, _) = spec.perturb(&array, FaultKey::new(43, 7), 11);
        assert_ne!(a, other_query);
        assert_ne!(a, other_trial);
        assert_ne!(a, other_seed);
    }

    #[test]
    fn empty_spec_perturbs_nothing() {
        let array = programmed(4, 5, 9);
        let (same, flips) = TransientSpec::none().perturb(&array, FaultKey::new(0, 0), 0);
        assert_eq!(same, array);
        assert_eq!(flips, 0);
    }

    #[test]
    fn batch_split_does_not_change_results() {
        let array = programmed(5, 7, 21);
        let spec = TransientSpec::none()
            .with_flip_rate(0.15)
            .with_jitter_sigma(0.1);
        let injection = TransientInjection::new(spec, FaultKey::new(9, 2));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let inputs = Matrix::random_uniform(6, 7, -1.0, 1.0, &mut rng);
        let refs: Vec<&[f64]> = (0..6).map(|b| inputs.row(b)).collect();

        fn mvm(
            backend: &TransientBackend,
            array: &CrossbarArray,
            refs: &[&[f64]],
        ) -> Vec<Vec<f64>> {
            let prepared = backend.prepare(array).unwrap();
            backend.mvm_prepared(&prepared, array, refs).unwrap()
        }

        // One batch of six at base 100 ...
        let whole = mvm(
            &TransientBackend::from_kind(BackendKind::Naive, injection, 100),
            &array,
            &refs,
        );
        // ... must equal two batches of three at bases 100 and 103,
        // and the blocked backend must agree bit for bit.
        let first = mvm(
            &TransientBackend::from_kind(BackendKind::Blocked, injection, 100),
            &array,
            &refs[..3],
        );
        let second = mvm(
            &TransientBackend::from_kind(BackendKind::Blocked, injection, 103),
            &array,
            &refs[3..],
        );
        let split: Vec<Vec<f64>> = first.into_iter().chain(second).collect();
        assert_eq!(whole, split);
    }

    #[test]
    fn flips_land_on_rails_and_jitter_stays_in_range() {
        let device = DeviceModel {
            g_min: 0.05,
            g_max: 1.0,
            ..DeviceModel::ideal()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let w = Matrix::random_uniform(10, 10, -1.0, 1.0, &mut rng);
        let array = CrossbarArray::program(&w, &device, &mut rng).unwrap();
        let spec = TransientSpec::none()
            .with_flip_rate(0.3)
            .with_jitter_sigma(0.5);
        let (perturbed, flips) = spec.perturb(&array, FaultKey::new(1, 1), 1);
        assert!(flips > 0, "a 30% flip rate on 200 devices must flip some");
        for mat in [perturbed.g_plus(), perturbed.g_minus()] {
            for i in 0..10 {
                for j in 0..10 {
                    let g = mat[(i, j)];
                    assert!(
                        (device.g_min..=device.g_max).contains(&g),
                        "conductance {g} escaped the device range"
                    );
                }
            }
        }
    }
}
