//! Property-based tests of the fault-injection contracts:
//!
//! * An empty `FaultSpec` compiles to a no-op plan, and a
//!   `FaultyBackend` carrying it is *bit-identical* to the wrapped
//!   backend — exact `==` on every float, every shape, every batch.
//! * Identical `(spec, key)` pairs compile to identical plans; the
//!   trial index and campaign seed both separate the draws.
//! * Stuck-at rates are honoured within binomial tolerance on large
//!   arrays.
//! * An empty `TransientSpec` makes `TransientBackend` bit-identical to
//!   the wrapped backend at any base query index.
//! * At a fixed key, every device's drift factor is monotonically
//!   non-increasing in `drift_time` (hardware only decays).
//! * A `PreparedEval` handle taken through a fault-plan application is
//!   stale — reuse is an error, never silently unfaulted numbers.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_crossbar::array::CrossbarArray;
use xbar_crossbar::backend::{BackendKind, EvalBackend};
use xbar_crossbar::device::DeviceModel;
use xbar_crossbar::power::PowerModel;
use xbar_faults::{
    FaultKey, FaultSpec, FaultyBackend, TransientBackend, TransientInjection, TransientSpec,
};
use xbar_linalg::Matrix;

fn programmed(m: usize, n: usize, seed: u64, device: &DeviceModel) -> CrossbarArray {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut w = Matrix::random_uniform(m, n, -1.0, 1.0, &mut rng);
    if w.max_abs() == 0.0 {
        w[(0, 0)] = 0.5;
    }
    CrossbarArray::program(&w, device, &mut rng).unwrap()
}

fn sample_batch(batch: usize, n: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB0);
    Matrix::random_uniform(batch, n, -1.0, 1.0, &mut rng)
}

fn streams(seed: u64) -> impl FnMut(usize) -> ChaCha8Rng {
    move |i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(i as u64 + 1);
        rng
    }
}

/// Prepare-once shorthands: the zero-fault equivalence properties
/// compare a decorated backend against the bare one on single batches.
fn mvm<B: EvalBackend + ?Sized>(
    backend: &B,
    array: &CrossbarArray,
    inputs: &[&[f64]],
) -> xbar_crossbar::Result<Vec<Vec<f64>>> {
    let prepared = backend.prepare(array)?;
    backend.mvm_prepared(&prepared, array, inputs)
}

fn power<B: EvalBackend + ?Sized>(
    backend: &B,
    model: &PowerModel,
    array: &CrossbarArray,
    inputs: &[&[f64]],
) -> xbar_crossbar::Result<Vec<f64>> {
    let prepared = backend.prepare(array)?;
    backend.power_prepared(model, &prepared, array, inputs)
}

fn noisy_mvm<B: EvalBackend + ?Sized>(
    backend: &B,
    array: &CrossbarArray,
    inputs: &[&[f64]],
    mut streams: impl FnMut(usize) -> ChaCha8Rng,
) -> xbar_crossbar::Result<Vec<Vec<f64>>> {
    let prepared = backend.prepare(array)?;
    backend.noisy_mvm_prepared(&prepared, array, inputs, &mut streams)
}

fn noisy_power<B: EvalBackend + ?Sized>(
    backend: &B,
    model: &PowerModel,
    array: &CrossbarArray,
    inputs: &[&[f64]],
    mut streams: impl FnMut(usize) -> ChaCha8Rng,
) -> xbar_crossbar::Result<Vec<f64>> {
    let prepared = backend.prepare(array)?;
    backend.noisy_power_prepared(model, &prepared, array, inputs, &mut streams)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The zero-fault contract: an empty spec wrapped around either
    /// backend returns the wrapped backend's outputs bit for bit, on
    /// all four batch entry points.
    #[test]
    fn empty_spec_is_bit_identical_to_wrapped_backend(
        m in 1usize..10,
        n in 1usize..12,
        batch in 1usize..9,
        seed in any::<u64>(),
        trial in any::<u64>(),
    ) {
        let device = DeviceModel::ideal().with_read_sigma(0.03);
        let array = programmed(m, n, seed, &device);
        let inputs = sample_batch(batch, n, seed);
        let refs: Vec<&[f64]> = (0..batch).map(|b| inputs.row(b)).collect();
        let plan = FaultSpec::none()
            .compile(m, n, FaultKey::new(seed, trial))
            .unwrap();
        prop_assert!(plan.is_noop());

        for kind in [BackendKind::Naive, BackendKind::Blocked] {
            let bare = kind.build();
            let faulty = FaultyBackend::from_kind(kind, plan.clone());
            prop_assert_eq!(
                mvm(&faulty, &array, &refs).unwrap(),
                mvm(bare.as_ref(), &array, &refs).unwrap()
            );
            let model = PowerModel::default().with_noise(0.02);
            prop_assert_eq!(
                power(&faulty, &model, &array, &refs).unwrap(),
                power(bare.as_ref(), &model, &array, &refs).unwrap()
            );
            prop_assert_eq!(
                noisy_mvm(&faulty, &array, &refs, streams(seed)).unwrap(),
                noisy_mvm(bare.as_ref(), &array, &refs, streams(seed)).unwrap()
            );
            prop_assert_eq!(
                noisy_power(&faulty, &model, &array, &refs, streams(seed ^ 0x5)).unwrap(),
                noisy_power(bare.as_ref(), &model, &array, &refs, streams(seed ^ 0x5))
                    .unwrap()
            );
        }
    }

    /// Determinism and key separation: the same `(spec, key)` always
    /// compiles to the same plan (and the same faulted conductances);
    /// changing the trial index or the campaign seed changes the draws.
    #[test]
    fn plans_are_deterministic_in_their_key(
        m in 2usize..9,
        n in 2usize..9,
        seed in any::<u64>(),
        trial in 0u64..1000,
    ) {
        let spec = FaultSpec::none()
            .with_stuck_on_rate(0.1)
            .with_stuck_off_rate(0.1)
            .with_variation_sigma(0.15);
        let key = FaultKey::new(seed, trial);
        let a = spec.compile(m, n, key).unwrap();
        let b = spec.compile(m, n, key).unwrap();
        prop_assert_eq!(&a, &b);

        let array = programmed(m, n, seed ^ 0x11, &DeviceModel::ideal());
        prop_assert_eq!(a.apply(&array).unwrap(), b.apply(&array).unwrap());

        let other_trial = spec.compile(m, n, FaultKey::new(seed, trial + 1)).unwrap();
        let other_seed = spec
            .compile(m, n, FaultKey::new(seed.wrapping_add(1), trial))
            .unwrap();
        prop_assert!(a != other_trial, "trial index did not separate draws");
        prop_assert!(a != other_seed, "campaign seed did not separate draws");
    }

    /// The zero-transient contract: an empty `TransientSpec` wrapped
    /// around either backend returns the wrapped backend's outputs bit
    /// for bit, on all four batch entry points, at any base query index.
    #[test]
    fn empty_transient_spec_is_bit_identical_to_wrapped_backend(
        m in 1usize..10,
        n in 1usize..12,
        batch in 1usize..9,
        seed in any::<u64>(),
        trial in any::<u64>(),
        base_query in any::<u64>(),
    ) {
        let device = DeviceModel::ideal().with_read_sigma(0.03);
        let array = programmed(m, n, seed, &device);
        let inputs = sample_batch(batch, n, seed);
        let refs: Vec<&[f64]> = (0..batch).map(|b| inputs.row(b)).collect();
        let injection = TransientInjection::new(TransientSpec::none(), FaultKey::new(seed, trial));
        prop_assert!(injection.spec.is_empty());

        for kind in [BackendKind::Naive, BackendKind::Blocked] {
            let bare = kind.build();
            let transient = TransientBackend::from_kind(kind, injection, base_query);
            prop_assert_eq!(
                mvm(&transient, &array, &refs).unwrap(),
                mvm(bare.as_ref(), &array, &refs).unwrap()
            );
            let model = PowerModel::default().with_noise(0.02);
            prop_assert_eq!(
                power(&transient, &model, &array, &refs).unwrap(),
                power(bare.as_ref(), &model, &array, &refs).unwrap()
            );
            prop_assert_eq!(
                noisy_mvm(&transient, &array, &refs, streams(seed)).unwrap(),
                noisy_mvm(bare.as_ref(), &array, &refs, streams(seed)).unwrap()
            );
            prop_assert_eq!(
                noisy_power(&transient, &model, &array, &refs, streams(seed ^ 0x5)).unwrap(),
                noisy_power(bare.as_ref(), &model, &array, &refs, streams(seed ^ 0x5))
                    .unwrap()
            );
        }
    }

    /// The monotone-decay contract: at a fixed key, each device's drift
    /// factor is non-increasing in `drift_time` — the same hardware
    /// read later is never in better shape.
    #[test]
    fn drift_factors_are_monotone_in_drift_time(
        m in 1usize..10,
        n in 1usize..12,
        seed in any::<u64>(),
        trial in any::<u64>(),
        t1 in 0.001f64..1000.0,
        dt in 0.001f64..1000.0,
    ) {
        let at = |t: f64| {
            FaultSpec::none()
                .with_drift(0.3, 0.1, t)
                .compile(m, n, FaultKey::new(seed, trial))
                .unwrap()
        };
        let early = at(t1);
        let late = at(t1 + dt);
        prop_assert_eq!(early.drift_factors().len(), late.drift_factors().len());
        for (device, (a, b)) in early
            .drift_factors()
            .iter()
            .zip(late.drift_factors())
            .enumerate()
        {
            prop_assert!(
                b <= a && *b > 0.0 && *a <= 1.0,
                "device {}: factor went {} -> {} from t={} to t={}",
                device, a, b, t1, t1 + dt
            );
        }
    }

    /// Staleness across fault application: a handle prepared from the
    /// pristine array must be rejected against the faulted copy (and
    /// vice versa) — generation mismatch is an error, never silently
    /// wrong (unfaulted) numbers. A handle prepared *through* the
    /// decorator stays keyed to the pristine array and keeps serving
    /// faulted results.
    #[test]
    fn fault_apply_invalidates_prepared_handles(
        m in 2usize..9,
        n in 2usize..9,
        batch in 1usize..6,
        seed in any::<u64>(),
        trial in any::<u64>(),
    ) {
        let array = programmed(m, n, seed, &DeviceModel::ideal());
        let inputs = sample_batch(batch, n, seed);
        let refs: Vec<&[f64]> = (0..batch).map(|b| inputs.row(b)).collect();
        let spec = FaultSpec::none().with_variation_sigma(0.2);
        let plan = spec.compile(m, n, FaultKey::new(seed, trial)).unwrap();
        let faulted = plan.apply(&array).unwrap();

        let bare = BackendKind::Blocked.build();
        let pristine_handle = bare.prepare(&array).unwrap();
        // Driving a pristine handle with the faulted array fails …
        prop_assert!(matches!(
            bare.mvm_prepared(&pristine_handle, &faulted, &refs),
            Err(xbar_crossbar::CrossbarError::StalePrepared { .. })
        ));
        // … and so does the reverse.
        let faulted_handle = bare.prepare(&faulted).unwrap();
        prop_assert!(bare.mvm_prepared(&faulted_handle, &array, &refs).is_err());

        // The decorator's handle is keyed to the pristine array and
        // evaluates the faulted snapshot.
        let faulty = FaultyBackend::from_kind(BackendKind::Blocked, plan);
        let through = faulty.prepare(&array).unwrap();
        prop_assert_eq!(
            faulty.mvm_prepared(&through, &array, &refs).unwrap(),
            bare.mvm_prepared(&faulted_handle, &faulted, &refs).unwrap()
        );
    }

    /// Rate fidelity: on a large array the realised stuck fractions sit
    /// within 5 binomial standard deviations of the spec'd rates.
    #[test]
    fn stuck_rates_are_honoured_within_tolerance(
        on_pct in 0usize..4,
        off_pct in 0usize..4,
        seed in any::<u64>(),
    ) {
        let rates = [0.0, 0.02, 0.05, 0.1];
        let (p_on, p_off) = (rates[on_pct], rates[off_pct]);
        let spec = FaultSpec::none()
            .with_stuck_on_rate(p_on)
            .with_stuck_off_rate(p_off);
        let (m, n) = (100, 100);
        let plan = spec.compile(m, n, FaultKey::new(seed, 0)).unwrap();
        let devices = plan.num_devices() as f64;
        for (p, got) in [(p_on, plan.stuck_on()), (p_off, plan.stuck_off())] {
            let sigma = (p * (1.0 - p) / devices).sqrt();
            let realised = got as f64 / devices;
            prop_assert!(
                (realised - p).abs() <= 5.0 * sigma + f64::EPSILON,
                "rate {} realised as {} (sigma {})", p, realised, sigma
            );
        }
    }
}
