//! Plans are a pure function of `(spec, shape, key)`: compiling the
//! same inputs from many threads at once — or in any order — yields
//! identical plans and identical faulted arrays. This is the property
//! that makes fault-injected campaigns reproducible at any thread
//! count.

use std::thread;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar_crossbar::array::CrossbarArray;
use xbar_crossbar::device::DeviceModel;
use xbar_faults::{FaultKey, FaultPlan, FaultSpec};
use xbar_linalg::Matrix;

fn sweep_spec() -> FaultSpec {
    FaultSpec::none()
        .with_stuck_on_rate(0.03)
        .with_stuck_off_rate(0.07)
        .with_variation_sigma(0.2)
        .with_drift(0.05, 0.3, 1000.0)
        .with_line_resistance(1e-4)
}

fn compile_all(spec: &FaultSpec, trials: u64) -> Vec<FaultPlan> {
    (0..trials)
        .map(|t| spec.compile(12, 17, FaultKey::new(424242, t)).unwrap())
        .collect()
}

#[test]
fn concurrent_compilation_matches_serial() {
    let spec = sweep_spec();
    let trials = 8u64;
    let serial = compile_all(&spec, trials);

    // Every thread compiles the full set, racing each other; each must
    // reproduce the serial result exactly.
    let handles: Vec<_> = (0..4)
        .map(|_| thread::spawn(move || compile_all(&spec, trials)))
        .collect();
    for handle in handles {
        let concurrent = handle.join().unwrap();
        assert_eq!(concurrent, serial);
    }
}

#[test]
fn reversed_compilation_order_changes_nothing() {
    let spec = sweep_spec();
    let forward = compile_all(&spec, 6);
    let mut reversed: Vec<_> = (0..6u64)
        .rev()
        .map(|t| spec.compile(12, 17, FaultKey::new(424242, t)).unwrap())
        .collect();
    reversed.reverse();
    assert_eq!(forward, reversed);
}

#[test]
fn faulted_arrays_are_identical_across_threads() {
    let spec = sweep_spec();
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let w = Matrix::random_uniform(12, 17, -1.0, 1.0, &mut rng);
    let array = CrossbarArray::program(&w, &DeviceModel::ideal(), &mut rng).unwrap();
    let plan = spec.compile(12, 17, FaultKey::new(9, 4)).unwrap();
    let reference = plan.apply(&array).unwrap();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let (spec, array) = (spec, array.clone());
            thread::spawn(move || {
                spec.compile(12, 17, FaultKey::new(9, 4))
                    .unwrap()
                    .apply(&array)
                    .unwrap()
            })
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.join().unwrap(), reference);
    }
}
