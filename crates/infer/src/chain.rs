//! The chain runner: burn-in, thinning, and deterministic multi-chain
//! execution.
//!
//! Every random draw in a chain comes from a [`ChaCha8Rng`] stream
//! keyed by `(campaign_seed, chain_index, step)` — never by thread
//! identity or scheduling — so a chain's draws are a pure function of
//! its key. [`run_chains`] fans chains out over `std::thread::scope`
//! with the same discipline as the crossbar's `ParallelBackend`:
//! results are assembled by chain index and are bit-identical at any
//! thread count.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::distribution::Distribution;
use crate::error::InferError;
use crate::mcmc::{ess_step, rwm_step, BayesModel, ChainState, Kernel, StepStats};
use crate::Result;

/// Domain-separation salt so chain streams never collide with oracle
/// noise streams keyed from the same campaign seed.
const CHAIN_SEED_SALT: u64 = 0x1A7E_C0DE_5EED_CAB5;

/// Stream-index layout: chain index in the high bits, step in the low
/// 40. Bounds are checked by [`ChainConfig`] / [`run_chains`].
const STEP_BITS: u32 = 40;

/// The per-draw stream: ChaCha8 keyed by
/// `(campaign_seed, chain_index, step)`. Step `0` seeds the chain's
/// initial state; transitions use steps `1..`.
pub(crate) fn step_rng(campaign_seed: u64, chain_index: u64, step: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(campaign_seed ^ CHAIN_SEED_SALT);
    rng.set_stream(((chain_index + 1) << STEP_BITS) | step);
    rng
}

/// Sampling schedule of one chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainConfig {
    /// Transitions discarded before any draw is recorded.
    pub burn_in: usize,
    /// Draws recorded after burn-in.
    pub samples: usize,
    /// Transitions between recorded draws (`1` records every
    /// post-burn-in state).
    pub thin: usize,
}

impl ChainConfig {
    /// Validates `samples >= 1`, `thin >= 1`, and a total step count
    /// that fits the stream-index layout.
    pub fn new(burn_in: usize, samples: usize, thin: usize) -> Result<Self> {
        if samples == 0 {
            return Err(InferError::InvalidParameter { name: "samples" });
        }
        if thin == 0 {
            return Err(InferError::InvalidParameter { name: "thin" });
        }
        let cfg = ChainConfig {
            burn_in,
            samples,
            thin,
        };
        if cfg.total_steps() >= 1u64 << STEP_BITS {
            return Err(InferError::InvalidParameter { name: "samples" });
        }
        Ok(cfg)
    }

    /// Total transitions one chain performs.
    pub fn total_steps(&self) -> u64 {
        self.burn_in as u64 + (self.samples as u64) * (self.thin as u64)
    }
}

/// One finished chain: its post-burn-in draws plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainResult {
    /// Which chain this is (`0..num_chains`).
    pub chain_index: usize,
    /// Recorded draws, one `dim`-length vector per retained step.
    pub draws: Vec<Vec<f64>>,
    /// Accepted transitions (elliptical slice always accepts).
    pub accepted: u64,
    /// Total transitions performed (burn-in included).
    pub steps: u64,
    /// Density evaluations spent across all transitions.
    pub density_evals: u64,
}

impl ChainResult {
    /// The chain's draws for one dimension, in step order — the series
    /// shape `xbar_stats::convergence` consumes.
    pub fn dim_series(&self, dim: usize) -> Vec<f64> {
        self.draws.iter().map(|d| d[dim]).collect()
    }

    /// Fraction of transitions accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.accepted as f64 / self.steps as f64
        }
    }
}

/// Runs one chain to completion.
///
/// The initial state is drawn from the priors using step stream `0`;
/// transition `s` (1-based) uses step stream `s`. Two calls with the
/// same `(model, kernel, config, campaign_seed, chain_index)` return
/// identical draws, bit for bit.
///
/// # Errors
///
/// * Kernel/model mismatches from [`Kernel::validate`].
/// * [`InferError::InvalidParameter`] if `chain_index` does not fit the
///   stream layout (`>= 2^23`).
pub fn run_chain<M: BayesModel + ?Sized>(
    model: &M,
    kernel: &Kernel,
    config: &ChainConfig,
    campaign_seed: u64,
    chain_index: usize,
) -> Result<ChainResult> {
    kernel.validate(model)?;
    if (chain_index as u64) >= 1u64 << (63 - STEP_BITS) {
        return Err(InferError::InvalidParameter {
            name: "chain_index",
        });
    }
    let mut init_rng = step_rng(campaign_seed, chain_index as u64, 0);
    let theta: Vec<f64> = model
        .priors()
        .iter()
        .map(|p| p.sample(&mut init_rng))
        .collect();
    let mut state = ChainState::new(model, kernel, theta);

    let total = config.total_steps();
    let mut draws = Vec::with_capacity(config.samples);
    let mut accepted = 0u64;
    let mut density_evals = 1u64; // the initial state's cached density
    for step in 1..=total {
        let mut rng = step_rng(campaign_seed, chain_index as u64, step);
        let stats: StepStats = match kernel {
            Kernel::RandomWalk { steps } => rwm_step(model, steps, &mut state, &mut rng),
            Kernel::EllipticalSlice => ess_step(model, &mut state, &mut rng),
        };
        accepted += stats.accepted as u64;
        density_evals += stats.evals;
        if step > config.burn_in as u64
            && (step - config.burn_in as u64).is_multiple_of(config.thin as u64)
        {
            draws.push(state.theta.clone());
        }
    }
    debug_assert_eq!(draws.len(), config.samples);
    Ok(ChainResult {
        chain_index,
        draws,
        accepted,
        steps: total,
        density_evals,
    })
}

/// Runs `num_chains` independent chains, fanning out over
/// `std::thread::scope` when `threads > 1` (`threads == 0` uses one
/// worker per available core, capped at the chain count).
///
/// Chains are keyed by `(campaign_seed, chain_index, step)` and
/// assembled by chain index, so the result is bit-identical at any
/// thread count — parallelism is a pure execution detail.
///
/// # Errors
///
/// * [`InferError::InvalidParameter`] for `num_chains == 0`.
/// * Per-chain errors from [`run_chain`] (the first, in chain order).
pub fn run_chains<M: BayesModel + ?Sized>(
    model: &M,
    kernel: &Kernel,
    config: &ChainConfig,
    campaign_seed: u64,
    num_chains: usize,
    threads: usize,
) -> Result<Vec<ChainResult>> {
    if num_chains == 0 {
        return Err(InferError::InvalidParameter { name: "num_chains" });
    }
    kernel.validate(model)?;
    let _span = xbar_obs::span(xbar_obs::names::SPAN_INFER_CHAINS);
    let workers = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
    .min(num_chains)
    .max(1);

    let results: Vec<Result<ChainResult>> = if workers == 1 {
        (0..num_chains)
            .map(|c| run_chain(model, kernel, config, campaign_seed, c))
            .collect()
    } else {
        let mut slots: Vec<Option<Result<ChainResult>>> = (0..num_chains).map(|_| None).collect();
        std::thread::scope(|scope| {
            // Contiguous chain ranges per worker; each worker writes
            // only its own disjoint slice of the slot vector.
            let chunk = num_chains.div_ceil(workers);
            let mut rest = slots.as_mut_slice();
            let mut base = 0usize;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (mine, tail) = rest.split_at_mut(take);
                rest = tail;
                let start = base;
                base += take;
                scope.spawn(move || {
                    for (offset, slot) in mine.iter_mut().enumerate() {
                        *slot = Some(run_chain(
                            model,
                            kernel,
                            config,
                            campaign_seed,
                            start + offset,
                        ));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every chain slot is filled by its worker"))
            .collect()
    };

    let mut chains = Vec::with_capacity(num_chains);
    for result in results {
        chains.push(result?);
    }
    // Aggregate observability once, on the caller's thread, so counters
    // land in the surrounding trial's totals regardless of how the
    // chains were scheduled.
    xbar_obs::count(xbar_obs::names::INFER_CHAIN, chains.len() as u64);
    xbar_obs::count(
        xbar_obs::names::INFER_MCMC_STEP,
        chains.iter().map(|c| c.steps).sum(),
    );
    xbar_obs::count(
        xbar_obs::names::INFER_LIKELIHOOD_EVAL,
        chains.iter().map(|c| c.density_evals).sum(),
    );
    Ok(chains)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Prior;

    struct Toy {
        priors: Vec<Prior>,
    }

    impl BayesModel for Toy {
        fn dim(&self) -> usize {
            self.priors.len()
        }
        fn priors(&self) -> &[Prior] {
            &self.priors
        }
        fn log_likelihood(&self, theta: &[f64]) -> f64 {
            -0.5 * theta
                .iter()
                .map(|&x| (x - 1.0) * (x - 1.0) / 0.25)
                .sum::<f64>()
        }
    }

    fn toy(dim: usize) -> Toy {
        Toy {
            priors: vec![Prior::normal(0.0, 2.0).unwrap(); dim],
        }
    }

    #[test]
    fn config_validates_and_counts_steps() {
        assert!(ChainConfig::new(10, 0, 1).is_err());
        assert!(ChainConfig::new(10, 5, 0).is_err());
        let cfg = ChainConfig::new(100, 50, 3).unwrap();
        assert_eq!(cfg.total_steps(), 250);
    }

    #[test]
    fn burn_in_and_thinning_shape_the_draws() {
        let model = toy(2);
        let cfg = ChainConfig::new(20, 30, 4).unwrap();
        let result = run_chain(&model, &Kernel::EllipticalSlice, &cfg, 7, 0).unwrap();
        assert_eq!(result.draws.len(), 30);
        assert_eq!(result.steps, 20 + 30 * 4);
        assert_eq!(result.dim_series(0).len(), 30);
        assert!(result.acceptance_rate() > 0.0);
    }

    #[test]
    fn chains_are_deterministic_and_separated_by_their_key() {
        let model = toy(3);
        let cfg = ChainConfig::new(10, 20, 1).unwrap();
        let kernel = Kernel::RandomWalk {
            steps: vec![0.3; 3],
        };
        let a = run_chain(&model, &kernel, &cfg, 42, 1).unwrap();
        let b = run_chain(&model, &kernel, &cfg, 42, 1).unwrap();
        assert_eq!(a, b, "same key must replay the same chain");
        let other_chain = run_chain(&model, &kernel, &cfg, 42, 2).unwrap();
        let other_seed = run_chain(&model, &kernel, &cfg, 43, 1).unwrap();
        assert_ne!(a.draws, other_chain.draws, "chain index must separate");
        assert_ne!(a.draws, other_seed.draws, "campaign seed must separate");
    }

    #[test]
    fn thread_count_is_a_pure_execution_detail() {
        let model = toy(2);
        let cfg = ChainConfig::new(15, 25, 2).unwrap();
        let serial = run_chains(&model, &Kernel::EllipticalSlice, &cfg, 5, 6, 1).unwrap();
        for threads in [2, 4, 8] {
            let parallel =
                run_chains(&model, &Kernel::EllipticalSlice, &cfg, 5, 6, threads).unwrap();
            assert_eq!(serial, parallel, "threads={threads} changed the draws");
        }
        let auto = run_chains(&model, &Kernel::EllipticalSlice, &cfg, 5, 6, 0).unwrap();
        assert_eq!(serial, auto);
    }

    #[test]
    fn chain_results_arrive_in_index_order() {
        let model = toy(1);
        let cfg = ChainConfig::new(5, 5, 1).unwrap();
        let chains = run_chains(&model, &Kernel::EllipticalSlice, &cfg, 9, 5, 3).unwrap();
        for (i, c) in chains.iter().enumerate() {
            assert_eq!(c.chain_index, i);
        }
    }

    #[test]
    fn zero_chains_is_rejected() {
        let model = toy(1);
        let cfg = ChainConfig::new(5, 5, 1).unwrap();
        assert!(matches!(
            run_chains(&model, &Kernel::EllipticalSlice, &cfg, 9, 0, 1),
            Err(InferError::InvalidParameter { name: "num_chains" })
        ));
    }

    #[test]
    fn multi_chain_draws_match_single_chain_runs() {
        let model = toy(2);
        let cfg = ChainConfig::new(10, 10, 1).unwrap();
        let bundle = run_chains(&model, &Kernel::EllipticalSlice, &cfg, 11, 3, 2).unwrap();
        for (c, chained) in bundle.iter().enumerate() {
            let solo = run_chain(&model, &Kernel::EllipticalSlice, &cfg, 11, c).unwrap();
            assert_eq!(*chained, solo);
        }
    }
}
