//! Prior distributions: log-densities plus deterministic sampling.
//!
//! Sampling takes a caller-supplied [`ChaCha8Rng`] stream — never an
//! ambient RNG — so every draw in the inference stack is a pure
//! function of the stream's key. The chain runner keys its streams by
//! `(campaign_seed, chain_index, step)`; see [`crate::chain`].

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::error::InferError;
use crate::Result;

const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_7;

/// Standard normal sample via Box–Muller (the same construction the
/// crossbar device model uses for read noise).
pub(crate) fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A univariate distribution: log-density plus deterministic sampling
/// from a caller-supplied ChaCha8 stream.
pub trait Distribution {
    /// Natural log of the density at `x` (`-inf` outside the support).
    fn log_density(&self, x: f64) -> f64;
    /// Draws one sample from the supplied stream.
    fn sample(&self, rng: &mut ChaCha8Rng) -> f64;
    /// The distribution's mean.
    fn mean(&self) -> f64;
    /// The distribution's variance.
    fn variance(&self) -> f64;
}

/// Normal distribution `N(mean, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sigma: f64,
}

impl Normal {
    /// Validates `sigma > 0` (finite) and a finite mean.
    pub fn new(mean: f64, sigma: f64) -> Result<Self> {
        if !mean.is_finite() {
            return Err(InferError::InvalidParameter { name: "mean" });
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(InferError::InvalidParameter { name: "sigma" });
        }
        Ok(Normal { mean, sigma })
    }

    /// The location parameter.
    pub fn location(&self) -> f64 {
        self.mean
    }

    /// The scale parameter.
    pub fn scale(&self) -> f64 {
        self.sigma
    }
}

impl Distribution for Normal {
    fn log_density(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sigma;
        -0.5 * z * z - self.sigma.ln() - LN_SQRT_2PI
    }

    fn sample(&self, rng: &mut ChaCha8Rng) -> f64 {
        self.mean + self.sigma * gaussian(rng)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
}

/// Log-normal distribution: `ln X ~ N(mu, sigma²)`, support `x > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Validates `sigma > 0` (finite) and a finite log-location `mu`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(InferError::InvalidParameter { name: "mu" });
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(InferError::InvalidParameter { name: "sigma" });
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution for LogNormal {
    fn log_density(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        -0.5 * z * z - x.ln() - self.sigma.ln() - LN_SQRT_2PI
    }

    fn sample(&self, rng: &mut ChaCha8Rng) -> f64 {
        (self.mu + self.sigma * gaussian(rng)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Validates finite bounds with `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(InferError::InvalidParameter { name: "bounds" });
        }
        Ok(Uniform { lo, hi })
    }
}

impl Distribution for Uniform {
    fn log_density(&self, x: f64) -> f64 {
        if x < self.lo || x >= self.hi {
            f64::NEG_INFINITY
        } else {
            -(self.hi - self.lo).ln()
        }
    }

    fn sample(&self, rng: &mut ChaCha8Rng) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }
}

/// A prior over one dimension: the closed set of distributions the
/// samplers know how to handle. The enum (rather than trait objects)
/// keeps models `Copy`-cheap and lets the elliptical slice kernel
/// statically check for the Gaussian case it requires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Prior {
    /// Gaussian prior (the only kind elliptical slice sampling accepts).
    Normal(Normal),
    /// Log-normal prior (positive support, e.g. norms known-positive).
    LogNormal(LogNormal),
    /// Uniform prior on an interval.
    Uniform(Uniform),
}

impl Prior {
    /// Gaussian prior shortcut.
    pub fn normal(mean: f64, sigma: f64) -> Result<Self> {
        Ok(Prior::Normal(Normal::new(mean, sigma)?))
    }

    /// Log-normal prior shortcut.
    pub fn log_normal(mu: f64, sigma: f64) -> Result<Self> {
        Ok(Prior::LogNormal(LogNormal::new(mu, sigma)?))
    }

    /// Uniform prior shortcut.
    pub fn uniform(lo: f64, hi: f64) -> Result<Self> {
        Ok(Prior::Uniform(Uniform::new(lo, hi)?))
    }

    /// The Gaussian `(mean, sigma)` if this prior is Normal.
    pub fn as_gaussian(&self) -> Option<(f64, f64)> {
        match self {
            Prior::Normal(n) => Some((n.location(), n.scale())),
            _ => None,
        }
    }
}

impl Distribution for Prior {
    fn log_density(&self, x: f64) -> f64 {
        match self {
            Prior::Normal(d) => d.log_density(x),
            Prior::LogNormal(d) => d.log_density(x),
            Prior::Uniform(d) => d.log_density(x),
        }
    }

    fn sample(&self, rng: &mut ChaCha8Rng) -> f64 {
        match self {
            Prior::Normal(d) => d.sample(rng),
            Prior::LogNormal(d) => d.sample(rng),
            Prior::Uniform(d) => d.sample(rng),
        }
    }

    fn mean(&self) -> f64 {
        match self {
            Prior::Normal(d) => d.mean(),
            Prior::LogNormal(d) => d.mean(),
            Prior::Uniform(d) => d.mean(),
        }
    }

    fn variance(&self) -> f64 {
        match self {
            Prior::Normal(d) => d.variance(),
            Prior::LogNormal(d) => d.variance(),
            Prior::Uniform(d) => d.variance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn stream(seed: u64, idx: u64) -> ChaCha8Rng {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(idx);
        rng
    }

    fn moments<D: Distribution>(d: &D, n: usize) -> (f64, f64) {
        let mut rng = stream(11, 1);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn normal_log_density_matches_closed_form() {
        let d = Normal::new(1.0, 2.0).unwrap();
        // At the mean: -ln(sigma) - ln(sqrt(2pi)).
        let at_mean = -(2.0f64).ln() - 0.5 * (2.0 * std::f64::consts::PI).ln();
        assert!((d.log_density(1.0) - at_mean).abs() < 1e-12);
        // One sigma out: another -1/2.
        assert!((d.log_density(3.0) - (at_mean - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn lognormal_support_and_density() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.log_density(0.0), f64::NEG_INFINITY);
        assert_eq!(d.log_density(-1.0), f64::NEG_INFINITY);
        // At x = 1 (ln x = mu): density 1/(x sigma sqrt(2pi)).
        let expect = -(0.5 * (2.0 * std::f64::consts::PI).ln());
        assert!((d.log_density(1.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn uniform_density_is_flat_inside_support() {
        let d = Uniform::new(-1.0, 3.0).unwrap();
        assert!((d.log_density(0.0) - (-(4.0f64).ln())).abs() < 1e-12);
        assert_eq!(d.log_density(0.0), d.log_density(2.9));
        assert_eq!(d.log_density(-1.5), f64::NEG_INFINITY);
        assert_eq!(d.log_density(3.0), f64::NEG_INFINITY);
    }

    #[test]
    fn sample_moments_match_declared_moments() {
        let n = 40_000;
        let cases: [Prior; 3] = [
            Prior::normal(2.0, 0.5).unwrap(),
            Prior::log_normal(0.0, 0.25).unwrap(),
            Prior::uniform(-1.0, 2.0).unwrap(),
        ];
        for prior in cases {
            let (m, v) = moments(&prior, n);
            assert!(
                (m - prior.mean()).abs() < 0.02 * (1.0 + prior.mean().abs()),
                "{prior:?}: sample mean {m} vs {}",
                prior.mean()
            );
            assert!(
                (v - prior.variance()).abs() < 0.1 * (1.0 + prior.variance()),
                "{prior:?}: sample var {v} vs {}",
                prior.variance()
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_in_the_stream() {
        let d = Prior::normal(0.0, 1.0).unwrap();
        let a: Vec<f64> = {
            let mut rng = stream(5, 9);
            (0..8).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = stream(5, 9);
            (0..8).map(|_| d.sample(&mut rng)).collect()
        };
        let c: Vec<f64> = {
            let mut rng = stream(5, 10);
            (0..8).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b, "same stream must replay the same draws");
        assert_ne!(a, c, "stream index must separate draws");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, -2.0).is_err());
    }

    #[test]
    fn gaussian_detection() {
        assert!(Prior::normal(0.0, 1.0).unwrap().as_gaussian().is_some());
        assert!(Prior::uniform(0.0, 1.0).unwrap().as_gaussian().is_none());
        assert!(Prior::log_normal(0.0, 1.0).unwrap().as_gaussian().is_none());
    }
}
