//! Error type for posterior inference.

use std::fmt;
use xbar_stats::StatsError;

/// Errors produced by the inference subsystem.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum InferError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// Two paired inputs disagreed in length or shape.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// The elliptical slice kernel was asked to sample a non-Gaussian
    /// prior.
    NonGaussianPrior {
        /// Dimension carrying the offending prior.
        dim: usize,
    },
    /// An oracle query failed (budget exhaustion, shape errors, …).
    Oracle(String),
    /// A convergence diagnostic failed.
    Stats(StatsError),
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::InvalidParameter { name } => {
                write!(f, "parameter {name} is outside its valid domain")
            }
            InferError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            InferError::NonGaussianPrior { dim } => {
                write!(
                    f,
                    "elliptical slice sampling requires Gaussian priors (dimension {dim} is not)"
                )
            }
            InferError::Oracle(msg) => write!(f, "oracle query failed: {msg}"),
            InferError::Stats(e) => write!(f, "convergence diagnostic failed: {e}"),
        }
    }
}

impl std::error::Error for InferError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InferError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for InferError {
    fn from(e: StatsError) -> Self {
        InferError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty_and_specific() {
        assert!(InferError::InvalidParameter { name: "sigma" }
            .to_string()
            .contains("sigma"));
        assert!(InferError::DimensionMismatch {
            expected: 3,
            got: 2
        }
        .to_string()
        .contains('3'));
        assert!(InferError::NonGaussianPrior { dim: 1 }
            .to_string()
            .contains("Gaussian"));
        let wrapped: InferError = StatsError::ZeroVariance.into();
        assert!(wrapped.to_string().contains("zero-variance"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InferError>();
    }
}
