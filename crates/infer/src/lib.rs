//! # xbar-infer
//!
//! Bayesian weight recovery and MCMC model extraction from noisy power
//! observations.
//!
//! The paper's probe recovers *point estimates* of the victim's column
//! 1-norms from switching power. This crate treats the same recovery as
//! posterior inference: given a budget of noisy power observations, it
//! samples a posterior over the norm vector and answers *how many
//! queries until the posterior is tight enough to attack?* with
//! credible intervals instead of point guesses.
//!
//! The pieces, bottom up:
//!
//! * [`distribution`] — a [`Distribution`] trait (log-density +
//!   deterministic sampling from a caller-supplied ChaCha8 stream) with
//!   [`Normal`], [`LogNormal`], and [`Uniform`] instances, wrapped by
//!   the [`Prior`] enum the samplers consume.
//! * [`mcmc`] — the [`BayesModel`] trait and the two transition
//!   [`Kernel`]s: random-walk Metropolis–Hastings and elliptical slice
//!   sampling (for Gaussian priors).
//! * [`chain`] — the chain runner: burn-in, thinning, and multi-chain
//!   support, with every random draw keyed by
//!   `(campaign_seed, chain_index, step)` so results are bit-identical
//!   at any thread count ([`run_chains`] parallelises over
//!   `std::thread::scope`, the same discipline as the crossbar's
//!   `ParallelBackend`).
//! * [`likelihood`] — the power-observation likelihood:
//!   [`PowerObservations`] wraps `Oracle::query_batch` /
//!   `Oracle::observe_batch_keyed`, so inference composes with faults,
//!   transients, drift, and defenses exactly like every other attack;
//!   [`NormPosterior`] is the Bayesian model `power(u) = ⟨u, ν⟩ + ε`.
//! * [`posterior`] — summaries: per-column means, credible intervals,
//!   and the `xbar-stats` convergence gates (split-R̂, ESS).
//!
//! # Example
//!
//! ```
//! use xbar_infer::{
//!     run_chains, summarize, ChainConfig, Kernel, NormPosterior, PowerObservations, Prior,
//! };
//! use xbar_core::oracle::{Oracle, OracleConfig, OutputAccess};
//! use xbar_linalg::Matrix;
//! use xbar_nn::activation::Activation;
//! use xbar_nn::network::SingleLayerNet;
//!
//! // A tiny victim with known column norms [1.5, 0.75].
//! let w = Matrix::from_rows(&[&[1.0, -0.5], &[0.5, 0.25]]);
//! let net = SingleLayerNet::from_weights(w, Activation::Identity);
//! let mut oracle = Oracle::new(
//!     net,
//!     &OracleConfig::ideal().with_access(OutputAccess::None),
//!     7,
//! )
//! .unwrap();
//!
//! // Spend 16 queries on a random design, then sample the posterior.
//! let design = xbar_infer::random_design(16, 2, None, 99).unwrap();
//! let obs = PowerObservations::collect(&mut oracle, &design).unwrap();
//! let priors = vec![Prior::normal(1.0, 2.0).unwrap(); 2];
//! let model = NormPosterior::new(&obs, &[0, 1], priors, 0.05).unwrap();
//! let chains = run_chains(
//!     &model,
//!     &Kernel::EllipticalSlice,
//!     &ChainConfig::new(200, 400, 2).unwrap(),
//!     42,
//!     2,
//!     1,
//! )
//! .unwrap();
//! let report = summarize(&chains, model.subset(), 0.95).unwrap();
//! let truth = oracle.true_column_norms();
//! assert_eq!(report.coverage(&truth).unwrap(), 1.0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod chain;
pub mod distribution;
pub mod error;
pub mod likelihood;
pub mod mcmc;
pub mod posterior;

pub use chain::{run_chain, run_chains, ChainConfig, ChainResult};
pub use distribution::{Distribution, LogNormal, Normal, Prior, Uniform};
pub use error::InferError;
pub use likelihood::{estimate_noise_sigma, random_design, NormPosterior, PowerObservations};
pub use mcmc::{BayesModel, Kernel};
pub use posterior::{evenly_spaced_draws, summarize, DimPosterior, PosteriorReport};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, InferError>;
