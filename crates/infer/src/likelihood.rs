//! The power-observation likelihood: collecting noisy power readings
//! from the oracle and turning them into a Bayesian model over column
//! norms.
//!
//! Every calibrated power reading is linear in the victim's column
//! 1-norms: `power(u) = ⟨u, ν⟩` plus measurement noise (paper Eq. 5).
//! [`PowerObservations`] collects a design matrix worth of readings
//! through the oracle's front door — [`Oracle::query_batch`] for
//! budgeted sessions, [`Oracle::observe_batch_keyed`] for keyed
//! non-mutating observation — so inference composes with faults,
//! transients, drift, and defenses exactly like every other attack in
//! the workspace. [`NormPosterior`] is then the textbook
//! linear-Gaussian model over a chosen subset of columns.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use xbar_core::oracle::{Oracle, QueryKey};
use xbar_linalg::Matrix;

use crate::distribution::{Distribution, Prior};
use crate::error::InferError;
use crate::mcmc::BayesModel;
use crate::Result;

/// A batch of power observations: the inputs the attacker chose and
/// the calibrated power each one read back.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerObservations {
    /// The design: one query input per row.
    pub inputs: Matrix,
    /// The calibrated power reading of each row, in weight units.
    pub powers: Vec<f64>,
}

impl PowerObservations {
    /// Collects one power reading per design row through
    /// [`Oracle::query_batch`] — the budgeted, drift-aware session
    /// entry point.
    ///
    /// # Errors
    ///
    /// [`InferError::Oracle`] on budget exhaustion or shape errors.
    pub fn collect(oracle: &mut Oracle, design: &Matrix) -> Result<Self> {
        let refs: Vec<&[f64]> = design.rows_iter().collect();
        let records = oracle
            .query_batch(&refs)
            .map_err(|e| InferError::Oracle(e.to_string()))?;
        xbar_obs::count(xbar_obs::names::INFER_OBSERVATION, records.len() as u64);
        Ok(PowerObservations {
            inputs: design.clone(),
            powers: records.iter().map(|r| r.observation.power).collect(),
        })
    }

    /// Collects one power reading per design row through
    /// [`Oracle::observe_batch_keyed`]: non-mutating, with noise keyed
    /// by `(stream_seed, base_index + row)` — the multi-tenant entry
    /// point, for observing a deployed oracle without spending its
    /// budget or owning `&mut` access.
    ///
    /// # Errors
    ///
    /// [`InferError::Oracle`] if the oracle is drifting or the inputs
    /// are malformed.
    pub fn collect_keyed(
        oracle: &Oracle,
        design: &Matrix,
        stream_seed: u64,
        base_index: u64,
    ) -> Result<Self> {
        let refs: Vec<&[f64]> = design.rows_iter().collect();
        let keys: Vec<QueryKey> = (0..refs.len())
            .map(|i| QueryKey::new(stream_seed, base_index + i as u64))
            .collect();
        let observations = oracle
            .observe_batch_keyed(&refs, &keys)
            .map_err(|e| InferError::Oracle(e.to_string()))?;
        xbar_obs::count(
            xbar_obs::names::INFER_OBSERVATION,
            observations.len() as u64,
        );
        Ok(PowerObservations {
            inputs: design.clone(),
            powers: observations.iter().map(|o| o.power).collect(),
        })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.powers.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.powers.is_empty()
    }
}

/// A random query design: `num_queries × dim`, entries uniform on
/// `[0, 1)`, drawn from a ChaCha8 stream keyed by `seed` alone (design
/// generation is attacker-side and sequential — no scheduling can
/// reorder it).
///
/// With `support`, only the listed columns get non-zero entries: the
/// resulting power readings then mix *only* those columns' norms,
/// which is what lets [`NormPosterior`] infer a subset of a large
/// input space exactly.
///
/// # Errors
///
/// [`InferError::InvalidParameter`] for a zero-sized design, an empty
/// or out-of-range support.
pub fn random_design(
    num_queries: usize,
    dim: usize,
    support: Option<&[usize]>,
    seed: u64,
) -> Result<Matrix> {
    if num_queries == 0 {
        return Err(InferError::InvalidParameter {
            name: "num_queries",
        });
    }
    if dim == 0 {
        return Err(InferError::InvalidParameter { name: "dim" });
    }
    if let Some(cols) = support {
        if cols.is_empty() {
            return Err(InferError::InvalidParameter { name: "support" });
        }
        if cols.iter().any(|&j| j >= dim) {
            return Err(InferError::InvalidParameter { name: "support" });
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut design = Matrix::zeros(num_queries, dim);
    for b in 0..num_queries {
        match support {
            Some(cols) => {
                for &j in cols {
                    design[(b, j)] = rng.gen_range(0.0..1.0);
                }
            }
            None => {
                for v in design.row_mut(b) {
                    *v = rng.gen_range(0.0..1.0);
                }
            }
        }
    }
    Ok(design)
}

/// Estimates the power-measurement noise (in weight units) by repeating
/// one probe input and taking the sample standard deviation of the
/// readings. Spends `repeats` queries of the oracle's budget.
///
/// The estimate is what the likelihood needs regardless of how the
/// oracle's noise is configured internally (scaled measurement noise,
/// defenses, transients): it measures the *observed* dispersion at the
/// oracle's front door.
///
/// # Errors
///
/// * [`InferError::InvalidParameter`] for `repeats < 2`.
/// * [`InferError::Oracle`] on query failure.
pub fn estimate_noise_sigma(oracle: &mut Oracle, probe: &[f64], repeats: usize) -> Result<f64> {
    if repeats < 2 {
        return Err(InferError::InvalidParameter { name: "repeats" });
    }
    let refs: Vec<&[f64]> = (0..repeats).map(|_| probe).collect();
    let records = oracle
        .query_batch(&refs)
        .map_err(|e| InferError::Oracle(e.to_string()))?;
    xbar_obs::count(xbar_obs::names::INFER_OBSERVATION, records.len() as u64);
    let powers: Vec<f64> = records.iter().map(|r| r.observation.power).collect();
    let mean = powers.iter().sum::<f64>() / powers.len() as f64;
    let var =
        powers.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / (powers.len() - 1) as f64;
    Ok(var.sqrt())
}

/// The Bayesian column-norm model: independent priors over a subset of
/// columns, Gaussian measurement noise, and the linear power forward
/// model `power(u) = ⟨u, ν⟩`.
///
/// The design must put non-zero entries *only* on the subset columns
/// (see [`random_design`] with `support`); otherwise the off-subset
/// columns would leak into the readings and the subset model would be
/// misspecified — construction rejects such designs.
#[derive(Debug, Clone)]
pub struct NormPosterior {
    /// Design restricted to the subset columns (`q × k`).
    design: Matrix,
    powers: Vec<f64>,
    noise_sigma: f64,
    priors: Vec<Prior>,
    subset: Vec<usize>,
    input_dim: usize,
}

impl NormPosterior {
    /// Builds the model from collected observations.
    ///
    /// `subset` lists the column indices under inference (unique, in
    /// range); `priors` supplies one prior per subset entry;
    /// `noise_sigma` is the measurement-noise scale in weight units
    /// (finite, positive — estimate it with [`estimate_noise_sigma`]).
    ///
    /// # Errors
    ///
    /// * [`InferError::InvalidParameter`] for an invalid subset, a
    ///   non-positive `noise_sigma`, or a design row with off-subset
    ///   energy.
    /// * [`InferError::DimensionMismatch`] when `priors` and `subset`
    ///   disagree.
    pub fn new(
        obs: &PowerObservations,
        subset: &[usize],
        priors: Vec<Prior>,
        noise_sigma: f64,
    ) -> Result<Self> {
        if obs.is_empty() {
            return Err(InferError::InvalidParameter { name: "obs" });
        }
        if obs.powers.len() != obs.inputs.rows() {
            return Err(InferError::DimensionMismatch {
                expected: obs.inputs.rows(),
                got: obs.powers.len(),
            });
        }
        if subset.is_empty() {
            return Err(InferError::InvalidParameter { name: "subset" });
        }
        let input_dim = obs.inputs.cols();
        let mut seen = vec![false; input_dim];
        for &j in subset {
            if j >= input_dim || seen[j] {
                return Err(InferError::InvalidParameter { name: "subset" });
            }
            seen[j] = true;
        }
        if priors.len() != subset.len() {
            return Err(InferError::DimensionMismatch {
                expected: subset.len(),
                got: priors.len(),
            });
        }
        if !(noise_sigma.is_finite() && noise_sigma > 0.0) {
            return Err(InferError::InvalidParameter {
                name: "noise_sigma",
            });
        }
        // Off-subset energy means the subset model cannot explain the
        // readings — refuse rather than silently misattribute power.
        for b in 0..obs.inputs.rows() {
            for (j, &v) in obs.inputs.row(b).iter().enumerate() {
                if v != 0.0 && !seen[j] {
                    return Err(InferError::InvalidParameter {
                        name: "design (non-zero off-subset entry)",
                    });
                }
            }
        }
        let mut design = Matrix::zeros(obs.inputs.rows(), subset.len());
        for b in 0..obs.inputs.rows() {
            let row = obs.inputs.row(b);
            for (k, &j) in subset.iter().enumerate() {
                design[(b, k)] = row[j];
            }
        }
        Ok(NormPosterior {
            design,
            powers: obs.powers.clone(),
            noise_sigma,
            priors,
            subset: subset.to_vec(),
            input_dim,
        })
    }

    /// The column indices under inference, in model-dimension order.
    pub fn subset(&self) -> &[usize] {
        &self.subset
    }

    /// The oracle's input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The measurement-noise scale the likelihood uses.
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// Per-dimension random-walk proposal scales matched to the
    /// posterior geometry: `2.4/√k` times the per-dimension posterior
    /// standard deviation implied by the design (the classic
    /// Roberts–Rosenthal scaling). Purely a function of the design,
    /// noise scale, and priors — no adaptation, so determinism holds.
    pub fn suggested_rw_steps(&self) -> Vec<f64> {
        let k = self.subset.len() as f64;
        let scale = 2.4 / k.sqrt();
        (0..self.subset.len())
            .map(|j| {
                let mut data_precision = 0.0;
                for b in 0..self.design.rows() {
                    let u = self.design[(b, j)];
                    data_precision += u * u;
                }
                data_precision /= self.noise_sigma * self.noise_sigma;
                let prior_precision = 1.0 / self.priors[j].variance();
                scale / (data_precision + prior_precision).sqrt()
            })
            .collect()
    }

    /// Scatters a subset-ordered vector (e.g. posterior means) into a
    /// full `input_dim`-length vector with zeros elsewhere — the shape
    /// the norm-guided pixel attacks consume.
    ///
    /// # Errors
    ///
    /// [`InferError::DimensionMismatch`] when `values` is not
    /// subset-shaped.
    pub fn scatter(&self, values: &[f64]) -> Result<Vec<f64>> {
        if values.len() != self.subset.len() {
            return Err(InferError::DimensionMismatch {
                expected: self.subset.len(),
                got: values.len(),
            });
        }
        let mut full = vec![0.0; self.input_dim];
        for (&j, &v) in self.subset.iter().zip(values) {
            full[j] = v;
        }
        Ok(full)
    }
}

impl BayesModel for NormPosterior {
    fn dim(&self) -> usize {
        self.subset.len()
    }

    fn priors(&self) -> &[Prior] {
        &self.priors
    }

    fn log_likelihood(&self, theta: &[f64]) -> f64 {
        let inv_var = 1.0 / (self.noise_sigma * self.noise_sigma);
        let mut acc = 0.0;
        for b in 0..self.design.rows() {
            let row = self.design.row(b);
            let mut predicted = 0.0;
            for (u, &t) in row.iter().zip(theta) {
                predicted += u * t;
            }
            let r = self.powers[b] - predicted;
            acc += r * r;
        }
        -0.5 * acc * inv_var
            - self.powers.len() as f64 * (self.noise_sigma.ln() + 0.918_938_533_204_672_7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_core::oracle::{OracleConfig, OutputAccess};
    use xbar_crossbar::power::PowerModel;
    use xbar_nn::activation::Activation;
    use xbar_nn::network::SingleLayerNet;

    fn oracle(noise: f64, seed: u64) -> Oracle {
        // Column norms: [1.5, 0.75, 0.6].
        let w = Matrix::from_rows(&[&[1.0, -0.5, 0.1], &[0.5, 0.25, -0.5]]);
        let net = SingleLayerNet::from_weights(w, Activation::Identity);
        let mut cfg = OracleConfig::ideal().with_access(OutputAccess::None);
        if noise > 0.0 {
            cfg = cfg.with_power(PowerModel::default().with_noise(noise));
        }
        Oracle::new(net, &cfg, seed).unwrap()
    }

    #[test]
    fn design_shapes_and_support() {
        let d = random_design(5, 4, None, 3).unwrap();
        assert_eq!((d.rows(), d.cols()), (5, 4));
        let s = random_design(5, 4, Some(&[1, 3]), 3).unwrap();
        for b in 0..5 {
            assert_eq!(s[(b, 0)], 0.0);
            assert_eq!(s[(b, 2)], 0.0);
            assert!(s[(b, 1)] >= 0.0 && s[(b, 1)] < 1.0);
        }
        // Deterministic in the seed.
        assert_eq!(s, random_design(5, 4, Some(&[1, 3]), 3).unwrap());
        assert_ne!(s, random_design(5, 4, Some(&[1, 3]), 4).unwrap());
        assert!(random_design(0, 4, None, 0).is_err());
        assert!(random_design(5, 0, None, 0).is_err());
        assert!(random_design(5, 4, Some(&[]), 0).is_err());
        assert!(random_design(5, 4, Some(&[4]), 0).is_err());
    }

    #[test]
    fn collect_reads_exact_powers_on_ideal_hardware() {
        let mut o = oracle(0.0, 1);
        let truth = o.true_column_norms();
        let design = random_design(6, 3, None, 7).unwrap();
        let obs = PowerObservations::collect(&mut o, &design).unwrap();
        assert_eq!(obs.len(), 6);
        for b in 0..6 {
            let want: f64 = design.row(b).iter().zip(&truth).map(|(u, n)| u * n).sum();
            assert!((obs.powers[b] - want).abs() < 1e-9);
        }
    }

    #[test]
    fn keyed_collection_matches_the_budgeted_stream() {
        // Two deployments of the same seed are the same hardware with
        // the same noise streams; keyed observation with the
        // deployment's own (seed, index) keys must reproduce
        // query_batch bit for bit.
        let design = random_design(5, 3, None, 9).unwrap();
        let mut budgeted = oracle(0.1, 33);
        let via_query = PowerObservations::collect(&mut budgeted, &design).unwrap();
        let keyed_oracle = oracle(0.1, 33);
        let via_keys = PowerObservations::collect_keyed(&keyed_oracle, &design, 33, 0).unwrap();
        assert_eq!(via_query.powers, via_keys.powers);
        // A different stream seed gives different noise.
        let other = PowerObservations::collect_keyed(&keyed_oracle, &design, 34, 0).unwrap();
        assert_ne!(via_query.powers, other.powers);
    }

    #[test]
    fn noise_estimate_tracks_the_configured_noise() {
        let mut quiet = oracle(0.0, 5);
        let probe = vec![0.5, 0.5, 0.5];
        let sigma0 = estimate_noise_sigma(&mut quiet, &probe, 16).unwrap();
        assert!(sigma0.abs() < 1e-12, "ideal hardware has zero dispersion");
        let mut noisy = oracle(0.2, 5);
        let sigma = estimate_noise_sigma(&mut noisy, &probe, 64).unwrap();
        assert!(sigma > 0.0);
        let mut noisier = oracle(0.8, 5);
        let sigma_hi = estimate_noise_sigma(&mut noisier, &probe, 64).unwrap();
        assert!(
            sigma_hi > 2.0 * sigma,
            "4x the configured noise should show up: {sigma} vs {sigma_hi}"
        );
        assert!(estimate_noise_sigma(&mut quiet, &probe, 1).is_err());
    }

    #[test]
    fn model_construction_validates_everything() {
        let mut o = oracle(0.0, 2);
        let design = random_design(4, 3, Some(&[0, 2]), 11).unwrap();
        let obs = PowerObservations::collect(&mut o, &design).unwrap();
        let priors = vec![Prior::normal(1.0, 1.0).unwrap(); 2];
        assert!(NormPosterior::new(&obs, &[0, 2], priors.clone(), 0.1).is_ok());
        // Subset/priors mismatch.
        assert!(matches!(
            NormPosterior::new(&obs, &[0], priors.clone(), 0.1),
            Err(InferError::DimensionMismatch { .. })
        ));
        // Duplicate and out-of-range subsets.
        assert!(NormPosterior::new(&obs, &[0, 0], priors.clone(), 0.1).is_err());
        assert!(NormPosterior::new(&obs, &[0, 3], priors.clone(), 0.1).is_err());
        // Bad noise.
        assert!(NormPosterior::new(&obs, &[0, 2], priors.clone(), 0.0).is_err());
        // Off-subset energy in the design.
        assert!(matches!(
            NormPosterior::new(&obs, &[0, 1], priors, 0.1),
            Err(InferError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn likelihood_peaks_at_the_true_norms() {
        let mut o = oracle(0.0, 4);
        let truth = o.true_column_norms();
        let design = random_design(12, 3, None, 13).unwrap();
        let obs = PowerObservations::collect(&mut o, &design).unwrap();
        let priors = vec![Prior::normal(1.0, 2.0).unwrap(); 3];
        let model = NormPosterior::new(&obs, &[0, 1, 2], priors, 0.05).unwrap();
        let at_truth = model.log_likelihood(&truth);
        for d in 0..3 {
            for delta in [-0.1, 0.1] {
                let mut off = truth.clone();
                off[d] += delta;
                assert!(
                    model.log_likelihood(&off) < at_truth,
                    "perturbing dim {d} by {delta} should lower the likelihood"
                );
            }
        }
    }

    #[test]
    fn scatter_places_values_on_the_subset() {
        let mut o = oracle(0.0, 6);
        let design = random_design(4, 3, Some(&[2, 0]), 17).unwrap();
        let obs = PowerObservations::collect(&mut o, &design).unwrap();
        let priors = vec![Prior::normal(1.0, 1.0).unwrap(); 2];
        let model = NormPosterior::new(&obs, &[2, 0], priors, 0.1).unwrap();
        let full = model.scatter(&[9.0, 8.0]).unwrap();
        assert_eq!(full, vec![8.0, 0.0, 9.0]);
        assert!(model.scatter(&[1.0]).is_err());
    }

    #[test]
    fn suggested_steps_shrink_with_more_data() {
        let mut o = oracle(0.1, 8);
        let priors = vec![Prior::normal(1.0, 1.0).unwrap(); 3];
        let small = {
            let d = random_design(4, 3, None, 19).unwrap();
            let obs = PowerObservations::collect(&mut o, &d).unwrap();
            NormPosterior::new(&obs, &[0, 1, 2], priors.clone(), 0.1).unwrap()
        };
        let large = {
            let d = random_design(64, 3, None, 19).unwrap();
            let obs = PowerObservations::collect(&mut o, &d).unwrap();
            NormPosterior::new(&obs, &[0, 1, 2], priors, 0.1).unwrap()
        };
        for (s, l) in small
            .suggested_rw_steps()
            .iter()
            .zip(large.suggested_rw_steps())
        {
            assert!(l < *s, "more observations must tighten the proposal");
            assert!(*s > 0.0 && s.is_finite());
        }
    }
}
