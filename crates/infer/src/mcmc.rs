//! MCMC transition kernels: random-walk Metropolis–Hastings and
//! elliptical slice sampling.
//!
//! Both kernels draw exclusively from the [`ChaCha8Rng`] stream they
//! are handed, so one transition is a pure function of
//! `(model, state, stream)` — the chain runner keys the stream by
//! `(campaign_seed, chain_index, step)` and bit-identical results
//! follow at any thread count.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::distribution::{gaussian, Distribution, Prior};
use crate::error::InferError;
use crate::Result;

/// A Bayesian model: independent per-dimension priors plus a joint
/// log-likelihood.
///
/// The prior/likelihood split (rather than one opaque log-density)
/// exists for elliptical slice sampling, which treats the Gaussian
/// prior analytically and only ever evaluates the likelihood.
pub trait BayesModel: Sync {
    /// Number of free parameters.
    fn dim(&self) -> usize;

    /// Per-dimension priors (`len() == dim()`).
    fn priors(&self) -> &[Prior];

    /// Joint log-likelihood of the observations at `theta`.
    fn log_likelihood(&self, theta: &[f64]) -> f64;

    /// Sum of the per-dimension prior log-densities at `theta`.
    fn log_prior(&self, theta: &[f64]) -> f64 {
        self.priors()
            .iter()
            .zip(theta)
            .map(|(p, &x)| p.log_density(x))
            .sum()
    }

    /// Unnormalised log-posterior at `theta`.
    fn log_posterior(&self, theta: &[f64]) -> f64 {
        let lp = self.log_prior(theta);
        if lp == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        lp + self.log_likelihood(theta)
    }
}

/// An MCMC transition kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum Kernel {
    /// Random-walk Metropolis–Hastings with per-dimension Gaussian
    /// proposal scales. Works with any prior.
    RandomWalk {
        /// Per-dimension proposal standard deviations
        /// (`len() == model.dim()`, all finite and positive).
        steps: Vec<f64>,
    },
    /// Elliptical slice sampling (Murray, Adams & MacKay 2010).
    /// Rejection-free and tuning-free, but requires every prior to be
    /// Gaussian.
    EllipticalSlice,
}

impl Kernel {
    /// Checks the kernel against a model's shape and priors.
    pub fn validate<M: BayesModel + ?Sized>(&self, model: &M) -> Result<()> {
        match self {
            Kernel::RandomWalk { steps } => {
                if steps.len() != model.dim() {
                    return Err(InferError::DimensionMismatch {
                        expected: model.dim(),
                        got: steps.len(),
                    });
                }
                if steps.iter().any(|s| !(s.is_finite() && *s > 0.0)) {
                    return Err(InferError::InvalidParameter { name: "steps" });
                }
            }
            Kernel::EllipticalSlice => {
                for (dim, prior) in model.priors().iter().enumerate() {
                    if prior.as_gaussian().is_none() {
                        return Err(InferError::NonGaussianPrior { dim });
                    }
                }
            }
        }
        Ok(())
    }
}

/// The running state one kernel transition consumes and produces: the
/// current point plus its cached density (log-posterior for the random
/// walk, log-likelihood for elliptical slice).
pub(crate) struct ChainState {
    pub theta: Vec<f64>,
    pub cached: f64,
}

impl ChainState {
    /// Initialises the cache for `kernel` at `theta`.
    pub fn new<M: BayesModel + ?Sized>(model: &M, kernel: &Kernel, theta: Vec<f64>) -> Self {
        let cached = match kernel {
            Kernel::RandomWalk { .. } => model.log_posterior(&theta),
            Kernel::EllipticalSlice => model.log_likelihood(&theta),
        };
        ChainState { theta, cached }
    }
}

/// Bookkeeping one transition reports back to the chain runner.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StepStats {
    /// Whether the proposal was accepted (elliptical slice always is).
    pub accepted: bool,
    /// Likelihood/posterior density evaluations spent.
    pub evals: u64,
}

/// One random-walk Metropolis–Hastings transition.
pub(crate) fn rwm_step<M: BayesModel + ?Sized>(
    model: &M,
    steps: &[f64],
    state: &mut ChainState,
    rng: &mut ChaCha8Rng,
) -> StepStats {
    let proposal: Vec<f64> = state
        .theta
        .iter()
        .zip(steps)
        .map(|(&x, &s)| x + s * gaussian(rng))
        .collect();
    let log_post = model.log_posterior(&proposal);
    // Accept with probability min(1, exp(delta)); the comparison is in
    // log space and a -inf proposal (outside a prior's support) can
    // never win.
    let delta = log_post - state.cached;
    let accept = delta >= 0.0 || rng.gen_range(0.0f64..1.0).ln() < delta;
    if accept {
        state.theta = proposal;
        state.cached = log_post;
    }
    StepStats {
        accepted: accept,
        evals: 1,
    }
}

/// Cap on bracket-shrinking iterations per elliptical slice transition.
/// The bracket halves each rejection and the angle θ → 0 limit recovers
/// the current (accepted) point, so this is unreachable in practice —
/// it only guards against NaN likelihoods.
const MAX_SHRINKS: usize = 1000;

/// One elliptical slice sampling transition (priors must be Gaussian —
/// checked by [`Kernel::validate`] before the chain starts).
pub(crate) fn ess_step<M: BayesModel + ?Sized>(
    model: &M,
    state: &mut ChainState,
    rng: &mut ChaCha8Rng,
) -> StepStats {
    let priors = model.priors();
    // The auxiliary ellipse: nu ~ N(0, prior covariance).
    let nu: Vec<f64> = priors
        .iter()
        .map(|p| {
            let (_, sigma) = p.as_gaussian().expect("validated Gaussian prior");
            sigma * gaussian(rng)
        })
        .collect();
    let means: Vec<f64> = priors
        .iter()
        .map(|p| p.as_gaussian().expect("validated Gaussian prior").0)
        .collect();

    let log_y = state.cached + rng.gen_range(0.0f64..1.0).ln();
    let mut theta_angle = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
    let mut lo = theta_angle - 2.0 * std::f64::consts::PI;
    let mut hi = theta_angle;
    let mut evals = 0u64;

    for _ in 0..MAX_SHRINKS {
        let (sin, cos) = theta_angle.sin_cos();
        let proposal: Vec<f64> = state
            .theta
            .iter()
            .zip(&nu)
            .zip(&means)
            .map(|((&x, &v), &m)| m + (x - m) * cos + v * sin)
            .collect();
        let ll = model.log_likelihood(&proposal);
        evals += 1;
        if ll > log_y {
            state.theta = proposal;
            state.cached = ll;
            break;
        }
        // Shrink the bracket towards angle 0 (the current point).
        if theta_angle < 0.0 {
            lo = theta_angle;
        } else {
            hi = theta_angle;
        }
        theta_angle = rng.gen_range(lo..hi);
    }
    StepStats {
        accepted: true,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Gaussian likelihood around `center` with scale `sigma` — the
    /// conjugate case where the posterior is available in closed form.
    struct GaussianToy {
        priors: Vec<Prior>,
        center: Vec<f64>,
        sigma: f64,
    }

    impl BayesModel for GaussianToy {
        fn dim(&self) -> usize {
            self.priors.len()
        }
        fn priors(&self) -> &[Prior] {
            &self.priors
        }
        fn log_likelihood(&self, theta: &[f64]) -> f64 {
            -0.5 * theta
                .iter()
                .zip(&self.center)
                .map(|(&x, &c)| ((x - c) / self.sigma).powi(2))
                .sum::<f64>()
        }
    }

    fn toy() -> GaussianToy {
        GaussianToy {
            priors: vec![Prior::normal(0.0, 2.0).unwrap(); 2],
            center: vec![1.0, -0.5],
            sigma: 0.5,
        }
    }

    /// Conjugate posterior moments for one dimension of [`GaussianToy`].
    fn conjugate(prior_mean: f64, prior_sd: f64, center: f64, sigma: f64) -> (f64, f64) {
        let prec = 1.0 / (prior_sd * prior_sd) + 1.0 / (sigma * sigma);
        let mean = (prior_mean / (prior_sd * prior_sd) + center / (sigma * sigma)) / prec;
        (mean, (1.0 / prec).sqrt())
    }

    fn run_kernel(kernel: &Kernel, n: usize) -> Vec<Vec<f64>> {
        let model = toy();
        kernel.validate(&model).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut state = ChainState::new(&model, kernel, vec![0.0, 0.0]);
        let mut draws = Vec::with_capacity(n);
        for _ in 0..n {
            match kernel {
                Kernel::RandomWalk { steps } => {
                    rwm_step(&model, steps, &mut state, &mut rng);
                }
                Kernel::EllipticalSlice => {
                    ess_step(&model, &mut state, &mut rng);
                }
            }
            draws.push(state.theta.clone());
        }
        draws
    }

    fn check_posterior_moments(draws: &[Vec<f64>]) {
        let model = toy();
        let burn = draws.len() / 5;
        for d in 0..2 {
            let xs: Vec<f64> = draws[burn..].iter().map(|t| t[d]).collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let sd = (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                / (xs.len() - 1) as f64)
                .sqrt();
            let (want_mean, want_sd) = conjugate(0.0, 2.0, model.center[d], model.sigma);
            assert!(
                (mean - want_mean).abs() < 0.1,
                "dim {d}: mean {mean} vs conjugate {want_mean}"
            );
            assert!(
                (sd - want_sd).abs() < 0.15,
                "dim {d}: sd {sd} vs conjugate {want_sd}"
            );
        }
    }

    #[test]
    fn random_walk_recovers_the_conjugate_posterior() {
        let kernel = Kernel::RandomWalk {
            steps: vec![0.5, 0.5],
        };
        check_posterior_moments(&run_kernel(&kernel, 20_000));
    }

    #[test]
    fn elliptical_slice_recovers_the_conjugate_posterior() {
        check_posterior_moments(&run_kernel(&Kernel::EllipticalSlice, 20_000));
    }

    #[test]
    fn elliptical_slice_rejects_non_gaussian_priors() {
        let model = GaussianToy {
            priors: vec![
                Prior::normal(0.0, 1.0).unwrap(),
                Prior::uniform(0.0, 1.0).unwrap(),
            ],
            center: vec![0.0, 0.5],
            sigma: 1.0,
        };
        assert_eq!(
            Kernel::EllipticalSlice.validate(&model),
            Err(InferError::NonGaussianPrior { dim: 1 })
        );
        // The random walk handles the same model fine.
        Kernel::RandomWalk {
            steps: vec![0.1, 0.1],
        }
        .validate(&model)
        .unwrap();
    }

    #[test]
    fn random_walk_validates_step_shape_and_domain() {
        let model = toy();
        assert!(matches!(
            Kernel::RandomWalk { steps: vec![0.1] }.validate(&model),
            Err(InferError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Kernel::RandomWalk {
                steps: vec![0.1, 0.0]
            }
            .validate(&model),
            Err(InferError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn rwm_respects_prior_support() {
        // A uniform prior on [0, 1): the walk must never leave it.
        struct Bounded {
            priors: Vec<Prior>,
        }
        impl BayesModel for Bounded {
            fn dim(&self) -> usize {
                1
            }
            fn priors(&self) -> &[Prior] {
                &self.priors
            }
            fn log_likelihood(&self, _theta: &[f64]) -> f64 {
                0.0
            }
        }
        let model = Bounded {
            priors: vec![Prior::uniform(0.0, 1.0).unwrap()],
        };
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let kernel = Kernel::RandomWalk { steps: vec![0.8] };
        let mut state = ChainState::new(&model, &kernel, vec![0.5]);
        for _ in 0..2000 {
            rwm_step(&model, &[0.8], &mut state, &mut rng);
            assert!((0.0..1.0).contains(&state.theta[0]));
        }
    }
}
