//! Posterior summaries: per-dimension means, credible intervals, and
//! convergence diagnostics over a set of MCMC chains, plus helpers for
//! feeding posterior draws into downstream attacks.

use serde::{Deserialize, Serialize};
use xbar_stats::convergence::{multichain_ess, split_rhat};
use xbar_stats::descriptive::{quantile, RunningStats};

use crate::chain::ChainResult;
use crate::error::InferError;
use crate::Result;

/// The marginal posterior of one inferred dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimPosterior {
    /// The victim input-column index this dimension corresponds to.
    pub index: usize,
    /// Posterior mean.
    pub mean: f64,
    /// Posterior sample standard deviation.
    pub sd: f64,
    /// Posterior median.
    pub median: f64,
    /// Lower edge of the central credible interval.
    pub ci_lo: f64,
    /// Upper edge of the central credible interval.
    pub ci_hi: f64,
    /// Effective sample size pooled across chains.
    pub ess: f64,
    /// Split-R̂ potential scale reduction across chains.
    pub rhat: f64,
}

impl DimPosterior {
    /// Width of the credible interval.
    pub fn ci_width(&self) -> f64 {
        self.ci_hi - self.ci_lo
    }

    /// Whether `value` falls inside the credible interval (inclusive).
    pub fn covers(&self, value: f64) -> bool {
        value >= self.ci_lo && value <= self.ci_hi
    }
}

/// A full posterior report over every inferred dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PosteriorReport {
    /// Credible-interval mass (e.g. `0.95`).
    pub level: f64,
    /// Number of chains summarised.
    pub chains: usize,
    /// Post-burn-in draws retained per chain.
    pub draws_per_chain: usize,
    /// Per-dimension marginals, in model-dimension order.
    pub dims: Vec<DimPosterior>,
    /// Worst split-R̂ across dimensions.
    pub max_rhat: f64,
    /// Smallest effective sample size across dimensions.
    pub min_ess: f64,
}

impl PosteriorReport {
    /// Posterior means in model-dimension order.
    pub fn mean_vector(&self) -> Vec<f64> {
        self.dims.iter().map(|d| d.mean).collect()
    }

    /// Fraction of dimensions whose credible interval covers the
    /// corresponding entry of `truth` (subset-ordered).
    ///
    /// # Errors
    ///
    /// [`InferError::DimensionMismatch`] when `truth` is not
    /// subset-shaped.
    pub fn coverage(&self, truth: &[f64]) -> Result<f64> {
        if truth.len() != self.dims.len() {
            return Err(InferError::DimensionMismatch {
                expected: self.dims.len(),
                got: truth.len(),
            });
        }
        let hits = self
            .dims
            .iter()
            .zip(truth)
            .filter(|(d, &t)| d.covers(t))
            .count();
        Ok(hits as f64 / self.dims.len() as f64)
    }

    /// Mean credible-interval width across dimensions — the scalar
    /// "posterior uncertainty" a query-budget sweep tracks.
    pub fn mean_ci_width(&self) -> f64 {
        let total: f64 = self.dims.iter().map(DimPosterior::ci_width).sum();
        total / self.dims.len() as f64
    }
}

/// Summarises multi-chain draws into per-dimension marginals with
/// convergence diagnostics.
///
/// `subset` maps model dimensions back to victim column indices (same
/// order and length as the model dimension); `level` is the central
/// credible mass in `(0, 1)`.
///
/// # Errors
///
/// * [`InferError::InvalidParameter`] for an out-of-range `level`,
///   no chains, or chains with no draws.
/// * [`InferError::DimensionMismatch`] when `subset` and the draw
///   dimension disagree, or chains disagree on draw counts.
/// * [`InferError::Stats`] when the diagnostics reject the draws
///   (e.g. too few samples for an autocorrelation estimate).
pub fn summarize(chains: &[ChainResult], subset: &[usize], level: f64) -> Result<PosteriorReport> {
    if !(level > 0.0 && level < 1.0) {
        return Err(InferError::InvalidParameter { name: "level" });
    }
    if chains.is_empty() {
        return Err(InferError::InvalidParameter { name: "chains" });
    }
    let draws_per_chain = chains[0].draws.len();
    if draws_per_chain == 0 {
        return Err(InferError::InvalidParameter { name: "chains" });
    }
    for c in chains {
        if c.draws.len() != draws_per_chain {
            return Err(InferError::DimensionMismatch {
                expected: draws_per_chain,
                got: c.draws.len(),
            });
        }
    }
    let dim = chains[0].draws[0].len();
    if subset.len() != dim {
        return Err(InferError::DimensionMismatch {
            expected: dim,
            got: subset.len(),
        });
    }

    let lo_q = (1.0 - level) / 2.0;
    let hi_q = 1.0 - lo_q;
    let mut dims = Vec::with_capacity(dim);
    for (d, &index) in subset.iter().enumerate() {
        let series: Vec<Vec<f64>> = chains.iter().map(|c| c.dim_series(d)).collect();
        let pooled: Vec<f64> = series.iter().flatten().copied().collect();
        let mut stats = RunningStats::new();
        for &x in &pooled {
            stats.push(x);
        }
        let rhat = if chains.len() >= 2 {
            split_rhat(&series)?
        } else {
            // A single chain carries no between-chain evidence; report
            // the neutral value rather than pretending otherwise.
            1.0
        };
        let ess = multichain_ess(&series)?;
        dims.push(DimPosterior {
            index,
            mean: stats.mean(),
            sd: stats.sample_std(),
            median: quantile(&pooled, 0.5)?,
            ci_lo: quantile(&pooled, lo_q)?,
            ci_hi: quantile(&pooled, hi_q)?,
            ess,
            rhat,
        });
    }

    let max_rhat = dims
        .iter()
        .map(|d| d.rhat)
        .fold(f64::NEG_INFINITY, f64::max);
    let min_ess = dims.iter().map(|d| d.ess).fold(f64::INFINITY, f64::min);
    Ok(PosteriorReport {
        level,
        chains: chains.len(),
        draws_per_chain,
        dims,
        max_rhat,
        min_ess,
    })
}

/// Picks `count` draws evenly spaced across the pooled posterior (chain
/// by chain, in draw order) — a deterministic thinning used to
/// propagate posterior uncertainty through a downstream attack without
/// re-running it on every draw.
///
/// # Errors
///
/// [`InferError::InvalidParameter`] when `count` is zero or exceeds the
/// pooled draw count, or when there are no draws.
pub fn evenly_spaced_draws(chains: &[ChainResult], count: usize) -> Result<Vec<Vec<f64>>> {
    let total: usize = chains.iter().map(|c| c.draws.len()).sum();
    if count == 0 || count > total || total == 0 {
        return Err(InferError::InvalidParameter { name: "count" });
    }
    let pooled: Vec<&Vec<f64>> = chains.iter().flat_map(|c| c.draws.iter()).collect();
    // Even spacing via the midpoint rule so the first and last strides
    // are balanced and `count == total` returns every draw.
    Ok((0..count)
        .map(|i| pooled[(2 * i + 1) * total / (2 * count)].clone())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{run_chains, ChainConfig};
    use crate::distribution::Prior;
    use crate::mcmc::{BayesModel, Kernel};

    struct Toy {
        priors: Vec<Prior>,
        center: Vec<f64>,
        sigma: f64,
    }

    impl BayesModel for Toy {
        fn dim(&self) -> usize {
            self.priors.len()
        }
        fn priors(&self) -> &[Prior] {
            &self.priors
        }
        fn log_likelihood(&self, theta: &[f64]) -> f64 {
            let inv = 1.0 / (self.sigma * self.sigma);
            -0.5 * inv
                * theta
                    .iter()
                    .zip(&self.center)
                    .map(|(t, c)| (t - c) * (t - c))
                    .sum::<f64>()
        }
    }

    fn toy() -> Toy {
        Toy {
            priors: vec![Prior::normal(0.0, 2.0).unwrap(); 2],
            center: vec![1.0, -0.5],
            sigma: 0.4,
        }
    }

    fn sample(chains: usize, samples: usize) -> Vec<ChainResult> {
        run_chains(
            &toy(),
            &Kernel::EllipticalSlice,
            &ChainConfig::new(200, samples, 1).unwrap(),
            77,
            chains,
            1,
        )
        .unwrap()
    }

    #[test]
    fn report_tracks_the_known_posterior() {
        let chains = sample(4, 1500);
        let report = summarize(&chains, &[3, 9], 0.9).unwrap();
        assert_eq!(report.chains, 4);
        assert_eq!(report.draws_per_chain, 1500);
        assert_eq!(report.dims.len(), 2);
        assert_eq!(report.dims[0].index, 3);
        assert_eq!(report.dims[1].index, 9);
        // Conjugate posterior: mean = center * prior_var/(prior_var + sigma^2).
        let shrink = 4.0 / (4.0 + 0.16);
        for (d, c) in report.dims.iter().zip([1.0, -0.5]) {
            let want = c * shrink;
            assert!(
                (d.mean - want).abs() < 0.05,
                "dim {} mean {} vs {}",
                d.index,
                d.mean,
                want
            );
            assert!(d.ci_lo < d.mean && d.mean < d.ci_hi);
            assert!(d.ci_lo < d.median && d.median < d.ci_hi);
            assert!(d.covers(want));
            assert!(d.sd > 0.0 && d.ci_width() > 0.0);
            assert!(d.rhat < 1.05, "rhat {}", d.rhat);
            assert!(d.ess > 100.0, "ess {}", d.ess);
        }
        assert!(report.max_rhat >= report.dims[0].rhat);
        assert!(report.min_ess <= report.dims[0].ess);
        assert_eq!(report.mean_vector().len(), 2);
        assert!((report.coverage(&[shrink, -0.5 * shrink]).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(report.coverage(&[100.0, -100.0]).unwrap(), 0.0);
        assert!(report.coverage(&[0.0]).is_err());
        assert!(report.mean_ci_width() > 0.0);
    }

    #[test]
    fn wider_level_gives_wider_intervals() {
        let chains = sample(2, 800);
        let narrow = summarize(&chains, &[0, 1], 0.5).unwrap();
        let wide = summarize(&chains, &[0, 1], 0.99).unwrap();
        for (n, w) in narrow.dims.iter().zip(&wide.dims) {
            assert!(w.ci_width() > n.ci_width());
        }
    }

    #[test]
    fn single_chain_reports_neutral_rhat() {
        let chains = sample(1, 400);
        let report = summarize(&chains, &[0, 1], 0.9).unwrap();
        for d in &report.dims {
            assert_eq!(d.rhat, 1.0);
        }
    }

    #[test]
    fn summarize_validates_inputs() {
        let chains = sample(2, 100);
        assert!(summarize(&chains, &[0, 1], 0.0).is_err());
        assert!(summarize(&chains, &[0, 1], 1.0).is_err());
        assert!(summarize(&[], &[0, 1], 0.9).is_err());
        assert!(matches!(
            summarize(&chains, &[0], 0.9),
            Err(InferError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn report_round_trips_through_json() {
        let chains = sample(2, 200);
        let report = summarize(&chains, &[5, 7], 0.95).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: PosteriorReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn evenly_spaced_draws_are_deterministic_and_spread() {
        let chains = sample(2, 50);
        let picks = evenly_spaced_draws(&chains, 10).unwrap();
        assert_eq!(picks.len(), 10);
        assert_eq!(picks, evenly_spaced_draws(&chains, 10).unwrap());
        // count == total returns every draw in pooled order.
        let all = evenly_spaced_draws(&chains, 100).unwrap();
        assert_eq!(all.len(), 100);
        assert_eq!(all[0], chains[0].draws[0]);
        assert_eq!(all[99], chains[1].draws[49]);
        assert!(evenly_spaced_draws(&chains, 0).is_err());
        assert!(evenly_spaced_draws(&chains, 101).is_err());
    }
}
